"""Shared parallel-execution layer for embarrassingly-parallel workloads.

Every compute-bound fan-out in the codebase — EM random restarts,
bootstrap replicates, model-order candidates, multi-seed scenario sweeps
— funnels through :func:`parallel_map`, which provides:

* a **process pool** (Python-loop-bound numerical code gains nothing from
  threads) with **worker reuse**: pools are cached per worker count and
  reused across calls, so repeated fan-outs pay the fork cost once;
* **deterministic task seeding** via :func:`task_rng` /
  :func:`task_seed`: each task derives an independent RNG stream from a
  ``(base_seed, stream, index)`` key using :class:`numpy.random.SeedSequence`
  spawn keys, so streams never collide across restarts, replicates, or
  sweeps, and the result of a task depends only on its key — never on
  which worker ran it or in what order;
* **chunking** so many small tasks amortise IPC overhead;
* a **serial fallback** for ``n_jobs=1`` that runs tasks in-process in
  task order, with no pool, no pickling, and byte-identical results to
  the parallel path (results are always reduced in task order).

Determinism contract: for a pure ``fn``, ``parallel_map(fn, items, n)``
returns the same list for every ``n``.  The test suite asserts this for
the HMM/MMHD fits and the bootstrap.

Composition with the batched E-step engine
------------------------------------------
EM restarts have two execution engines (see
:mod:`repro.models.batched`): in-process restart *batching* (stack all
restarts into one set of parameter tensors and run one batched
forward-backward) and this module's process pool.  They answer
different questions — batching amortises Python-loop overhead, the pool
adds CPUs — and they compose: a fit with ``n_jobs > 1`` splits its
restarts into contiguous shards (:func:`shard_items`) and each worker
batches its own shard.  The practical heuristic, also documented on
``EMConfig.backend``: small state widths (``N`` or ``N*M`` up to a few
dozen) are interpreter-bound and want the batched engine; very wide
states are BLAS-bound and the pool alone is the better multiplier.
Because each batch row is computed independently of its batch-mates,
per-restart results are bit-identical for every sharding, preserving
the contract above.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

import numpy as np

from repro import obs

_LOG = obs.get_logger(__name__)

__all__ = [
    "resolve_n_jobs",
    "parallel_map",
    "shard_items",
    "task_seed",
    "task_rng",
    "seed_sequence",
    "shutdown_pools",
    "STREAM_RESTART",
    "restart_rng",
    "STREAM_BOOTSTRAP",
    "STREAM_SWEEP",
    "STREAM_SELECTION",
    "STREAM_MONITOR",
]

T = TypeVar("T")
R = TypeVar("R")

#: Stream identifiers keeping per-task seed keys disjoint across layers.
STREAM_RESTART = 1
STREAM_BOOTSTRAP = 2
STREAM_SWEEP = 3
STREAM_SELECTION = 4
STREAM_MONITOR = 5


# ----------------------------------------------------------------------
# Deterministic per-task seeding
# ----------------------------------------------------------------------
def seed_sequence(base_seed: int, *key: int) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` for one task.

    ``key`` (e.g. ``(STREAM_RESTART, restart_index)``) becomes the spawn
    key, so distinct keys yield statistically independent, non-colliding
    streams even when base seeds are consecutive integers — the failure
    mode of the old ``seed + index`` convention, where restart 3 of seed
    10 collided with restart 0 of seed 13.
    """
    return np.random.SeedSequence(
        entropy=int(base_seed), spawn_key=tuple(int(k) for k in key)
    )


def task_seed(base_seed: int, *key: int) -> int:
    """A 128-bit integer seed derived from ``(base_seed, *key)``."""
    words = seed_sequence(base_seed, *key).generate_state(4, np.uint32)
    out = 0
    for word in words:
        out = (out << 32) | int(word)
    return out


def task_rng(base_seed: int, *key: int) -> np.random.Generator:
    """A generator on the task's independent stream."""
    return np.random.default_rng(seed_sequence(base_seed, *key))


def restart_rng(base_seed: int, restart: int) -> np.random.Generator:
    """RNG for EM restart ``restart`` of a fit seeded with ``base_seed``.

    Restart 0 keeps the historical ``default_rng(base_seed)`` stream, so
    the ubiquitous single-restart fit is bit-identical across releases
    (committed benchmark artifacts stay reproducible).  Restarts >= 1 use
    spawned streams keyed by the restart index, which cannot collide with
    each other or with nearby base seeds — unlike the old
    ``default_rng(base_seed + restart)`` convention, where restart 3 of
    seed 10 was restart 0 of seed 13.
    """
    if restart == 0:
        return np.random.default_rng(int(base_seed))
    return task_rng(base_seed, STREAM_RESTART, restart)


# ----------------------------------------------------------------------
# Pool management
# ----------------------------------------------------------------------
def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None``/``1`` mean serial; ``-1`` (or ``0``) means one worker per
    available CPU; anything else is taken literally.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs in (-1, 0):
        return os.cpu_count() or 1
    if n_jobs < -1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _make_pool(n_workers: int) -> ProcessPoolExecutor:
    # fork keeps the already-imported numpy/repro modules, making worker
    # start-up cheap and PYTHONPATH-independent; fall back to the
    # platform default where fork is unavailable (e.g. Windows).
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=n_workers, mp_context=context)


def _get_pool(n_workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(n_workers)
    if pool is None:
        pool = _make_pool(n_workers)
        _POOLS[n_workers] = pool
    return pool


def shutdown_pools() -> None:
    """Tear down all cached worker pools (idempotent)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


def _default_chunksize(n_items: int, n_workers: int) -> int:
    # ~4 chunks per worker balances scheduling slack against IPC count.
    return max(1, -(-n_items // (4 * n_workers)))


def shard_items(items: Sequence[T], n_shards: int) -> List[List[T]]:
    """Split ``items`` into at most ``n_shards`` contiguous shards.

    Shard sizes differ by at most one (earlier shards take the extra
    item) and empty shards are never produced.  Contiguity is what lets
    a sharded consumer reassemble results in item order with a plain
    concatenation — the batched EM engine relies on this to keep its
    restart-order best-of reduction independent of the shard count.
    """
    items = list(items)
    n_shards = max(1, min(int(n_shards), len(items)))
    base, extra = divmod(len(items), n_shards)
    shards: List[List[T]] = []
    start = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        shards.append(items[start:start + size])
        start += size
    return shards


class _TelemetryTask:
    """Carry the parent's telemetry config into a worker and ship back
    the per-task metric delta.

    The worker replays the parent's config (so instrumented code inside
    ``fn`` records normally), snapshots its registry around the task,
    and returns ``(result, delta)``.  The parent merges the deltas in
    task order, which keeps merged metrics identical for every
    ``n_jobs`` — the telemetry extension of the determinism contract.
    Event sinks backed by a file path work directly from workers
    (append is line-atomic); stream sinks stay parent-local.
    """

    __slots__ = ("fn", "config")

    def __init__(self, fn: Callable, config: dict):
        self.fn = fn
        self.config = config

    def __call__(self, item):
        obs.apply_config(self.config)
        before = obs.metrics_snapshot()
        result = self.fn(item)
        return result, obs.metrics_delta(before)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Apply ``fn`` to every item, preserving item order in the result.

    ``fn`` and the items must be picklable when ``n_jobs > 1`` (define
    workers at module level).  The reduction order is the input order
    regardless of completion order, which is what makes downstream
    "best of" reductions independent of worker scheduling.
    """
    items = list(items)
    n_workers = resolve_n_jobs(n_jobs)
    if n_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    pool = _get_pool(n_workers)
    if chunksize is None:
        chunksize = _default_chunksize(len(items), n_workers)
    from repro.obs import health as _health

    # The config round-trip also carries the model-health flag, so it is
    # needed whenever either switch is on (health can run without the
    # event/metric side of telemetry).
    with_telemetry = obs.is_enabled() or _health.is_health_enabled()
    task_fn: Callable = (
        _TelemetryTask(fn, obs.current_config()) if with_telemetry else fn
    )
    try:
        mapped = list(pool.map(task_fn, items, chunksize=chunksize))
    except BrokenProcessPool:  # pragma: no cover - worker crash recovery
        _POOLS.pop(n_workers, None)
        _LOG.warning(
            "worker pool (n_workers=%d) broke; rerunning %d task(s) serially",
            n_workers, len(items),
        )
        obs.inc("repro_pool_breaks_total")
        obs.emit("pool.broken", n_workers=n_workers, n_tasks=len(items))
        return [fn(item) for item in items]
    obs.heartbeat()  # a completed pool map is pipeline progress
    if not with_telemetry:
        return mapped
    results: List[R] = []
    for result, delta in mapped:
        obs.merge_worker_metrics(delta)
        results.append(result)
    return results
