"""Pluggable, non-blocking ingest sources for the fleet service loop.

The one-shot monitor pulls records from Python iterators until they run
dry; a service loop instead *polls* each path's source every cycle for
whatever is available right now and moves on — a slow or quiet source
must never stall the fleet.  Every source implements the same small
protocol:

* ``poll(max_records)`` — up to ``max_records`` new ``(send_time,
  delay)`` pairs, returning immediately (possibly empty);
* ``exhausted`` — ``True`` once the source can never produce again
  (end of a finite stream, EOF without follow);
* ``close()`` — release any handle (idempotent).

Four implementations cover the deployment shapes:

* :class:`IterableSource` — any in-process iterator (synthetic demo
  streams, replayed lists, generators);
* :class:`QueueSource` — a thread-safe handoff from producer threads
  (live socket readers, test harnesses); ``push``/``end`` feed it;
* :class:`TailSource` — an observation CSV on disk, read incrementally;
  with ``follow=True`` it keeps polling for appended lines (``tail -f``
  semantics, partial trailing lines buffered until the newline lands);
* :class:`StreamSource` — an open text stream (``sys.stdin``); uses
  ``select`` when the stream has a real file descriptor so a silent
  pipe never blocks the loop, and plain reads otherwise.

CSV parsing matches :func:`repro.measurement.traceio.iter_observation`:
``send_time,delay`` rows, the literal ``lost`` for a lost probe, and an
optional header row.  Malformed rows raise — a corrupt feed should be
loud, not silently skipped.
"""

from __future__ import annotations

import queue as queue_module
import select
from pathlib import Path
from typing import IO, Iterable, List, Optional, Tuple

from repro import obs
from repro.measurement.traceio import LOST_MARKER

__all__ = [
    "IngestSource",
    "IterableSource",
    "QueueSource",
    "TailSource",
    "StreamSource",
]

_LOG = obs.get_logger(__name__)

Record = Tuple[float, float]


class IngestSource:
    """Base class: the poll/exhausted/close protocol (see module docs)."""

    exhausted: bool = False

    def poll(self, max_records: int) -> List[Record]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def describe(self) -> str:
        """One-line label for the HTTP API and telemetry."""
        return type(self).__name__


def _parse_row(line: str, where: str) -> Optional[Record]:
    """One CSV row -> record; ``None`` for blank/header rows."""
    text = line.strip()
    if not text:
        return None
    first, _, rest = text.partition(",")
    if first.strip() == "send_time":
        return None  # header row
    cell = rest.partition(",")[0].strip()
    try:
        delay = float("nan") if cell.lower() == LOST_MARKER else float(cell)
        return float(first), delay
    except ValueError:
        raise ValueError(f"{where}: bad observation row {text!r}")


class IterableSource(IngestSource):
    """Wrap any ``(send_time, delay)`` iterable (demo streams, replays)."""

    def __init__(self, records: Iterable[Record]):
        self._iterator = iter(records)

    def poll(self, max_records: int) -> List[Record]:
        out: List[Record] = []
        while len(out) < max_records:
            try:
                send_time, delay = next(self._iterator)
            except StopIteration:
                self.exhausted = True
                break
            out.append((float(send_time), float(delay)))
        return out


class QueueSource(IngestSource):
    """A thread-safe handoff: producers ``push`` records, the loop polls.

    ``end()`` (or pushing ``None``) marks the stream finished once the
    queue drains.  The queue is unbounded by default — backpressure is
    the *service's* job (shed/coarsen), not the transport's.
    """

    def __init__(self, maxsize: int = 0):
        self.queue: "queue_module.Queue" = queue_module.Queue(maxsize)
        self._ended = False

    def push(self, send_time: float, delay: float) -> None:
        """Producer side: enqueue one record."""
        self.queue.put((float(send_time), float(delay)))

    def end(self) -> None:
        """Producer side: no more records after what is queued."""
        self.queue.put(None)

    def poll(self, max_records: int) -> List[Record]:
        out: List[Record] = []
        while len(out) < max_records:
            try:
                item = self.queue.get_nowait()
            except queue_module.Empty:
                break
            if item is None:
                self._ended = True
                self.exhausted = True
                break
            out.append(item)
        return out


class TailSource(IngestSource):
    """Incrementally read (and optionally follow) an observation CSV.

    Without ``follow`` the source is exhausted at EOF; with it, EOF just
    means "nothing new yet" and later appends are picked up on the next
    poll.  A partially written trailing line (no newline yet) is
    buffered, never parsed early.
    """

    def __init__(self, path, follow: bool = False):
        self.path = Path(path)
        self.follow = bool(follow)
        self._handle: Optional[IO[str]] = self.path.open()
        self._partial = ""

    def describe(self) -> str:
        mode = "follow" if self.follow else "eof"
        return f"tail:{self.path}:{mode}"

    def poll(self, max_records: int) -> List[Record]:
        out: List[Record] = []
        if self._handle is None:
            return out
        while len(out) < max_records:
            line = self._handle.readline()
            if not line:
                if not self.follow:
                    self.exhausted = True
                    self.close()
                break
            if not line.endswith("\n"):
                # Mid-append: stash and retry once the writer finishes
                # the line.  Without follow, EOF is final — parse it.
                if self.follow:
                    self._partial += line
                    break
                line = self._partial + line
                self._partial = ""
            elif self._partial:
                line = self._partial + line
                self._partial = ""
            record = _parse_row(line, str(self.path))
            if record is not None:
                out.append(record)
        return out

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class StreamSource(IngestSource):
    """Poll an open text stream (``sys.stdin``, a socket makefile).

    Streams with a real file descriptor are polled via ``select`` so an
    idle pipe costs nothing and never blocks; plain in-memory streams
    (``io.StringIO`` in tests) are read straight through to EOF.
    """

    def __init__(self, stream: IO[str], name: Optional[str] = None):
        self._stream = stream
        self.name = name or getattr(stream, "name", "<stream>")
        try:
            self._fd: Optional[int] = stream.fileno()
        except (AttributeError, OSError):
            self._fd = None

    def describe(self) -> str:
        return f"stream:{self.name}"

    def _readable(self) -> bool:
        if self._fd is None:
            return True
        ready, _, _ = select.select([self._fd], [], [], 0)
        return bool(ready)

    def poll(self, max_records: int) -> List[Record]:
        out: List[Record] = []
        while len(out) < max_records and self._readable():
            line = self._stream.readline()
            if not line:
                self.exhausted = True
                break
            record = _parse_row(line, self.name)
            if record is not None:
                out.append(record)
        return out

    def close(self) -> None:
        try:
            self._stream.close()
        except Exception:  # noqa: BLE001 - closing stdin can object
            pass
