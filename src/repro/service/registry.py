"""Runtime path registry: register/deregister/pause with generations.

The one-shot monitor fixes its path set at startup; a long-running fleet
service must add and remove paths while drains are in flight.  The
registry is the control-plane half of that: it owns *which* paths exist,
their lifecycle status, and their per-path config overrides, while the
scheduler (:class:`repro.streaming.scheduler.MultiPathMonitor`) owns the
data-plane state (assemblers, warm fits, hysteresis).

Two invariants make runtime churn deterministic:

* **Generations** — every ``(path id, registration)`` pair gets a
  monotonically increasing generation number that survives
  deregistration.  An ingest source bound at registration time carries
  its generation; once the path is deregistered (or re-registered,
  bumping the generation) late records from the old incarnation are
  dropped with reason ``stale-generation`` — never silently mixed into
  the new incarnation's windows.
* **Status gating at the boundary** — a paused path drops records at
  admission (reason ``paused``) rather than buffering them, so resuming
  never replays a burst of stale probes into the window assembler.

Per-path overrides are plain dicts over :class:`~repro.streaming.tracker
.MonitorConfig` fields (``{"window": 1500, "model": "hmm"}``); the
registry materialises the merged config once at registration.  Overriding
``window`` without ``hop`` re-derives the 50%-overlap default rather
than inheriting the base config's now-mismatched stride.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.streaming.tracker import MonitorConfig

__all__ = [
    "ACTIVE",
    "PAUSED",
    "PathEntry",
    "PathRegistry",
    "merge_config",
    "CONFIG_OVERRIDE_FIELDS",
]

#: Registry lifecycle states.
ACTIVE = "active"
PAUSED = "paused"

#: MonitorConfig constructor fields a per-path override may set.
CONFIG_OVERRIDE_FIELDS = (
    "window", "hop", "n_symbols", "n_hidden", "model", "beta0", "beta1",
    "tolerance", "confirm", "memory", "gate_stationarity",
    "stationarity_window", "delay_tolerance", "loss_tolerance",
)


def merge_config(base: MonitorConfig, overrides: Optional[dict]
                 ) -> MonitorConfig:
    """The base config with per-path overrides applied (validated).

    Returns ``base`` itself when there is nothing to override, so the
    common no-override fleet shares one config object (and the fused
    drain groups every path together).
    """
    if not overrides:
        return base
    unknown = sorted(set(overrides) - set(CONFIG_OVERRIDE_FIELDS))
    if unknown:
        raise ValueError(
            f"unknown config override(s) {unknown}; valid fields: "
            f"{sorted(CONFIG_OVERRIDE_FIELDS)}"
        )
    values = {field: getattr(base, field)
              for field in CONFIG_OVERRIDE_FIELDS}
    if "window" in overrides and "hop" not in overrides:
        values["hop"] = None  # re-derive the 50%-overlap default
    values.update(overrides)
    return MonitorConfig(em=base.em, **values)


class PathEntry:
    """One registered path's control-plane state."""

    __slots__ = ("path", "generation", "status", "overrides", "config",
                 "registered_at", "n_records", "n_dropped")

    def __init__(self, path: str, generation: int, config: MonitorConfig,
                 overrides: Optional[dict] = None, status: str = ACTIVE):
        self.path = path
        self.generation = int(generation)
        self.status = status
        self.overrides = dict(overrides or {})
        self.config = config
        self.registered_at = time.time()
        self.n_records = 0
        self.n_dropped = 0

    def to_dict(self) -> dict:
        """The JSON projection the HTTP API serves."""
        return {
            "path": self.path,
            "generation": self.generation,
            "status": self.status,
            "overrides": dict(self.overrides),
            "registered_at": round(self.registered_at, 3),
            "n_records": self.n_records,
            "n_dropped": self.n_dropped,
        }


class PathRegistry:
    """Register/deregister/pause paths at runtime (control plane only).

    The registry never touches monitor state; the fleet service composes
    the two (``register`` -> ``monitor.add_path``, ``deregister`` ->
    ``monitor.remove_path``) under its own lock.
    """

    def __init__(self, base_config: Optional[MonitorConfig] = None):
        self.base_config = base_config or MonitorConfig()
        self._entries: Dict[str, PathEntry] = {}
        #: Highest generation ever issued per path id (survives
        #: deregistration — the stale-record guarantee hangs off this).
        self._generations: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def register(self, path: str, overrides: Optional[dict] = None,
                 paused: bool = False) -> PathEntry:
        """Add a path; raises ``ValueError`` when it already exists."""
        if not path:
            raise ValueError("path id must be non-empty")
        if path in self._entries:
            raise ValueError(f"path {path!r} is already registered")
        config = merge_config(self.base_config, overrides)
        generation = self._generations.get(path, 0) + 1
        self._generations[path] = generation
        entry = PathEntry(path, generation, config, overrides=overrides,
                          status=PAUSED if paused else ACTIVE)
        self._entries[path] = entry
        return entry

    def deregister(self, path: str) -> PathEntry:
        """Remove a path; raises ``KeyError`` when unknown.

        The generation counter is retained, so a later ``register`` of
        the same id starts a new generation and the old incarnation's
        late records stay identifiable (and droppable).
        """
        entry = self._entries.pop(path, None)
        if entry is None:
            raise KeyError(f"path {path!r} is not registered")
        return entry

    def pause(self, path: str) -> PathEntry:
        """Stop admitting the path's records (idempotent)."""
        entry = self._require(path)
        entry.status = PAUSED
        return entry

    def resume(self, path: str) -> PathEntry:
        """Re-admit the path's records (idempotent)."""
        entry = self._require(path)
        entry.status = ACTIVE
        return entry

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _require(self, path: str) -> PathEntry:
        entry = self._entries.get(path)
        if entry is None:
            raise KeyError(f"path {path!r} is not registered")
        return entry

    def get(self, path: str) -> Optional[PathEntry]:
        """The entry, or ``None`` when the path is not registered."""
        return self._entries.get(path)

    def __contains__(self, path: str) -> bool:
        return path in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[PathEntry]:
        """Registered entries in registration order."""
        return list(self._entries.values())

    def counts(self) -> Dict[str, int]:
        """``{status: n}`` over registered paths (both statuses present)."""
        counts = {ACTIVE: 0, PAUSED: 0}
        for entry in self._entries.values():
            counts[entry.status] = counts.get(entry.status, 0) + 1
        return counts

    def admit(self, path: str, generation: Optional[int] = None
              ) -> Optional[str]:
        """Admission check for one record: ``None`` to accept, else the
        drop reason (``unregistered`` / ``stale-generation`` /
        ``paused``).

        ``generation`` is the generation the record's source was bound
        to; ``None`` means "the current incarnation, whatever it is"
        (direct pushes).  The check order makes the drop reason
        deterministic: existence, then generation, then status.
        """
        entry = self._entries.get(path)
        if entry is None:
            return "unregistered"
        if generation is not None and generation != entry.generation:
            return "stale-generation"
        if entry.status != ACTIVE:
            return "paused"
        return None
