"""Fleet monitoring service: registry, service loop, HTTP API, backpressure.

The streaming layer (:mod:`repro.streaming`) answers "given these
records, what are the verdicts?" for a fixed path set; this package
turns it into a long-running *service*: paths register and deregister
at runtime (:mod:`~repro.service.registry`), records arrive through
pluggable non-blocking sources (:mod:`~repro.service.ingest`), drains
run on a continuous schedule (:mod:`~repro.service.loop`), overload is
met with explicit shed/coarsen policies
(:mod:`~repro.service.backpressure`), and the whole thing is driven and
observed over a stdlib HTTP API (:mod:`~repro.service.api`) — started
from the CLI as ``repro serve``.

The parity contract carries through: windows that are neither shed nor
re-strided produce byte-identical verdict streams to an offline
:class:`~repro.streaming.scheduler.MultiPathMonitor` run.
"""

from repro.service.backpressure import POLICIES, BackpressurePolicy
from repro.service.ingest import (IngestSource, IterableSource, QueueSource,
                                  StreamSource, TailSource)
from repro.service.loop import FleetService
from repro.service.registry import (ACTIVE, CONFIG_OVERRIDE_FIELDS, PAUSED,
                                    PathEntry, PathRegistry, merge_config)

__all__ = [
    "ACTIVE",
    "PAUSED",
    "CONFIG_OVERRIDE_FIELDS",
    "PathEntry",
    "PathRegistry",
    "merge_config",
    "IngestSource",
    "IterableSource",
    "QueueSource",
    "StreamSource",
    "TailSource",
    "BackpressurePolicy",
    "POLICIES",
    "FleetService",
    "ServiceAPI",
    "build_source",
]


def __getattr__(name):
    # ServiceAPI pulls in http.server; import it lazily so the service
    # core stays importable in minimal contexts (e.g. pool workers).
    if name in ("ServiceAPI", "build_source"):
        from repro.service import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
