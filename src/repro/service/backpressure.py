"""Fleet-wide backpressure: shed pending windows or coarsen the stride.

A service loop that ingests faster than it drains accumulates pending
windows without bound; left alone that is an OOM with a long fuse.  The
policy watches the scheduler's O(1) backlog counter after every ingest
burst and, past a high watermark, does one of two things:

* ``shed`` — drop the *oldest* pending windows, round-robin across
  paths in registration order, until the backlog is back at the low
  watermark.  Recent windows (the ones an operator is waiting on)
  survive; the dropped ones are enumerated in a ``service.shed`` event
  so the gap in each verdict stream is attributable, not mysterious.
* ``coarsen`` — multiply every path's window stride (assembler hop) by
  ``factor``, capped at the window length, so fewer windows are emitted
  per probe while overload lasts; the original strides are restored
  once the backlog falls below the low watermark.  No window that *was*
  emitted is dropped, so every produced verdict still matches the
  offline run — the stream just samples time more coarsely.

Both decisions are deterministic functions of the backlog and the path
set — never of wall-clock time — so a replayed overload sheds the same
windows.  Every transition emits an event and bumps the preregistered
``repro_service_shed_windows_total`` / ``repro_service_coarsen_total``
counters, and the loop re-exports the backlog gauge the alert rule
``service-backlog-growth`` watches.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import obs

__all__ = ["BackpressurePolicy", "POLICIES"]

#: Valid ``BackpressurePolicy(mode=...)`` values.
POLICIES = ("off", "shed", "coarsen")


class BackpressurePolicy:
    """Watermark-driven overload response for a fleet monitor.

    Parameters
    ----------
    mode:
        ``"off"`` (never intervene), ``"shed"`` or ``"coarsen"``.
    high_watermark:
        Backlog (pending windows fleet-wide) at which the policy
        engages.
    low_watermark:
        Backlog the policy drives toward (shed) or below which it
        disengages (coarsen restore).  Defaults to half the high
        watermark.
    factor:
        Stride multiplier for ``coarsen`` mode.
    """

    def __init__(self, mode: str = "off", high_watermark: int = 64,
                 low_watermark: Optional[int] = None, factor: int = 2):
        if mode not in POLICIES:
            raise ValueError(f"mode must be one of {POLICIES}, got {mode!r}")
        if high_watermark < 1:
            raise ValueError("high_watermark must be >= 1")
        if low_watermark is None:
            low_watermark = high_watermark // 2
        if not 0 <= low_watermark < high_watermark:
            raise ValueError(
                f"low_watermark must be in [0, high_watermark), got "
                f"{low_watermark} vs {high_watermark}")
        if factor < 2:
            raise ValueError("factor must be >= 2")
        self.mode = mode
        self.high_watermark = int(high_watermark)
        self.low_watermark = int(low_watermark)
        self.factor = int(factor)
        #: Original per-path hops while a coarsen is in force.
        self._saved_hops: Optional[Dict[str, int]] = None
        self.n_shed_windows = 0
        self.n_coarsens = 0
        self.n_restores = 0

    @property
    def coarsened(self) -> bool:
        """Whether a coarsened stride is currently in force."""
        return self._saved_hops is not None

    def apply(self, monitor) -> dict:
        """One policy evaluation against the monitor's current backlog.

        Returns an accounting dict (``{"shed": n, "coarsened": bool,
        "restored": bool}``) the service folds into its round event.
        """
        outcome = {"shed": 0, "coarsened": False, "restored": False}
        if self.mode == "off":
            return outcome
        backlog = monitor.n_pending
        if self.mode == "shed":
            if backlog > self.high_watermark:
                dropped = monitor.shed_oldest(backlog - self.low_watermark)
                self.n_shed_windows += len(dropped)
                outcome["shed"] = len(dropped)
                obs.inc("repro_service_shed_windows_total",
                        float(len(dropped)))
                obs.emit(
                    "service.shed",
                    policy=self.mode,
                    backlog=backlog,
                    shed=len(dropped),
                    paths=sorted({path for path, _ in dropped}),
                )
            return outcome
        # coarsen
        if backlog > self.high_watermark and self._saved_hops is None:
            self._saved_hops = monitor.path_hops()
            windows = monitor.path_windows()
            for path, hop in self._saved_hops.items():
                monitor.set_path_hop(
                    path, min(windows[path], hop * self.factor))
            self.n_coarsens += 1
            outcome["coarsened"] = True
            obs.inc("repro_service_coarsen_total", action="coarsen")
            obs.emit(
                "service.coarsen",
                policy=self.mode,
                backlog=backlog,
                action="coarsen",
                factor=self.factor,
                paths=sorted(self._saved_hops),
            )
        elif backlog <= self.low_watermark and self._saved_hops is not None:
            restored = self._restore(monitor)
            outcome["restored"] = True
            obs.emit(
                "service.coarsen",
                policy=self.mode,
                backlog=backlog,
                action="restore",
                factor=self.factor,
                paths=restored,
            )
        return outcome

    def _restore(self, monitor) -> list:
        """Put saved strides back (paths deregistered meanwhile skipped)."""
        restored = []
        for path, hop in (self._saved_hops or {}).items():
            if monitor.has_path(path):
                monitor.set_path_hop(path, hop)
                restored.append(path)
        self._saved_hops = None
        self.n_restores += 1
        obs.inc("repro_service_coarsen_total", action="restore")
        return sorted(restored)

    def snapshot(self) -> dict:
        """The JSON projection ``GET /fleet`` serves."""
        return {
            "mode": self.mode,
            "high_watermark": self.high_watermark,
            "low_watermark": self.low_watermark,
            "factor": self.factor,
            "coarsened": self.coarsened,
            "n_shed_windows": self.n_shed_windows,
            "n_coarsens": self.n_coarsens,
            "n_restores": self.n_restores,
        }
