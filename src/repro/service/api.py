"""The fleet service's HTTP control/verdict API (stdlib only).

Mounted on :class:`repro.obs.httpd.RoutingHTTPServer` alongside the
metrics scrape routes, so one port serves both the control plane and
Prometheus:

====== ========================== =====================================
Method Route                      Meaning
====== ========================== =====================================
GET    ``/paths``                 Registered paths with status, config
                                  overrides, backlog and latest verdict
POST   ``/paths``                 Register a path (JSON body: ``id``,
                                  optional ``config`` overrides,
                                  ``paused``, ``source``)
DELETE ``/paths/{id}``            Deregister (pending windows dropped)
POST   ``/paths/{id}/pause``      Stop admitting the path's records
POST   ``/paths/{id}/resume``     Re-admit the path's records
GET    ``/verdicts/{id}``         Latest verdict, Q_k bound, window lag
                                  and recent history for one path
GET    ``/fleet``                 Fleet rollup: verdict histogram,
                                  backlog, drain occupancy, backpressure
GET    ``/traces``                Slowest record-to-verdict exemplars
                                  fleet-wide (404 when tracing is off)
GET    ``/traces/{id}``           Recent per-stage latency waterfalls of
                                  one path (404 when tracing is off)
GET    ``/health``                Fleet model-health rollup: latest
                                  score per path, min/mean (404 when
                                  health is off)
GET    ``/health/{id}``           Recent per-window health reports of
                                  one path (404 when health is off)
GET    ``/query``                 Time-series history
                                  (``?series=<name>&since=<unix ts>``;
                                  404 without an attached store)
GET    ``/slo``                   Error-budget status of every declared
                                  SLO (404 without an evaluator)
GET    ``/metrics``               Prometheus exposition (also
                                  ``/metrics.json``, ``/healthz``)
====== ========================== =====================================

``POST /paths`` source bindings (``"source"`` in the body):

* ``{"kind": "demo", "n": 4000, "seed": 7}`` — synthetic netsim stream
  (:func:`repro.experiments.streams.strong_dcl_stream`);
* ``{"kind": "file", "path": "obs.csv", "follow": true}`` — tail an
  observation CSV (``follow`` keeps polling for appends).

Errors come back as ``{"error": ...}`` JSON: 400 for malformed bodies,
404 for unknown paths, 409 for duplicate registration.  Every request
lands in ``repro_service_http_requests_total`` and the per-route
``repro_service_http_seconds`` histogram via the server's observer
hook.
"""

from __future__ import annotations

import urllib.parse
from typing import Optional

from repro import obs
from repro.obs.httpd import (HTTPError, Request, Response,
                             RoutingHTTPServer, json_response,
                             metrics_routes)
from repro.service.ingest import IngestSource, IterableSource, TailSource
from repro.service.loop import FleetService

__all__ = ["ServiceAPI", "build_source"]


def build_source(spec: Optional[dict]) -> Optional[IngestSource]:
    """An ingest source from its JSON spec (``None`` spec -> no source)."""
    if spec is None:
        return None
    if not isinstance(spec, dict) or "kind" not in spec:
        raise HTTPError(400, "source must be an object with a 'kind'")
    kind = spec["kind"]
    if kind == "demo":
        from repro.experiments.streams import strong_dcl_stream

        n = int(spec.get("n", 4000))
        seed = int(spec.get("seed", 0))
        if n < 1:
            raise HTTPError(400, "demo source needs n >= 1")
        return IterableSource(strong_dcl_stream(n, seed=seed))
    if kind == "file":
        path = spec.get("path")
        if not path:
            raise HTTPError(400, "file source needs a 'path'")
        try:
            return TailSource(path, follow=bool(spec.get("follow", False)))
        except OSError as exc:
            raise HTTPError(400, f"cannot open source file: {exc}")
    raise HTTPError(400, f"unknown source kind {kind!r} "
                         "(want 'demo' or 'file')")


class ServiceAPI(RoutingHTTPServer):
    """The fleet service's HTTP surface (control + verdicts + metrics)."""

    def __init__(self, service: FleetService, port: int = 0,
                 host: str = "127.0.0.1", registry=None):
        self.service = service
        if registry is None:
            registry = obs.registry()
        routes = [
            ("GET", "/paths", self._get_paths),
            ("POST", "/paths", self._post_paths),
            ("DELETE", "/paths/{id}", self._delete_path),
            ("POST", "/paths/{id}/pause", self._pause_path),
            ("POST", "/paths/{id}/resume", self._resume_path),
            ("GET", "/verdicts/{id}", self._get_verdict),
            ("GET", "/fleet", self._get_fleet),
            ("GET", "/traces", self._get_traces),
            ("GET", "/traces/{id}", self._get_path_traces),
            ("GET", "/health", self._get_health),
            ("GET", "/health/{id}", self._get_path_health),
            ("GET", "/query", self._get_query),
            ("GET", "/slo", self._get_slo),
        ] + metrics_routes(registry)
        super().__init__(routes, port=port, host=host,
                         observer=self._observe)

    @staticmethod
    def _observe(route: str, method: str, status: int, dur_s: float) -> None:
        obs.inc("repro_service_http_requests_total",
                route=route, method=method, code=str(status))
        obs.observe("repro_service_http_seconds", dur_s, route=route)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _get_paths(self, _request: Request) -> Response:
        return json_response({"paths": self.service.path_snapshot()})

    def _post_paths(self, request: Request) -> Response:
        body = request.json()
        path = body.get("id")
        if not path or not isinstance(path, str):
            raise HTTPError(400, "body must carry a non-empty string 'id'")
        overrides = body.get("config") or {}
        if not isinstance(overrides, dict):
            raise HTTPError(400, "'config' must be an object of overrides")
        source = build_source(body.get("source"))
        try:
            entry = self.service.register(
                path, overrides=overrides,
                paused=bool(body.get("paused", False)), source=source)
        except ValueError as exc:
            if source is not None:
                source.close()
            status = 409 if "already" in str(exc) else 400
            raise HTTPError(status, str(exc))
        return json_response(entry, status=201)

    def _delete_path(self, request: Request) -> Response:
        try:
            entry = self.service.deregister(request.params["id"])
        except KeyError as exc:
            raise HTTPError(404, str(exc.args[0]))
        return json_response(entry)

    def _pause_path(self, request: Request) -> Response:
        try:
            entry = self.service.pause(request.params["id"])
        except KeyError as exc:
            raise HTTPError(404, str(exc.args[0]))
        return json_response(entry)

    def _resume_path(self, request: Request) -> Response:
        try:
            entry = self.service.resume(request.params["id"])
        except KeyError as exc:
            raise HTTPError(404, str(exc.args[0]))
        return json_response(entry)

    def _get_verdict(self, request: Request) -> Response:
        snapshot = self.service.verdict_snapshot(request.params["id"])
        if snapshot is None:
            raise HTTPError(
                404, f"path {request.params['id']!r} is not registered")
        return json_response(snapshot)

    def _get_fleet(self, _request: Request) -> Response:
        return json_response(self.service.fleet_snapshot())

    # ------------------------------------------------------------------
    # Observability surfaces (tracing, history, SLOs)
    # ------------------------------------------------------------------
    def _get_traces(self, _request: Request) -> Response:
        store = self.service.trace_store
        if store is None:
            raise HTTPError(404, "tracing is not enabled "
                                 "(start the service with --trace)")
        return json_response({"slowest": store.slowest(),
                              "paths": store.paths()})

    def _get_path_traces(self, request: Request) -> Response:
        store = self.service.trace_store
        if store is None:
            raise HTTPError(404, "tracing is not enabled "
                                 "(start the service with --trace)")
        path = request.params["id"]
        traces = store.path_traces(path)
        if not traces and self.service.verdict_snapshot(path) is None:
            raise HTTPError(404, f"path {path!r} is not registered")
        return json_response({"path": path, "traces": traces})

    def _get_health(self, _request: Request) -> Response:
        store = self.service.health_store
        if store is None:
            raise HTTPError(404, "model health is not enabled "
                                 "(start the service with --health)")
        return json_response(store.fleet())

    def _get_path_health(self, request: Request) -> Response:
        store = self.service.health_store
        if store is None:
            raise HTTPError(404, "model health is not enabled "
                                 "(start the service with --health)")
        path = request.params["id"]
        reports = store.path_reports(path)
        if not reports and self.service.verdict_snapshot(path) is None:
            raise HTTPError(404, f"path {path!r} is not registered")
        return json_response({"path": path, "reports": reports})

    def _get_query(self, request: Request) -> Response:
        tsdb = self.service.tsdb
        if tsdb is None:
            raise HTTPError(404, "no time-series store is attached")
        params = urllib.parse.parse_qs(request.query)
        series = (params.get("series") or [None])[0]
        if not series:
            return json_response({"series_names": tsdb.series_names()})
        since = (params.get("since") or [None])[0]
        if since is not None:
            try:
                since = float(since)
            except ValueError:
                raise HTTPError(400, f"bad 'since' value {since!r}")
        return json_response(tsdb.query(series, since=since))

    def _get_slo(self, _request: Request) -> Response:
        evaluator = self.service.slo
        if evaluator is None:
            raise HTTPError(404, "no SLOs are declared "
                                 "(start the service with --slo)")
        return json_response({"slos": evaluator.status()})
