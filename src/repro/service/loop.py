"""The fleet service: a continuously scheduled monitor over live paths.

:class:`FleetService` composes the control plane
(:class:`~repro.service.registry.PathRegistry`), the data plane
(:class:`~repro.streaming.scheduler.MultiPathMonitor`, always drained
through the shared scheduler so fused mega-batching applies), pluggable
ingest sources (:mod:`repro.service.ingest`) and overload response
(:class:`~repro.service.backpressure.BackpressurePolicy`) into one loop:

    poll sources -> admit records -> backpressure -> drain -> publish

Each :meth:`step` is one cycle of that pipeline.  :meth:`run` repeats it
until :meth:`stop` (typically from a signal handler or the HTTP thread)
or — with ``exit_when_idle`` — until every source is exhausted and the
backlog is drained, which turns finite demo streams into a terminating
smoke test.

Concurrency model: one mutation lock (``RLock``) serialises registry
churn, ingest and drains; the HTTP API's *read* endpoints never take it.
Instead every cycle (and every registry transition) publishes immutable
snapshot dicts — per-path listings, latest verdicts, the fleet rollup —
under a separate cache lock, so ``GET /verdicts/{id}`` stays fast while
a drain is mid-flight.  Verdict streams for windows that were neither
shed nor re-strided are byte-identical to an offline
``MultiPathMonitor`` run over the same records: the service adds
admission control and scheduling around the scheduler, never a
different fit path.

Liveness is wired in from day one: every cycle heartbeats the watchdog,
re-exports the ``repro_service_backlog_windows`` gauge the
``service-backlog-growth`` fatal alert rule watches, and (when an
:class:`~repro.obs.alerts.AlertEngine` is attached) evaluates the rule
set.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro import obs
from repro.service.backpressure import BackpressurePolicy
from repro.service.ingest import IngestSource
from repro.service.registry import PathRegistry
from repro.streaming.scheduler import MultiPathMonitor
from repro.streaming.tracker import MonitorConfig

__all__ = ["FleetService"]

_LOG = obs.get_logger(__name__)

#: Latest-events kept per path for the verdict API.
_HISTORY = 16


class FleetService:
    """Runtime-reconfigurable monitoring service over a path fleet."""

    def __init__(
        self,
        base_config: Optional[MonitorConfig] = None,
        n_jobs: int = 1,
        max_pending: int = 64,
        drain_mode: str = "auto",
        backpressure: Optional[BackpressurePolicy] = None,
        burst: Optional[int] = None,
        alert_engine=None,
        emit_fn=None,
        tsdb=None,
        trace_store=None,
        slo=None,
        health_store=None,
    ):
        self.registry = PathRegistry(base_config)
        self.monitor = MultiPathMonitor(
            config=self.registry.base_config,
            n_jobs=n_jobs,
            max_pending=max_pending,
            drain_mode=drain_mode,
        )
        self.backpressure = backpressure or BackpressurePolicy()
        #: Records pulled per source per cycle.
        self.burst = int(burst or self.registry.base_config.hop)
        self.alert_engine = alert_engine
        #: Optional per-event sink (the CLI writes JSONL through this).
        self.emit_fn = emit_fn
        #: Optional :class:`repro.obs.tsdb.TimeSeriesStore` flushed from
        #: the metrics registry once per cycle (self-throttled).
        self.tsdb = tsdb
        #: Optional :class:`repro.obs.trace.TraceStore` retaining
        #: finalized record-to-verdict traces for ``GET /traces/{id}``.
        self.trace_store = trace_store
        #: Optional :class:`repro.obs.slo.SLOEvaluator`, run each cycle
        #: before the alert engine so compiled burn-rate rules see
        #: fresh gauges.
        self.slo = slo
        #: Optional :class:`repro.obs.health.HealthStore` retaining
        #: per-path model-health reports for ``GET /health``.
        self.health_store = health_store
        self._lock = threading.RLock()
        self._cache_lock = threading.Lock()
        #: path -> (source, generation bound at attach time)
        self._sources: Dict[str, Tuple[IngestSource, int]] = {}
        self._history: Dict[str, Deque[dict]] = {}
        self._stop = threading.Event()
        self.cycle = 0
        self.n_windows = 0
        self.n_ingested = 0
        self._drop_counts: Dict[str, int] = {}
        self.started_at = time.time()
        # Cache the empty fleet so reads work before the first cycle.
        self._paths_cache: List[dict] = []
        self._fleet_cache: dict = {}
        with self._lock:
            self._refresh_cache()

    # ------------------------------------------------------------------
    # Control plane (registry + monitor kept in lockstep)
    # ------------------------------------------------------------------
    def register(self, path: str, overrides: Optional[dict] = None,
                 paused: bool = False,
                 source: Optional[IngestSource] = None) -> dict:
        """Add a path to the fleet; optionally bind an ingest source.

        The source is bound to the registration's generation: after a
        deregister/re-register cycle the old source's late records are
        dropped as ``stale-generation`` rather than polluting the new
        incarnation's windows.
        """
        with self._lock:
            entry = self.registry.register(path, overrides=overrides,
                                           paused=paused)
            try:
                self.monitor.add_path(path, entry.config)
            except Exception:
                self.registry.deregister(path)
                raise
            if source is not None:
                self._sources[path] = (source, entry.generation)
            self._history[path] = deque(maxlen=_HISTORY)
            self._emit_path_event(path, "register", entry.generation)
            self._refresh_cache()
            return entry.to_dict()

    def deregister(self, path: str) -> dict:
        """Remove a path; its pending windows are discarded immediately."""
        with self._lock:
            entry = self.registry.deregister(path)
            discarded = self.monitor.remove_path(path)
            bound = self._sources.pop(path, None)
            if bound is not None:
                bound[0].close()
            self._history.pop(path, None)
            if self.trace_store is not None:
                self.trace_store.forget(path)
            if self.health_store is not None:
                self.health_store.forget(path)
            self._emit_path_event(path, "deregister", entry.generation)
            self._refresh_cache()
            out = entry.to_dict()
            out["discarded_windows"] = discarded
            return out

    def pause(self, path: str) -> dict:
        """Stop admitting a path's records (windows in flight still fit)."""
        with self._lock:
            entry = self.registry.pause(path)
            self._emit_path_event(path, "pause", entry.generation)
            self._refresh_cache()
            return entry.to_dict()

    def resume(self, path: str) -> dict:
        """Re-admit a paused path's records."""
        with self._lock:
            entry = self.registry.resume(path)
            self._emit_path_event(path, "resume", entry.generation)
            self._refresh_cache()
            return entry.to_dict()

    def attach_source(self, path: str, source: IngestSource) -> None:
        """Bind (or replace) the ingest source of a registered path."""
        with self._lock:
            entry = self.registry.get(path)
            if entry is None:
                raise KeyError(f"path {path!r} is not registered")
            old = self._sources.get(path)
            if old is not None:
                old[0].close()
            self._sources[path] = (source, entry.generation)

    @staticmethod
    def _emit_path_event(path: str, action: str, generation: int) -> None:
        obs.emit("service.path", path=path, action=action,
                 generation=generation)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def ingest(self, path: str, send_time: float, delay: float,
               generation: Optional[int] = None) -> Optional[str]:
        """Admit one record; returns ``None`` or the drop reason.

        Metric flushes are deferred to the next :meth:`step` so the
        per-record cost stays O(1) dict work.
        """
        with self._lock:
            reason = self.registry.admit(path, generation)
            if reason is not None:
                entry = self.registry.get(path)
                if entry is not None:
                    entry.n_dropped += 1
                self._drop_counts[reason] = \
                    self._drop_counts.get(reason, 0) + 1
                return reason
            self.registry.get(path).n_records += 1
            self.n_ingested += 1
            self.monitor.ingest(path, send_time, delay)
            return None

    def _poll_sources(self) -> Tuple[int, int]:
        """One ingest burst from every bound source (lock held)."""
        ingested = dropped = 0
        exhausted: List[str] = []
        for path, (source, generation) in self._sources.items():
            records = source.poll(self.burst)
            for send_time, delay in records:
                if self.ingest(path, send_time, delay,
                               generation=generation) is None:
                    ingested += 1
                else:
                    dropped += 1
            if source.exhausted:
                exhausted.append(path)
        for path in exhausted:
            source, _ = self._sources.pop(path)
            source.close()
            _LOG.info("source for path %r exhausted; awaiting deregister",
                      path)
        return ingested, dropped

    def step(self) -> dict:
        """One service cycle: poll -> backpressure -> drain -> publish."""
        started = time.perf_counter()
        with self._lock:
            self.cycle += 1
            ingested, dropped = self._poll_sources()
            pressure = self.backpressure.apply(self.monitor)
            events = self.monitor.drain()
            self._publish(events)
            backlog = self.monitor.n_pending
            self.n_windows += len(events)
            self._flush_metrics(backlog)
            dur_s = time.perf_counter() - started
            obs.emit(
                "service.round",
                cycle=self.cycle,
                ingested=ingested,
                dropped=dropped,
                windows=len(events),
                backlog=backlog,
                dur_ms=round(dur_s * 1e3, 3),
            )
            obs.inc("repro_service_rounds_total")
            if events:
                obs.inc("repro_service_windows_total", float(len(events)))
            obs.heartbeat()
            self._refresh_cache()
        if self.slo is not None:
            self.slo.evaluate()
        if self.tsdb is not None:
            self.tsdb.collect(obs.registry())
        if self.alert_engine is not None:
            self.alert_engine.evaluate()
        return {
            "cycle": self.cycle,
            "ingested": ingested,
            "dropped": dropped,
            "windows": len(events),
            "backlog": backlog,
            "shed": pressure["shed"],
            "coarsened": pressure["coarsened"],
            "restored": pressure["restored"],
            "dur_s": dur_s,
        }

    def finish(self) -> int:
        """Flush trailing partial windows and drain them (end of stream)."""
        with self._lock:
            events = self.monitor.finish()
            self._publish(events)
            self.n_windows += len(events)
            if events:
                obs.inc("repro_service_windows_total", float(len(events)))
            self._flush_metrics(self.monitor.n_pending)
            self._refresh_cache()
        return len(events)

    def run(
        self,
        interval: float = 0.05,
        max_cycles: Optional[int] = None,
        exit_when_idle: bool = False,
    ) -> int:
        """Cycle until stopped; returns the number of cycles run.

        ``exit_when_idle`` ends the loop (after a final :meth:`finish`)
        once no sources remain bound and the backlog is empty — the
        terminating mode for finite demo/replay streams.  ``interval``
        is slept only when a cycle did no work, so a loaded service
        spins at drain speed and an idle one at poll speed.
        """
        cycles = 0
        while not self._stop.is_set():
            summary = self.step()
            cycles += 1
            if max_cycles is not None and cycles >= max_cycles:
                break
            if exit_when_idle and not self._sources \
                    and summary["backlog"] == 0 and summary["windows"] == 0 \
                    and summary["ingested"] == 0:
                self.finish()
                break
            if summary["ingested"] == 0 and summary["windows"] == 0:
                self._stop.wait(interval)
        return cycles

    def stop(self) -> None:
        """Ask :meth:`run` to exit after the current cycle (thread-safe)."""
        self._stop.set()

    def close(self) -> None:
        """Stop the loop and close every bound source."""
        self.stop()
        with self._lock:
            for source, _ in self._sources.values():
                source.close()
            self._sources.clear()

    # ------------------------------------------------------------------
    # Publication (verdict cache + snapshots the HTTP API reads)
    # ------------------------------------------------------------------
    def _publish(self, events) -> None:
        for event in events:
            payload = event.to_dict()
            history = self._history.get(event.path)
            if history is not None:
                history.append(payload)
            if self.trace_store is not None \
                    and getattr(event, "trace", None) is not None:
                self.trace_store.add(event.trace)
            if self.health_store is not None \
                    and getattr(event, "health", None) is not None:
                self.health_store.add(event.health,
                                      confidence=event.confidence)
            if self.emit_fn is not None:
                self.emit_fn(payload)

    def _flush_metrics(self, backlog: int) -> None:
        counts = self.registry.counts()
        for status, n in counts.items():
            obs.set_gauge("repro_service_paths", float(n), status=status)
        obs.set_gauge("repro_service_backlog_windows", float(backlog))
        if self.n_ingested:
            obs.inc("repro_service_records_total", float(self.n_ingested))
            self.n_ingested = 0
        for reason, n in self._drop_counts.items():
            obs.inc("repro_service_records_dropped_total", float(n),
                    reason=reason)
        self._drop_counts.clear()

    def _refresh_cache(self) -> None:
        """Rebuild the read-side snapshots (mutation lock held)."""
        pending = self.monitor.pending_windows
        dropped = self.monitor.dropped_windows
        paths = []
        histogram: Dict[str, int] = {}
        for entry in self.registry.entries():
            payload = entry.to_dict()
            payload["backlog"] = pending.get(entry.path, 0)
            payload["dropped_windows"] = dropped.get(entry.path, 0)
            history = self._history.get(entry.path)
            latest = history[-1] if history else None
            payload["latest"] = latest
            verdict = (latest or {}).get("stable_verdict") or "none"
            histogram[verdict] = histogram.get(verdict, 0) + 1
            paths.append(payload)
        fleet = {
            "cycle": self.cycle,
            "paths": self.registry.counts(),
            "backlog": self.monitor.n_pending,
            "windows": self.n_windows,
            "verdicts": histogram,
            "last_drain": self.monitor.last_drain,
            "backpressure": self.backpressure.snapshot(),
            "sources": len(self._sources),
            "uptime_s": round(time.time() - self.started_at, 3),
        }
        if self.alert_engine is not None:
            fleet["active_alerts"] = self.alert_engine.active_alerts()
        with self._cache_lock:
            self._paths_cache = paths
            self._fleet_cache = fleet

    def path_snapshot(self) -> List[dict]:
        """Per-path listings (lock-free read of the published cache)."""
        with self._cache_lock:
            return list(self._paths_cache)

    def verdict_snapshot(self, path: str) -> Optional[dict]:
        """Latest verdict view of one path, or ``None`` when unknown."""
        with self._cache_lock:
            for payload in self._paths_cache:
                if payload["path"] == path:
                    history = self._history.get(path)
                    return {
                        "path": path,
                        "generation": payload["generation"],
                        "status": payload["status"],
                        "backlog": payload["backlog"],
                        "dropped_windows": payload["dropped_windows"],
                        "latest": payload["latest"],
                        "recent": list(history) if history else [],
                    }
        return None

    def fleet_snapshot(self) -> dict:
        """The fleet rollup (lock-free read of the published cache)."""
        with self._cache_lock:
            return dict(self._fleet_cache)
