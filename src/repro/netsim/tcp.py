"""TCP endpoints (Reno by default, Tahoe selectable).

A segment-granularity TCP implementation sufficient for generating
realistic congestion: slow start, congestion avoidance, fast
retransmit/recovery (NewReno-style partial-ACK handling; Tahoe falls back
to slow start instead of recovering), and an RTO with Jacobson/Karels
estimation and Karn's rule.  Sequence numbers count MSS segments, not
bytes — byte-level framing adds nothing for the paper's experiments,
where TCP's role is to fill and overflow droptail buffers with the
characteristic sawtooth.  The receiver optionally runs delayed ACKs
(every second segment, 200 ms cap), as ns-2's DelAck sink does.

Wire sizes: data segments are ``mss + header_size`` bytes on the wire,
ACKs are ``header_size`` bytes (40 by default, as in ns-2).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.engine import Event, Simulator
from repro.netsim.node import Host
from repro.netsim.packet import Packet, PacketKind

__all__ = ["TcpSender", "TcpReceiver", "open_tcp_connection"]

HEADER_SIZE = 40
INITIAL_RTO = 1.0
MIN_RTO = 0.2
MAX_RTO = 60.0


class TcpReceiver:
    """Receiving endpoint: cumulative ACKs, out-of-order reassembly.

    With ``delayed_ack`` the receiver ACKs every second in-order segment
    (or after ``ack_delay`` seconds, whichever first), but always ACKs
    immediately on out-of-order data so fast retransmit still works.
    """

    def __init__(
        self,
        host: Host,
        port: Optional[int] = None,
        delayed_ack: bool = False,
        ack_delay: float = 0.2,
    ):
        self.host = host
        self.port = host.bind(self, port)
        self.expected_seq = 0
        self._out_of_order = set()
        self.segments_received = 0
        self.duplicate_segments = 0
        self.acks_sent = 0
        self.delayed_ack = bool(delayed_ack)
        self.ack_delay = float(ack_delay)
        self._pending_acks = 0
        self._ack_timer: Optional[Event] = None
        self._last_packet: Optional[Packet] = None

    def handle_packet(self, packet: Packet) -> None:
        if packet.kind != PacketKind.DATA:
            return
        self.segments_received += 1
        self._last_packet = packet
        seq = packet.seq
        in_order = seq == self.expected_seq
        if in_order:
            self.expected_seq += 1
            while self.expected_seq in self._out_of_order:
                self._out_of_order.discard(self.expected_seq)
                self.expected_seq += 1
        elif seq > self.expected_seq:
            self._out_of_order.add(seq)
        else:
            self.duplicate_segments += 1
        if self.delayed_ack and in_order:
            self._pending_acks += 1
            if self._pending_acks >= 2:
                self._send_ack()
            elif self._ack_timer is None:
                self._ack_timer = self.host.sim.schedule(
                    self.ack_delay, self._send_ack
                )
        else:
            # Out-of-order (or duplicate) data: immediate ACK so the
            # sender's duplicate-ACK counter advances.
            self._send_ack()

    def _send_ack(self) -> None:
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        self._pending_acks = 0
        packet = self._last_packet
        if packet is None:
            return
        ack = Packet(
            src=self.host.name,
            dst=packet.src,
            dst_port=packet.payload,  # sender's port travels in the payload
            size=HEADER_SIZE,
            kind=PacketKind.ACK,
            flow_id=packet.flow_id,
            seq=self.expected_seq,
            created_at=self.host.sim.now,
        )
        self.acks_sent += 1
        self.host.send(ack)


class TcpSender:
    """Sending endpoint (TCP Reno).

    Parameters
    ----------
    host:
        The host this sender runs on.
    dst, dst_port:
        Receiver's host name and port.
    total_segments:
        ``None`` for an unbounded (FTP) transfer; otherwise the sender
        stops after this many segments are acknowledged and invokes
        ``on_complete``.
    mss:
        Maximum segment size in bytes (payload).
    on_complete:
        Callback fired once the whole transfer is acknowledged.
    variant:
        ``"reno"`` (default) or ``"tahoe"`` — Tahoe reacts to triple
        duplicate ACKs like a timeout (retransmit, cwnd back to 1, slow
        start) instead of entering fast recovery.
    """

    def __init__(
        self,
        host: Host,
        dst: str,
        dst_port: int,
        flow_id: str,
        total_segments: Optional[int] = None,
        mss: int = 1000,
        initial_ssthresh: int = 64,
        on_complete: Optional[Callable[[], None]] = None,
        port: Optional[int] = None,
        variant: str = "reno",
    ):
        if variant not in ("reno", "tahoe"):
            raise ValueError(f"variant must be 'reno' or 'tahoe', got {variant!r}")
        self.variant = variant
        self.host = host
        self.sim: Simulator = host.sim
        self.dst = dst
        self.dst_port = dst_port
        self.flow_id = flow_id
        self.port = host.bind(self, port)
        self.mss = int(mss)
        self.total_segments = total_segments
        self.on_complete = on_complete

        # Congestion control state (cwnd in segments, may be fractional).
        self.cwnd = 1.0
        self.ssthresh = float(initial_ssthresh)
        self.next_seq = 0  # next new segment to send
        self.highest_acked = 0  # cumulative ACK point
        self.dupacks = 0
        self.in_fast_recovery = False
        self.recover_seq = 0

        # RTT estimation.
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = INITIAL_RTO
        self._timed_seq: Optional[int] = None
        self._timed_at = 0.0
        self._max_seq_sent = 0  # segments below this have been sent before
        self._timer: Optional[Event] = None
        self._started = False
        self._completed = False

        # Statistics.
        self.segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        """Begin transmitting at time ``at`` (default: now)."""
        if self._started:
            return
        self._started = True
        when = self.sim.now if at is None else at
        self.sim.schedule_at(when, self._try_send)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _window(self) -> int:
        return max(1, int(self.cwnd))

    def _flight_size(self) -> int:
        return self.next_seq - self.highest_acked

    def _data_remaining(self) -> bool:
        if self.total_segments is None:
            return True
        return self.next_seq < self.total_segments

    def _try_send(self) -> None:
        if self._completed:
            return
        while self._flight_size() < self._window() and self._data_remaining():
            self._transmit(self.next_seq)
            self.next_seq += 1

    def _transmit(self, seq: int) -> None:
        packet = Packet(
            src=self.host.name,
            dst=self.dst,
            dst_port=self.dst_port,
            size=self.mss + HEADER_SIZE,
            kind=PacketKind.DATA,
            flow_id=self.flow_id,
            seq=seq,
            created_at=self.sim.now,
            payload=self.port,  # so the receiver can address its ACKs
        )
        self.segments_sent += 1
        # Time one segment at a time, never a retransmission (Karn's rule).
        if self._timed_seq is None and seq >= self._max_seq_sent:
            self._timed_seq = seq
            self._timed_at = self.sim.now
        self._max_seq_sent = max(self._max_seq_sent, seq + 1)
        self.host.send(packet)
        if self._timer is None:
            self._arm_timer()

    # ------------------------------------------------------------------
    # Timer
    # ------------------------------------------------------------------
    def _arm_timer(self) -> None:
        self._cancel_timer()
        self._timer = self.sim.schedule(self.rto, self._on_timeout)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        if self._completed or self._flight_size() == 0:
            return
        self.timeouts += 1
        self.ssthresh = max(self._flight_size() / 2.0, 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_fast_recovery = False
        self.next_seq = self.highest_acked  # go-back-N from the ACK point
        self._timed_seq = None
        self.rto = min(MAX_RTO, self.rto * 2.0)  # exponential backoff
        self._arm_timer()
        self._try_send()

    def _update_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(MAX_RTO, max(MIN_RTO, self.srtt + 4.0 * self.rttvar))

    # ------------------------------------------------------------------
    # Receiving ACKs
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> None:
        if packet.kind != PacketKind.ACK or self._completed:
            return
        ack = packet.seq
        if ack > self.highest_acked:
            self._on_new_ack(ack)
        elif ack == self.highest_acked:
            self._on_dup_ack(ack)
        self._check_complete()
        self._try_send()

    def _on_new_ack(self, ack: int) -> None:
        if self._timed_seq is not None and ack > self._timed_seq:
            self._update_rtt(self.sim.now - self._timed_at)
            self._timed_seq = None
        if self.in_fast_recovery:
            if ack >= self.recover_seq:
                # Full recovery: deflate to ssthresh.
                self.in_fast_recovery = False
                self.cwnd = self.ssthresh
                self.dupacks = 0
            else:
                # NewReno partial ACK: retransmit the next hole, stay in FR.
                self.highest_acked = ack
                self.retransmissions += 1
                self._transmit(ack)
                self.cwnd = max(1.0, self.cwnd - 1.0)
                self._arm_timer()
                return
        else:
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0  # slow start
            else:
                self.cwnd += 1.0 / self.cwnd  # congestion avoidance
            self.dupacks = 0
        self.highest_acked = ack
        if self.next_seq < ack:
            self.next_seq = ack
        if self._flight_size() > 0:
            self._arm_timer()
        else:
            self._cancel_timer()

    def _on_dup_ack(self, ack: int) -> None:
        if self._flight_size() == 0:
            return
        self.dupacks += 1
        if self.in_fast_recovery:
            self.cwnd += 1.0  # window inflation per extra dup ACK
        elif self.dupacks == 3:
            self.ssthresh = max(self._flight_size() / 2.0, 2.0)
            self.fast_retransmits += 1
            self.retransmissions += 1
            if self.variant == "tahoe":
                # Tahoe: retransmit and fall back to slow start.
                self.cwnd = 1.0
                self.dupacks = 0
                self.next_seq = self.highest_acked
                self._timed_seq = None
                self._transmit(self.next_seq)
                self.next_seq += 1
                self._arm_timer()
                return
            self.in_fast_recovery = True
            self.recover_seq = self.next_seq
            self._transmit(ack)
            self.cwnd = self.ssthresh + 3.0
            self._arm_timer()

    def _check_complete(self) -> None:
        if (
            self.total_segments is not None
            and self.highest_acked >= self.total_segments
            and not self._completed
        ):
            self._completed = True
            self._cancel_timer()
            if self.on_complete is not None:
                self.on_complete()

    @property
    def completed(self) -> bool:
        """Whether the whole transfer has been acknowledged."""
        return self._completed


def open_tcp_connection(
    src_host: Host,
    dst_host: Host,
    flow_id: str,
    total_segments: Optional[int] = None,
    mss: int = 1000,
    on_complete: Optional[Callable[[], None]] = None,
    variant: str = "reno",
    delayed_ack: bool = False,
) -> TcpSender:
    """Wire up a receiver on ``dst_host`` and a sender on ``src_host``."""
    receiver = TcpReceiver(dst_host, delayed_ack=delayed_ack)
    return TcpSender(
        src_host,
        dst=dst_host.name,
        dst_port=receiver.port,
        flow_id=flow_id,
        total_segments=total_segments,
        mss=mss,
        on_complete=on_complete,
        variant=variant,
    )
