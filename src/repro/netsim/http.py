"""Web-like (HTTP) traffic, after the ns-2 empirical web model.

The paper generates HTTP cross traffic "using the empirical data provided
by ns".  ns-2's PagePool/WebTraf model is a session model: users alternate
between *think times* and page downloads; each page consists of several
objects fetched over TCP, with heavy-tailed object sizes.  We reproduce
that structure with the standard published parameterisation (Barford &
Crovella-style distributions as shipped with ns-2):

* inter-page think time — exponential;
* objects per page — bounded Pareto;
* object size — bounded Pareto (heavy tail, 12 kB mean by default).

Each object is a finite TCP transfer from the web "server" host to the
"client" host; successive objects of a page are fetched sequentially
(HTTP/1.0-without-pipelining behaviour), pages repeat forever.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.netsim.node import Host
from repro.netsim.tcp import open_tcp_connection
from repro.netsim.topology import Network

__all__ = ["BoundedPareto", "WebSession", "start_web_sessions"]


class BoundedPareto:
    """Pareto distribution truncated to ``[minimum, maximum]``."""

    def __init__(self, shape: float, minimum: float, maximum: float):
        if shape <= 0:
            raise ValueError(f"shape must be positive, got {shape}")
        if not 0 < minimum < maximum:
            raise ValueError("need 0 < minimum < maximum")
        self.shape = float(shape)
        self.minimum = float(minimum)
        self.maximum = float(maximum)

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value by inverse-CDF sampling."""
        # Inverse-CDF sampling of the bounded Pareto.
        alpha, low, high = self.shape, self.minimum, self.maximum
        u = rng.random()
        ratio = (low / high) ** alpha
        return low / (1.0 - u * (1.0 - ratio)) ** (1.0 / alpha)

    def mean(self) -> float:
        """Analytic mean of the bounded Pareto."""
        alpha, low, high = self.shape, self.minimum, self.maximum
        if math.isclose(alpha, 1.0):
            norm = 1.0 - (low / high) ** alpha
            return (alpha * low**alpha) * math.log(high / low) / norm
        norm = 1.0 - (low / high) ** alpha
        integral = (
            alpha
            * low**alpha
            / (1.0 - alpha)
            * (high ** (1.0 - alpha) - low ** (1.0 - alpha))
        )
        return integral / norm


#: ns-2-style defaults: ~4 objects/page, ~12 kB mean object size.
DEFAULT_OBJECTS_PER_PAGE = BoundedPareto(shape=1.5, minimum=2, maximum=30)
DEFAULT_OBJECT_SIZE = BoundedPareto(shape=1.2, minimum=2_000, maximum=500_000)


class WebSession:
    """One user's endless browse loop: think, fetch page, repeat."""

    def __init__(
        self,
        network: Network,
        server: str,
        client: str,
        session_id: str,
        mean_think_time: float = 5.0,
        objects_per_page: Optional[BoundedPareto] = None,
        object_size: Optional[BoundedPareto] = None,
        mss: int = 1000,
        start: float = 0.0,
    ):
        self.network = network
        self.sim = network.sim
        server_node = network.nodes[server]
        client_node = network.nodes[client]
        if not isinstance(server_node, Host) or not isinstance(client_node, Host):
            raise TypeError("web endpoints must be hosts")
        self.server: Host = server_node
        self.client: Host = client_node
        self.session_id = session_id
        self.mean_think_time = float(mean_think_time)
        self.objects_per_page = objects_per_page or DEFAULT_OBJECTS_PER_PAGE
        self.object_size = object_size or DEFAULT_OBJECT_SIZE
        self.mss = int(mss)
        self._rng = self.sim.rng(f"web:{session_id}")
        self.pages_fetched = 0
        self.objects_fetched = 0
        self._transfer_counter = 0
        self.sim.schedule_at(max(start, self.sim.now), self._think)

    def _think(self) -> None:
        think = self._rng.exponential(self.mean_think_time)
        self.sim.schedule(think, self._start_page)

    def _start_page(self) -> None:
        remaining = max(1, int(round(self.objects_per_page.sample(self._rng))))
        self._fetch_object(remaining)

    def _fetch_object(self, remaining: int) -> None:
        size_bytes = self.object_size.sample(self._rng)
        segments = max(1, int(math.ceil(size_bytes / self.mss)))
        self._transfer_counter += 1
        flow_id = f"{self.session_id}.{self._transfer_counter}"

        def done() -> None:
            self.objects_fetched += 1
            if remaining > 1:
                self._fetch_object(remaining - 1)
            else:
                self.pages_fetched += 1
                self._think()

        sender = open_tcp_connection(
            self.server,
            self.client,
            flow_id=flow_id,
            total_segments=segments,
            mss=self.mss,
            on_complete=done,
        )
        sender.start()


def start_web_sessions(
    network: Network,
    server: str,
    client: str,
    count: int,
    session_prefix: str = "web",
    mean_think_time: float = 5.0,
    stagger: float = 0.25,
) -> list:
    """Start ``count`` concurrent web sessions from server to client."""
    sessions = []
    for i in range(count):
        sessions.append(
            WebSession(
                network,
                server,
                client,
                session_id=f"{session_prefix}{i}",
                mean_think_time=mean_think_time,
                start=network.sim.now + i * stagger,
            )
        )
    return sessions
