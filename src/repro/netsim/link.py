"""Store-and-forward links.

A :class:`Link` is a unidirectional pipe from one node to another with a
transmission rate, a propagation delay, and an attached queue discipline.
It models a single transmission server: the head-of-line packet occupies the
wire for ``size * 8 / bandwidth`` seconds, then propagates for
``prop_delay`` seconds, after which the downstream node receives it.

Ghost probes do not enter the queue; :meth:`Link.probe_transit` computes the
per-hop loss/queuing-delay sample exactly as the paper's virtual probes do.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet
from repro.netsim.queues import QueueDiscipline, REDQueue

__all__ = ["Link"]


class Link:
    """A unidirectional link with an attached queue.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Human-readable identifier, e.g. ``"r2->r3"``.
    src_name, dst:
        The upstream node name and the downstream node object (anything
        with a ``receive(packet)`` method).
    bandwidth_bps:
        Transmission rate in bits per second.
    prop_delay:
        Propagation delay in seconds.
    queue:
        Queue discipline instance; the link attaches it (supplying the
        drain rate) at construction.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        src_name: str,
        dst,
        bandwidth_bps: float,
        prop_delay: float,
        queue: QueueDiscipline,
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if prop_delay < 0:
            raise ValueError(f"propagation delay must be >= 0, got {prop_delay}")
        self.sim = sim
        self.name = name
        self.src_name = src_name
        self.dst = dst
        self.bandwidth_bps = float(bandwidth_bps)
        self.prop_delay = float(prop_delay)
        self.queue = queue
        queue.attach(sim, self.bandwidth_bps)
        self._busy = False
        self._service_end = 0.0
        self._rng = sim.rng(f"link:{name}")
        # Statistics.
        self.packets_sent = 0
        self.bytes_sent = 0
        self._busy_accum = 0.0
        self.drop_listeners: List[Callable[[Packet], None]] = []

    # ------------------------------------------------------------------
    # Real packet path
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link; returns ``False`` if dropped."""
        admitted = self.queue.offer(packet, self.sim.now, self._rng)
        if not admitted:
            for listener in self.drop_listeners:
                listener(packet)
            return False
        if not self._busy:
            self._start_service()
        return True

    def _start_service(self) -> None:
        packet = self.queue.pop()
        if packet is None:
            self._busy = False
            if isinstance(self.queue, REDQueue):
                self.queue.notify_idle(self.sim.now)
            return
        self._busy = True
        tx_time = packet.size * 8.0 / self.bandwidth_bps
        self._service_end = self.sim.now + tx_time
        self._busy_accum += tx_time
        self.sim.schedule(tx_time, lambda p=packet: self._transmitted(p))

    def _transmitted(self, packet: Packet) -> None:
        self.packets_sent += 1
        self.bytes_sent += packet.size
        self.sim.schedule(self.prop_delay, lambda p=packet: self.dst.receive(p))
        self._start_service()

    # ------------------------------------------------------------------
    # Ghost probes (virtual probes)
    # ------------------------------------------------------------------
    def service_residual(self) -> float:
        """Remaining transmission time of the in-service packet (or 0)."""
        if not self._busy:
            return 0.0
        return max(0.0, self._service_end - self.sim.now)

    def probe_transit(self, size: int, rng, extra_packets: int = 0) -> "ProbeHop":
        """Sample a ghost probe crossing this link *now*.

        Returns the per-hop record the paper's virtual probe would write:
        whether the probe takes a loss mark here, its queuing delay at this
        hop, and the hop latency (queuing + transmission + propagation)
        after which it reaches the next node.  ``extra_packets`` accounts
        for pair companions virtually occupying buffer slots ahead of this
        probe (see :meth:`QueueDiscipline.probe_loss`).
        """
        lost, queuing_delay = self.queue.probe_observe(
            size, self.sim.now, rng, self.service_residual(),
            extra_packets=extra_packets,
        )
        tx_time = size * 8.0 / self.bandwidth_bps
        latency = queuing_delay + tx_time + self.prop_delay
        return ProbeHop(lost=lost, queuing_delay=queuing_delay, latency=latency)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of time the server has been busy."""
        horizon = self.sim.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        busy = self._busy_accum
        if self._busy:
            busy -= self.service_residual()
        return min(1.0, busy / horizon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name}, {self.bandwidth_bps / 1e6:.3g} Mb/s, "
            f"{self.prop_delay * 1e3:.3g} ms, backlog={self.queue.backlog_bytes}B)"
        )


class ProbeHop:
    """Per-hop ghost-probe sample: loss mark, queuing delay, hop latency."""

    __slots__ = ("lost", "queuing_delay", "latency")

    def __init__(self, lost: bool, queuing_delay: float, latency: float):
        self.lost = lost
        self.queuing_delay = queuing_delay
        self.latency = latency
