"""Packet model.

A :class:`Packet` is a plain record: the simulator moves the same object
through queues and links, so components may annotate it (e.g. TCP sequence
numbers) without copying.  Sizes are in bytes; times in seconds.
"""

from __future__ import annotations

import itertools
from typing import Optional

__all__ = ["Packet", "PacketKind"]

_packet_ids = itertools.count()


class PacketKind:
    """Symbolic packet kinds (plain strings; no enum import ceremony)."""

    DATA = "data"
    ACK = "ack"
    UDP = "udp"
    PROBE = "probe"


class Packet:
    """A network packet.

    Attributes
    ----------
    src, dst:
        Node names.  Routing is by destination name.
    dst_port:
        Identifies the receiving agent on the destination host.
    size:
        Wire size in bytes (headers included; we do not model headers
        separately -- the paper's experiments only depend on wire size).
    kind:
        One of :class:`PacketKind`; used by traces and by TCP demux.
    flow_id:
        Identifies the sending flow (TCP connection, UDP source, prober).
    seq:
        Flow-level sequence number (TCP byte sequence or probe index).
    created_at:
        Simulation time the packet entered the network.
    """

    __slots__ = (
        "uid",
        "src",
        "dst",
        "dst_port",
        "size",
        "kind",
        "flow_id",
        "seq",
        "created_at",
        "payload",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        size: int,
        kind: str = PacketKind.DATA,
        flow_id: str = "",
        seq: int = 0,
        created_at: float = 0.0,
        dst_port: int = 0,
        payload: Optional[object] = None,
    ):
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.uid = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.dst_port = dst_port
        self.size = int(size)
        self.kind = kind
        self.flow_id = flow_id
        self.seq = seq
        self.created_at = created_at
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(uid={self.uid}, {self.src}->{self.dst}:{self.dst_port}, "
            f"kind={self.kind}, size={self.size}, flow={self.flow_id}, seq={self.seq})"
        )
