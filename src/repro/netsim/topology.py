"""Topology construction and the paper's Fig.-4 chain.

:class:`Network` wraps a :class:`~repro.netsim.engine.Simulator` plus the
node/link inventory, computes static shortest-path routes (hop count), and
can extract the ordered list of links between two nodes — which is what the
probers traverse.

:func:`chain_network` builds the evaluation topology of the paper's Fig. 4:
routers ``r0..r{n}`` in a line, with per-router-pair access stubs for
traffic sources and sinks.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Host, Node, Router
from repro.netsim.queues import DropTailQueue, QueueDiscipline

__all__ = ["Network", "chain_network"]

#: Default access-link bandwidth (10 Mb/s, as in the paper).
ACCESS_BANDWIDTH = 10e6
#: Default access-link buffer, large enough that no loss occurs there.
ACCESS_BUFFER = 1_000_000


class Network:
    """A simulator plus its nodes and links.

    Typical use::

        net = Network(seed=7)
        a = net.add_host("a")
        b = net.add_host("b")
        net.add_link("a", "b", bandwidth_bps=1e6, prop_delay=0.005,
                     queue=DropTailQueue(20_000))
        net.compute_routes()
    """

    def __init__(self, seed: int = 0, sim: Optional[Simulator] = None):
        self.sim = sim if sim is not None else Simulator(seed)
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[Tuple[str, str], Link] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_router(self, name: str) -> Router:
        """Add a pure forwarding node."""
        return self._add_node(Router(self.sim, name))

    def add_host(self, name: str) -> Host:
        """Add an end host that can carry agents."""
        return self._add_node(Host(self.sim, name))

    def _add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def add_link(
        self,
        src: str,
        dst: str,
        bandwidth_bps: float,
        prop_delay: float,
        queue: QueueDiscipline,
        link_class=Link,
        **link_kwargs,
    ) -> Link:
        """Add a unidirectional link ``src -> dst``.

        ``link_class`` (plus extra keyword arguments) selects a custom
        link type, e.g. :class:`repro.netsim.wireless.GilbertElliottLink`.
        """
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError(f"both endpoints must exist: {src!r}, {dst!r}")
        key = (src, dst)
        if key in self.links:
            raise ValueError(f"duplicate link {src}->{dst}")
        link = link_class(
            self.sim,
            name=f"{src}->{dst}",
            src_name=src,
            dst=self.nodes[dst],
            bandwidth_bps=bandwidth_bps,
            prop_delay=prop_delay,
            queue=queue,
            **link_kwargs,
        )
        self.links[key] = link
        return link

    def add_duplex_link(
        self,
        a: str,
        b: str,
        bandwidth_bps: float,
        prop_delay: float,
        queue_factory,
    ) -> Tuple[Link, Link]:
        """Add links in both directions, each with its own queue instance."""
        forward = self.add_link(a, b, bandwidth_bps, prop_delay, queue_factory())
        backward = self.add_link(b, a, bandwidth_bps, prop_delay, queue_factory())
        return forward, backward

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def compute_routes(self) -> None:
        """Install hop-count shortest-path routes at every node."""
        adjacency: Dict[str, List[str]] = {name: [] for name in self.nodes}
        for (src, dst) in self.links:
            adjacency[src].append(dst)
        for origin in self.nodes:
            # BFS from origin; record each destination's first hop.
            first_hop: Dict[str, str] = {}
            queue = deque([origin])
            seen = {origin}
            while queue:
                current = queue.popleft()
                for neighbour in adjacency[current]:
                    if neighbour in seen:
                        continue
                    seen.add(neighbour)
                    first_hop[neighbour] = (
                        neighbour if current == origin else first_hop[current]
                    )
                    queue.append(neighbour)
            node = self.nodes[origin]
            for destination, hop in first_hop.items():
                node.add_route(destination, self.links[(origin, hop)])

    def path_links(self, src: str, dst: str) -> List[Link]:
        """The ordered links a packet from ``src`` to ``dst`` traverses."""
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError(f"unknown endpoint: {src!r} or {dst!r}")
        path: List[Link] = []
        current = src
        visited = {src}
        while current != dst:
            link = self.nodes[current].routes.get(dst)
            if link is None:
                raise ValueError(f"no route from {src} to {dst} (stuck at {current})")
            path.append(link)
            current = link.dst.name
            if current in visited:
                raise ValueError(f"routing loop from {src} to {dst} at {current}")
            visited.add(current)
        return path

    def propagation_delay(self, src: str, dst: str) -> float:
        """Sum of propagation delays along the route (no queuing)."""
        return sum(link.prop_delay for link in self.path_links(src, dst))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Advance the simulation to time ``until``."""
        self.sim.run(until=until)


def chain_network(
    router_bandwidths_bps: List[float],
    router_buffers_bytes: List[int],
    seed: int = 0,
    router_prop_delay: float = 0.005,
    access_bandwidth_bps: float = ACCESS_BANDWIDTH,
    access_buffer_bytes: int = ACCESS_BUFFER,
    stub_hosts_per_router: int = 2,
    queue_factory=None,
    access_prop_delay_range: Tuple[float, float] = (0.0001, 0.0005),
) -> Network:
    """Build the paper's Fig.-4 topology.

    Routers ``r0 .. r{K}`` form a chain where link ``(r_i, r_{i+1})`` has
    bandwidth ``router_bandwidths_bps[i]`` and buffer
    ``router_buffers_bytes[i]``.  Each router additionally gets
    ``stub_hosts_per_router`` source hosts (``src{i}_{j}``) and sink hosts
    (``snk{i}_{j}``) on fast access links, used to inject cross traffic
    entering/leaving at arbitrary routers.

    Parameters
    ----------
    queue_factory:
        Optional ``f(capacity_bytes, link_index) -> QueueDiscipline`` for
        the chain links; defaults to droptail.  Access links are always
        droptail with huge buffers (no loss there, as in the paper).
    access_prop_delay_range:
        Uniform range for stub propagation delays (the paper draws them
        uniformly in [0.1, 0.5] ms).
    """
    if len(router_bandwidths_bps) != len(router_buffers_bytes):
        raise ValueError("need one buffer size per chain link")
    net = Network(seed=seed)
    rng = net.sim.rng("topology")
    n_links = len(router_bandwidths_bps)
    router_names = [f"r{i}" for i in range(n_links + 1)]
    for name in router_names:
        net.add_router(name)

    if queue_factory is None:
        def queue_factory(capacity_bytes, link_index):
            return DropTailQueue(capacity_bytes)

    for i in range(n_links):
        net.add_link(
            router_names[i],
            router_names[i + 1],
            bandwidth_bps=router_bandwidths_bps[i],
            prop_delay=router_prop_delay,
            queue=queue_factory(router_buffers_bytes[i], i),
        )
        # Reverse direction for ACK traffic: same bandwidth, ample buffer
        # (the paper's congestion is one-directional).
        net.add_link(
            router_names[i + 1],
            router_names[i],
            bandwidth_bps=router_bandwidths_bps[i],
            prop_delay=router_prop_delay,
            queue=DropTailQueue(access_buffer_bytes),
        )

    def add_stub(host_name: str, router_name: str) -> None:
        net.add_host(host_name)
        delay = float(rng.uniform(*access_prop_delay_range))
        net.add_link(
            host_name,
            router_name,
            bandwidth_bps=access_bandwidth_bps,
            prop_delay=delay,
            queue=DropTailQueue(access_buffer_bytes),
        )
        net.add_link(
            router_name,
            host_name,
            bandwidth_bps=access_bandwidth_bps,
            prop_delay=delay,
            queue=DropTailQueue(access_buffer_bytes),
        )

    for i, router_name in enumerate(router_names):
        for j in range(stub_hosts_per_router):
            add_stub(f"src{i}_{j}", router_name)
            add_stub(f"snk{i}_{j}", router_name)

    net.compute_routes()
    return net
