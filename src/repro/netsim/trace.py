"""Probe traces: what the measurement host records, plus ground truth.

The simulator's ghost probes yield, per probe, the full virtual-probe
record of the paper (per-hop queuing delays and the loss-mark hop, if any).
From it we derive the *real* observation a measurement host would log:
either a one-way delay, or a loss.

:class:`ProbeTrace` carries both views; :class:`PathObservation` is the
estimator-facing projection (send times + delays with NaN for losses) that
the core library consumes — whether it came from the simulator or from a
post-processed "Internet" trace.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ProbeRecord", "ProbeTrace", "PathObservation", "LossPairTrace"]


class ProbeRecord:
    """One virtual probe: per-hop ground truth.

    Attributes
    ----------
    send_time:
        Departure time at the source.
    hop_queuing:
        Queuing delay experienced (or virtually experienced) at each hop.
    loss_hop:
        Index of the hop where the probe took its loss mark, or ``-1``.
    """

    __slots__ = ("send_time", "hop_queuing", "loss_hop")

    def __init__(self, send_time: float, hop_queuing: Sequence[float], loss_hop: int):
        self.send_time = send_time
        self.hop_queuing = tuple(hop_queuing)
        self.loss_hop = loss_hop

    @property
    def lost(self) -> bool:
        """Whether this probe took a loss mark."""
        return self.loss_hop >= 0

    @property
    def total_queuing(self) -> float:
        """End-end (virtual) queuing delay: the paper's ``D_t``."""
        return float(sum(self.hop_queuing))


class ProbeTrace:
    """A complete periodic-probing run over one path.

    Parameters
    ----------
    link_names:
        Names of the links along the probed path, in order.
    base_delay:
        Constant per-probe latency: propagation plus probe transmission
        times over every hop.  Observed one-way delay is
        ``base_delay + total_queuing``.
    probe_interval, probe_size:
        Probing parameters (20 ms / 10 bytes in the paper).
    """

    def __init__(
        self,
        link_names: Sequence[str],
        base_delay: float,
        probe_interval: float,
        probe_size: int,
    ):
        self.link_names = list(link_names)
        self.base_delay = float(base_delay)
        self.probe_interval = float(probe_interval)
        self.probe_size = int(probe_size)
        self.records: List[ProbeRecord] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def append(self, record: ProbeRecord) -> None:
        if len(record.hop_queuing) != len(self.link_names):
            raise ValueError(
                f"record has {len(record.hop_queuing)} hops, "
                f"path has {len(self.link_names)}"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Ground-truth views (what the paper reads from ns traces)
    # ------------------------------------------------------------------
    @property
    def send_times(self) -> np.ndarray:
        return np.array([r.send_time for r in self.records])

    @property
    def lost(self) -> np.ndarray:
        return np.array([r.lost for r in self.records], dtype=bool)

    @property
    def loss_hops(self) -> np.ndarray:
        return np.array([r.loss_hop for r in self.records], dtype=int)

    @property
    def hop_queuing_matrix(self) -> np.ndarray:
        """Shape ``(n_probes, n_hops)`` matrix of per-hop queuing delays."""
        return np.array([r.hop_queuing for r in self.records])

    @property
    def virtual_queuing_delays(self) -> np.ndarray:
        """End-end virtual queuing delay of every probe (lost or not)."""
        return np.array([r.total_queuing for r in self.records])

    @property
    def loss_rate(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean(self.lost))

    def loss_share_by_hop(self) -> np.ndarray:
        """Fraction of losses charged to each hop (sums to 1 if any loss)."""
        hops = self.loss_hops
        losses = hops[hops >= 0]
        shares = np.zeros(len(self.link_names))
        if losses.size == 0:
            return shares
        counts = np.bincount(losses, minlength=len(self.link_names))
        return counts / losses.size

    # ------------------------------------------------------------------
    # Real-observation views (what a measurement host records)
    # ------------------------------------------------------------------
    @property
    def observed_delays(self) -> np.ndarray:
        """One-way delays with ``NaN`` where the probe was lost."""
        delays = self.base_delay + self.virtual_queuing_delays
        delays = delays.copy()
        delays[self.lost] = np.nan
        return delays

    def observation(self, known_propagation: bool = False) -> "PathObservation":
        """Project to the estimator-facing :class:`PathObservation`."""
        return PathObservation(
            send_times=self.send_times,
            delays=self.observed_delays,
            propagation_delay=self.base_delay if known_propagation else None,
        )

    def prefix_observation(
        self,
        n_hops: int,
        per_hop_base: Optional[Sequence[float]] = None,
    ) -> "PathObservation":
        """Observation of the path *prefix* covering the first ``n_hops``.

        This is what TTL-limited probing toward the ``n_hops``-th router
        would record: a probe is lost on the prefix iff its loss mark lies
        within the prefix; otherwise its delay is the prefix base delay
        plus the prefix queuing.  Used by the pinpointing extension
        (:mod:`repro.core.pinpoint`).

        ``per_hop_base`` optionally gives each hop's constant latency
        (propagation + probe transmission); without it the total base
        delay is split evenly — only the constant offset shifts, which
        the discretizer's minimum-delay handling absorbs.
        """
        if not 1 <= n_hops <= len(self.link_names):
            raise ValueError(
                f"prefix must cover 1..{len(self.link_names)} hops, got {n_hops}"
            )
        if per_hop_base is None:
            base = self.base_delay * n_hops / len(self.link_names)
        else:
            if len(per_hop_base) != len(self.link_names):
                raise ValueError("per_hop_base must have one entry per hop")
            base = float(sum(per_hop_base[:n_hops]))
        send_times = self.send_times
        hop_matrix = self.hop_queuing_matrix[:, :n_hops]
        delays = base + hop_matrix.sum(axis=1)
        loss_hops = self.loss_hops
        lost_in_prefix = (loss_hops >= 0) & (loss_hops < n_hops)
        delays = delays.copy()
        delays[lost_in_prefix] = np.nan
        return PathObservation(send_times, delays)

    # ------------------------------------------------------------------
    # Segmentation (for duration sweeps)
    # ------------------------------------------------------------------
    def segment(self, start: int, stop: int) -> "ProbeTrace":
        """A sub-trace over records ``[start:stop]``."""
        sub = ProbeTrace(
            self.link_names, self.base_delay, self.probe_interval, self.probe_size
        )
        sub.records = self.records[start:stop]
        return sub

    def segment_by_time(self, t_start: float, t_stop: float) -> "ProbeTrace":
        """A sub-trace of probes sent in ``[t_start, t_stop)``."""
        sub = ProbeTrace(
            self.link_names, self.base_delay, self.probe_interval, self.probe_size
        )
        sub.records = [r for r in self.records if t_start <= r.send_time < t_stop]
        return sub


class PathObservation:
    """What the estimators see: send times and delays with NaN losses.

    This is deliberately minimal — it is the single interface between the
    measurement substrate (simulator or processed Internet-style traces)
    and the identification library.
    """

    def __init__(
        self,
        send_times: np.ndarray,
        delays: np.ndarray,
        propagation_delay: Optional[float] = None,
    ):
        send_times = np.asarray(send_times, dtype=float)
        delays = np.asarray(delays, dtype=float)
        if send_times.shape != delays.shape:
            raise ValueError("send_times and delays must have equal length")
        self.send_times = send_times
        self.delays = delays
        self.propagation_delay = propagation_delay

    def __len__(self) -> int:
        return len(self.delays)

    @property
    def lost(self) -> np.ndarray:
        return np.isnan(self.delays)

    @property
    def loss_rate(self) -> float:
        if len(self.delays) == 0:
            return 0.0
        return float(np.mean(self.lost))

    @property
    def observed(self) -> np.ndarray:
        """Delays of the probes that arrived."""
        return self.delays[~self.lost]

    @property
    def min_delay(self) -> float:
        """Smallest observed delay (the paper's ``D_min``, approximates P)."""
        observed = self.observed
        if observed.size == 0:
            raise ValueError("no surviving probes in observation")
        return float(observed.min())

    @property
    def max_delay(self) -> float:
        """Largest observed delay (the paper's ``D_max``)."""
        observed = self.observed
        if observed.size == 0:
            raise ValueError("no surviving probes in observation")
        return float(observed.max())

    def duration(self) -> float:
        """Span of send times in seconds."""
        if len(self.send_times) < 2:
            return 0.0
        return float(self.send_times[-1] - self.send_times[0])

    def segment(self, start: int, stop: int) -> "PathObservation":
        """Sub-observation over probes ``[start:stop)``."""
        return PathObservation(
            self.send_times[start:stop],
            self.delays[start:stop],
            propagation_delay=self.propagation_delay,
        )


class LossPairTrace:
    """Back-to-back probe pairs for the loss-pair baseline.

    Each pair is two probes sent (essentially) simultaneously; the baseline
    uses the delay of the surviving probe of a pair in which exactly one
    probe was lost as a stand-in for the lost probe's virtual delay.
    """

    def __init__(self, base_delay: float, pair_interval: float, probe_size: int):
        self.base_delay = float(base_delay)
        self.pair_interval = float(pair_interval)
        self.probe_size = int(probe_size)
        self.pairs: List[Tuple[ProbeRecord, ProbeRecord]] = []

    def append(self, first: ProbeRecord, second: ProbeRecord) -> None:
        self.pairs.append((first, second))

    def __len__(self) -> int:
        return len(self.pairs)

    def loss_pair_delays(self) -> np.ndarray:
        """Companion (surviving-probe) queuing delays over loss pairs.

        Returns the end-end *queuing* delay of the surviving probe for each
        pair where exactly one probe was lost — the loss-pair estimate of
        the virtual queuing delay of lost probes.
        """
        delays = []
        for first, second in self.pairs:
            if first.lost != second.lost:
                survivor = second if first.lost else first
                delays.append(survivor.total_queuing)
        return np.array(delays)

    @property
    def loss_rate(self) -> float:
        """Fraction of individual probes lost."""
        if not self.pairs:
            return 0.0
        losses = sum(int(a.lost) + int(b.lost) for a, b in self.pairs)
        return losses / (2 * len(self.pairs))
