"""Cross-traffic sources: UDP ON-OFF, CBR, and FTP-over-TCP helpers.

These are the paper's three traffic conditions (Section VI-A): FTP flows,
empirical HTTP traffic (see :mod:`repro.netsim.http`), and exponential
UDP ON-OFF sources.
"""

from __future__ import annotations

from typing import List, Optional

from repro.netsim.node import Host
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.tcp import TcpSender, open_tcp_connection
from repro.netsim.topology import Network

__all__ = ["UdpSink", "UdpOnOffSource", "CbrSource", "start_ftp_flows"]


class UdpSink:
    """Counts and discards arriving UDP packets."""

    def __init__(self, host: Host, port: Optional[int] = None):
        self.host = host
        self.port = host.bind(self, port)
        self.packets_received = 0
        self.bytes_received = 0

    def handle_packet(self, packet: Packet) -> None:
        """Count and discard one arriving packet."""
        self.packets_received += 1
        self.bytes_received += packet.size


class UdpOnOffSource:
    """Exponential ON-OFF UDP source.

    During ON periods it emits ``packet_size``-byte packets at ``rate_bps``;
    ON and OFF period lengths are exponential with the given means.  This is
    the ns-2 ``Application/Traffic/Exponential`` equivalent used by the
    paper's second and third traffic conditions.
    """

    def __init__(
        self,
        host: Host,
        dst: str,
        dst_port: int,
        flow_id: str,
        rate_bps: float,
        packet_size: int = 500,
        mean_on: float = 0.5,
        mean_off: float = 0.5,
        start: float = 0.0,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.host = host
        self.sim = host.sim
        self.dst = dst
        self.dst_port = dst_port
        self.flow_id = flow_id
        self.rate_bps = float(rate_bps)
        self.packet_size = int(packet_size)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self._rng = self.sim.rng(f"onoff:{flow_id}")
        self._interval = self.packet_size * 8.0 / self.rate_bps
        self._on = False
        self._phase_end = 0.0
        self.packets_sent = 0
        self.sim.schedule_at(max(start, self.sim.now), self._begin_on)

    def _begin_on(self) -> None:
        self._on = True
        duration = self._rng.exponential(self.mean_on)
        self._phase_end = self.sim.now + duration
        self.sim.schedule(duration, self._begin_off)
        self._emit()

    def _begin_off(self) -> None:
        self._on = False
        self.sim.schedule(self._rng.exponential(self.mean_off), self._begin_on)

    def _emit(self) -> None:
        if not self._on or self.sim.now > self._phase_end:
            return
        packet = Packet(
            src=self.host.name,
            dst=self.dst,
            dst_port=self.dst_port,
            size=self.packet_size,
            kind=PacketKind.UDP,
            flow_id=self.flow_id,
            created_at=self.sim.now,
            seq=self.packets_sent,
        )
        self.packets_sent += 1
        self.host.send(packet)
        self.sim.schedule(self._interval, self._emit)


class PeriodicBurstSource:
    """Deterministic ON bursts: ``burst_duration`` at ``rate_bps``, every
    ``period`` seconds.

    Useful when an experiment needs a *controlled* minority of congestion
    on one link (e.g. the weak-DCL scenarios): unlike exponential ON-OFF,
    the loss contribution is stable across seeds.
    """

    def __init__(
        self,
        host: Host,
        dst: str,
        dst_port: int,
        flow_id: str,
        rate_bps: float,
        burst_duration: float,
        period: float,
        packet_size: int = 500,
        start: float = 0.0,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if burst_duration <= 0 or period <= burst_duration:
            raise ValueError("need 0 < burst_duration < period")
        self.host = host
        self.sim = host.sim
        self.dst = dst
        self.dst_port = dst_port
        self.flow_id = flow_id
        self.packet_size = int(packet_size)
        self._interval = self.packet_size * 8.0 / float(rate_bps)
        self.burst_duration = float(burst_duration)
        self.period = float(period)
        self._burst_end = 0.0
        self.packets_sent = 0
        self.sim.schedule_at(max(start, self.sim.now), self._begin_burst)

    def _begin_burst(self) -> None:
        self._burst_end = self.sim.now + self.burst_duration
        self.sim.schedule(self.period, self._begin_burst)
        self._emit()

    def _emit(self) -> None:
        if self.sim.now >= self._burst_end:
            return
        packet = Packet(
            src=self.host.name,
            dst=self.dst,
            dst_port=self.dst_port,
            size=self.packet_size,
            kind=PacketKind.UDP,
            flow_id=self.flow_id,
            created_at=self.sim.now,
            seq=self.packets_sent,
        )
        self.packets_sent += 1
        self.host.send(packet)
        self.sim.schedule(self._interval, self._emit)


class SaturatingBurstSource:
    """Periodic two-phase overload: fill fast, then hold at slight overload.

    Each period the source first transmits at ``fill_rate_bps`` for
    ``fill_duration`` (ramping the target queue to full quickly), then at
    ``hold_rate_bps`` — typically just above the link capacity — for
    ``hold_duration``.  During the hold phase the droptail queue
    oscillates between full and one-below-full at the packet timescale,
    which drops a fraction of arrivals while probes see short, flickering
    loss runs (the regime the paper's congested links exhibit) rather
    than seconds-long pinned-full periods.
    """

    def __init__(
        self,
        host: Host,
        dst: str,
        dst_port: int,
        flow_id: str,
        fill_rate_bps: float,
        fill_duration: float,
        hold_rate_bps: float,
        hold_duration: float,
        period: float,
        packet_size: int = 1000,
        start: float = 0.0,
    ):
        if fill_rate_bps <= 0 or hold_rate_bps <= 0:
            raise ValueError("rates must be positive")
        if fill_duration <= 0 or hold_duration <= 0:
            raise ValueError("durations must be positive")
        if period <= fill_duration + hold_duration:
            raise ValueError("period must exceed fill + hold duration")
        self.host = host
        self.sim = host.sim
        self.dst = dst
        self.dst_port = dst_port
        self.flow_id = flow_id
        self.packet_size = int(packet_size)
        self.fill_interval = self.packet_size * 8.0 / float(fill_rate_bps)
        self.hold_interval = self.packet_size * 8.0 / float(hold_rate_bps)
        self.fill_duration = float(fill_duration)
        self.hold_duration = float(hold_duration)
        self.period = float(period)
        self._phase_end = 0.0
        self._interval = self.fill_interval
        self._chain = 0  # generation token: stale emit chains stop themselves
        self.packets_sent = 0
        self.sim.schedule_at(max(start, self.sim.now), self._begin_fill)

    def _begin_fill(self) -> None:
        self._interval = self.fill_interval
        self._phase_end = self.sim.now + self.fill_duration
        self._chain += 1
        self.sim.schedule(self.fill_duration, self._begin_hold)
        self.sim.schedule(self.period, self._begin_fill)
        self._emit(self._chain)

    def _begin_hold(self) -> None:
        self._interval = self.hold_interval
        self._phase_end = self.sim.now + self.hold_duration
        self._chain += 1
        self._emit(self._chain)

    def _emit(self, chain: int) -> None:
        if chain != self._chain or self.sim.now >= self._phase_end:
            return
        packet = Packet(
            src=self.host.name,
            dst=self.dst,
            dst_port=self.dst_port,
            size=self.packet_size,
            kind=PacketKind.UDP,
            flow_id=self.flow_id,
            created_at=self.sim.now,
            seq=self.packets_sent,
        )
        self.packets_sent += 1
        self.host.send(packet)
        self.sim.schedule(self._interval, lambda: self._emit(chain))


class CbrSource:
    """Constant-bit-rate UDP source."""

    def __init__(
        self,
        host: Host,
        dst: str,
        dst_port: int,
        flow_id: str,
        rate_bps: float,
        packet_size: int = 500,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.host = host
        self.sim = host.sim
        self.dst = dst
        self.dst_port = dst_port
        self.flow_id = flow_id
        self.packet_size = int(packet_size)
        self._interval = self.packet_size * 8.0 / float(rate_bps)
        self.stop = stop
        self.packets_sent = 0
        self.sim.schedule_at(max(start, self.sim.now), self._emit)

    def _emit(self) -> None:
        if self.stop is not None and self.sim.now >= self.stop:
            return
        packet = Packet(
            src=self.host.name,
            dst=self.dst,
            dst_port=self.dst_port,
            size=self.packet_size,
            kind=PacketKind.UDP,
            flow_id=self.flow_id,
            created_at=self.sim.now,
            seq=self.packets_sent,
        )
        self.packets_sent += 1
        self.host.send(packet)
        self.sim.schedule(self._interval, self._emit)


def start_ftp_flows(
    network: Network,
    src: str,
    dst: str,
    count: int,
    flow_prefix: str = "ftp",
    mss: int = 1000,
    stagger: float = 0.1,
) -> List[TcpSender]:
    """Start ``count`` long-lived FTP (bulk TCP) flows from src to dst.

    Flows start ``stagger`` seconds apart to avoid synchronised slow
    starts; the paper uses 1-10 FTP flows as TCP cross traffic.
    """
    src_host = network.nodes[src]
    dst_host = network.nodes[dst]
    if not isinstance(src_host, Host) or not isinstance(dst_host, Host):
        raise TypeError("FTP endpoints must be hosts")
    senders = []
    for i in range(count):
        sender = open_tcp_connection(
            src_host, dst_host, flow_id=f"{flow_prefix}{i}", mss=mss
        )
        sender.start(at=network.sim.now + i * stagger)
        senders.append(sender)
    return senders
