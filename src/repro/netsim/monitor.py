"""Link and queue monitoring: occupancy, utilization, full-queue time.

The paper characterises its settings by link utilization ("the
utilization of link (r2,r3) varies from 28% to 95%"); a
:class:`QueueMonitor` samples a link's queue at a fixed interval so the
experiment harnesses can report the same statistics — and, crucially for
understanding the probes, the *fraction of time the queue is full*,
which is exactly the probe loss rate a periodic ghost-probe stream
converges to on a droptail link.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.netsim.link import Link

__all__ = ["QueueMonitor", "QueueStats"]


class QueueStats:
    """Summary statistics of one monitored link."""

    def __init__(
        self,
        link_name: str,
        mean_occupancy_packets: float,
        max_occupancy_packets: int,
        full_fraction: float,
        utilization: float,
        n_samples: int,
    ):
        self.link_name = link_name
        self.mean_occupancy_packets = float(mean_occupancy_packets)
        self.max_occupancy_packets = int(max_occupancy_packets)
        self.full_fraction = float(full_fraction)
        self.utilization = float(utilization)
        self.n_samples = int(n_samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueueStats({self.link_name}: util={self.utilization:.0%}, "
            f"mean occ={self.mean_occupancy_packets:.1f} pkts, "
            f"full {self.full_fraction:.1%} of time)"
        )


class QueueMonitor:
    """Samples one link's queue occupancy on a fixed clock.

    Parameters
    ----------
    link:
        The link to watch.
    interval:
        Sampling period in seconds (defaults to the paper's 20 ms probe
        interval, so ``full_fraction`` is directly comparable to the
        probe loss rate).
    start:
        First sample time (use the experiment's warm-up end).
    """

    def __init__(self, link: Link, interval: float = 0.020,
                 start: float = 0.0, stop: Optional[float] = None):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.link = link
        self.interval = float(interval)
        self.stop = stop
        self._occupancies: List[int] = []
        self._busy: List[bool] = []
        self._start_time: Optional[float] = None
        link.sim.schedule_at(max(start, link.sim.now), self._sample)

    def _sample(self) -> None:
        sim = self.link.sim
        if self.stop is not None and sim.now >= self.stop:
            return
        if self._start_time is None:
            self._start_time = sim.now
        queue = self.link.queue
        occupancy = queue.backlog_packets
        self._occupancies.append(occupancy)
        self._busy.append(self.link.service_residual() > 0)
        sim.schedule(self.interval, self._sample)

    @property
    def n_samples(self) -> int:
        """Number of samples collected so far."""
        return len(self._occupancies)

    def stats(self) -> QueueStats:
        """Summarise the samples collected so far."""
        if not self._occupancies:
            raise ValueError(f"no samples collected on {self.link.name}")
        occupancies = np.asarray(self._occupancies)
        capacity = self.link.queue.capacity_packets
        return QueueStats(
            link_name=self.link.name,
            mean_occupancy_packets=float(occupancies.mean()),
            max_occupancy_packets=int(occupancies.max()),
            full_fraction=float((occupancies >= capacity).mean()),
            utilization=float(np.mean(self._busy)),
            n_samples=len(occupancies),
        )
