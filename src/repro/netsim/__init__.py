"""Discrete-event, packet-level network simulator (the ns-2 substitute).

The simulator provides everything the paper's evaluation needs from ns-2:

* store-and-forward links with droptail or Adaptive-RED queues
  (:mod:`repro.netsim.queues`, :mod:`repro.netsim.link`);
* TCP-Reno FTP sources, ns-style empirical web traffic, and exponential
  UDP ON-OFF sources (:mod:`repro.netsim.tcp`, :mod:`repro.netsim.http`,
  :mod:`repro.netsim.traffic`);
* periodic probe streams with exact virtual-probe ground truth
  (:mod:`repro.netsim.probes`, :mod:`repro.netsim.trace`);
* a topology builder with the paper's Fig.-4 four-router chain
  (:mod:`repro.netsim.topology`).
"""

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.monitor import QueueMonitor, QueueStats
from repro.netsim.node import Host, Node, Router
from repro.netsim.packet import Packet
from repro.netsim.probes import LossPairProber, PeriodicProber
from repro.netsim.queues import AdaptiveREDQueue, DropTailQueue, REDQueue
from repro.netsim.topology import Network, chain_network
from repro.netsim.trace import PathObservation, ProbeRecord, ProbeTrace
from repro.netsim.wireless import GilbertElliottLink

__all__ = [
    "AdaptiveREDQueue",
    "DropTailQueue",
    "GilbertElliottLink",
    "Host",
    "Link",
    "LossPairProber",
    "Network",
    "Node",
    "Packet",
    "PathObservation",
    "PeriodicProber",
    "ProbeRecord",
    "ProbeTrace",
    "QueueMonitor",
    "QueueStats",
    "REDQueue",
    "Router",
    "Simulator",
    "chain_network",
]
