"""Router queue disciplines: droptail and (Adaptive) RED.

The paper's definitions assume droptail queues: a packet is lost iff it
arrives to a full buffer, so a lost probe "sees" the maximum queuing delay
``Q_k = buffer / bandwidth``.  Section VI-A5 of the paper studies what
happens under Adaptive RED (gentle mode), where drops occur at partial
occupancy; we implement both so the RED experiments (Figs. 10-11) can be
reproduced.

Queues buffer whole packets and are drained by the owning
:class:`repro.netsim.link.Link`.  As in ns-2, buffers are **packet-counted**:
the paper's byte buffer sizes (e.g. 20 kB) are converted to a packet limit at
a nominal packet size (1000 bytes by default, the cross-traffic MSS), so a
20 kB buffer holds 20 packets.  This matters for probes: a 10-byte probe is
dropped exactly when the packet buffer is full — which is how the paper's
tiny probes observe per-percent loss rates.  RED thresholds are likewise in
packets, as in ns-2.

Ghost-probe support
-------------------
Virtual probes never occupy the buffer.  :meth:`QueueDiscipline.probe_loss`
answers "would a tiny packet arriving now be dropped?" without mutating
queue state (RED's average/count bookkeeping is only advanced by real
arrivals).  The owning link combines this with the backlog to produce the
probe's per-hop queuing delay.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.netsim.packet import Packet

__all__ = ["QueueDiscipline", "DropTailQueue", "REDQueue", "AdaptiveREDQueue"]


class QueueDiscipline:
    """Base class for queue disciplines.

    Subclasses implement :meth:`offer` (real-packet admission) and
    :meth:`probe_loss` (side-effect-free ghost-probe admission test).
    """

    def __init__(self, capacity_bytes: int, nominal_packet_size: int = 1000):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        if nominal_packet_size <= 0:
            raise ValueError(
                f"nominal packet size must be positive, got {nominal_packet_size}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self.nominal_packet_size = int(nominal_packet_size)
        self.capacity_packets = max(
            1, int(round(capacity_bytes / nominal_packet_size))
        )
        self._buffer: Deque[Packet] = deque()
        self.backlog_bytes = 0
        # Statistics.
        self.arrivals = 0
        self.drops = 0
        self.bytes_in = 0
        self.bytes_dropped = 0

    # -- link integration ------------------------------------------------
    def attach(self, sim, drain_rate_bps: float) -> None:
        """Called by the owning link once the drain rate is known.

        The base implementation records the rate; RED variants also use the
        hook to start their adaptation timers.
        """
        self.drain_rate_bps = float(drain_rate_bps)

    # -- real packets ----------------------------------------------------
    def offer(self, packet: Packet, now: float, rng: np.random.Generator) -> bool:
        """Try to admit ``packet``; return ``False`` if it is dropped."""
        raise NotImplementedError

    def pop(self) -> Optional[Packet]:
        """Remove and return the head-of-line packet, or ``None`` if empty."""
        if not self._buffer:
            return None
        packet = self._buffer.popleft()
        self.backlog_bytes -= packet.size
        return packet

    # -- ghost probes ------------------------------------------------------
    def probe_loss(
        self,
        size: int,
        now: float,
        rng: np.random.Generator,
        extra_packets: int = 0,
    ) -> bool:
        """Would a ``size``-byte packet arriving now be dropped?

        Must not mutate queue state: ghost probes are invisible to the
        network (paper Section III, virtual probes).  ``extra_packets``
        models companions of a back-to-back pair that are (virtually)
        occupying buffer slots ahead of this probe — how the second probe
        of a loss pair gets dropped exactly when the first took the last
        free position.
        """
        raise NotImplementedError

    def probe_observe(
        self,
        size: int,
        now: float,
        rng: np.random.Generator,
        residual: float,
        extra_packets: int = 0,
    ):
        """Ghost-probe sample: ``(lost, queuing_delay)`` at this queue.

        ``residual`` is the remaining service time of the packet currently
        on the wire, supplied by the owning link.  No queue state is
        mutated.

        The recorded delay is the actual backlog drain time in both cases
        (plus any pair companions ahead of this probe).  For a droptail
        loss the backlog *is* a full buffer, so the delay equals the
        paper's ``Q_k`` whenever the buffered packets are nominal-sized
        (exactly the ns behaviour the paper reads its ground truth from);
        under RED a loss can occur at partial occupancy, which is
        precisely why Theorem 1 degrades there (Section VI-A5).
        """
        lost = self.probe_loss(size, now, rng, extra_packets=extra_packets)
        backlog = self.backlog_bytes + extra_packets * size
        return lost, residual + backlog * 8.0 / self.drain_rate_bps

    # -- introspection -----------------------------------------------------
    @property
    def backlog_packets(self) -> int:
        """Number of buffered packets (excluding the one in service)."""
        return len(self._buffer)

    @property
    def loss_ratio(self) -> float:
        """Fraction of real arrivals dropped so far."""
        if self.arrivals == 0:
            return 0.0
        return self.drops / self.arrivals

    def max_queuing_delay(self) -> float:
        """``Q_k``: the time to drain a full buffer, in seconds.

        With packet-counted buffers the full-buffer byte content is the
        packet limit times the nominal packet size — which recovers the
        paper's ``buffer / bandwidth`` when cross traffic uses the nominal
        size.
        """
        full_bytes = self.capacity_packets * self.nominal_packet_size
        return full_bytes * 8.0 / self.drain_rate_bps

    def _admit(self, packet: Packet) -> None:
        self._buffer.append(packet)
        self.backlog_bytes += packet.size

    def _count_arrival(self, packet: Packet) -> None:
        self.arrivals += 1
        self.bytes_in += packet.size

    def _count_drop(self, packet: Packet) -> None:
        self.drops += 1
        self.bytes_dropped += packet.size


class DropTailQueue(QueueDiscipline):
    """FIFO queue dropping arrivals that would overflow the byte buffer."""

    def offer(self, packet: Packet, now: float, rng: np.random.Generator) -> bool:
        self._count_arrival(packet)
        if self.backlog_packets >= self.capacity_packets:
            self._count_drop(packet)
            return False
        self._admit(packet)
        return True

    def probe_loss(
        self,
        size: int,
        now: float,
        rng: np.random.Generator,
        extra_packets: int = 0,
    ) -> bool:
        return self.backlog_packets + extra_packets >= self.capacity_packets


class REDQueue(QueueDiscipline):
    """Random Early Detection with the *gentle* option.

    Implements the classic RED of Floyd & Jacobson: an EWMA of the queue
    length (in packets) drives a drop probability that rises linearly from
    0 to ``max_p`` between ``min_th`` and ``max_th`` and — in gentle mode —
    from ``max_p`` to 1 between ``max_th`` and ``2 * max_th``.  The
    inter-drop "count" correction spreads drops uniformly.

    Parameters
    ----------
    capacity_bytes:
        Physical buffer (packets overflowing it are dropped regardless).
    min_th, max_th:
        Thresholds in packets.
    max_p:
        Initial maximum drop probability.
    weight:
        EWMA weight ``w_q``.
    mean_packet_size:
        Used to estimate the typical transmission time when decaying the
        average across idle periods.
    """

    def __init__(
        self,
        capacity_bytes: int,
        min_th: float,
        max_th: Optional[float] = None,
        max_p: float = 0.1,
        weight: float = 0.002,
        mean_packet_size: int = 1000,
    ):
        super().__init__(capacity_bytes)
        if min_th <= 0:
            raise ValueError(f"min_th must be positive, got {min_th}")
        self.min_th = float(min_th)
        self.max_th = float(max_th) if max_th is not None else 3.0 * self.min_th
        if self.max_th <= self.min_th:
            raise ValueError("max_th must exceed min_th")
        self.max_p = float(max_p)
        self.weight = float(weight)
        self.mean_packet_size = int(mean_packet_size)
        self.avg = 0.0
        self._count = 0  # packets since last drop while in the drop region
        self._idle_since: Optional[float] = None
        self.early_drops = 0
        self.forced_drops = 0

    # -- EWMA maintenance --------------------------------------------------
    def _typical_tx_time(self) -> float:
        return self.mean_packet_size * 8.0 / self.drain_rate_bps

    def _update_average(self, now: float) -> None:
        if self._idle_since is not None:
            # Decay the average as if empty-queue samples arrived at the
            # typical transmission rate during the idle period.
            idle = max(0.0, now - self._idle_since)
            m = idle / self._typical_tx_time()
            self.avg *= (1.0 - self.weight) ** m
            self._idle_since = None
        self.avg = (1.0 - self.weight) * self.avg + self.weight * self.backlog_packets

    def notify_idle(self, now: float) -> None:
        """Called by the link when the queue (and server) go idle."""
        self._idle_since = now

    # -- drop curve ----------------------------------------------------------
    def _drop_probability(self) -> float:
        """Instantaneous drop probability ``p_b`` from the gentle RED curve."""
        avg = self.avg
        if avg < self.min_th:
            return 0.0
        if avg < self.max_th:
            return self.max_p * (avg - self.min_th) / (self.max_th - self.min_th)
        if avg < 2.0 * self.max_th:
            return self.max_p + (1.0 - self.max_p) * (avg - self.max_th) / self.max_th
        return 1.0

    def offer(self, packet: Packet, now: float, rng: np.random.Generator) -> bool:
        self._count_arrival(packet)
        self._update_average(now)
        if self.backlog_packets >= self.capacity_packets:
            self._count_drop(packet)
            self.forced_drops += 1
            self._count = 0
            return False
        p_b = self._drop_probability()
        if p_b >= 1.0:
            self._count_drop(packet)
            self.early_drops += 1
            self._count = 0
            return False
        if p_b > 0.0:
            # Uniform spreading: p_a = p_b / (1 - count * p_b).
            denom = 1.0 - self._count * p_b
            p_a = 1.0 if denom <= 0.0 else min(1.0, p_b / denom)
            if rng.random() < p_a:
                self._count_drop(packet)
                self.early_drops += 1
                self._count = 0
                return False
            self._count += 1
        else:
            self._count = 0
        self._admit(packet)
        return True

    def probe_loss(
        self,
        size: int,
        now: float,
        rng: np.random.Generator,
        extra_packets: int = 0,
    ) -> bool:
        """Sample the fate a tiny real packet would meet, without side effects.

        Ghost probes draw from the instantaneous drop probability ``p_b``
        (no count correction — they are not part of the real arrival
        process) and are also lost on physical overflow.
        """
        if self.backlog_packets + extra_packets >= self.capacity_packets:
            return True
        p_b = self._drop_probability()
        if p_b <= 0.0:
            return False
        return bool(rng.random() < p_b)


class AdaptiveREDQueue(REDQueue):
    """Adaptive RED (Floyd, Gummadi, Shenker 2001), gentle mode.

    ``max_p`` is adapted every ``interval`` seconds by AIMD so the average
    queue tracks the middle of ``[min_th, max_th]``:

    * ``avg > min_th + 0.6 (max_th - min_th)`` and ``max_p < 0.5``:
      ``max_p += min(0.01, max_p / 4)``;
    * ``avg < min_th + 0.4 (max_th - min_th)`` and ``max_p > 0.01``:
      ``max_p *= 0.9``.
    """

    def __init__(
        self,
        capacity_bytes: int,
        min_th: float,
        max_th: Optional[float] = None,
        max_p: float = 0.1,
        weight: float = 0.002,
        mean_packet_size: int = 1000,
        interval: float = 0.5,
    ):
        super().__init__(
            capacity_bytes,
            min_th,
            max_th=max_th,
            max_p=max_p,
            weight=weight,
            mean_packet_size=mean_packet_size,
        )
        self.interval = float(interval)
        self._sim = None

    def attach(self, sim, drain_rate_bps: float) -> None:
        super().attach(sim, drain_rate_bps)
        self._sim = sim
        sim.schedule(self.interval, self._adapt)

    def _adapt(self) -> None:
        span = self.max_th - self.min_th
        target_low = self.min_th + 0.4 * span
        target_high = self.min_th + 0.6 * span
        if self.avg > target_high and self.max_p < 0.5:
            self.max_p = min(0.5, self.max_p + min(0.01, self.max_p / 4.0))
        elif self.avg < target_low and self.max_p > 0.01:
            self.max_p = max(0.01, self.max_p * 0.9)
        self._sim.schedule(self.interval, self._adapt)
