"""Nodes: hosts and routers.

Routing is static by destination name: each node keeps a table mapping a
destination to the outgoing :class:`~repro.netsim.link.Link`.  Hosts
additionally own *agents* (TCP endpoints, UDP sinks, traffic sources) keyed
by port; a packet addressed to the host is handed to the agent on its
``dst_port``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import Packet

__all__ = ["Node", "Router", "Host"]


class Node:
    """A forwarding element identified by a unique name."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.routes: Dict[str, Link] = {}
        self.packets_forwarded = 0
        self.packets_delivered = 0
        self.routing_failures = 0

    def add_route(self, dst_name: str, link: Link) -> None:
        """Route packets destined to ``dst_name`` out of ``link``."""
        self.routes[dst_name] = link

    def receive(self, packet: Packet) -> None:
        """Handle an arriving packet: deliver locally or forward."""
        if packet.dst == self.name:
            self.packets_delivered += 1
            self.deliver(packet)
            return
        link = self.routes.get(packet.dst)
        if link is None:
            # No route: the packet is silently discarded but counted, so a
            # mis-built topology shows up in statistics instead of nowhere.
            self.routing_failures += 1
            return
        self.packets_forwarded += 1
        link.send(packet)

    def deliver(self, packet: Packet) -> None:
        """Local delivery; plain routers have no local agents."""

    def send(self, packet: Packet) -> bool:
        """Originate ``packet`` from this node."""
        if packet.dst == self.name:
            self.receive(packet)
            return True
        link = self.routes.get(packet.dst)
        if link is None:
            self.routing_failures += 1
            return False
        return link.send(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class Router(Node):
    """A pure forwarding node."""


class Host(Node):
    """An end host that owns port-addressed agents.

    Agents must expose ``handle_packet(packet)``; anything from a TCP
    endpoint to a trivial sink qualifies.
    """

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self.agents: Dict[int, object] = {}
        self._next_port = 1

    def bind(self, agent, port: Optional[int] = None) -> int:
        """Attach ``agent``; returns the port it is reachable on."""
        if port is None:
            port = self._next_port
            self._next_port += 1
        if port in self.agents:
            raise ValueError(f"port {port} already bound on {self.name}")
        self.agents[port] = agent
        self._next_port = max(self._next_port, port + 1)
        return port

    def deliver(self, packet: Packet) -> None:
        agent = self.agents.get(packet.dst_port)
        if agent is not None:
            agent.handle_packet(packet)
