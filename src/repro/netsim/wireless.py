"""Wireless-style links: losses from the channel, not the queue.

Section VII of the paper warns that on a path with a wireless first/last
hop, "losses at this link can be due to interference and fading, which is
not correlated with long queuing delays, and hence our approach does not
apply."  This module provides that link type so the caveat can be
demonstrated rather than asserted: a :class:`GilbertElliottLink` drops
packets (and marks ghost probes lost) according to a two-state
Gilbert-Elliott channel — bursty, queue-independent loss.

State dwell times are exponential; the *good* state loses packets rarely,
the *bad* state heavily.  Both real packets and ghost probes face the
same channel, so the measurement host sees realistic wireless loss while
the virtual-probe ground truth shows losses at arbitrary queue occupancy.
"""

from __future__ import annotations

from repro.netsim.engine import Simulator
from repro.netsim.link import Link, ProbeHop
from repro.netsim.packet import Packet
from repro.netsim.queues import QueueDiscipline

__all__ = ["GilbertElliottLink"]


class GilbertElliottLink(Link):
    """A link whose transmissions additionally face a fading channel.

    Parameters
    ----------
    loss_good, loss_bad:
        Per-packet loss probability in the good / bad channel state.
    mean_good, mean_bad:
        Mean dwell time (seconds) in each state.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        src_name: str,
        dst,
        bandwidth_bps: float,
        prop_delay: float,
        queue: QueueDiscipline,
        loss_good: float = 0.001,
        loss_bad: float = 0.3,
        mean_good: float = 2.0,
        mean_bad: float = 0.2,
    ):
        super().__init__(sim, name, src_name, dst, bandwidth_bps,
                         prop_delay, queue)
        if not 0 <= loss_good <= 1 or not 0 <= loss_bad <= 1:
            raise ValueError("loss probabilities must lie in [0, 1]")
        if mean_good <= 0 or mean_bad <= 0:
            raise ValueError("state dwell times must be positive")
        self.loss_good = float(loss_good)
        self.loss_bad = float(loss_bad)
        self.mean_good = float(mean_good)
        self.mean_bad = float(mean_bad)
        self._channel_rng = sim.rng(f"wireless:{name}")
        self._bad = False
        self.channel_losses = 0
        self._schedule_flip()

    # ------------------------------------------------------------------
    # Channel dynamics
    # ------------------------------------------------------------------
    @property
    def in_bad_state(self) -> bool:
        """Whether the channel is currently fading (bad state)."""
        return self._bad

    def _schedule_flip(self) -> None:
        dwell = self._channel_rng.exponential(
            self.mean_bad if self._bad else self.mean_good
        )
        self.sim.schedule(dwell, self._flip)

    def _flip(self) -> None:
        self._bad = not self._bad
        self._schedule_flip()

    def _channel_loss_probability(self) -> float:
        return self.loss_bad if self._bad else self.loss_good

    # ------------------------------------------------------------------
    # Real packets: drop after the wire, before delivery
    # ------------------------------------------------------------------
    def _transmitted(self, packet: Packet) -> None:
        if self._channel_rng.random() < self._channel_loss_probability():
            self.channel_losses += 1
            self.packets_sent += 1  # it did occupy the wire
            self.bytes_sent += packet.size
            self._start_service()
            return
        super()._transmitted(packet)

    # ------------------------------------------------------------------
    # Ghost probes: same channel, queue-independent loss
    # ------------------------------------------------------------------
    def probe_transit(self, size: int, rng, extra_packets: int = 0) -> ProbeHop:
        hop = super().probe_transit(size, rng, extra_packets=extra_packets)
        if not hop.lost and rng.random() < self._channel_loss_probability():
            # Channel loss: the probe dies regardless of queue occupancy,
            # recording whatever queuing it would have seen — exactly the
            # decorrelation that breaks Theorem 1's premise.
            return ProbeHop(lost=True, queuing_delay=hop.queuing_delay,
                            latency=hop.latency)
        return hop
