"""Discrete-event simulation engine.

The engine is a classic calendar of ``(time, sequence, callback)`` entries
kept in a binary heap.  Ties in time are broken by insertion order so runs
are fully deterministic.  Randomness is centralised: components ask the
simulator for named :class:`numpy.random.Generator` streams derived from a
single seed, so a scenario replays bit-for-bit from one integer.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be cancelled;
    cancelled events stay in the heap but are skipped when popped (lazy
    deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], None]):
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        self.cancelled = True


class Simulator:
    """The simulation clock, event calendar, and RNG registry.

    Parameters
    ----------
    seed:
        Master seed.  Every named RNG stream handed out by :meth:`rng` is
        spawned deterministically from this seed and the stream name.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._seed = int(seed)
        self._rngs: Dict[str, np.random.Generator] = {}
        self._event_count = 0

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> np.random.Generator:
        """Return a deterministic, named random stream.

        The same ``(seed, name)`` pair always yields the same stream, and
        distinct names yield statistically independent streams, so adding a
        new traffic source does not perturb existing ones.
        """
        if name not in self._rngs:
            # Hash the name into entropy words; SeedSequence mixes them with
            # the master seed.
            words = [ord(c) for c in name]
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=tuple(words))
            self._rngs[name] = np.random.Generator(np.random.PCG64(seq))
        return self._rngs[name]

    @property
    def seed(self) -> int:
        """The master seed this simulator was created with."""
        return self._seed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        event = Event(time, callback)
        heapq.heappush(self._heap, (time, next(self._sequence), event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Run events in time order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the clock is left at
            ``until``).  ``None`` drains the calendar completely.
        """
        heap = self._heap
        while heap:
            time, _, event = heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = time
            self._event_count += 1
            event.callback()
        if until is not None and until > self.now:
            self.now = until

    def step(self) -> bool:
        """Run exactly one pending (non-cancelled) event.

        Returns ``True`` if an event ran, ``False`` if the calendar is empty.
        """
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = time
            self._event_count += 1
            event.callback()
            return True
        return False

    @property
    def pending_events(self) -> int:
        """Number of calendar entries (including lazily-cancelled ones)."""
        return len(self._heap)

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._event_count
