"""Probe streams: periodic probing and loss pairs.

Probes are implemented as *ghost* packets, exactly matching the paper's
virtual probes (Section III): a probe samples each queue on arrival but
never occupies buffer space or wire time that would perturb cross traffic
(the real probing load, 10 bytes / 20 ms = 4 kb/s, is negligible against
the Mb/s links of the evaluation).  At each hop the probe either

* records the queuing delay it would experience, or
* takes a **loss mark** (at most once) and records the discipline-specific
  loss delay (``Q_k`` for droptail, the instantaneous delay for RED),

then continues — virtually — to the next hop after queuing + transmission
+ propagation.  The end-of-path record holds both the ground-truth virtual
view and, via :class:`~repro.netsim.trace.ProbeTrace`, the real observation
(delay, or loss) a measurement host would log.
"""

from __future__ import annotations

from typing import List, Optional

from repro.netsim.link import Link
from repro.netsim.topology import Network
from repro.netsim.trace import LossPairTrace, ProbeRecord, ProbeTrace

__all__ = ["PeriodicProber", "LossPairProber"]

#: Paper defaults: 10-byte probes every 20 ms.
DEFAULT_PROBE_SIZE = 10
DEFAULT_PROBE_INTERVAL = 0.020


def _base_delay(path: List[Link], probe_size: int) -> float:
    """Constant component of a probe's one-way delay on ``path``."""
    return sum(
        link.prop_delay + probe_size * 8.0 / link.bandwidth_bps for link in path
    )


class _GhostProbe:
    """State of one in-flight ghost probe walking the path hop by hop."""

    __slots__ = ("send_time", "hop_queuing", "loss_hop")

    def __init__(self, send_time: float):
        self.send_time = send_time
        self.hop_queuing: List[float] = []
        self.loss_hop = -1

    def to_record(self) -> ProbeRecord:
        """Freeze the walk into an immutable trace record."""
        return ProbeRecord(self.send_time, self.hop_queuing, self.loss_hop)


class _ProberBase:
    """Shared ghost-probe walking machinery."""

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        probe_size: int,
        rng_name: str,
    ):
        self.network = network
        self.sim = network.sim
        self.src = src
        self.dst = dst
        self.probe_size = int(probe_size)
        self.path = network.path_links(src, dst)
        if not self.path:
            raise ValueError(f"empty path from {src} to {dst}")
        self._rng = self.sim.rng(rng_name)
        self._active = False

    def _walk(
        self, probe: _GhostProbe, hop_index: int, on_done, extra_packets: int = 0
    ) -> None:
        """Advance ``probe`` through hop ``hop_index``; recurse via events.

        ``extra_packets`` carries pair-companion occupancy for loss-pair
        probes (0 for ordinary periodic probes).
        """
        if hop_index == len(self.path):
            on_done(probe)
            return
        link = self.path[hop_index]
        hop = link.probe_transit(
            self.probe_size, self._rng, extra_packets=extra_packets
        )
        probe.hop_queuing.append(hop.queuing_delay)
        if hop.lost and probe.loss_hop < 0:
            probe.loss_hop = hop_index
        self.sim.schedule(
            hop.latency,
            lambda: self._walk(probe, hop_index + 1, on_done, extra_packets),
        )


class PeriodicProber(_ProberBase):
    """Sends one ghost probe every ``interval`` seconds from src to dst.

    Parameters mirror the paper: 10-byte probes at 20 ms intervals.  The
    accumulated :class:`~repro.netsim.trace.ProbeTrace` is available as
    :attr:`trace` and is ordered by send time (periodic sending guarantees
    completion order too).

    ``round_trip=True`` makes each probe traverse the forward path and
    then the reverse path back to the source — RTT probing, which needs
    no clock synchronization at all.  The trace's hops then cover both
    directions, and the identification applies to the *round-trip* path
    (a congested reverse link is indistinguishable from a forward one, as
    with any RTT measurement).
    """

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        interval: float = DEFAULT_PROBE_INTERVAL,
        probe_size: int = DEFAULT_PROBE_SIZE,
        start: float = 0.0,
        stop: Optional[float] = None,
        round_trip: bool = False,
    ):
        super().__init__(
            network, src, dst, probe_size, rng_name=f"prober:{src}->{dst}"
        )
        if round_trip:
            self.path = self.path + network.path_links(dst, src)
        if interval <= 0:
            raise ValueError(f"probe interval must be positive, got {interval}")
        self.interval = float(interval)
        self.stop = stop
        self.trace = ProbeTrace(
            link_names=[link.name for link in self.path],
            base_delay=_base_delay(self.path, probe_size),
            probe_interval=self.interval,
            probe_size=probe_size,
        )
        self.sim.schedule_at(max(start, self.sim.now), self._send_one)

    def _send_one(self) -> None:
        if self.stop is not None and self.sim.now >= self.stop:
            return
        probe = _GhostProbe(self.sim.now)
        self._walk(probe, 0, lambda p: self.trace.append(p.to_record()))
        self.sim.schedule(self.interval, self._send_one)


class LossPairProber(_ProberBase):
    """Sends back-to-back probe pairs (the Liu–Crovella baseline's input).

    A pair is two ghost probes separated by ``pair_spacing`` (default: one
    probe transmission time on the first hop, i.e. truly back-to-back);
    pairs are sent every ``pair_interval`` seconds.  The paper uses 40 ms
    pair intervals so the probe count matches 20 ms periodic probing.
    """

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        pair_interval: float = 2 * DEFAULT_PROBE_INTERVAL,
        probe_size: int = DEFAULT_PROBE_SIZE,
        pair_spacing: Optional[float] = None,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        super().__init__(
            network, src, dst, probe_size, rng_name=f"losspair:{src}->{dst}"
        )
        if pair_interval <= 0:
            raise ValueError(f"pair interval must be positive, got {pair_interval}")
        self.pair_interval = float(pair_interval)
        if pair_spacing is None:
            pair_spacing = probe_size * 8.0 / self.path[0].bandwidth_bps
        self.pair_spacing = float(pair_spacing)
        self.stop = stop
        self.trace = LossPairTrace(
            base_delay=_base_delay(self.path, probe_size),
            pair_interval=self.pair_interval,
            probe_size=probe_size,
        )
        self.sim.schedule_at(max(start, self.sim.now), self._send_pair)

    def _send_pair(self) -> None:
        if self.stop is not None and self.sim.now >= self.stop:
            return
        results: List[Optional[ProbeRecord]] = [None, None]

        def finish(index: int, probe: _GhostProbe) -> None:
            results[index] = probe.to_record()
            if all(r is not None for r in results):
                self.trace.append(results[0], results[1])

        first = _GhostProbe(self.sim.now)
        self._walk(first, 0, lambda p: finish(0, p))
        self.sim.schedule(self.pair_spacing, lambda: self._launch_second(finish))
        self.sim.schedule(self.pair_interval, self._send_pair)

    def _launch_second(self, finish) -> None:
        # The second probe of a back-to-back pair travels one buffer slot
        # behind its companion: it is dropped exactly when the companion
        # took the queue's last free position — how real loss pairs form.
        second = _GhostProbe(self.sim.now)
        self._walk(second, 0, lambda p: finish(1, p), extra_packets=1)
