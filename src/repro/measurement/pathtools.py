"""A pathchar/pchar-style per-hop capacity estimator.

The paper cross-checks its Internet identifications against pchar's link
bandwidth estimates.  We provide the same independent check against the
simulator: send probes of varying sizes, record — per path *prefix* — the
minimum delay over many repetitions, and regress minimum delay against
packet size.  The slope of prefix ``i`` is ``sum_{j<=i} 8 / bandwidth_j``,
so per-hop capacity falls out of slope differences (Jacobson's pathchar
method, using one-way prefix delays instead of ICMP round trips).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.netsim.topology import Network

__all__ = ["PcharResult", "PcharProber"]


class PcharResult:
    """Per-hop capacity estimates plus the raw regression slopes."""

    def __init__(
        self,
        link_names: List[str],
        capacities_bps: np.ndarray,
        prefix_slopes: np.ndarray,
    ):
        self.link_names = list(link_names)
        self.capacities_bps = np.asarray(capacities_bps, dtype=float)
        self.prefix_slopes = np.asarray(prefix_slopes, dtype=float)

    def narrow_link(self) -> str:
        """Name of the minimum-capacity (narrow) link."""
        return self.link_names[int(np.argmin(self.capacities_bps))]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{name}={cap / 1e6:.3g}Mb/s"
            for name, cap in zip(self.link_names, self.capacities_bps)
        )
        return f"PcharResult({parts})"


class PcharProber:
    """Schedules variable-size ghost probes and estimates hop capacities.

    Usage::

        prober = PcharProber(net, "src0_0", "snk3_0")
        prober.start(at=10.0)
        net.run(until=120.0)
        result = prober.estimate()

    Probes of each size are repeated ``repetitions`` times, spaced
    ``interval`` apart; per (prefix, size) the minimum delay filters out
    queuing, exactly as pathchar does.
    """

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        sizes: Optional[Sequence[int]] = None,
        repetitions: int = 32,
        interval: float = 0.05,
    ):
        self.network = network
        self.sim = network.sim
        self.path = network.path_links(src, dst)
        self.sizes = list(sizes) if sizes is not None else [64, 256, 512, 1024, 1500]
        if len(self.sizes) < 2:
            raise ValueError("need at least two probe sizes for a slope")
        self.repetitions = int(repetitions)
        self.interval = float(interval)
        self._rng = self.sim.rng(f"pchar:{src}->{dst}")
        n_hops = len(self.path)
        # min_delay[prefix, size_index]: best cumulative delay seen.
        self._min_delay = np.full((n_hops, len(self.sizes)), np.inf)
        self._sent = 0

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        """Begin probing at time ``at`` (default: now)."""
        when = self.sim.now if at is None else at
        self.sim.schedule_at(when, self._send_next)

    def _send_next(self) -> None:
        total = self.repetitions * len(self.sizes)
        if self._sent >= total:
            return
        size_index = self._sent % len(self.sizes)
        self._sent += 1
        self._launch(size_index)
        self.sim.schedule(self.interval, self._send_next)

    def _launch(self, size_index: int) -> None:
        size = self.sizes[size_index]
        state = {"elapsed": 0.0}

        def hop(hop_index: int) -> None:
            if hop_index == len(self.path):
                return
            link = self.path[hop_index]
            transit = link.probe_transit(size, self._rng)
            state["elapsed"] += transit.latency
            if state["elapsed"] < self._min_delay[hop_index, size_index]:
                self._min_delay[hop_index, size_index] = state["elapsed"]
            self.sim.schedule(transit.latency, lambda: hop(hop_index + 1))

        hop(0)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(self) -> PcharResult:
        """Regress min delay vs size per prefix; difference the slopes."""
        if not np.isfinite(self._min_delay).all():
            raise ValueError("not all (prefix, size) cells measured yet")
        sizes = np.asarray(self.sizes, dtype=float)
        slopes = np.empty(len(self.path))
        for prefix in range(len(self.path)):
            slope, _ = np.polyfit(sizes, self._min_delay[prefix], 1)
            slopes[prefix] = slope
        per_hop = np.diff(slopes, prepend=0.0)
        # slope is seconds per byte of cumulative transmission: 8 / bw.
        per_hop = np.maximum(per_hop, 1e-12)
        capacities = 8.0 / per_hop
        return PcharResult(
            link_names=[link.name for link in self.path],
            capacities_bps=capacities,
            prefix_slopes=slopes,
        )
