"""Trace post-processing: clock repair, stationarity, path tools."""

from repro.measurement.clock import (
    ClockFit,
    apply_clock_effects,
    estimate_clock,
    remove_clock_effects,
)
from repro.measurement.pathtools import PcharProber, PcharResult
from repro.measurement.pipeline import PreparedObservation, prepare_observation
from repro.measurement.stationarity import (
    WindowSummary,
    observation_is_stationary,
    select_stationary_segment,
    summarize_windows,
)
from repro.measurement.traceio import (
    iter_observation,
    load_observation,
    load_timestamp_pair,
    load_trace,
    save_observation,
    save_trace,
)

__all__ = [
    "ClockFit",
    "PcharProber",
    "PcharResult",
    "PreparedObservation",
    "WindowSummary",
    "apply_clock_effects",
    "estimate_clock",
    "iter_observation",
    "load_observation",
    "observation_is_stationary",
    "load_timestamp_pair",
    "load_trace",
    "prepare_observation",
    "remove_clock_effects",
    "save_observation",
    "save_trace",
    "select_stationary_segment",
    "summarize_windows",
]
