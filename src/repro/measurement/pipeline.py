"""The paper's Internet measurement workflow as one call.

Section VI-B processes each measured path the same way: derive one-way
delays from sender/receiver timestamps, remove clock offset and skew
(per [40]), select a stationary probing sequence, then identify.  This
module packages the pre-identification steps so library users and the
CLI share one tested path.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.measurement.clock import ClockFit, remove_clock_effects
from repro.measurement.stationarity import select_stationary_segment
from repro.netsim.trace import PathObservation

__all__ = ["PreparedObservation", "prepare_observation"]


class PreparedObservation:
    """A measurement readied for identification, with its provenance."""

    def __init__(
        self,
        observation: PathObservation,
        clock_fit: Optional[ClockFit],
        segment_range: Tuple[int, int],
        original_length: int,
    ):
        self.observation = observation
        self.clock_fit = clock_fit
        self.segment_range = segment_range
        self.original_length = int(original_length)

    @property
    def used_fraction(self) -> float:
        """Share of the raw record that survived stationarity selection."""
        start, stop = self.segment_range
        if self.original_length == 0:
            return 0.0
        return (stop - start) / self.original_length

    def summary(self) -> str:
        """Human-readable provenance of the preparation steps."""
        lines = []
        if self.clock_fit is not None:
            lines.append(
                f"clock: skew {self.clock_fit.skew:.3e} removed "
                f"(offset {self.clock_fit.offset:.6f} s)"
            )
        start, stop = self.segment_range
        lines.append(
            f"stationary segment: probes [{start}, {stop}) of "
            f"{self.original_length} ({self.used_fraction:.0%})"
        )
        lines.append(
            f"loss rate on segment: {self.observation.loss_rate:.2%}"
        )
        return "\n".join(lines)


def prepare_observation(
    observation: PathObservation,
    repair_clock: bool = True,
    select_stationary: bool = True,
    window: int = 1000,
    delay_tolerance: float = 0.2,
    loss_tolerance: float = 0.05,
) -> PreparedObservation:
    """Clock repair + stationary-segment selection.

    Either stage can be disabled; with both disabled the observation is
    returned unchanged (with full-range provenance).
    """
    original_length = len(observation)
    clock_fit = None
    if repair_clock:
        observation, clock_fit = remove_clock_effects(observation)
    segment_range = (0, original_length)
    if select_stationary:
        observation, segment_range = select_stationary_segment(
            observation,
            window=window,
            delay_tolerance=delay_tolerance,
            loss_tolerance=loss_tolerance,
        )
    return PreparedObservation(
        observation=observation,
        clock_fit=clock_fit,
        segment_range=segment_range,
        original_length=original_length,
    )
