"""Stationary-segment selection for long probe traces.

The paper's Internet experiments "select a stationary probing sequence of
20 min" from each one-hour trace — the identification method assumes the
loss/delay process is stationary over the analysed window.  This module
provides a pragmatic selector: split the trace into windows, summarise
each (median delay, loss rate), and return the longest contiguous run of
windows whose summaries stay within tolerance bands of the run's own
medians.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.netsim.trace import PathObservation

__all__ = [
    "WindowSummary",
    "summarize_windows",
    "select_stationary_segment",
    "observation_is_stationary",
]


class WindowSummary:
    """Per-window statistics used by the stationarity scan."""

    def __init__(self, start: int, stop: int, median_delay: float, loss_rate: float):
        self.start = int(start)
        self.stop = int(stop)
        self.median_delay = float(median_delay)
        self.loss_rate = float(loss_rate)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowSummary([{self.start}:{self.stop}), "
            f"median={self.median_delay:.4f}s, loss={self.loss_rate:.3%})"
        )


def summarize_windows(
    observation: PathObservation, window: int
) -> List[WindowSummary]:
    """Split into ``window``-sized chunks and summarise each.

    Windows that are entirely losses get a NaN median and are never part
    of a stationary run.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    summaries = []
    n = len(observation)
    for start in range(0, n - window + 1, window):
        stop = start + window
        chunk = observation.delays[start:stop]
        observed = chunk[~np.isnan(chunk)]
        median = float(np.median(observed)) if observed.size else float("nan")
        loss_rate = float(np.mean(np.isnan(chunk)))
        summaries.append(WindowSummary(start, stop, median, loss_rate))
    return summaries


def _run_is_stationary(
    summaries: List[WindowSummary],
    delay_tolerance: float,
    loss_tolerance: float,
) -> bool:
    medians = np.array([s.median_delay for s in summaries])
    losses = np.array([s.loss_rate for s in summaries])
    if np.any(np.isnan(medians)):
        return False
    center = np.median(medians)
    if center <= 0:
        return False
    if np.max(np.abs(medians - center)) > delay_tolerance * center:
        return False
    loss_center = np.median(losses)
    return bool(np.max(np.abs(losses - loss_center)) <= loss_tolerance)


def observation_is_stationary(
    observation: PathObservation,
    window: Optional[int] = None,
    delay_tolerance: float = 0.2,
    loss_tolerance: float = 0.05,
) -> bool:
    """Whether a whole observation passes the stationarity bands.

    The observation is split into ``window``-probe chunks (default: a
    quarter of the record, so every check sees at least four summaries)
    and accepted when *all* chunk medians/loss rates stay within the
    tolerance bands of :func:`select_stationary_segment`.  The streaming
    verdict tracker gates each sliding window on this check so verdicts
    are only updated from data the paper's identification method is
    valid for.
    """
    n = len(observation)
    if n == 0:
        stationary = False
    else:
        if window is None:
            window = max(1, n // 4)
        summaries = summarize_windows(observation, window)
        stationary = bool(summaries) and _run_is_stationary(
            summaries, delay_tolerance, loss_tolerance
        )
    obs.inc("repro_stationarity_checks_total", 1.0,
            result="stationary" if stationary else "nonstationary")
    return stationary


def select_stationary_segment(
    observation: PathObservation,
    window: int = 1000,
    delay_tolerance: float = 0.2,
    loss_tolerance: float = 0.05,
    min_windows: int = 2,
) -> Tuple[PathObservation, Tuple[int, int]]:
    """Longest contiguous stationary run of windows.

    Parameters
    ----------
    window:
        Probes per window (1000 probes = 20 s at the paper's rate).
    delay_tolerance:
        Allowed relative deviation of window median delays from the run
        median.
    loss_tolerance:
        Allowed absolute deviation of window loss rates.
    min_windows:
        Shortest acceptable run; if nothing qualifies, the full trace is
        returned (with its own index range) rather than failing — the
        caller can inspect the range to detect that fallback.

    Returns
    -------
    (segment, (start, stop)):
        The selected sub-observation and its probe index range.
    """
    summaries = summarize_windows(observation, window)
    if not summaries:
        return observation, (0, len(observation))
    best: Optional[Tuple[int, int]] = None
    n = len(summaries)
    start = 0
    while start < n:
        stop = start + 1
        # Greedily extend while the run stays stationary.
        while stop <= n and _run_is_stationary(
            summaries[start:stop], delay_tolerance, loss_tolerance
        ):
            stop += 1
        run_len = stop - 1 - start
        if run_len >= min_windows and (best is None or run_len > best[1] - best[0]):
            best = (start, stop - 1)
        start = max(stop - 1, start + 1)
    if best is None:
        return observation, (0, len(observation))
    probe_range = (summaries[best[0]].start, summaries[best[1] - 1].stop)
    return observation.segment(*probe_range), probe_range
