"""Clock offset and skew removal for one-way delay measurements.

The paper's Internet experiments measure one-way delays between hosts with
unsynchronised clocks and remove offset and skew with the algorithm of
Zhang, Liu & Xia (INFOCOM 2002).  The measured delay of probe ``i`` is

    measured_i = true_i + offset + skew * send_time_i

The skew/offset estimate is the linear-programming fit: the line lying
*below* every measured point that minimises the total vertical distance to
the points.  The LP optimum is attained on an edge of the lower convex
hull of ``(send_time, measured_delay)`` — specifically the edge whose time
span contains the mean send time — so we solve it exactly with a monotone
chain hull in O(n log n), no LP solver needed.

Removing the fitted line leaves delays whose minimum is (near) zero; the
true propagation delay is unrecoverable from one-way data, which is fine:
the identification pipeline only needs delays up to a constant (it
approximates ``P`` by the minimum observed delay anyway, Section V-A).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.netsim.trace import PathObservation

__all__ = ["ClockFit", "estimate_clock", "remove_clock_effects", "apply_clock_effects"]


class ClockFit:
    """A fitted clock model: ``measured ≈ baseline + offset + skew * t``."""

    def __init__(self, offset: float, skew: float):
        self.offset = float(offset)
        self.skew = float(skew)

    def line(self, times: np.ndarray) -> np.ndarray:
        """Evaluate the fitted clock line at the given send times."""
        return self.offset + self.skew * np.asarray(times, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClockFit(offset={self.offset:.6g}s, skew={self.skew:.3g})"


def _lower_hull(points: np.ndarray) -> np.ndarray:
    """Lower convex hull (Andrew's monotone chain); points sorted by x."""
    hull = []
    for point in points:
        while len(hull) >= 2:
            o, a = hull[-2], hull[-1]
            cross = (a[0] - o[0]) * (point[1] - o[1]) - (a[1] - o[1]) * (
                point[0] - o[0]
            )
            if cross <= 0:
                hull.pop()
            else:
                break
        hull.append(point)
    return np.array(hull)


def estimate_clock(times, delays) -> ClockFit:
    """Fit the skew line under the measured one-way delays.

    Parameters
    ----------
    times, delays:
        Send times and measured delays; NaN delays (losses) are ignored.

    Returns the LP-optimal under-line as a :class:`ClockFit` whose
    ``skew`` is the relative clock drift and whose ``offset`` is the line
    value at ``t = 0`` (clock offset plus the unknowable propagation
    delay).
    """
    times = np.asarray(times, dtype=float)
    delays = np.asarray(delays, dtype=float)
    if times.shape != delays.shape:
        raise ValueError("times and delays must have equal length")
    observed = ~np.isnan(delays)
    times, delays = times[observed], delays[observed]
    if times.size < 2:
        raise ValueError("need at least two observed delays to fit a clock")
    order = np.argsort(times, kind="stable")
    points = np.column_stack([times[order], delays[order]])
    # Collapse duplicate send times to their minimum delay (hull needs
    # strictly increasing x to stay stable).
    _, first = np.unique(points[:, 0], return_index=True)
    if len(first) < len(points):
        mins = np.minimum.reduceat(points[:, 1], first)
        points = np.column_stack([points[first, 0], mins])
    if len(points) == 1:
        return ClockFit(offset=float(points[0, 1]), skew=0.0)
    hull = _lower_hull(points)
    if len(hull) == 1:
        return ClockFit(offset=float(hull[0, 1]), skew=0.0)
    # The LP objective sum(d_i - a - b t_i) decreases in b while the mean
    # time exceeds the pivot; optimum is the hull edge spanning mean(t).
    mean_t = times.mean()
    for (x0, y0), (x1, y1) in zip(hull[:-1], hull[1:]):
        if x0 <= mean_t <= x1:
            skew = (y1 - y0) / (x1 - x0)
            return ClockFit(offset=float(y0 - skew * x0), skew=float(skew))
    # mean(t) outside the hull span only if numerically degenerate; fall
    # back to the overall hull chord.
    (x0, y0), (x1, y1) = hull[0], hull[-1]
    skew = (y1 - y0) / (x1 - x0)
    return ClockFit(offset=float(y0 - skew * x0), skew=float(skew))


def remove_clock_effects(
    observation: PathObservation,
    fit: Optional[ClockFit] = None,
    keep_level: bool = True,
) -> Tuple[PathObservation, ClockFit]:
    """Return a skew-corrected copy of ``observation`` plus the fit used.

    With ``keep_level`` the corrected delays are shifted so their minimum
    matches the original minimum (only the *slope* is removed — the level
    carries the unknown propagation + offset and is harmless downstream).
    """
    if fit is None:
        fit = estimate_clock(observation.send_times, observation.delays)
    corrected = observation.delays - fit.skew * observation.send_times
    if keep_level:
        observed = ~np.isnan(corrected)
        if observed.any():
            original_min = np.nanmin(observation.delays)
            corrected = corrected - np.nanmin(corrected) + original_min
    return (
        PathObservation(
            observation.send_times,
            corrected,
            propagation_delay=None,  # level is no longer physical
        ),
        fit,
    )


def apply_clock_effects(
    observation: PathObservation,
    offset: float,
    skew: float,
) -> PathObservation:
    """Distort delays as an unsynchronised receiver clock would.

    Used by the synthetic Internet experiments: the receiver timestamps
    with a clock running ``offset`` ahead and drifting at rate ``skew``,
    so the measured delay becomes ``delay + offset + skew * arrival_time``
    (we use send time; the difference is second-order in skew).
    """
    distorted = observation.delays + offset + skew * observation.send_times
    return PathObservation(observation.send_times, distorted, propagation_delay=None)
