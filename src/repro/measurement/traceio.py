"""Trace persistence and import.

Three formats:

* **observation CSV** — ``send_time,delay`` rows with the literal
  ``lost`` for lost probes; the interchange format for the CLI and for
  sharing measured paths;
* **trace NPZ** — full :class:`~repro.netsim.trace.ProbeTrace` including
  per-hop ground truth (simulator output archival);
* **timestamp pairs** — two tcpdump-style text files (``seq  time`` per
  line) from the sender and receiver; sequence numbers missing on the
  receiver side are losses, exactly how the paper's Internet experiments
  derive one-way delays (clock repair is the caller's next step:
  :mod:`repro.measurement.clock`).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, IO, Iterable, Iterator, Tuple, Union

import numpy as np

from repro import obs
from repro.netsim.trace import PathObservation, ProbeRecord, ProbeTrace

_LOG = obs.get_logger(__name__)

__all__ = [
    "save_observation",
    "iter_observation",
    "load_observation",
    "save_trace",
    "load_trace",
    "load_timestamp_pair",
]

LOST_MARKER = "lost"


def save_observation(observation: PathObservation, path) -> Path:
    """Write an observation as ``send_time,delay`` CSV (losses: ``lost``)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["send_time", "delay"])
        for send_time, delay in zip(observation.send_times,
                                    observation.delays):
            cell = LOST_MARKER if np.isnan(delay) else f"{delay:.9f}"
            writer.writerow([f"{send_time:.9f}", cell])
    return path


def _iter_rows(handle: IO[str], name: str) -> Iterator[Tuple[float, float]]:
    reader = csv.reader(handle)
    header = next(reader, None)
    if header is None or [h.strip() for h in header[:2]] != ["send_time",
                                                             "delay"]:
        raise ValueError(f"{name}: not an observation CSV (bad header)")
    for line_number, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) < 2:
            raise ValueError(f"{name}:{line_number}: expected 2 columns")
        cell = row[1].strip().lower()
        delay = np.nan if cell == LOST_MARKER else float(row[1])
        yield float(row[0]), delay


def iter_observation(source: Union[str, Path, IO[str], Iterable[str]]
                     ) -> Iterator[Tuple[float, float]]:
    """Yield ``(send_time, delay)`` pairs from an observation CSV, lazily.

    Losses come out as ``NaN`` delays.  ``source`` is a path, an open
    text stream (e.g. ``sys.stdin`` for a live probe feed), or any
    iterable of CSV lines (e.g. a tail-follow generator); non-path
    sources are read incrementally and never materialised, which is what
    lets the streaming monitor tail arbitrarily long traces in constant
    memory.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        with path.open(newline="") as handle:
            yield from _iter_rows(handle, str(path))
        return
    yield from _iter_rows(source, getattr(source, "name", "<stream>"))


def load_observation(path) -> PathObservation:
    """Read a whole observation CSV written by :func:`save_observation`.

    Eager wrapper over :func:`iter_observation` for callers that want the
    batch :class:`PathObservation` surface.
    """
    with obs.span("traceio.load"):
        send_times = []
        delays = []
        for send_time, delay in iter_observation(path):
            send_times.append(send_time)
            delays.append(delay)
        if not send_times:
            raise ValueError(f"{Path(path)}: empty observation")
        observation = PathObservation(np.array(send_times), np.array(delays))
    n_losses = int(np.isnan(observation.delays).sum())
    _LOG.debug("loaded %s: %d probes, %d losses",
               path, len(observation), n_losses)
    if obs.is_enabled():
        obs.inc("repro_probes_loaded_total", float(len(observation)))
        obs.inc("repro_losses_loaded_total", float(n_losses))
        obs.emit("traceio.load", path=str(path),
                 n_probes=len(observation), n_losses=n_losses)
    return observation


def save_trace(trace: ProbeTrace, path) -> Path:
    """Archive a full probe trace (with ground truth) as NPZ."""
    path = Path(path)
    np.savez_compressed(
        path,
        link_names=np.array(trace.link_names),
        base_delay=np.array([trace.base_delay]),
        probe_interval=np.array([trace.probe_interval]),
        probe_size=np.array([trace.probe_size]),
        send_times=trace.send_times,
        hop_queuing=trace.hop_queuing_matrix,
        loss_hops=trace.loss_hops,
    )
    return path


def load_trace(path) -> ProbeTrace:
    """Restore a probe trace archived by :func:`save_trace`."""
    with np.load(Path(path), allow_pickle=False) as data:
        trace = ProbeTrace(
            link_names=[str(name) for name in data["link_names"]],
            base_delay=float(data["base_delay"][0]),
            probe_interval=float(data["probe_interval"][0]),
            probe_size=int(data["probe_size"][0]),
        )
        send_times = data["send_times"]
        hop_queuing = data["hop_queuing"]
        loss_hops = data["loss_hops"]
    for send_time, hops, loss_hop in zip(send_times, hop_queuing, loss_hops):
        trace.append(ProbeRecord(float(send_time), hops, int(loss_hop)))
    return trace


def _read_timestamps(path) -> Dict[int, float]:
    stamps: Dict[int, float] = {}
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{line_number}: expected 'seq time', got {line!r}"
                )
            stamps[int(parts[0])] = float(parts[1])
    return stamps


def load_timestamp_pair(sender_path, receiver_path) -> PathObservation:
    """Build an observation from sender/receiver timestamp logs.

    Probes present at the sender but absent at the receiver are losses;
    delays are receiver-clock minus sender-clock (repair skew afterwards
    with :func:`repro.measurement.clock.remove_clock_effects`).
    """
    sent = _read_timestamps(sender_path)
    received = _read_timestamps(receiver_path)
    if not sent:
        raise ValueError(f"{sender_path}: no probes recorded")
    unknown = set(received) - set(sent)
    if unknown:
        raise ValueError(
            f"receiver has sequence numbers never sent: {sorted(unknown)[:5]}"
        )
    order = sorted(sent)
    send_times = np.array([sent[seq] for seq in order])
    delays = np.array([
        received[seq] - sent[seq] if seq in received else np.nan
        for seq in order
    ])
    return PathObservation(send_times, delays)
