"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflow a measurement operator runs:

* ``simulate`` — build one of the paper's scenarios, probe it, and write
  the observation CSV (optionally the full ground-truth trace as NPZ);
* ``identify`` — run the identification pipeline on an observation CSV;
* ``bound`` — estimate the dominant link's maximum queuing delay;
* ``clock`` — remove clock skew from a measured observation;
* ``pinpoint`` — locate the dominant link from an archived trace (NPZ,
  which carries the per-hop records that stand in for TTL probing);
* ``monitor`` — stream one or more observations through the online
  identification subsystem and emit JSONL verdict events (tails files
  with ``--follow``, reads stdin with ``-``); ``--metrics-file`` /
  ``--metrics-port`` expose Prometheus metrics, ``--telemetry`` records
  structured JSONL events, ``--alert-rules`` evaluates declarative
  health rules (exit code 3 once a ``fatal`` rule fires),
  ``--flight-recorder DIR`` keeps a crash-dumpable ring of recent
  events, ``--stall-timeout`` arms a progress watchdog, and
  ``--profile`` captures per-phase cProfile data;
* ``stats`` — summarize a telemetry JSONL event file (slowest spans,
  warm-start and fallback rates, verdict flips);
* ``report`` — render telemetry JSONL + ``BENCH_*.json`` artifacts into
  one self-contained HTML dashboard (with bench-regression checks
  against a baseline directory).

``--log-level`` (before the subcommand) turns on ``repro.*`` logging to
stderr; ``--telemetry PATH`` on the analysis commands records the run's
events for ``repro stats`` / ``repro report`` and writes a provenance
manifest next to it (``--manifest`` overrides the location).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from pathlib import Path
from typing import Iterator, List, Optional

from repro import obs
from repro.core.identify import IdentifyConfig, estimate_bound, identify
from repro.core.pinpoint import pinpoint_dominant_link
from repro.measurement.clock import remove_clock_effects
from repro.measurement.traceio import (
    iter_observation,
    load_observation,
    load_trace,
    save_observation,
    save_trace,
)

__all__ = ["main", "build_parser"]


def _scenario_by_name(name: str):
    from repro.experiments.internet import adsl_path_scenario, ethernet_path_scenario
    from repro.experiments.scenarios import (
        no_dcl_scenario,
        red_no_dcl_scenario,
        red_strong_scenario,
        strong_dcl_scenario,
        weak_dcl_scenario,
    )

    factories = {
        "strong": lambda: strong_dcl_scenario(1.0),
        "weak": lambda: weak_dcl_scenario((0.7, 0.2)),
        "none": lambda: no_dcl_scenario((0.1, 0.2)),
        "red-strong": lambda: red_strong_scenario(0.5),
        "red-none": lambda: red_no_dcl_scenario(0.5),
        "internet-ethernet": ethernet_path_scenario,
        "internet-ufpr": lambda: adsl_path_scenario("ufpr"),
        "internet-usevilla": lambda: adsl_path_scenario("usevilla"),
        "internet-snu": lambda: adsl_path_scenario("snu"),
    }
    if name not in factories:
        raise SystemExit(
            f"unknown scenario {name!r}; choose from {sorted(factories)}"
        )
    return factories[name]()


def _identify_config(args) -> IdentifyConfig:
    em = None
    em_backend = getattr(args, "em_backend", None)
    em_dtype = getattr(args, "em_dtype", None)
    if em_backend or em_dtype:
        from repro.models.base import EMConfig

        em = EMConfig(backend=em_backend, dtype=em_dtype)
    return IdentifyConfig(
        n_symbols=args.symbols,
        n_hidden=args.hidden,
        model=args.model,
        beta0=args.beta0,
        beta1=args.beta1,
        propagation_delay=getattr(args, "propagation", None),
        em=em,
    )


def _add_telemetry_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="record telemetry events (JSONL) to PATH and "
                             "collect metrics (summarize with 'repro stats')")
    parser.add_argument("--telemetry-max-bytes", type=int, default=None,
                        metavar="N",
                        help="rotate the telemetry file to PATH.1 once it "
                             "exceeds N bytes (default: never rotate)")
    parser.add_argument("--manifest", metavar="PATH", default=None,
                        help="write a run-provenance manifest JSON to PATH "
                             "(default: next to --telemetry as "
                             "<stem>.manifest.json)")


def _add_identify_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--symbols", type=int, default=5,
                        help="number of delay symbols M (default 5)")
    parser.add_argument("--hidden", type=int, default=2,
                        help="number of hidden states N (default 2)")
    parser.add_argument("--model", choices=["mmhd", "hmm"], default="mmhd")
    parser.add_argument("--beta0", type=float, default=0.06)
    parser.add_argument("--beta1", type=float, default=0.0)
    parser.add_argument("--propagation", type=float, default=None,
                        help="known propagation delay P (default: use the "
                             "minimum observed delay)")
    parser.add_argument("--em-backend", default=None,
                        choices=["auto", "batched", "blocked", "compiled",
                                 "sequential"],
                        help="E-step engine (default: auto state-width "
                             "heuristic; see also REPRO_EM_BACKEND)")
    parser.add_argument("--em-dtype", default=None,
                        choices=["float64", "float32"],
                        help="forward-backward working precision (float32 "
                             "auto-demotes to float64 on underflow; see "
                             "also REPRO_EM_DTYPE)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dominant congested link identification (IMC 2003).",
    )
    parser.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warning", "error"],
                        help="enable repro.* logging to stderr at this level")
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="run a scenario and export the probe observation"
    )
    simulate.add_argument("--scenario", default="strong")
    simulate.add_argument("--duration", type=float, default=200.0)
    simulate.add_argument("--warmup", type=float, default=30.0)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument("--out", required=True,
                          help="observation CSV output path")
    simulate.add_argument("--trace-out", default=None,
                          help="also archive the full trace (NPZ)")

    ident = commands.add_parser(
        "identify", help="identify a dominant congested link from a CSV"
    )
    ident.add_argument("observation", help="observation CSV")
    _add_identify_options(ident)
    _add_telemetry_option(ident)

    bound = commands.add_parser(
        "bound", help="bound the dominant link's maximum queuing delay"
    )
    bound.add_argument("observation", help="observation CSV")
    bound.add_argument("--verdict", choices=["strong", "weak"],
                       default=None,
                       help="hypothesis to bound under (default: identify "
                            "first and use its verdict)")
    bound.add_argument("--bound-symbols", type=int, default=40)
    _add_identify_options(bound)
    _add_telemetry_option(bound)

    clock = commands.add_parser(
        "clock", help="remove clock skew from a measured observation"
    )
    clock.add_argument("observation", help="observation CSV (measured)")
    clock.add_argument("--out", required=True, help="repaired CSV path")

    pinpoint = commands.add_parser(
        "pinpoint", help="locate the dominant link from an archived trace"
    )
    pinpoint.add_argument("trace", help="trace NPZ from 'simulate --trace-out'")
    _add_identify_options(pinpoint)
    _add_telemetry_option(pinpoint)

    monitor = commands.add_parser(
        "monitor",
        help="stream observations through the online monitor (JSONL events)",
    )
    monitor.add_argument(
        "inputs", nargs="*",
        help="observation CSVs to monitor ('-' reads stdin); each input "
             "is tracked as its own path",
    )
    monitor.add_argument("--follow", action="store_true",
                         help="keep tailing the input files for appended "
                              "probes instead of stopping at EOF")
    monitor.add_argument("--window", type=int, default=3000,
                         help="probes per sliding window (default 3000)")
    monitor.add_argument("--hop", type=int, default=None,
                         help="probes between window starts (default "
                              "window/2: 50%% overlap)")
    monitor.add_argument("--confirm", type=int, default=3,
                         help="K of K-of-N verdict hysteresis (default 3)")
    monitor.add_argument("--memory", type=int, default=5,
                         help="N of K-of-N verdict hysteresis (default 5)")
    monitor.add_argument("--no-stationarity-gate", action="store_true",
                         help="analyse every window, even nonstationary ones")
    monitor.add_argument("--jobs", type=int, default=1,
                         help="worker processes for multi-path fits "
                              "(-1 = all CPUs; default 1)")
    monitor.add_argument("--drain-mode", choices=("auto", "fused", "pool"),
                         default="auto",
                         help="drain engine: 'fused' mega-batches each "
                              "round's warm fits into one ragged batched "
                              "recursion per model group, 'pool' runs one "
                              "task per window, 'auto' picks fused when "
                              "the batched E-step backend applies "
                              "(default auto); events are identical in "
                              "every mode")
    monitor.add_argument("--max-windows", type=int, default=None,
                         help="stop after this many emitted window events")
    monitor.add_argument("--demo", type=int, nargs="?", const=8000,
                         default=None, metavar="N",
                         help="also monitor a synthetic N-probe strong-DCL "
                              "stream (no input file needed; bare --demo "
                              "uses N=8000)")
    monitor.add_argument("--seed", type=int, default=0,
                         help="seed for --demo stream generation")
    monitor.add_argument("--metrics-file", metavar="PATH", default=None,
                         help="write Prometheus text metrics to PATH "
                              "(refreshed after every drain and at exit)")
    monitor.add_argument("--metrics-port", type=int, default=None,
                         metavar="PORT",
                         help="serve /metrics over HTTP on 127.0.0.1:PORT "
                              "(0 = ephemeral port; URL printed to stderr)")
    monitor.add_argument("--alert-rules", metavar="FILE", default=None,
                         help="evaluate declarative alert rules each drain "
                              "('default' = the built-in rule set); a fired "
                              "fatal rule makes the exit code 3")
    monitor.add_argument("--flight-recorder", metavar="DIR", default=None,
                         help="keep a ring of recent events and dump it to "
                              "DIR/crash-<pid>.json on SIGTERM/SIGINT (plus "
                              "faulthandler tracebacks for hard crashes)")
    monitor.add_argument("--stall-timeout", type=float, default=None,
                         metavar="SEC",
                         help="emit a watchdog.stall event (with the recent "
                              "event ring) if no pipeline progress happens "
                              "for SEC seconds")
    monitor.add_argument("--profile", action="store_true",
                         help="capture per-phase cProfile data; summarized "
                              "to stderr and emitted as profile.phase events")
    monitor.add_argument("--trace", action="store_true",
                         help="stamp every window with record-to-verdict "
                              "trace timestamps (trace.window events + "
                              "repro_trace_stage_seconds histograms); "
                              "verdict output is byte-identical either way")
    monitor.add_argument("--health", action="store_true",
                         help="score per-window model health (goodness of "
                              "fit + drift detection; model.health events, "
                              "repro_model_health gauges); verdict output "
                              "is byte-identical either way")
    _add_identify_options(monitor)
    _add_telemetry_option(monitor)

    serve = commands.add_parser(
        "serve",
        help="run the fleet monitoring service with an HTTP control API",
    )
    serve.add_argument(
        "inputs", nargs="*",
        help="observation CSVs to pre-register as paths at startup; more "
             "paths can be added at runtime via POST /paths",
    )
    serve.add_argument("--follow", action="store_true",
                       help="keep tailing the input files for appended "
                            "probes instead of stopping at EOF")
    serve.add_argument("--port", type=int, default=0, metavar="PORT",
                       help="HTTP API port on --host (default 0 = "
                            "ephemeral; the bound URL prints to stderr)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="HTTP API bind interface (default 127.0.0.1)")
    serve.add_argument("--window", type=int, default=3000,
                       help="probes per sliding window (default 3000)")
    serve.add_argument("--hop", type=int, default=None,
                       help="probes between window starts (default "
                            "window/2: 50%% overlap)")
    serve.add_argument("--confirm", type=int, default=3,
                       help="K of K-of-N verdict hysteresis (default 3)")
    serve.add_argument("--memory", type=int, default=5,
                       help="N of K-of-N verdict hysteresis (default 5)")
    serve.add_argument("--no-stationarity-gate", action="store_true",
                       help="analyse every window, even nonstationary ones")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes for drain fits "
                            "(-1 = all CPUs; default 1)")
    serve.add_argument("--drain-mode", choices=("auto", "fused", "pool"),
                       default="auto",
                       help="drain engine (see 'repro monitor --help'); "
                            "events are identical in every mode")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="per-path pending-window bound (default 64)")
    serve.add_argument("--demo", type=int, nargs="?", const=8000,
                       default=None, metavar="N",
                       help="pre-register synthetic N-probe strong-DCL "
                            "demo paths (bare --demo uses N=8000)")
    serve.add_argument("--demo-paths", type=int, default=1, metavar="K",
                       help="how many demo paths --demo registers "
                            "(default 1; seeds differ per path)")
    serve.add_argument("--seed", type=int, default=0,
                       help="base seed for --demo stream generation")
    serve.add_argument("--backpressure", choices=("off", "shed", "coarsen"),
                       default="off",
                       help="overload response past --high-watermark "
                            "pending windows: shed oldest windows or "
                            "coarsen the window stride (default off)")
    serve.add_argument("--high-watermark", type=int, default=64,
                       metavar="N",
                       help="fleet-wide pending windows that trigger "
                            "backpressure (default 64)")
    serve.add_argument("--low-watermark", type=int, default=None,
                       metavar="N",
                       help="backlog the policy drives toward / disengages "
                            "below (default high/2)")
    serve.add_argument("--coarsen-factor", type=int, default=2,
                       help="stride multiplier for --backpressure coarsen "
                            "(default 2)")
    serve.add_argument("--interval", type=float, default=0.05, metavar="SEC",
                       help="sleep between idle service cycles "
                            "(default 0.05)")
    serve.add_argument("--max-cycles", type=int, default=None,
                       help="stop after this many service cycles")
    serve.add_argument("--exit-when-idle", action="store_true",
                       help="exit once every source is exhausted and the "
                            "backlog is drained (for finite demo/replay "
                            "streams; otherwise serve until SIGTERM)")
    serve.add_argument("--quiet", action="store_true",
                       help="do not print verdict events as JSONL to stdout")
    serve.add_argument("--metrics-file", metavar="PATH", default=None,
                       help="write Prometheus text metrics to PATH "
                            "(refreshed after every cycle and at exit)")
    serve.add_argument("--alert-rules", metavar="FILE", default="default",
                       help="evaluate declarative alert rules each cycle "
                            "('default' = the built-in set, including the "
                            "fatal service-backlog-growth rule; 'none' "
                            "disables); a fired fatal rule makes the exit "
                            "code 3")
    serve.add_argument("--flight-recorder", metavar="DIR", default=None,
                       help="keep a ring of recent events and dump it to "
                            "DIR/crash-<pid>.json on SIGTERM/SIGINT")
    serve.add_argument("--stall-timeout", type=float, default=None,
                       metavar="SEC",
                       help="emit a watchdog.stall event if no pipeline "
                            "progress happens for SEC seconds")
    serve.add_argument("--trace", action="store_true",
                       help="record per-verdict latency traces (ingest -> "
                            "window-close -> queue -> fit -> publish), "
                            "served at GET /traces/{id}; verdict streams "
                            "are byte-identical either way")
    serve.add_argument("--health", action="store_true",
                       help="score per-window model health (drift "
                            "detection + verdict confidence), served at "
                            "GET /health and /health/{id}; verdict "
                            "streams are byte-identical either way")
    serve.add_argument("--slo", metavar="FILE", default=None,
                       help="declare SLOs evaluated each cycle ('default' "
                            "= the built-in set, e.g. verdict freshness); "
                            "burn-rate rules compile onto the alert engine "
                            "and status serves at GET /slo")
    _add_identify_options(serve)
    _add_telemetry_option(serve)

    stats = commands.add_parser(
        "stats", help="summarize a telemetry JSONL event file"
    )
    stats.add_argument("events",
                       help="JSONL file written via --telemetry "
                            "(or repro.obs.enable)")
    stats.add_argument("--top", type=int, default=5,
                       help="slowest spans to list (default 5)")
    stats.add_argument("--json", action="store_true",
                       help="print the full summary as JSON")

    report = commands.add_parser(
        "report",
        help="render telemetry + bench artifacts as one HTML dashboard",
    )
    report.add_argument("--events", action="append", default=[],
                        metavar="JSONL",
                        help="telemetry JSONL file (repeatable)")
    report.add_argument("--bench", action="append", default=[],
                        metavar="JSON",
                        help="BENCH_*.json benchmark report (repeatable)")
    report.add_argument("--baseline", metavar="DIR", default=None,
                        help="directory of committed baseline BENCH JSONs "
                             "to diff each --bench file against (by name)")
    report.add_argument("--tolerance", type=float, default=0.25,
                        help="relative change flagged as a bench regression "
                             "(default 0.25)")
    report.add_argument("--out", default="report.html",
                        help="output HTML path (default report.html)")
    report.add_argument("--title", default="repro run report")
    report.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any bench regression is flagged")
    return parser


def _cmd_simulate(args) -> int:
    from repro.experiments.runner import run_scenario

    scenario = _scenario_by_name(args.scenario)
    print(f"scenario: {scenario.description}")
    result = run_scenario(scenario, seed=args.seed, duration=args.duration,
                          warmup=args.warmup)
    trace = result.trace
    print(f"probes: {len(trace)}   loss rate: {trace.loss_rate:.2%}")
    save_observation(trace.observation(), args.out)
    print(f"observation written to {args.out}")
    if args.trace_out:
        save_trace(trace, args.trace_out)
        print(f"full trace written to {args.trace_out}")
    return 0


def _record_provenance(args, command: str, config, inputs=None) -> None:
    """Record the run manifest (event + JSON artifact) for one command.

    The artifact is written when ``--manifest`` names a path, or next to
    ``--telemetry`` as ``<stem>.manifest.json``; the ``run.manifest``
    event additionally lands in the telemetry stream whenever telemetry
    is on.  A run with neither flag records nothing.
    """
    out = getattr(args, "manifest", None)
    telemetry = getattr(args, "telemetry", None)
    if out is None and telemetry:
        out = Path(telemetry).with_suffix(".manifest.json")
    if out is None and not obs.is_enabled():
        return
    from repro.obs import provenance

    seeds = {}
    if getattr(args, "demo", None):
        seeds["demo"] = getattr(args, "seed", 0)
    provenance.record_run(command, config=config, out_path=out,
                          inputs=list(inputs or []), seeds=seeds)


def _cmd_identify(args) -> int:
    observation = load_observation(args.observation)
    config = _identify_config(args)
    _record_provenance(args, "identify", config, inputs=[args.observation])
    report = identify(observation, config)
    print(report.summary())
    return 0


def _cmd_bound(args) -> int:
    observation = load_observation(args.observation)
    config = _identify_config(args)
    _record_provenance(args, "bound", config, inputs=[args.observation])
    verdict = args.verdict
    if verdict is None:
        report = identify(observation, config)
        print(report.summary())
        if not report.dominant_link_exists:
            print("no dominant congested link identified; nothing to bound")
            return 1
        verdict = report.verdict
    bound = estimate_bound(observation, verdict, config,
                           n_symbols=args.bound_symbols)
    print(f"max queuing delay bound ({bound.method}): "
          f"{bound.seconds * 1e3:.1f} ms  (symbol {bound.symbol} "
          f"of {args.bound_symbols})")
    return 0


def _cmd_clock(args) -> int:
    observation = load_observation(args.observation)
    repaired, fit = remove_clock_effects(observation)
    save_observation(repaired, args.out)
    print(f"estimated skew {fit.skew:.3e}, offset {fit.offset:.6f} s")
    print(f"repaired observation written to {args.out}")
    return 0


def _cmd_pinpoint(args) -> int:
    trace = load_trace(args.trace)
    config = _identify_config(args)
    _record_provenance(args, "pinpoint", config, inputs=[args.trace])
    report = pinpoint_dominant_link(trace, config)
    print(report.summary())
    return 0 if report.located else 1


def _follow_lines(path: str, poll: float = 0.5) -> Iterator[str]:
    """Yield a file's lines forever, sleeping at EOF (``tail -f``)."""
    with open(path) as handle:
        while True:
            line = handle.readline()
            if line:
                yield line
            else:
                time.sleep(poll)


def _monitor_streams(args) -> dict:
    streams = {}
    for spec in args.inputs:
        if spec == "-":
            streams["stdin"] = iter_observation(sys.stdin)
        elif args.follow:
            streams[spec] = iter_observation(_follow_lines(spec))
        else:
            streams[spec] = iter_observation(spec)
    if args.demo:
        from repro.experiments.streams import strong_dcl_stream

        streams["demo"] = strong_dcl_stream(args.demo, seed=args.seed)
    if not streams:
        raise SystemExit(
            "monitor: provide at least one observation CSV, '-', or --demo N"
        )
    return streams


def _cmd_stats(args) -> int:
    from repro.obs.stats import format_summary, summarize_events

    summary = summarize_events(args.events, top=args.top)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(format_summary(summary))
    return 0


def _cmd_report(args) -> int:
    from repro.obs import report as report_mod

    data = report_mod.collect_report_data(
        args.events, args.bench, baseline_dir=args.baseline,
        tolerance=args.tolerance,
    )
    out = report_mod.generate_report(
        args.events, args.bench, baseline_dir=args.baseline,
        tolerance=args.tolerance, out=args.out, title=args.title, data=data,
    )
    print(f"report written to {out} "
          f"({data['n_events']} events, {len(data['benches'])} bench "
          f"report(s), {data['n_regressions']} regression(s))")
    if args.fail_on_regression and data["n_regressions"]:
        print(f"report: {data['n_regressions']} bench regression(s) beyond "
              f"±{args.tolerance:.0%}", file=sys.stderr)
        return 1
    return 0


def _cmd_monitor(args) -> int:
    from repro.streaming import MonitorConfig, MultiPathMonitor

    config = MonitorConfig(
        window=args.window,
        hop=args.hop,
        n_symbols=args.symbols,
        n_hidden=args.hidden,
        model=args.model,
        beta0=args.beta0,
        beta1=args.beta1,
        confirm=args.confirm,
        memory=args.memory,
        gate_stationarity=not args.no_stationarity_gate,
    )
    monitor = MultiPathMonitor(config, n_jobs=args.jobs,
                               drain_mode=args.drain_mode)
    if args.trace:
        from repro.obs import trace as trace_mod

        trace_mod.enable_tracing()
    if args.health:
        from repro.obs import health as health_mod

        health_mod.enable_health()
    iterators = {path: iter(s) for path, s in _monitor_streams(args).items()}

    recorder = None
    watchdog = None
    if args.flight_recorder or args.stall_timeout:
        from repro.obs.recorder import FlightRecorder, Watchdog

        # Attach before the first event (run.manifest below) so the
        # ring sees the whole run from the start.
        recorder = FlightRecorder().attach()
        if args.flight_recorder:
            recorder.install_signal_dumps(args.flight_recorder)
        if args.stall_timeout:
            watchdog = Watchdog(
                timeout=args.stall_timeout, recorder=recorder,
                dump_dir=args.flight_recorder,
            ).start()

    _record_provenance(args, "monitor", config, inputs=args.inputs)

    if obs.is_enabled():
        # Zero-valued series make every monitor-relevant metric family
        # visible to scrapes before the first fallback or verdict flip.
        obs.schema.preregister(obs.registry())
    server = None
    if args.metrics_port is not None:
        from repro.obs.httpd import MetricsServer

        server = MetricsServer(port=args.metrics_port).start()
        print(f"metrics: {server.url}", file=sys.stderr)

    engine = None
    if args.alert_rules:
        from repro.obs.alerts import DEFAULT_RULES, AlertEngine, parse_rules

        text = (DEFAULT_RULES if args.alert_rules == "default"
                else Path(args.alert_rules).read_text(encoding="utf-8"))
        engine = AlertEngine(parse_rules(text))

    profiler = None
    if args.profile:
        from repro.obs import profiling

        profiler = profiling.enable_profiling()

    def write_metrics() -> None:
        if args.metrics_file:
            Path(args.metrics_file).write_text(
                obs.registry().to_prometheus(), encoding="utf-8"
            )

    emitted = 0

    def emit(events) -> bool:
        """Print events as JSONL; True once --max-windows is reached."""
        nonlocal emitted
        for event in events:
            print(json.dumps(event.to_dict()), flush=True)
            emitted += 1
            if args.max_windows is not None and emitted >= args.max_windows:
                return True
        return False

    burst = config.hop
    stop = False
    try:
        while iterators:
            exhausted = []
            for path, iterator in iterators.items():
                for _ in range(burst):
                    try:
                        send_time, delay = next(iterator)
                    except StopIteration:
                        exhausted.append(path)
                        break
                    monitor.ingest(path, send_time, delay)
            for path in exhausted:
                del iterators[path]
            stop = emit(monitor.drain())
            write_metrics()
            if engine is not None:
                engine.evaluate()
            obs.heartbeat()
            if stop:
                break
        if not stop:
            emit(monitor.finish())
    except KeyboardInterrupt:  # pragma: no cover - interactive tail mode
        emit(monitor.drain())
    finally:
        if engine is not None:
            engine.evaluate()
        write_metrics()
        if profiler is not None:
            from repro.obs import profiling

            profiling.disable_profiling()
            profiler.emit_events()
            formatted = profiler.format()
            if formatted:
                print(formatted, file=sys.stderr)
        if watchdog is not None:
            watchdog.stop()
        if recorder is not None:
            recorder.uninstall_signal_dumps()
            recorder.detach()
        if server is not None:
            server.close()
        if args.trace:
            from repro.obs import trace as trace_mod

            trace_mod.disable_tracing()
        if args.health:
            from repro.obs import health as health_mod

            health_mod.disable_health()
    if engine is not None and engine.fatal_fired:
        print(f"monitor: fatal alert(s) fired: "
              f"{', '.join(engine.active_alerts()) or '(resolved)'}",
              file=sys.stderr)
        return 3
    return 0


def _cmd_serve(args) -> int:
    import signal

    from repro.service import (BackpressurePolicy, FleetService, ServiceAPI,
                               IterableSource, TailSource)
    from repro.streaming import MonitorConfig

    config = MonitorConfig(
        window=args.window,
        hop=args.hop,
        n_symbols=args.symbols,
        n_hidden=args.hidden,
        model=args.model,
        beta0=args.beta0,
        beta1=args.beta1,
        confirm=args.confirm,
        memory=args.memory,
        gate_stationarity=not args.no_stationarity_gate,
    )
    policy = BackpressurePolicy(
        mode=args.backpressure,
        high_watermark=args.high_watermark,
        low_watermark=args.low_watermark,
        factor=args.coarsen_factor,
    )

    slo_eval = None
    if args.slo and args.slo != "none":
        from repro.obs.slo import DEFAULT_SLOS, SLOEvaluator, parse_slos

        slo_text = (DEFAULT_SLOS if args.slo == "default"
                    else Path(args.slo).read_text(encoding="utf-8"))
        slo_eval = SLOEvaluator(parse_slos(slo_text))

    rules = []
    if args.alert_rules and args.alert_rules != "none":
        from repro.obs.alerts import DEFAULT_RULES, parse_rules

        text = (DEFAULT_RULES if args.alert_rules == "default"
                else Path(args.alert_rules).read_text(encoding="utf-8"))
        rules = parse_rules(text)
    if slo_eval is not None:
        # Declared SLOs always alert, even with --alert-rules none.
        rules = rules + slo_eval.alert_rules()
    engine = None
    if rules:
        from repro.obs.alerts import AlertEngine

        engine = AlertEngine(rules)

    trace_store = None
    if args.trace:
        from repro.obs import trace as trace_mod

        trace_mod.enable_tracing()
        trace_store = trace_mod.TraceStore()

    health_store = None
    if args.health:
        from repro.obs import health as health_mod

        health_mod.enable_health()
        health_store = health_mod.HealthStore()

    # The service always keeps queryable history of its own gauges —
    # GET /query is what makes the /fleet sparklines and incident
    # forensics possible, and the store is bounded by construction.
    from repro.obs.tsdb import TimeSeriesStore

    tsdb = TimeSeriesStore()

    emit_fn = None
    if not args.quiet:
        def emit_fn(payload):
            print(json.dumps(payload), flush=True)

    service = FleetService(
        base_config=config,
        n_jobs=args.jobs,
        max_pending=args.max_pending,
        drain_mode=args.drain_mode,
        backpressure=policy,
        alert_engine=engine,
        emit_fn=emit_fn,
        tsdb=tsdb,
        trace_store=trace_store,
        slo=slo_eval,
        health_store=health_store,
    )
    for spec in args.inputs:
        service.register(spec, source=TailSource(spec, follow=args.follow))
    if args.demo:
        from repro.experiments.streams import strong_dcl_stream

        for i in range(max(1, args.demo_paths)):
            service.register(
                f"demo-{i}",
                source=IterableSource(
                    strong_dcl_stream(args.demo, seed=args.seed + i)),
            )

    # Clean-stop handler first, then the flight recorder's dump handler:
    # on SIGTERM the recorder dumps its ring, restores this handler and
    # re-raises, so the loop still winds down and the process exits 0.
    def _request_stop(signum, frame):  # noqa: ARG001 - signal API
        service.stop()

    previous = {
        sig: signal.signal(sig, _request_stop)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }

    recorder = None
    watchdog = None
    if args.flight_recorder or args.stall_timeout:
        from repro.obs.recorder import FlightRecorder, Watchdog

        recorder = FlightRecorder().attach()
        if args.flight_recorder:
            recorder.install_signal_dumps(args.flight_recorder)
        if args.stall_timeout:
            watchdog = Watchdog(
                timeout=args.stall_timeout, recorder=recorder,
                dump_dir=args.flight_recorder,
            ).start()

    _record_provenance(args, "serve", config, inputs=args.inputs)
    obs.schema.preregister(obs.registry())

    server = ServiceAPI(service, port=args.port, host=args.host).start()
    print(f"service: {server.base_url} "
          f"(paths={len(service.registry)}, "
          f"backpressure={policy.mode})", file=sys.stderr)

    def write_metrics() -> None:
        if args.metrics_file:
            Path(args.metrics_file).write_text(
                obs.registry().to_prometheus(), encoding="utf-8"
            )

    try:
        service.run(
            interval=args.interval,
            max_cycles=args.max_cycles,
            exit_when_idle=args.exit_when_idle,
        )
        if engine is not None:
            engine.evaluate()
    except KeyboardInterrupt:  # pragma: no cover - direct ^C in a TTY
        pass
    finally:
        server.close()
        service.close()
        write_metrics()
        if args.trace:
            from repro.obs import trace as trace_mod

            trace_mod.disable_tracing()
        if args.health:
            from repro.obs import health as health_mod

            health_mod.disable_health()
        if watchdog is not None:
            watchdog.stop()
        if recorder is not None:
            recorder.uninstall_signal_dumps()
            recorder.detach()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    if engine is not None and engine.fatal_fired:
        print(f"serve: fatal alert(s) fired: "
              f"{', '.join(engine.active_alerts()) or '(resolved)'}",
              file=sys.stderr)
        return 3
    return 0


def _configure_logging(level: Optional[str]) -> None:
    if not level:
        return
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter(
        "%(asctime)s %(name)s %(levelname)s %(message)s"
    ))
    logger = logging.getLogger("repro")
    logger.addHandler(handler)
    logger.setLevel(level.upper())


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(args.log_level)
    handlers = {
        "simulate": _cmd_simulate,
        "identify": _cmd_identify,
        "bound": _cmd_bound,
        "clock": _cmd_clock,
        "pinpoint": _cmd_pinpoint,
        "monitor": _cmd_monitor,
        "serve": _cmd_serve,
        "stats": _cmd_stats,
        "report": _cmd_report,
    }
    # Telemetry turns on when a run asks for an event file or (monitor
    # only) any metrics/diagnostics output; metrics-only runs pass
    # events=None, and the flight recorder / watchdog / alert engine /
    # profiler all ride on the telemetry substrate.
    telemetry = getattr(args, "telemetry", None)
    wants_metrics = (
        args.command == "serve"  # the service always exports its gauges
        or getattr(args, "metrics_file", None) is not None
        or getattr(args, "metrics_port", None) is not None
        or getattr(args, "alert_rules", None) is not None
        or getattr(args, "flight_recorder", None) is not None
        or getattr(args, "stall_timeout", None) is not None
        or getattr(args, "profile", False)
        or getattr(args, "trace", False)
        or getattr(args, "health", False)
        or getattr(args, "slo", None) is not None
    )
    enabled_here = False
    if telemetry or wants_metrics:
        obs.enable(events=telemetry, clear=True,
                   max_bytes=getattr(args, "telemetry_max_bytes", None))
        enabled_here = True
    try:
        return handlers[args.command](args)
    finally:
        if enabled_here:
            obs.disable()


if __name__ == "__main__":  # pragma: no cover - module is exercised via main()
    sys.exit(main())
