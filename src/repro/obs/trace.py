"""Record-to-verdict tracing: where did this verdict's seconds go?

A delay-based DCL inference acted on late is as misleading as a wrong
one, so the fleet service needs more than an aggregate lag gauge — it
needs, per published verdict, the decomposition *ingest → window-close →
queue-wait → E-step → publish*.  This module provides it:

* a **tracing switch** (:func:`enable_tracing` / :func:`disable_tracing`)
  that mirrors the ``repro.obs`` enabled flag: every stamping site in
  the pipeline reads one module attribute and does nothing when tracing
  is off, so the hot paths are zero-cost by default;
* :class:`WindowTrace` — the per-window context created when the
  sliding-window assembler closes a window, carried on the
  ``ProbeWindow`` through the scheduler's ready queue and the fused
  drain, and finalized when the verdict tracker publishes.  Stamps are
  ``time.monotonic()`` values; derived stage durations are exposed by
  :meth:`WindowTrace.stages`;
* :class:`TraceStore` — a bounded ring of finalized traces per path
  plus a global slowest-N exemplar ring, behind ``GET /traces/{id}``.

Trace data rides *next to* the verdict event (an object attribute), not
inside its JSON payload — verdict streams stay byte-identical with
tracing on or off, which the service test-suite and the trace-smoke CI
job both assert.

Stage semantics (all monotonic-clock seconds):

``ingest``
    first record admitted → window closed (how long the window took to
    fill; dominated by the probe rate, not the service).
``queue``
    window closed → drain round picked it up (ready-queue wait; grows
    under backpressure).
``fit``
    E-step batch start → batch end.  Windows fused into one mega-batch
    share the batch's span — the per-window number answers "how long was
    this window inside the solver", not "how many solver-seconds did it
    consume".
``publish``
    batch end → verdict event constructed.
``total``
    last record admitted → verdict constructed: the record-to-verdict
    freshness number the SLO layer watches
    (``repro_record_to_verdict_seconds``).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional

from repro import obs

__all__ = [
    "WindowTrace",
    "TraceStore",
    "enable_tracing",
    "disable_tracing",
    "is_tracing",
    "STAGE_BUCKETS",
]

#: Finer-than-default buckets for per-stage durations: queue waits and
#: publish hops sit well under the 1ms floor of ``DEFAULT_BUCKETS``.
STAGE_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Module-level switch read directly by the stamping sites (one
#: attribute load on the hot path, same pattern as ``obs._ENABLED``).
_TRACING = False


def enable_tracing() -> None:
    """Turn record-to-verdict tracing on (requires obs telemetry for
    metrics/events to actually record, but stamping works regardless)."""
    global _TRACING
    obs.registry().describe(
        "repro_trace_stage_seconds",
        "Per-stage record-to-verdict latency decomposition.",
        buckets=STAGE_BUCKETS,
    )
    obs.registry().describe(
        "repro_record_to_verdict_seconds",
        "Freshness of published verdicts: last record to verdict.",
        buckets=STAGE_BUCKETS,
    )
    _TRACING = True


def disable_tracing() -> None:
    """Turn tracing off; already-stamped windows still finalize."""
    global _TRACING
    _TRACING = False


def is_tracing() -> bool:
    """Whether trace contexts are being created and stamped."""
    return _TRACING


class WindowTrace:
    """Monotonic stamps accumulated as one window crosses the pipeline.

    Created by the assembler at window close; the scheduler and tracker
    fill in the later stamps.  ``None`` stamps mean the window never
    reached that stage (e.g. a skipped window has no fit stamps).
    """

    __slots__ = ("path", "window_index", "ingest_first", "ingest_last",
                 "assembled_at", "drain_started", "fit_started",
                 "fit_ended", "published_at")

    def __init__(self, ingest_first: Optional[float],
                 ingest_last: Optional[float], assembled_at: float):
        self.path: Optional[str] = None
        self.window_index: Optional[int] = None
        self.ingest_first = ingest_first
        self.ingest_last = ingest_last
        self.assembled_at = assembled_at
        self.drain_started: Optional[float] = None
        self.fit_started: Optional[float] = None
        self.fit_ended: Optional[float] = None
        self.published_at: Optional[float] = None

    @staticmethod
    def _span(start: Optional[float], stop: Optional[float]
              ) -> Optional[float]:
        if start is None or stop is None:
            return None
        return max(0.0, stop - start)

    def stages(self) -> Dict[str, Optional[float]]:
        """Derived per-stage durations (seconds; None = never reached)."""
        return {
            "ingest": self._span(self.ingest_first, self.assembled_at),
            "queue": self._span(self.assembled_at, self.drain_started),
            "fit": self._span(self.fit_started, self.fit_ended),
            "publish": self._span(self.fit_ended, self.published_at),
            "total": self._span(self.ingest_last, self.published_at),
        }

    def finalize(self, path: str, window_index: int,
                 published_at: float) -> Dict[str, Optional[float]]:
        """Stamp publication, record metrics + the ``trace.window``
        event, and return the stage breakdown."""
        self.path = path
        self.window_index = window_index
        self.published_at = published_at
        stages = self.stages()
        if obs.is_enabled():
            for stage in ("ingest", "queue", "fit", "publish"):
                value = stages[stage]
                if value is not None:
                    obs.observe("repro_trace_stage_seconds", value,
                                stage=stage)
            total = stages["total"]
            if total is not None:
                obs.observe("repro_record_to_verdict_seconds", total)
            obs.inc("repro_traces_total")
            obs.emit(
                "trace.window",
                path=path,
                window=window_index,
                stages={k: v for k, v in stages.items() if v is not None},
            )
        return stages

    def to_dict(self) -> dict:
        """JSON projection served by ``GET /traces/{id}``."""
        stages = self.stages()
        return {
            "path": self.path,
            "window": self.window_index,
            "stages": {k: v for k, v in stages.items() if v is not None},
            "stamps": {
                "ingest_first": self.ingest_first,
                "ingest_last": self.ingest_last,
                "assembled_at": self.assembled_at,
                "drain_started": self.drain_started,
                "fit_started": self.fit_started,
                "fit_ended": self.fit_ended,
                "published_at": self.published_at,
            },
        }


class TraceStore:
    """Bounded retention of finalized traces.

    Per path: the last ``per_path`` traces (a waterfall of recent
    windows).  Globally: the ``slowest`` highest-total exemplars — the
    ring an operator checks first when the freshness SLO burns.
    """

    def __init__(self, per_path: int = 32, slowest: int = 16):
        self._lock = threading.Lock()
        self._per_path = int(per_path)
        self._slowest_cap = int(slowest)
        self._paths: Dict[str, deque] = {}
        self._slowest: List[dict] = []

    def add(self, trace: WindowTrace) -> None:
        """Retain one finalized trace (called at verdict publication)."""
        entry = trace.to_dict()
        total = entry["stages"].get("total")
        with self._lock:
            ring = self._paths.get(entry["path"])
            if ring is None:
                ring = deque(maxlen=self._per_path)
                self._paths[entry["path"]] = ring
            ring.append(entry)
            if total is not None:
                self._slowest.append(entry)
                self._slowest.sort(
                    key=lambda e: e["stages"].get("total", 0.0),
                    reverse=True)
                del self._slowest[self._slowest_cap:]

    def forget(self, path: str) -> None:
        """Drop the per-path ring (slowest exemplars survive)."""
        with self._lock:
            self._paths.pop(path, None)

    def path_traces(self, path: str) -> List[dict]:
        """Recent traces for one path, oldest first ([] when unknown)."""
        with self._lock:
            ring = self._paths.get(path)
            return list(ring) if ring is not None else []

    def slowest(self) -> List[dict]:
        """The slowest-total exemplars across the fleet, worst first."""
        with self._lock:
            return list(self._slowest)

    def paths(self) -> List[str]:
        """Sorted path ids with at least one retained trace."""
        with self._lock:
            return sorted(self._paths)
