"""Declarative alert rules evaluated over the metrics registry.

An operator watching a fleet of monitors does not read raw JSONL; they
declare what "unhealthy" means and let the engine say when it starts and
stops.  Rules are one line each::

    <name>: [rate] <metric>{label=value,...} <op> <threshold> [for N] [fatal|warn]

* ``rate`` evaluates the per-second increase of the metric between
  engine evaluations (counters; the first evaluation only establishes
  the baseline), otherwise the current value is compared;
* the metric may be any registry family — counters matching the label
  *subset* are summed (so ``repro_streaming_fallbacks_total`` with no
  labels alerts on the total across reasons), gauges take the max over
  matching series, histograms use their observation count;
* ``op`` is ``>``, ``>=``, ``<`` or ``<=``;
* ``for N`` requires the condition on ``N`` consecutive evaluations
  before firing (default 1), the alert analogue of the verdict
  tracker's K-of-N hysteresis;
* ``fatal`` (vs the default ``warn``) makes ``repro monitor`` exit
  nonzero once the rule has fired.

Transitions emit ``alert.fired`` / ``alert.resolved`` events and bump
``repro_alerts_fired_total``; a fired alert resolves when its condition
stops holding.  :data:`DEFAULT_RULES` covers the failure modes the
streaming subsystem documents: likelihood-collapse fallback bursts,
window backlog/lag, verdict flapping past the hysteresis, watchdog
stalls, and pool breaks.
"""

from __future__ import annotations

import re
import time
from typing import Dict, List, Optional

__all__ = [
    "AlertRule",
    "AlertEngine",
    "parse_rules",
    "DEFAULT_RULES",
]

#: Built-in rule set for ``repro monitor --alert-rules default``.
DEFAULT_RULES = """\
# Warm-start collapse: cold refits driven by zero-likelihood warm fits
# arriving faster than one every ~3 windows means the path's regime is
# shifting faster than the monitor can track (or EM is broken).
likelihood-collapse-burst: rate repro_streaming_fallbacks_total{reason=zero-likelihood} > 0.3 for 2 fatal
# Any sustained fallback churn (all reasons) is worth a warning.
fallback-churn: rate repro_streaming_fallbacks_total > 0.5 for 2 warn
# Verdict flapping beyond what the K-of-N hysteresis should allow.
verdict-flapping: rate repro_verdict_changes_total > 0.2 for 2 warn
# Ingestion is outrunning fitting: pending windows being dropped.
window-backlog: rate repro_windows_dropped_total > 0 for 2 fatal
# The watchdog saw no pipeline progress within its timeout.
watchdog-stall: repro_watchdog_stalls_total > 0 fatal
# The worker pool died and work fell back to serial reruns.
pool-broken: repro_pool_breaks_total > 0 warn
# Fleet-service backlog growing monotonically: drains cannot keep up
# with ingest even after backpressure — shed/coarsen is misconfigured
# or the fleet has outgrown the host.  The gauge rate is windows/s of
# net growth sustained across three evaluations.
service-backlog-growth: rate repro_service_backlog_windows > 2 for 3 fatal
# Model assumptions no longer hold on some path: the fleet-minimum
# model-health score (see repro.obs.health) sat below 0.5 on two
# consecutive evaluations.  The gauge only exists once health scoring
# is enabled, so the rule is inert otherwise.
model-health-degraded: repro_model_health_min < 0.5 for 2 warn
"""

_OPS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}

_RULE_RE = re.compile(
    r"^(?P<name>[\w.-]+)\s*:\s*"
    r"(?:(?P<rate>rate)\s+)?"
    r"(?P<metric>[A-Za-z_:][\w:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s*"
    r"(?P<op>>=|<=|>|<)\s*"
    r"(?P<threshold>[-+]?[\d.]+(?:[eE][-+]?\d+)?)"
    r"(?:\s+for\s+(?P<for>\d+))?"
    r"(?:\s+(?P<severity>warn|fatal))?\s*$"
)


class AlertRule:
    """One declarative rule (see the module docstring for the syntax)."""

    __slots__ = ("name", "metric", "labels", "op", "threshold", "mode",
                 "for_count", "severity")

    def __init__(
        self,
        name: str,
        metric: str,
        op: str,
        threshold: float,
        labels: Optional[Dict[str, str]] = None,
        mode: str = "value",
        for_count: int = 1,
        severity: str = "warn",
    ):
        if op not in _OPS:
            raise ValueError(f"op must be one of {sorted(_OPS)}, got {op!r}")
        if mode not in ("value", "rate"):
            raise ValueError(f"mode must be value or rate, got {mode!r}")
        if severity not in ("warn", "fatal"):
            raise ValueError(
                f"severity must be warn or fatal, got {severity!r}")
        if for_count < 1:
            raise ValueError(f"for_count must be >= 1, got {for_count}")
        self.name = name
        self.metric = metric
        self.labels = dict(labels or {})
        self.op = op
        self.threshold = float(threshold)
        self.mode = mode
        self.for_count = int(for_count)
        self.severity = severity

    def describe(self) -> str:
        """The rule back in its one-line syntax."""
        labels = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        metric = f"{self.metric}{{{labels}}}" if labels else self.metric
        rate = "rate " if self.mode == "rate" else ""
        for_part = f" for {self.for_count}" if self.for_count > 1 else ""
        return (f"{self.name}: {rate}{metric} {self.op} "
                f"{self.threshold:g}{for_part} {self.severity}")


def _parse_labels(text: Optional[str]) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if not text or not text.strip():
        return labels
    for pair in text.split(","):
        if "=" not in pair:
            raise ValueError(f"bad label matcher {pair!r} (want key=value)")
        key, value = pair.split("=", 1)
        labels[key.strip()] = value.strip().strip('"')
    return labels


def parse_rules(text: str) -> List[AlertRule]:
    """Parse a rules file; raises ValueError with the offending line."""
    rules: List[AlertRule] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _RULE_RE.match(line)
        if match is None:
            raise ValueError(f"alert rules line {lineno}: cannot parse {line!r}")
        rules.append(AlertRule(
            name=match["name"],
            metric=match["metric"],
            op=match["op"],
            threshold=float(match["threshold"]),
            labels=_parse_labels(match["labels"]),
            mode="rate" if match["rate"] else "value",
            for_count=int(match["for"] or 1),
            severity=match["severity"] or "warn",
        ))
    names = [rule.name for rule in rules]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ValueError(f"duplicate alert rule names: {sorted(duplicates)}")
    return rules


class _RuleState:
    __slots__ = ("breaches", "active", "last_raw")

    def __init__(self):
        self.breaches = 0
        self.active = False
        self.last_raw: Optional[float] = None


class AlertEngine:
    """Evaluate a rule set against a registry, tracking fire/resolve state.

    Call :meth:`evaluate` periodically (the monitor does so once per
    drain).  Each call samples the registry once, updates every rule,
    and returns the transitions that happened — also emitted as
    ``alert.fired`` / ``alert.resolved`` events.
    """

    def __init__(self, rules: List[AlertRule], registry=None):
        if registry is None:
            from repro import obs

            registry = obs.registry()
        self.rules = list(rules)
        self.registry = registry
        # Pre-create each rule's fired-counter series at zero so scrapes
        # can tell "never fired" from "not monitored".
        for rule in self.rules:
            registry.inc("repro_alerts_fired_total", 0.0,
                         rule=rule.name, severity=rule.severity)
        self._states = {rule.name: _RuleState() for rule in self.rules}
        self._last_time: Optional[float] = None
        self.n_fired = 0
        self.n_resolved = 0
        self.fatal_fired = False

    # ------------------------------------------------------------------
    # Metric lookup
    # ------------------------------------------------------------------
    @staticmethod
    def _matches(sample_labels, wanted: Dict[str, str]) -> bool:
        labels = dict(sample_labels)
        return all(labels.get(k) == v for k, v in wanted.items())

    def _metric_value(self, snapshot: dict, rule: AlertRule) -> Optional[float]:
        """Current scalar for a rule: None when the family has no samples."""
        total = None
        for (name, labels), value in snapshot["counters"].items():
            if name == rule.metric and self._matches(labels, rule.labels):
                total = (total or 0.0) + value
        if total is not None:
            return total
        best = None
        for (name, labels), value in snapshot["gauges"].items():
            if name == rule.metric and self._matches(labels, rule.labels):
                best = value if best is None else max(best, value)
        if best is not None:
            return best
        count = None
        for (name, labels), (_b, _c, _t, n) in snapshot["histograms"].items():
            if name == rule.metric and self._matches(labels, rule.labels):
                count = (count or 0) + n
        return None if count is None else float(count)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, now: Optional[float] = None) -> List[dict]:
        """One evaluation pass; returns fired/resolved transitions."""
        from repro import obs

        now = time.monotonic() if now is None else now
        dt = None if self._last_time is None else now - self._last_time
        snapshot = self.registry.snapshot()
        transitions: List[dict] = []
        for rule in self.rules:
            state = self._states[rule.name]
            raw = self._metric_value(snapshot, rule)
            if rule.mode == "rate":
                if raw is None or state.last_raw is None or not dt or dt <= 0:
                    value = None
                else:
                    value = (raw - state.last_raw) / dt
                if raw is not None:
                    state.last_raw = raw
            else:
                value = raw
            breached = value is not None and _OPS[rule.op](value,
                                                          rule.threshold)
            state.breaches = state.breaches + 1 if breached else 0
            if breached and not state.active \
                    and state.breaches >= rule.for_count:
                state.active = True
                self.n_fired += 1
                if rule.severity == "fatal":
                    self.fatal_fired = True
                self.registry.inc("repro_alerts_fired_total", 1.0,
                                  rule=rule.name, severity=rule.severity)
                obs.emit(
                    "alert.fired",
                    rule=rule.name,
                    severity=rule.severity,
                    value=round(value, 6),
                    threshold=rule.threshold,
                    expr=rule.describe(),
                )
                transitions.append({"rule": rule.name, "event": "fired",
                                    "severity": rule.severity,
                                    "value": value})
            elif state.active and not breached:
                state.active = False
                self.n_resolved += 1
                obs.emit(
                    "alert.resolved",
                    rule=rule.name,
                    value=None if value is None else round(value, 6),
                    threshold=rule.threshold,
                )
                transitions.append({"rule": rule.name, "event": "resolved",
                                    "severity": rule.severity,
                                    "value": value})
        self._last_time = now
        return transitions

    def active_alerts(self) -> List[str]:
        """Names of rules currently firing."""
        return [rule.name for rule in self.rules
                if self._states[rule.name].active]
