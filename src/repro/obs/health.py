"""Model-health observability: drift detection and verdict confidence.

The stack's metrics/traces/SLOs watch the *system*; this module watches
the *model*.  Per analysed window, :mod:`repro.models.diagnostics`
produces goodness-of-fit byproducts of one extra E-pass; this module
feeds them through streaming drift detectors and rolls everything up
into a per-path ``model_health`` score in ``[0, 1]`` with a typed list
of violated-assumption reasons:

* :class:`CusumDetector` and :class:`PageHinkleyDetector` watch the
  per-observation mean log-likelihood window over window — a level
  shift means the path entered a regime the model class predicts worse
  (or suspiciously better) than its own recent baseline;
* :class:`ChiSquareDrift` compares consecutive windows' symbol/loss
  category counts (two-sample chi-square) — model-free detection of
  emission-distribution drift;
* absolute goodness-of-fit terms (posterior-predictive residual ``z``,
  dwell-time CV gap vs geometric, loss-channel consistency, ``Q_k``
  bound margin) apply bounded discounts so a path that fits poorly in
  a *stationary* way still reads below a drifting-but-recoverable one.

Enabling works exactly like :mod:`repro.obs.trace`: a module flag read
at the few touch points (:func:`enable_health` / :func:`disable_health`
/ :func:`is_health_enabled`), so health-disabled runs pay one attribute
check per published verdict and nothing per probe.  Health data rides
*next to* verdict events as object attributes — never inside their JSON
payloads — so verdict streams stay byte-identical with health on or
off (asserted by the test suite and the health-smoke CI job).

Detectors are self-normalizing: the first ``warmup`` analysed windows
establish a baseline, alarms re-baseline to the new regime (health can
recover after a step change once the model refits), and windows without
evidence (zero losses, degenerate posteriors) return ``health=None``
without touching detector state — insufficient evidence is not drift.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional

import numpy as np

from repro import obs

__all__ = [
    "HealthConfig",
    "CusumDetector",
    "PageHinkleyDetector",
    "ChiSquareDrift",
    "HealthReport",
    "PathHealth",
    "HealthStore",
    "verdict_confidence",
    "enable_health",
    "disable_health",
    "is_health_enabled",
    "REASONS",
]

#: Typed violated-assumption reasons a report can carry.
REASONS = (
    "loglik-shift",          # CUSUM / Page-Hinkley fired on mean loglik
    "emission-shift",        # window-over-window chi-square fired
    "predictive-residual",   # posterior-predictive counts off in-window
    "dwell-nongeometric",    # run-length CV far from geometric
    "loss-rate-mismatch",    # loss channel inconsistent with the fit
    "qk-bound-fragile",      # G mass creeping toward the beta0 level
    "insufficient-evidence", # no losses / degenerate posterior
)

#: Module-level switch read by the stamping sites (same pattern as
#: ``obs._ENABLED`` and ``trace._TRACING``).
_HEALTH = False

#: Latest per-path health values backing the fleet-min gauge the
#: ``model-health-degraded`` alert rule watches.
_FLEET_LOCK = threading.Lock()
_FLEET_HEALTH: Dict[str, float] = {}


def enable_health() -> None:
    """Turn model-health scoring on (diagnostics passes start running)."""
    global _HEALTH
    obs.registry().describe(
        "repro_model_health",
        "Per-path model-health score in [0, 1] (1 = assumptions hold).",
    )
    obs.registry().describe(
        "repro_model_health_min",
        "Fleet-wide minimum model-health score (alerting surface).",
    )
    _HEALTH = True


def disable_health() -> None:
    """Turn model-health scoring off and drop the fleet gauge state."""
    global _HEALTH
    _HEALTH = False
    with _FLEET_LOCK:
        _FLEET_HEALTH.clear()


def is_health_enabled() -> bool:
    """Whether diagnostics passes and health roll-ups are running."""
    return _HEALTH


def _forget_fleet_path(path: str) -> None:
    with _FLEET_LOCK:
        _FLEET_HEALTH.pop(path, None)


def _update_fleet_gauges(path: str, health: float) -> None:
    with _FLEET_LOCK:
        _FLEET_HEALTH[path] = health
        fleet_min = min(_FLEET_HEALTH.values())
    if obs.is_enabled():
        obs.set_gauge("repro_model_health", health, path=path)
        obs.set_gauge("repro_model_health_min", fleet_min)


class HealthConfig:
    """Thresholds of the detectors and the score roll-up."""

    def __init__(
        self,
        warmup: int = 8,
        cusum_k: float = 0.75,
        cusum_h: float = 10.0,
        ph_delta: float = 0.5,
        ph_lambda: float = 15.0,
        chi2_z: float = 80.0,
        alarm_hold: int = 5,
        residual_soft_z: float = 4.0,
        residual_hard_z: float = 10.0,
        dwell_soft_gap: float = 1.5,
        dwell_hard_gap: float = 2.5,
        loss_soft_gap: float = 0.5,
        loss_hard_gap: float = 1.5,
        qk_margin_fraction: float = 0.5,
    ):
        self.warmup = int(warmup)
        self.cusum_k = float(cusum_k)
        self.cusum_h = float(cusum_h)
        self.ph_delta = float(ph_delta)
        self.ph_lambda = float(ph_lambda)
        self.chi2_z = float(chi2_z)
        #: windows a drift alarm keeps discounting health after firing.
        self.alarm_hold = int(alarm_hold)
        self.residual_soft_z = float(residual_soft_z)
        self.residual_hard_z = float(residual_hard_z)
        #: The pooled run-length CV is biased upward for hidden-state
        #: mixtures (phase-type dwell, runs pooled across symbols), so
        #: the in-model gap already spans ~0.3-1.1; the ramp only
        #: penalises gaps far outside that band.
        self.dwell_soft_gap = float(dwell_soft_gap)
        self.dwell_hard_gap = float(dwell_hard_gap)
        self.loss_soft_gap = float(loss_soft_gap)
        self.loss_hard_gap = float(loss_hard_gap)
        self.qk_margin_fraction = float(qk_margin_fraction)


def _ramp(value: float, soft: float, hard: float, floor: float) -> float:
    """1.0 below ``soft``, linear down to ``floor`` at ``hard``."""
    if value <= soft:
        return 1.0
    if value >= hard:
        return floor
    return 1.0 - (1.0 - floor) * (value - soft) / (hard - soft)


class _Baseline:
    """Welford mean/std of the in-control samples seen so far.

    Detectors standardize each sample against the baseline *before*
    folding it in (prequential), so the baseline keeps converging while
    the process is in control instead of freezing on a noisy
    ``warmup``-sample estimate — a frozen 8-sample baseline misjudges
    the std badly enough to push the stationary false-alarm rate above
    50% per thousand windows (measured); the converging one drives it
    to zero at the default thresholds.
    """

    __slots__ = ("n", "mean", "_m2", "warmup")

    def __init__(self, warmup: int):
        self.warmup = int(warmup)
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def push(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)

    @property
    def ready(self) -> bool:
        return self.n >= self.warmup

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        return float(np.sqrt(self._m2 / (self.n - 1)))

    def standardize(self, x: float) -> float:
        scale = max(self.std, 1e-3 * abs(self.mean), 1e-9)
        return (x - self.mean) / scale

    def reset(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0


class CusumDetector:
    """Two-sided standardized CUSUM over a per-window scalar.

    The first ``warmup`` samples establish the baseline (no alarms);
    afterwards the usual one-sided statistics ``g+ / g-`` accumulate
    standardized deviations beyond the slack ``k`` and alarm past ``h``.
    An alarm resets the detector — it re-baselines to the new regime so
    health can recover once the model has refit.

    With ``k=0.75, h=10`` the in-control ARL on i.i.d. N(0,1) input is
    far beyond any realistic monitoring horizon (property-tested: zero
    alarms over 300 independent 1000-window runs), and a 3-sigma level
    shift is caught within about ten windows.
    """

    def __init__(self, k: float = 0.75, h: float = 10.0, warmup: int = 8):
        self.k = float(k)
        self.h = float(h)
        self.baseline = _Baseline(warmup)
        self.g_pos = 0.0
        self.g_neg = 0.0
        self.n_alarms = 0

    def update(self, x: float) -> bool:
        """Feed one sample; True when a drift alarm fires this step."""
        if not self.baseline.ready:
            self.baseline.push(x)
            return False
        z = self.baseline.standardize(x)
        self.baseline.push(x)  # prequential: standardize, then fold in
        self.g_pos = max(0.0, self.g_pos + z - self.k)
        self.g_neg = max(0.0, self.g_neg - z - self.k)
        if self.g_pos > self.h or self.g_neg > self.h:
            self.n_alarms += 1
            self.baseline.reset()
            self.g_pos = 0.0
            self.g_neg = 0.0
            return True
        return False


class PageHinkleyDetector:
    """Two-sided Page-Hinkley test over a per-window scalar.

    Classic PH on baseline-standardized samples: the cumulative
    deviation ``m_t = sum(z_i - delta)`` is compared against its running
    extremum; drift fires when the gap exceeds ``lambda``.  Same
    warmup / prequential-baseline / re-baseline semantics as
    :class:`CusumDetector`; ``delta=0.5, lambda=15`` is likewise
    property-tested to zero stationary alarms over 300x1000 windows.
    """

    def __init__(self, delta: float = 0.5, lam: float = 15.0,
                 warmup: int = 8):
        self.delta = float(delta)
        self.lam = float(lam)
        self.baseline = _Baseline(warmup)
        self.m_pos = 0.0
        self.min_pos = 0.0
        self.m_neg = 0.0
        self.max_neg = 0.0
        self.n_alarms = 0

    def _reset(self) -> None:
        self.baseline.reset()
        self.m_pos = self.min_pos = 0.0
        self.m_neg = self.max_neg = 0.0

    def update(self, x: float) -> bool:
        """Feed one sample; True when a drift alarm fires this step."""
        if not self.baseline.ready:
            self.baseline.push(x)
            return False
        z = self.baseline.standardize(x)
        self.baseline.push(x)  # prequential: standardize, then fold in
        self.m_pos += z - self.delta
        self.min_pos = min(self.min_pos, self.m_pos)
        self.m_neg += z + self.delta
        self.max_neg = max(self.max_neg, self.m_neg)
        if (self.m_pos - self.min_pos > self.lam
                or self.max_neg - self.m_neg > self.lam):
            self.n_alarms += 1
            self._reset()
            return True
        return False


class ChiSquareDrift:
    """Window-over-window two-sample chi-square on category counts.

    Compares each window's symbol/loss count vector against the
    previous window's under the pooled null; the statistic is reduced
    to ``z = (chi2 - dof) / sqrt(2 dof)`` and alarms past
    ``z_threshold``.

    The threshold is calibrated *empirically*, not from the N(0,1)
    null: consecutive monitor windows overlap (hop = window/2) and the
    queue process is long-range dependent, so in-model ``z`` routinely
    reaches the tens.  The netsim calibration sweep sees in-model
    ``z`` peak near 60 while an injected emission break produces
    ``z > 100`` — the default sits between the two.
    """

    def __init__(self, z_threshold: float = 80.0):
        self.z_threshold = float(z_threshold)
        self._prev: Optional[np.ndarray] = None
        self.last_z: Optional[float] = None
        self.n_alarms = 0

    def update(self, counts: np.ndarray) -> bool:
        """Feed one window's counts; True when drift fires this step."""
        counts = np.asarray(counts, dtype=float)
        prev = self._prev
        self._prev = counts
        self.last_z = None
        if prev is None or prev.shape != counts.shape:
            return False
        n_a, n_b = prev.sum(), counts.sum()
        if n_a <= 0 or n_b <= 0:
            return False
        pooled = (prev + counts) / (n_a + n_b)
        include = pooled * min(n_a, n_b) >= 1.0
        dof = int(include.sum()) - 1
        if dof < 1:
            return False
        e_a, e_b = pooled * n_a, pooled * n_b
        chi2 = float(
            (((prev - e_a) ** 2)[include] / e_a[include]).sum()
            + (((counts - e_b) ** 2)[include] / e_b[include]).sum()
        )
        self.last_z = float((chi2 - dof) / np.sqrt(2.0 * dof))
        if self.last_z > self.z_threshold:
            self.n_alarms += 1
            self._prev = counts  # new regime becomes the reference
            return True
        return False


class HealthReport:
    """One window's model-health verdict for a path."""

    __slots__ = ("path", "window", "health", "reasons", "alarms", "gof")

    def __init__(self, health: Optional[float], reasons: List[str],
                 alarms: List[str], gof: Optional[dict]):
        self.path: Optional[str] = None
        self.window: Optional[int] = None
        #: None = insufficient evidence this window (not a low score).
        self.health = health
        self.reasons = list(reasons)
        #: drift detectors that fired *this* window (subset of reasons).
        self.alarms = list(alarms)
        #: the diagnostics' JSON projection (None for skipped windows).
        self.gof = gof

    def to_dict(self) -> dict:
        """JSON projection served by ``GET /health/{id}``."""
        return {
            "path": self.path,
            "window": self.window,
            "health": None if self.health is None
            else round(float(self.health), 4),
            "reasons": list(self.reasons),
            "alarms": list(self.alarms),
            "gof": self.gof,
        }

    def finalize(self, path: str, window_index: Optional[int]) -> None:
        """Stamp identity, record metrics and the ``model.health`` event."""
        self.path = path
        self.window = window_index
        if self.health is not None:
            _update_fleet_gauges(path, float(self.health))
        if not obs.is_enabled():
            return
        for detector in self.alarms:
            obs.inc("repro_model_drift_alarms_total", 1.0, detector=detector)
        obs.emit(
            "model.health",
            path=path,
            window=window_index,
            health=None if self.health is None
            else round(float(self.health), 4),
            reasons=list(self.reasons),
            alarms=list(self.alarms),
            gof=self.gof,
        )


class PathHealth:
    """Streaming per-path roll-up of diagnostics into health scores."""

    def __init__(self, config: Optional[HealthConfig] = None):
        self.config = config or HealthConfig()
        cfg = self.config
        self.cusum = CusumDetector(cfg.cusum_k, cfg.cusum_h, cfg.warmup)
        self.page_hinkley = PageHinkleyDetector(
            cfg.ph_delta, cfg.ph_lambda, cfg.warmup)
        self.chi2 = ChiSquareDrift(cfg.chi2_z)
        #: detector -> windows its alarm keeps discounting health.
        self._holds: Dict[str, int] = {}
        self.n_updates = 0

    def _tick_holds(self, fired: List[str]) -> List[str]:
        for name in fired:
            self._holds[name] = self.config.alarm_hold
        active = [name for name, left in self._holds.items() if left > 0]
        self._holds = {name: left - 1 for name, left in self._holds.items()
                       if left - 1 > 0}
        return active

    def update(self, diagnostics, window_index: Optional[int] = None
               ) -> HealthReport:
        """Fold one window's diagnostics into the detectors and score it.

        ``diagnostics`` is a :class:`~repro.models.diagnostics
        .WindowDiagnostics` or ``None`` (skipped window).  Windows
        without evidence leave every detector untouched — a loss-free
        window must not look like drift.
        """
        if diagnostics is None or not diagnostics.ok:
            gof = None if diagnostics is None else diagnostics.to_dict()
            return HealthReport(None, ["insufficient-evidence"], [], gof)
        self.n_updates += 1
        cfg = self.config
        fired: List[str] = []
        if self.cusum.update(diagnostics.mean_loglik):
            fired.append("cusum")
        if self.page_hinkley.update(diagnostics.mean_loglik):
            fired.append("page-hinkley")
        if diagnostics.counts is not None \
                and self.chi2.update(diagnostics.counts):
            fired.append("chi-square")
        active = self._tick_holds(fired)

        score = 1.0
        reasons: List[str] = []
        if "cusum" in active or "page-hinkley" in active:
            score *= 0.3
            reasons.append("loglik-shift")
        if "chi-square" in active:
            score *= 0.45
            reasons.append("emission-shift")
        z = diagnostics.emission_z
        if z is not None:
            factor = _ramp(abs(z), cfg.residual_soft_z,
                           cfg.residual_hard_z, 0.55)
            score *= factor
            if factor < 0.8:
                reasons.append("predictive-residual")
        gap = diagnostics.dwell_gap
        if gap is not None:
            factor = _ramp(gap, cfg.dwell_soft_gap, cfg.dwell_hard_gap, 0.6)
            score *= factor
            if factor < 0.85:
                reasons.append("dwell-nongeometric")
        loss_gap = diagnostics.loss_rate_gap
        if loss_gap is not None:
            factor = _ramp(loss_gap, cfg.loss_soft_gap,
                           cfg.loss_hard_gap, 0.65)
            score *= factor
            if factor < 0.85:
                reasons.append("loss-rate-mismatch")
        below = diagnostics.below_bound_mass
        if below is not None and diagnostics.beta0 \
                and below > cfg.qk_margin_fraction * diagnostics.beta0:
            score *= 0.9
            reasons.append("qk-bound-fragile")
        health = float(max(0.0, min(1.0, score)))
        return HealthReport(health, reasons, fired, diagnostics.to_dict())


class HealthStore:
    """Bounded retention of per-path health reports for the HTTP API."""

    def __init__(self, per_path: int = 64):
        self._lock = threading.Lock()
        self._per_path = int(per_path)
        self._paths: Dict[str, Deque[dict]] = {}

    def add(self, report: HealthReport,
            confidence: Optional[float] = None) -> None:
        """Retain one finalized report (called at verdict publication)."""
        entry = report.to_dict()
        entry["confidence"] = None if confidence is None \
            else round(float(confidence), 4)
        path = entry.get("path")
        if path is None:
            return
        with self._lock:
            ring = self._paths.get(path)
            if ring is None:
                ring = deque(maxlen=self._per_path)
                self._paths[path] = ring
            ring.append(entry)

    def forget(self, path: str) -> None:
        """Drop a path's ring and its fleet-min contribution."""
        with self._lock:
            self._paths.pop(path, None)
        _forget_fleet_path(path)

    def path_reports(self, path: str) -> List[dict]:
        """Recent reports for one path, oldest first ([] when unknown)."""
        with self._lock:
            ring = self._paths.get(path)
            return list(ring) if ring is not None else []

    def paths(self) -> List[str]:
        """Sorted path ids with at least one retained report."""
        with self._lock:
            return sorted(self._paths)

    def fleet(self) -> dict:
        """Fleet rollup: latest health per path plus min/mean."""
        with self._lock:
            latest = {path: ring[-1] for path, ring in self._paths.items()
                      if ring}
        values = [entry["health"] for entry in latest.values()
                  if entry.get("health") is not None]
        return {
            "paths": {path: latest[path] for path in sorted(latest)},
            "min_health": min(values) if values else None,
            "mean_health": round(float(np.mean(values)), 4)
            if values else None,
            "n_paths": len(latest),
        }


def verdict_confidence(health: Optional[float], recent, stable_verdict
                       ) -> Optional[float]:
    """Health-discounted, hysteresis-aware confidence of one verdict.

    ``recent`` is the verdict tracker's K-of-N window (most recent
    per-window verdicts); agreement is the fraction matching the stable
    verdict.  The product of agreement and model health is the number
    an operator should weight the published verdict by.
    """
    agreement = None
    if stable_verdict is not None and len(recent):
        agreement = sum(v == stable_verdict for v in recent) / len(recent)
    if health is None:
        return None if agreement is None else float(agreement)
    if agreement is None:
        return float(health)
    return float(health * agreement)
