"""Declarative SLOs compiled to burn-rate alert rules.

An alert on an instantaneous threshold pages on blips; an alert on a
raw error budget pages hours late.  The standard middle ground is
**multi-window burn-rate alerting**: watch how fast the error budget is
being consumed over a fast and a slow window and page only when *both*
burn — fast catches the onset, slow proves it is not a blip.  This
module implements that on top of the existing
:class:`repro.obs.alerts.AlertEngine`, driven by the histograms the
tracing layer already records.

One SLO per line::

    <name>: p<q> <metric>{label=value,...} < <threshold>[s|ms] over <dur>[s|m|h] budget <pct>% [fatal|warn]

e.g. :data:`DEFAULT_SLOS`'s
``verdict-freshness: p95 repro_record_to_verdict_seconds < 2s over 5m budget 5% warn``.

Semantics:

* a **good event** is a histogram observation ``<= threshold``; the
  threshold is snapped to the nearest histogram bucket edge (fixed
  buckets are all the registry keeps), and the snapped value is what
  :meth:`SLO.describe` reports;
* the **budget** is the tolerated bad-event fraction over ``over``; the
  ``p<q>`` quantile is tracked and reported alongside (current value
  via :func:`repro.obs.metrics.histogram_quantiles`).  When ``budget``
  is omitted it defaults to ``100 - q`` percent — i.e. ``p95 < 2s``
  alone means "at most 5% of events over 2s";
* **burn rate** over a window = (bad fraction in the window) / budget;
  1.0 consumes exactly the budget by the end of the SLO period.  The
  evaluator maintains a fast window (``over``/12, the Google SRE
  convention) and the slow window (``over``), publishes
  ``repro_slo_burn_rate{slo,window}`` plus their minimum as
  ``repro_slo_burn_rate_min{slo}``, and each SLO compiles to one rule
  ``slo-burn-<name>: repro_slo_burn_rate_min{slo=<name>} > 1 for 2``.
  Because gauges alert on the max over matching series, the minimum
  gauge *is* the both-windows-burning condition — no engine changes
  needed;
* ``repro_slo_budget_remaining{slo}`` tracks the unconsumed budget
  fraction over the slow window (1 = untouched, 0 = exhausted,
  negative = overrun), surfaced at ``GET /slo`` and in the report.
"""

from __future__ import annotations

import re
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.obs.alerts import AlertRule
from repro.obs.metrics import histogram_quantiles

__all__ = ["SLO", "SLOEvaluator", "parse_slos", "DEFAULT_SLOS"]

#: Built-in SLOs for ``repro serve --slo default``.
DEFAULT_SLOS = """\
# Verdict freshness: the record-to-verdict latency the tracing layer
# measures.  At most 5% of published verdicts may take over 2 seconds
# from last probe record to publication, judged over 5 minutes.
verdict-freshness: p95 repro_record_to_verdict_seconds < 2s over 5m budget 5% warn
# Control-plane responsiveness: fleet API requests must stay snappy.
api-latency: p99 repro_service_http_seconds < 250ms over 5m budget 1% warn
"""

_DUR_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0}

_SLO_RE = re.compile(
    r"^(?P<name>[\w.-]+)\s*:\s*"
    r"p(?P<q>\d+(?:\.\d+)?)\s+"
    r"(?P<metric>[A-Za-z_:][\w:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s*"
    r"<\s*(?P<threshold>[\d.]+(?:[eE][-+]?\d+)?)(?P<tunit>ms|s)?\s+"
    r"over\s+(?P<window>[\d.]+)(?P<wunit>[smh])?\s*"
    r"(?:budget\s+(?P<budget>[\d.]+)\s*%)?"
    r"(?:\s+(?P<severity>warn|fatal))?\s*$"
)


def _parse_labels(text: Optional[str]) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if not text or not text.strip():
        return labels
    for pair in text.split(","):
        if "=" not in pair:
            raise ValueError(f"bad label matcher {pair!r} (want key=value)")
        key, value = pair.split("=", 1)
        labels[key.strip()] = value.strip().strip('"')
    return labels


class SLO:
    """One parsed objective (see the module docstring for the syntax)."""

    __slots__ = ("name", "quantile", "metric", "labels", "threshold",
                 "window", "budget", "severity")

    def __init__(self, name: str, quantile: float, metric: str,
                 threshold: float, window: float, budget: float,
                 labels: Optional[Dict[str, str]] = None,
                 severity: str = "warn"):
        if not 0 < quantile < 100:
            raise ValueError(f"quantile must be in (0, 100), got {quantile}")
        if not 0 < budget <= 1:
            raise ValueError(f"budget must be in (0, 1], got {budget}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if severity not in ("warn", "fatal"):
            raise ValueError(
                f"severity must be warn or fatal, got {severity!r}")
        self.name = name
        self.quantile = float(quantile)
        self.metric = metric
        self.labels = dict(labels or {})
        self.threshold = float(threshold)
        self.window = float(window)
        self.budget = float(budget)
        self.severity = severity

    def describe(self) -> str:
        """The objective back in its one-line syntax (seconds units)."""
        labels = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        metric = f"{self.metric}{{{labels}}}" if labels else self.metric
        return (f"{self.name}: p{self.quantile:g} {metric} "
                f"< {self.threshold:g}s over {self.window:g}s "
                f"budget {self.budget * 100:g}% {self.severity}")

    def alert_rule(self) -> AlertRule:
        """The compiled burn-rate rule for the alert engine."""
        return AlertRule(
            name=f"slo-burn-{self.name}",
            metric="repro_slo_burn_rate_min",
            op=">",
            threshold=1.0,
            labels={"slo": self.name},
            for_count=2,
            severity=self.severity,
        )


def parse_slos(text: str) -> List[SLO]:
    """Parse an SLO file; raises ValueError with the offending line."""
    slos: List[SLO] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SLO_RE.match(line)
        if match is None:
            raise ValueError(f"SLO line {lineno}: cannot parse {line!r}")
        threshold = float(match["threshold"])
        if match["tunit"] == "ms":
            threshold /= 1000.0
        window = float(match["window"]) * _DUR_UNITS[match["wunit"] or "s"]
        quantile = float(match["q"])
        budget = (float(match["budget"]) / 100.0 if match["budget"]
                  else (100.0 - quantile) / 100.0)
        slos.append(SLO(
            name=match["name"],
            quantile=quantile,
            metric=match["metric"],
            threshold=threshold,
            window=window,
            budget=budget,
            labels=_parse_labels(match["labels"]),
            severity=match["severity"] or "warn",
        ))
    names = [slo.name for slo in slos]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ValueError(f"duplicate SLO names: {sorted(duplicates)}")
    return slos


class _SLOState:
    __slots__ = ("samples", "last_good", "last_bad")

    def __init__(self):
        # (monotonic ts, good delta, bad delta) per evaluation
        self.samples: deque = deque()
        self.last_good: Optional[float] = None
        self.last_bad: Optional[float] = None


class SLOEvaluator:
    """Track error budgets and publish burn-rate gauges.

    Call :meth:`evaluate` periodically (the fleet service does so once
    per cycle, *before* the alert engine so the compiled burn rules see
    fresh gauges).  Good/bad counts come from histogram bucket-count
    deltas between evaluations — no per-observation work on the hot
    path.
    """

    def __init__(self, slos: List[SLO], registry=None):
        if registry is None:
            from repro import obs

            registry = obs.registry()
        self.slos = list(slos)
        self.registry = registry
        self._states = {slo.name: _SLOState() for slo in self.slos}
        self._status: Dict[str, dict] = {}

    def alert_rules(self) -> List[AlertRule]:
        """The compiled burn-rate rules, one per SLO."""
        return [slo.alert_rule() for slo in self.slos]

    # ------------------------------------------------------------------
    @staticmethod
    def _matches(sample_labels, wanted: Dict[str, str]) -> bool:
        labels = dict(sample_labels)
        return all(labels.get(k) == v for k, v in wanted.items())

    def _good_bad(self, snapshot: dict, slo: SLO
                  ) -> Tuple[float, float, Optional[float]]:
        """Cumulative (good, bad, current p_q) across matching series."""
        good = bad = 0.0
        merged_counts: Optional[List[float]] = None
        buckets: Tuple[float, ...] = ()
        for (name, labels), (bks, counts, _total, _count) in \
                snapshot["histograms"].items():
            if name != slo.metric or not self._matches(labels, slo.labels):
                continue
            # Snap the threshold to the first bucket edge >= threshold:
            # observations in that bucket are counted good.
            cut = len(bks)
            for i, edge in enumerate(bks):
                if edge >= slo.threshold:
                    cut = i + 1
                    break
            good += sum(counts[:cut])
            bad += sum(counts[cut:])
            if merged_counts is None or tuple(bks) == buckets:
                if merged_counts is None:
                    buckets = tuple(bks)
                    merged_counts = list(counts)
                else:
                    merged_counts = [a + b for a, b in
                                     zip(merged_counts, counts)]
        current_q = None
        if merged_counts is not None and sum(merged_counts):
            current_q = histogram_quantiles(
                buckets, merged_counts, (slo.quantile / 100.0,))[0]
        return good, bad, current_q

    @staticmethod
    def _window_fraction(samples: deque, horizon: float, now: float
                         ) -> Tuple[float, float]:
        good = bad = 0.0
        for ts, dgood, dbad in samples:
            if now - ts <= horizon:
                good += dgood
                bad += dbad
        return good, bad

    # ------------------------------------------------------------------
    def evaluate(self, now: Optional[float] = None) -> Dict[str, dict]:
        """One pass: update windows, publish gauges, emit ``slo.status``."""
        from repro import obs

        now = time.monotonic() if now is None else float(now)
        snapshot = self.registry.snapshot()
        for slo in self.slos:
            state = self._states[slo.name]
            good, bad, current_q = self._good_bad(snapshot, slo)
            if state.last_good is None:
                dgood = dbad = 0.0
            else:
                dgood = max(0.0, good - state.last_good)
                dbad = max(0.0, bad - state.last_bad)
            state.last_good, state.last_bad = good, bad
            state.samples.append((now, dgood, dbad))
            while state.samples and now - state.samples[0][0] > slo.window:
                state.samples.popleft()

            fast_horizon = slo.window / 12.0
            burns = {}
            for window_name, horizon in (("fast", fast_horizon),
                                         ("slow", slo.window)):
                wgood, wbad = self._window_fraction(
                    state.samples, horizon, now)
                total = wgood + wbad
                fraction = (wbad / total) if total else 0.0
                burns[window_name] = fraction / slo.budget
            slow_good, slow_bad = self._window_fraction(
                state.samples, slo.window, now)
            slow_total = slow_good + slow_bad
            consumed = ((slow_bad / slow_total) / slo.budget
                        if slow_total else 0.0)
            remaining = 1.0 - consumed
            burn_min = min(burns["fast"], burns["slow"])

            self.registry.set_gauge("repro_slo_burn_rate",
                                    burns["fast"], slo=slo.name,
                                    window="fast")
            self.registry.set_gauge("repro_slo_burn_rate",
                                    burns["slow"], slo=slo.name,
                                    window="slow")
            self.registry.set_gauge("repro_slo_burn_rate_min",
                                    burn_min, slo=slo.name)
            self.registry.set_gauge("repro_slo_budget_remaining",
                                    remaining, slo=slo.name)

            status = {
                "slo": slo.name,
                "objective": slo.describe(),
                "threshold_s": slo.threshold,
                "window_s": slo.window,
                "budget": slo.budget,
                "good": slow_good,
                "bad": slow_bad,
                "bad_fraction": ((slow_bad / slow_total)
                                 if slow_total else 0.0),
                "burn_fast": burns["fast"],
                "burn_slow": burns["slow"],
                "burn_min": burn_min,
                "budget_remaining": remaining,
                "current_quantile": current_q,
                "breaching": burn_min > 1.0,
            }
            self._status[slo.name] = status
            obs.emit(
                "slo.status",
                slo=slo.name,
                burn_fast=round(burns["fast"], 6),
                burn_slow=round(burns["slow"], 6),
                budget_remaining=round(remaining, 6),
                breaching=status["breaching"],
            )
        return dict(self._status)

    def status(self) -> List[dict]:
        """Latest per-SLO status rows (for ``GET /slo`` and the report)."""
        return [self._status.get(slo.name, {
            "slo": slo.name,
            "objective": slo.describe(),
            "breaching": False,
        }) for slo in self.slos]
