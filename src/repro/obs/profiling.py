"""Opt-in per-phase profiling: cProfile capture behind a no-op guard.

Spans (PR 3) answer *where the wall-clock went between phases*; this
module answers *where the CPU went inside one* — which functions
dominate an E-step, an M-step, a window fit — without paying anything
when profiling is off (one module-global ``None`` check per phase).

Usage::

    from repro.obs import profiling

    profiling.enable_profiling()
    ... run fits ...                 # phases wrapped in profile_phase()
    prof = profiling.disable_profiling()
    print(prof.to_dict())           # per-phase totals + top functions

The instrumented pipeline phases (``identify.fit``, ``identify.tests``,
``window.fit``) are wrapped in :func:`profile_phase` at their call
sites.  ``cProfile`` cannot nest, so an inner phase that opens while an
outer capture is running records wall-clock only (its functions are
already inside the outer capture).  Captures happen in the calling
process: with ``n_jobs > 1`` the parent profiles its own share (the
scheduler loop, reductions) while worker CPU shows up as pool-wait;
profile with ``n_jobs=1`` to attribute worker internals.

Each finished phase also lands on the event bus as a ``profile.phase``
event, which is what ``repro report`` renders as the profile table.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "PhaseProfiler",
    "enable_profiling",
    "disable_profiling",
    "active_profiler",
    "profile_phase",
]

_ACTIVE: Optional["PhaseProfiler"] = None


def _func_label(func) -> str:
    """``pstats`` function key -> ``file:line(name)`` (stdlib format)."""
    filename, lineno, name = func
    if filename == "~" and lineno == 0:  # built-in
        return name
    return f"{filename}:{lineno}({name})"


class PhaseProfiler:
    """Accumulates per-phase cProfile statistics across repeated phases.

    A phase (``identify.fit``, ``window.fit``) may run many times — one
    per window, one per restart batch — so stats aggregate: call counts
    and total seconds add up, and the per-function cumulative times sum
    across captures before the top-``top`` cut.
    """

    def __init__(self, top: int = 12):
        if top < 1:
            raise ValueError(f"top must be >= 1, got {top}")
        self.top = int(top)
        #: phase -> {"calls", "total_s", "profiled_calls", "funcs"}
        self.phases: Dict[str, dict] = {}
        self._capturing = False

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time (and, when not nested, profile) one phase execution."""
        entry = self.phases.setdefault(
            name, {"calls": 0, "total_s": 0.0, "profiled_calls": 0,
                   "funcs": {}},
        )
        profile = None
        if not self._capturing:
            self._capturing = True
            profile = cProfile.Profile()
            profile.enable()
        start = time.monotonic()
        try:
            yield
        finally:
            elapsed = time.monotonic() - start
            if profile is not None:
                profile.disable()
                self._capturing = False
                self._fold(entry, profile)
                entry["profiled_calls"] += 1
            entry["calls"] += 1
            entry["total_s"] += elapsed

    def _fold(self, entry: dict, profile: cProfile.Profile) -> None:
        stats = pstats.Stats(profile)
        funcs = entry["funcs"]
        for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
            label = _func_label(func)
            agg = funcs.get(label)
            if agg is None:
                funcs[label] = [nc, ct]
            else:
                agg[0] += nc
                agg[1] += ct

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Per-phase totals plus the top functions by cumulative time."""
        out = {}
        for name, entry in sorted(self.phases.items()):
            top = sorted(
                entry["funcs"].items(), key=lambda item: item[1][1],
                reverse=True,
            )[: self.top]
            out[name] = {
                "calls": entry["calls"],
                "profiled_calls": entry["profiled_calls"],
                "total_ms": round(entry["total_s"] * 1e3, 3),
                "top": [
                    {"func": label, "ncalls": ncalls,
                     "cum_ms": round(cum * 1e3, 3)}
                    for label, (ncalls, cum) in top
                ],
            }
        return out

    def emit_events(self) -> None:
        """One ``profile.phase`` event per phase (for ``repro report``)."""
        from repro import obs

        for name, entry in self.to_dict().items():
            obs.emit(
                "profile.phase",
                phase=name,
                calls=entry["calls"],
                total_ms=entry["total_ms"],
                top=entry["top"],
            )

    def format(self, max_funcs: int = 5) -> str:
        """Terminal rendering: one block per phase, hottest first."""
        lines: List[str] = []
        ordered = sorted(self.to_dict().items(),
                         key=lambda item: item[1]["total_ms"], reverse=True)
        for name, entry in ordered:
            lines.append(
                f"{name}: {entry['calls']} call(s), "
                f"{entry['total_ms']:.1f} ms total"
            )
            for row in entry["top"][:max_funcs]:
                lines.append(
                    f"  {row['cum_ms']:9.1f} ms  {row['ncalls']:>8}x  "
                    f"{row['func']}"
                )
        return "\n".join(lines)


def enable_profiling(top: int = 12) -> PhaseProfiler:
    """Install a fresh process-global profiler and return it."""
    global _ACTIVE
    _ACTIVE = PhaseProfiler(top=top)
    return _ACTIVE


def disable_profiling() -> Optional[PhaseProfiler]:
    """Remove the active profiler; returns it (with its data) or None."""
    global _ACTIVE
    profiler, _ACTIVE = _ACTIVE, None
    return profiler


def active_profiler() -> Optional[PhaseProfiler]:
    """The installed profiler, or None when profiling is off."""
    return _ACTIVE


@contextmanager
def profile_phase(name: str) -> Iterator[None]:
    """Wrap a pipeline phase; free when profiling is disabled."""
    profiler = _ACTIVE
    if profiler is None:
        yield
        return
    with profiler.phase(name):
        yield
