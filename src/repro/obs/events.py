"""Process-safe structured event bus writing JSONL.

Every event is one JSON object on one line with four envelope fields —
``ts`` (monotonic seconds, comparable across processes on Linux because
``CLOCK_MONOTONIC`` is system-wide), ``wall`` (Unix epoch seconds),
``pid``, and ``kind`` — plus kind-specific payload fields (see
:mod:`repro.obs.schema` for the catalog).

Process safety relies on POSIX append semantics: the sink is opened with
``O_APPEND`` and each event is a single ``write`` of one line, so lines
from concurrent worker processes interleave whole, never torn.  The bus
detects ``fork`` (pid change) and reopens its handle so parent and child
never share a buffered file position.

Two optional extensions serve long-running monitors:

* **taps** — in-process subscribers (:meth:`EventBus.add_tap`) that see
  every event dict as it is emitted, independent of the sink.  The
  flight recorder (:mod:`repro.obs.recorder`) is a tap; taps also work
  with no sink configured (metrics-only runs still fill the ring);
* **rotation** — ``configure(..., max_bytes=N)`` renames the sink to
  ``<name>.1`` once it crosses ``N`` bytes and starts a fresh file, so
  ``monitor --follow`` runs cannot fill the disk.  Rotation happens in
  the process that crosses the threshold (in practice the parent, which
  emits the bulk of the events); a worker holding a handle to the
  renamed file keeps appending there harmlessly until its next fork
  check.

The disabled path is a single attribute check per :meth:`emit` — cheap
enough to leave instrumentation permanently compiled into the hot paths.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import IO, Callable, Optional, Union

__all__ = ["EventBus", "json_default"]


def json_default(value):
    """Coerce numpy scalars/arrays (and other oddballs) for ``json``.

    ``tolist`` is checked first: numpy arrays also expose ``item``, which
    raises for any array of size != 1 (scalars round-trip through either).
    """
    if hasattr(value, "tolist"):  # numpy array or scalar
        return value.tolist()
    if hasattr(value, "item"):  # non-numpy scalar wrappers
        return value.item()
    return str(value)


class EventBus:
    """A single JSONL sink with a no-op fast path when disabled."""

    def __init__(self):
        self.enabled = False
        self._path: Optional[Path] = None
        self._stream: Optional[IO[str]] = None
        self._handle: Optional[IO[str]] = None
        self._pid: Optional[int] = None
        self._lock = threading.Lock()
        self._max_bytes: Optional[int] = None
        self._taps: tuple = ()
        self.n_emitted = 0
        self.n_rotations = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(self, sink: Union[str, Path, IO[str], None],
                  max_bytes: Optional[int] = None) -> None:
        """Point the bus at a JSONL file path or an open text stream.

        ``None`` disables the bus.  Path sinks are opened in append mode
        (line-atomic across processes); stream sinks (e.g. ``StringIO``
        in tests) are process-local and are not inherited by workers.
        ``max_bytes`` (path sinks only) rotates the file to ``<name>.1``
        once it crosses that size; taps survive reconfiguration.
        """
        if max_bytes is not None and int(max_bytes) < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        with self._lock:
            self._close_locked()
            if sink is None:
                self.enabled = False
                return
            if isinstance(sink, (str, Path)):
                self._path = Path(sink)
                self._handle = None  # opened lazily, per process
                self._max_bytes = None if max_bytes is None else int(max_bytes)
            else:
                self._stream = sink
            self._pid = os.getpid()
            self.enabled = True

    # ------------------------------------------------------------------
    # Taps (in-process subscribers; the flight recorder plugs in here)
    # ------------------------------------------------------------------
    def add_tap(self, tap: Callable[[dict], None]) -> None:
        """Subscribe ``tap`` to every emitted event dict (idempotent).

        Taps fire even when no sink is configured (so a metrics-only run
        still feeds the flight-recorder ring).  A tap that raises is
        dropped from that emit silently — observers must never take the
        computation down.
        """
        with self._lock:
            if tap not in self._taps:
                self._taps = self._taps + (tap,)

    def remove_tap(self, tap: Callable[[dict], None]) -> None:
        """Unsubscribe a tap (a no-op when it was never added)."""
        with self._lock:
            # Equality, not identity: bound methods compare equal across
            # re-fetches but are distinct objects.
            self._taps = tuple(t for t in self._taps if t != tap)

    def close(self) -> None:
        """Disable the bus and release any file handle."""
        with self._lock:
            self._close_locked()
            self.enabled = False

    def _close_locked(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        self._handle = None
        self._stream = None
        self._path = None
        self._pid = None
        self._max_bytes = None

    @property
    def path(self) -> Optional[Path]:
        """The sink path (None for stream sinks or when disabled)."""
        return self._path

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _writer(self) -> Optional[IO[str]]:
        """The current process's sink handle, reopened after a fork."""
        if self._stream is not None:
            return self._stream
        if self._path is None:
            return None
        pid = os.getpid()
        if self._handle is None or pid != self._pid:
            # After fork the inherited handle shares a file description
            # with the parent; a fresh O_APPEND handle gives this
            # process its own (and append stays line-atomic).
            self._handle = open(self._path, "a", encoding="utf-8")
            self._pid = pid
        return self._handle

    def _rotate_locked(self, writer: IO[str]) -> None:
        """Rename the sink to ``<name>.1`` and start a fresh file."""
        try:
            writer.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass
        self._handle = None
        backup = self._path.with_name(self._path.name + ".1")
        try:
            os.replace(self._path, backup)
        except OSError:  # pragma: no cover - sink vanished under us
            return
        self.n_rotations += 1
        # Reopen eagerly so the active sink exists even if no further
        # event is ever emitted (tail -f keeps a file to follow).
        try:
            self._handle = open(self._path, "a", encoding="utf-8")
            self._pid = os.getpid()
        except OSError:  # pragma: no cover - directory vanished
            self._handle = None

    def emit(self, kind: str, /, **fields) -> None:
        """Write one event; silently a no-op when the bus is disabled.

        Taps (if any) still fire when no sink is configured, so a
        metrics-only run keeps feeding the flight-recorder ring.
        """
        taps = self._taps
        if not self.enabled and not taps:
            return
        # Envelope keys win over same-named payload fields so a stray
        # ``kind=`` or ``pid=`` attribute can never corrupt the schema.
        event = {
            "ts": time.monotonic(),
            "wall": time.time(),
            "pid": os.getpid(),
            "kind": kind,
        }
        for key, value in fields.items():
            if key not in event:
                event[key] = value
        for tap in taps:
            try:
                tap(event)
            except Exception:  # noqa: BLE001 - observers never break us
                pass
        if not self.enabled:
            return
        line = json.dumps(event, default=json_default) + "\n"
        with self._lock:
            writer = self._writer()
            if writer is None:  # pragma: no cover - disabled race
                return
            try:
                writer.write(line)
                writer.flush()
                if (self._max_bytes is not None
                        and self._path is not None
                        and writer.tell() >= self._max_bytes):
                    self._rotate_locked(writer)
            except (OSError, ValueError):
                # A torn-down sink (closed stream at interpreter exit,
                # full disk) must never take the computation down with
                # it; telemetry is strictly best-effort.
                self.enabled = False
                return
            self.n_emitted += 1
