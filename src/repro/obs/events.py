"""Process-safe structured event bus writing JSONL.

Every event is one JSON object on one line with four envelope fields —
``ts`` (monotonic seconds, comparable across processes on Linux because
``CLOCK_MONOTONIC`` is system-wide), ``wall`` (Unix epoch seconds),
``pid``, and ``kind`` — plus kind-specific payload fields (see
:mod:`repro.obs.schema` for the catalog).

Process safety relies on POSIX append semantics: the sink is opened with
``O_APPEND`` and each event is a single ``write`` of one line, so lines
from concurrent worker processes interleave whole, never torn.  The bus
detects ``fork`` (pid change) and reopens its handle so parent and child
never share a buffered file position.

The disabled path is a single attribute check per :meth:`emit` — cheap
enough to leave instrumentation permanently compiled into the hot paths.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import IO, Optional, Union

__all__ = ["EventBus", "json_default"]


def json_default(value):
    """Coerce numpy scalars/arrays (and other oddballs) for ``json``.

    ``tolist`` is checked first: numpy arrays also expose ``item``, which
    raises for any array of size != 1 (scalars round-trip through either).
    """
    if hasattr(value, "tolist"):  # numpy array or scalar
        return value.tolist()
    if hasattr(value, "item"):  # non-numpy scalar wrappers
        return value.item()
    return str(value)


class EventBus:
    """A single JSONL sink with a no-op fast path when disabled."""

    def __init__(self):
        self.enabled = False
        self._path: Optional[Path] = None
        self._stream: Optional[IO[str]] = None
        self._handle: Optional[IO[str]] = None
        self._pid: Optional[int] = None
        self._lock = threading.Lock()
        self.n_emitted = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(self, sink: Union[str, Path, IO[str], None]) -> None:
        """Point the bus at a JSONL file path or an open text stream.

        ``None`` disables the bus.  Path sinks are opened in append mode
        (line-atomic across processes); stream sinks (e.g. ``StringIO``
        in tests) are process-local and are not inherited by workers.
        """
        with self._lock:
            self._close_locked()
            if sink is None:
                self.enabled = False
                return
            if isinstance(sink, (str, Path)):
                self._path = Path(sink)
                self._handle = None  # opened lazily, per process
            else:
                self._stream = sink
            self._pid = os.getpid()
            self.enabled = True

    def close(self) -> None:
        """Disable the bus and release any file handle."""
        with self._lock:
            self._close_locked()
            self.enabled = False

    def _close_locked(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        self._handle = None
        self._stream = None
        self._path = None
        self._pid = None

    @property
    def path(self) -> Optional[Path]:
        """The sink path (None for stream sinks or when disabled)."""
        return self._path

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _writer(self) -> Optional[IO[str]]:
        """The current process's sink handle, reopened after a fork."""
        if self._stream is not None:
            return self._stream
        if self._path is None:
            return None
        pid = os.getpid()
        if self._handle is None or pid != self._pid:
            # After fork the inherited handle shares a file description
            # with the parent; a fresh O_APPEND handle gives this
            # process its own (and append stays line-atomic).
            self._handle = open(self._path, "a", encoding="utf-8")
            self._pid = pid
        return self._handle

    def emit(self, kind: str, /, **fields) -> None:
        """Write one event; silently a no-op when the bus is disabled."""
        if not self.enabled:
            return
        # Envelope keys win over same-named payload fields so a stray
        # ``kind=`` or ``pid=`` attribute can never corrupt the schema.
        event = {
            "ts": time.monotonic(),
            "wall": time.time(),
            "pid": os.getpid(),
            "kind": kind,
        }
        for key, value in fields.items():
            if key not in event:
                event[key] = value
        line = json.dumps(event, default=json_default) + "\n"
        with self._lock:
            writer = self._writer()
            if writer is None:  # pragma: no cover - disabled race
                return
            try:
                writer.write(line)
                writer.flush()
            except (OSError, ValueError):
                # A torn-down sink (closed stream at interpreter exit,
                # full disk) must never take the computation down with
                # it; telemetry is strictly best-effort.
                self.enabled = False
                return
            self.n_emitted += 1
