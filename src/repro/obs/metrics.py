"""Counters, gauges, and histograms with snapshot merge and exporters.

A :class:`MetricsRegistry` is a flat map from ``(name, labels)`` to a
sample.  Three metric kinds cover everything the identification stack
needs:

* **counter** — monotone totals (fits run, windows skipped, probes
  loaded); merged across workers by summing;
* **gauge** — last-observed values (pending windows, stream lag); merged
  by last-writer-wins in task order, so merges stay deterministic;
* **histogram** — fixed-bucket latency distributions (span durations,
  window lag); merged by summing bucket counts.

The registry is designed around the :func:`repro.parallel.parallel_map`
fan-out: a worker runs its task between two :meth:`snapshot` calls, the
:meth:`delta` of the pair travels back with the task result, and the
parent :meth:`merge`\\ s the deltas *in task order* — so the merged state
is identical for every worker count (the telemetry analogue of the
parallel layer's determinism contract).

Exporters render the Prometheus text exposition format
(:meth:`to_prometheus`) and a JSON projection (:meth:`to_json`).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["DEFAULT_BUCKETS", "MetricsRegistry", "histogram_quantiles"]

#: Default histogram bucket upper bounds, in seconds.  Spans range from
#: sub-millisecond (a warm streaming fit at tiny windows) to tens of
#: seconds (paper-scale multi-restart fits), hence the wide log spacing.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: sample key: (metric name, tuple of sorted (label, value) pairs)
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, object]) -> _Key:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Iterable[Tuple[str, str]]) -> str:
    pairs = [f'{k}="{_escape_label(v)}"' for k, v in labels]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def histogram_quantiles(buckets: Iterable[float], counts: Iterable[int],
                        qs: Iterable[float]) -> List[float]:
    """Estimate quantiles from fixed-bucket histogram counts.

    Uses linear interpolation within the bucket that contains each
    target rank (the Prometheus ``histogram_quantile`` convention).
    Observations in the +Inf overflow bucket clamp to the last finite
    edge, and an empty histogram yields ``nan`` for every quantile —
    callers never have to special-case either.
    """
    edges = list(buckets)
    counts = list(counts)
    total = sum(counts)
    out: List[float] = []
    for q in qs:
        if total == 0:
            out.append(math.nan)
            continue
        rank = q * total
        cumulative = 0
        value = edges[-1] if edges else math.nan
        for i, count in enumerate(counts):
            if count == 0:
                continue
            if cumulative + count >= rank:
                if i >= len(edges):  # +Inf bucket: clamp to last edge
                    value = edges[-1] if edges else math.nan
                else:
                    lo = 0.0 if i == 0 else edges[i - 1]
                    hi = edges[i]
                    value = lo + (hi - lo) * (rank - cumulative) / count
                break
            cumulative += count
        out.append(value)
    return out


class _Histogram:
    """Fixed-bucket histogram sample: cumulative export, additive merge."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # final slot: +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    def copy(self) -> "_Histogram":
        other = _Histogram(self.buckets)
        other.counts = list(self.counts)
        other.total = self.total
        other.count = self.count
        return other

    def quantile(self, q: float) -> float:
        return histogram_quantiles(self.buckets, self.counts, (q,))[0]


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, and histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[_Key, float] = {}
        self._gauges: Dict[_Key, float] = {}
        self._histograms: Dict[_Key, _Histogram] = {}
        self._help: Dict[str, str] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def describe(self, name: str, help_text: str,
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        """Attach HELP text (and histogram buckets) to a metric family."""
        with self._lock:
            self._help[name] = help_text
            if buckets is not None:
                self._buckets[name] = tuple(buckets)

    def inc(self, name: str, amount: float = 1.0, /, **labels) -> None:
        """Add ``amount`` to a counter (creating it at 0 first)."""
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount} for {name}")
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, /, **labels) -> None:
        """Set a gauge to its latest observed value."""
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, /, **labels) -> None:
        """Record one histogram observation."""
        key = _key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = _Histogram(self._buckets.get(name, DEFAULT_BUCKETS))
                self._histograms[key] = hist
            hist.observe(float(value))

    def clear(self) -> None:
        """Drop every sample (HELP/bucket descriptions survive)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str, /, **labels) -> float:
        """Current value of one counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(_key(name, labels), 0.0)

    def gauge_value(self, name: str, /, **labels) -> Optional[float]:
        """Current value of one gauge (None when never set)."""
        with self._lock:
            return self._gauges.get(_key(name, labels))

    def histogram_count(self, name: str, /, **labels) -> int:
        """Number of observations of one histogram."""
        with self._lock:
            hist = self._histograms.get(_key(name, labels))
            return 0 if hist is None else hist.count

    def family_names(self) -> List[str]:
        """Sorted names of every metric family with at least one sample."""
        with self._lock:
            names = {name for name, _ in self._counters}
            names.update(name for name, _ in self._gauges)
            names.update(name for name, _ in self._histograms)
        return sorted(names)

    # ------------------------------------------------------------------
    # Snapshots: the parallel_map worker round-trip
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A picklable copy of every sample (for delta/merge)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: (hist.buckets, list(hist.counts), hist.total,
                          hist.count)
                    for key, hist in self._histograms.items()
                },
            }

    def delta(self, before: dict) -> dict:
        """What changed since ``before`` (an earlier :meth:`snapshot`).

        Counters and histograms subtract; gauges keep only keys whose
        value differs from (or did not exist in) the earlier snapshot.
        """
        now = self.snapshot()
        counters = {
            key: value - before["counters"].get(key, 0.0)
            for key, value in now["counters"].items()
            if value != before["counters"].get(key, 0.0)
        }
        gauges = {
            key: value
            for key, value in now["gauges"].items()
            if before["gauges"].get(key) != value
        }
        histograms = {}
        for key, (buckets, counts, total, count) in now["histograms"].items():
            prev = before["histograms"].get(key)
            if prev is None:
                histograms[key] = (buckets, counts, total, count)
                continue
            _, prev_counts, prev_total, prev_count = prev
            if count != prev_count:
                histograms[key] = (
                    buckets,
                    [a - b for a, b in zip(counts, prev_counts)],
                    total - prev_total,
                    count - prev_count,
                )
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge(self, delta: dict) -> None:
        """Fold a worker's :meth:`delta` into this registry.

        Addition commutes, and gauges are last-writer-wins — callers
        merge deltas in task order, which makes the merged registry
        independent of which worker ran which task.
        """
        with self._lock:
            for key, value in delta["counters"].items():
                self._counters[key] = self._counters.get(key, 0.0) + value
            for key, value in delta["gauges"].items():
                self._gauges[key] = value
            for key, (buckets, counts, total, count) in delta[
                    "histograms"].items():
                hist = self._histograms.get(key)
                if hist is None:
                    hist = _Histogram(tuple(buckets))
                    self._histograms[key] = hist
                hist.counts = [a + b for a, b in zip(hist.counts, counts)]
                hist.total += total
                hist.count += count

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def _grouped(self, samples: Dict[_Key, object]) -> Dict[str, list]:
        families: Dict[str, list] = {}
        for (name, labels), value in samples.items():
            families.setdefault(name, []).append((labels, value))
        for rows in families.values():
            rows.sort(key=lambda row: row[0])
        return families

    def to_prometheus(self) -> str:
        """Render every sample in the Prometheus text exposition format."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {k: h.copy() for k, h in self._histograms.items()}
            help_text = dict(self._help)
        lines: List[str] = []

        def header(name: str, kind: str) -> None:
            text = help_text.get(name)
            if text:
                lines.append(f"# HELP {name} {text}")
            lines.append(f"# TYPE {name} {kind}")

        for name, rows in sorted(self._grouped(counters).items()):
            header(name, "counter")
            for labels, value in rows:
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(value)}"
                )
        for name, rows in sorted(self._grouped(gauges).items()):
            header(name, "gauge")
            for labels, value in rows:
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(value)}"
                )
        for name, rows in sorted(self._grouped(histograms).items()):
            header(name, "histogram")
            for labels, hist in rows:
                cumulative = 0
                for edge, count in zip(
                        list(hist.buckets) + [math.inf],
                        hist.counts):
                    cumulative += count
                    le = (("le", _format_value(edge)),)
                    lines.append(
                        f"{name}_bucket{_format_labels(labels + le)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(hist.total)}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {hist.count}"
                )
        return "\n".join(lines) + "\n" if lines else ""

    def to_json(self) -> dict:
        """A JSON-able projection of every sample."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {k: h.copy() for k, h in self._histograms.items()}

        out = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, labels), value in sorted(counters.items()):
            out["counters"].setdefault(name, []).append(
                {"labels": dict(labels), "value": value}
            )
        for (name, labels), value in sorted(gauges.items()):
            out["gauges"].setdefault(name, []).append(
                {"labels": dict(labels), "value": value}
            )
        for (name, labels), hist in sorted(histograms.items()):
            p50, p95, p99 = histogram_quantiles(
                hist.buckets, hist.counts, (0.5, 0.95, 0.99))
            out["histograms"].setdefault(name, []).append({
                "labels": dict(labels),
                "buckets": list(hist.buckets),
                "counts": list(hist.counts),
                "sum": hist.total,
                "count": hist.count,
                "quantiles": {"p50": p50, "p95": p95, "p99": p99},
            })
        return out
