"""Run provenance manifests: who/what/why for every verdict.

The paper's verdicts (SDCL/WDCL acceptance, the ``Q_k`` bound) are only
trustworthy when a run can show *why* it produced them — which config,
seeds, model, package versions, and platform led to the numbers.  A
**manifest** captures exactly that, as a ``run.manifest`` telemetry
event and (optionally) a ``manifest.json`` artifact next to the event
file, and carries enough to *re-run the analysis*:
``identify_config_from_manifest`` / ``monitor_config_from_manifest``
rebuild the pipeline configuration — including every ``EMConfig`` seed
— so any verdict or BENCH number is reproducible from its manifest
alone (the test suite asserts verdict equality on the round trip).

Config serialization is generic: the pipeline configs (``EMConfig``,
``IdentifyConfig``, ``MonitorConfig``) are plain attribute bags, so
``vars()`` plus recursion over nested configs round-trips them without
per-class schemas.  A ``__type__`` marker records the class for
reconstruction.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
import uuid
from pathlib import Path
from typing import Optional, Union

from repro.obs.events import json_default

__all__ = [
    "MANIFEST_SCHEMA",
    "collect_manifest",
    "config_to_dict",
    "write_manifest",
    "load_manifest",
    "record_run",
    "em_config_from_dict",
    "identify_config_from_manifest",
    "monitor_config_from_manifest",
]

#: Manifest format version (bump on incompatible layout changes).
MANIFEST_SCHEMA = 1

#: Environment variables that alter numerical behaviour or parallelism —
#: recorded so a manifest explains backend/worker-count differences.
_RECORDED_ENV = ("REPRO_EM_BACKEND", "REPRO_N_JOBS", "REPRO_BENCH_SCALE")


def _git_sha(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The checked-out commit, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=None if cwd is None else str(cwd),
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def config_to_dict(config) -> Optional[dict]:
    """A JSON-able projection of a pipeline config object.

    Recurses into nested configs (``IdentifyConfig.em`` is an
    ``EMConfig``) and tags each level with its class name so
    reconstruction can dispatch without guessing.
    """
    if config is None:
        return None
    out = {"__type__": type(config).__name__}
    for key, value in vars(config).items():
        if key.startswith("_"):
            continue
        if hasattr(value, "__dict__") and not isinstance(value, type):
            out[key] = config_to_dict(value)
        else:
            out[key] = value
    return out


def _config_kwargs(data: dict) -> dict:
    return {k: v for k, v in data.items() if k != "__type__"}


def em_config_from_dict(data: dict):
    """Rebuild an :class:`~repro.models.base.EMConfig` from a manifest."""
    from repro.models.base import EMConfig

    return EMConfig(**_config_kwargs(data))


def _rebuild_config(data: Optional[dict]):
    if data is None:
        return None
    kind = data.get("__type__")
    fields = _config_kwargs(data)
    if "em" in fields and isinstance(fields["em"], dict):
        fields["em"] = em_config_from_dict(fields["em"])
    if kind == "EMConfig":
        return em_config_from_dict(data)
    if kind == "IdentifyConfig":
        from repro.core.identify import IdentifyConfig

        return IdentifyConfig(**fields)
    if kind == "MonitorConfig":
        from repro.streaming.tracker import MonitorConfig

        return MonitorConfig(**fields)
    raise ValueError(f"cannot rebuild config of type {kind!r}")


def identify_config_from_manifest(manifest: dict):
    """The :class:`IdentifyConfig` a manifest's run used (seeds included)."""
    config = _rebuild_config(manifest.get("config"))
    from repro.core.identify import IdentifyConfig

    if not isinstance(config, IdentifyConfig):
        raise ValueError(
            f"manifest carries {type(config).__name__}, not IdentifyConfig"
        )
    return config


def monitor_config_from_manifest(manifest: dict):
    """The :class:`MonitorConfig` a manifest's run used (seeds included)."""
    config = _rebuild_config(manifest.get("config"))
    from repro.streaming.tracker import MonitorConfig

    if not isinstance(config, MonitorConfig):
        raise ValueError(
            f"manifest carries {type(config).__name__}, not MonitorConfig"
        )
    return config


def collect_manifest(
    command: str,
    config=None,
    argv: Optional[list] = None,
    seeds: Optional[dict] = None,
    inputs: Optional[list] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble one run's provenance manifest (pure data, no I/O).

    Parameters
    ----------
    command:
        The logical run kind (``identify``, ``monitor``, ``bench:...``).
    config:
        The pipeline config object (serialized via :func:`config_to_dict`).
    argv:
        The command line (defaults to ``sys.argv``).
    seeds:
        Named seed streams beyond the ones inside ``config`` (e.g. the
        demo stream seed).
    inputs:
        Input file paths the run consumed.
    extra:
        Free-form command-specific fields.
    """
    import numpy

    from repro.version import __version__

    config_dict = config_to_dict(config)
    seed_map = dict(seeds or {})
    # Surface the EM seed even when it only lives inside the config, so
    # "which seeds?" is answerable without walking the config tree.
    em = (config_dict or {}).get("em")
    if isinstance(em, dict) and "seed" in em:
        seed_map.setdefault("em", em["seed"])
    elif isinstance(config_dict, dict) and "seed" in config_dict:
        seed_map.setdefault("em", config_dict["seed"])
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "run_id": uuid.uuid4().hex[:12],
        "command": command,
        "argv": list(sys.argv if argv is None else argv),
        "wall": time.time(),
        "pid": os.getpid(),
        "config": config_dict,
        "seeds": seed_map,
        "inputs": list(inputs or []),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "packages": {"repro": __version__, "numpy": numpy.__version__},
        "git_sha": _git_sha(),
        "env": {key: os.environ[key] for key in _RECORDED_ENV
                if key in os.environ},
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(manifest: dict, path: Union[str, Path]) -> Path:
    """Persist a manifest as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(manifest, indent=2, default=json_default) + "\n",
        encoding="utf-8",
    )
    return path


def load_manifest(path: Union[str, Path]) -> dict:
    """Read a ``manifest.json`` back."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def record_run(
    command: str,
    config=None,
    out_path: Optional[Union[str, Path]] = None,
    **collect_kwargs,
) -> dict:
    """Collect a manifest, write the artifact, emit the event.

    The one-call entry point the CLI and the benchmarks use: builds the
    manifest, writes ``manifest.json`` when ``out_path`` is given, and
    emits the ``run.manifest`` event (a no-op when telemetry is off).
    Returns the manifest dict either way.
    """
    from repro import obs

    manifest = collect_manifest(command, config=config, **collect_kwargs)
    written = None
    if out_path is not None:
        written = write_manifest(manifest, out_path)
    obs.emit(
        "run.manifest",
        run_id=manifest["run_id"],
        command=command,
        manifest_path=None if written is None else str(written),
        manifest=manifest,
    )
    return manifest
