"""Embedded HTTP servers built on ``http.server`` (stdlib only).

Two layers:

* :class:`RoutingHTTPServer` — a small route-table server (method +
  ``/paths/{id}``-style patterns, JSON helpers, a per-request observer
  hook) shared by every HTTP surface the stack exposes;
* :class:`MetricsServer` — the scrape endpoint over a metrics registry:

  - ``GET /metrics`` — Prometheus text exposition format;
  - ``GET /metrics.json`` — the JSON projection;
  - ``GET /healthz`` — liveness probe (``ok``).

The fleet service API (:class:`repro.service.api.ServiceAPI`) builds on
the same base and mounts the metrics routes alongside its own.

Servers run on a daemon thread so serving never touches the ingestion
loop; ``port=0`` binds an ephemeral port (the bound port is in
:attr:`RoutingHTTPServer.port`).  :meth:`RoutingHTTPServer.close` is
idempotent and safe at any lifecycle point — it stops the serve loop,
joins the thread, and closes the listening socket, so a SIGTERM'd
monitor exits without leaking the port (no dangling-port flakes when CI
reuses addresses).
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "HTTPError",
    "Request",
    "Response",
    "RoutingHTTPServer",
    "MetricsServer",
    "json_response",
    "text_response",
    "metrics_routes",
]


class HTTPError(Exception):
    """Raise inside a route handler to produce a JSON error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = int(status)
        self.message = message


class Request:
    """What a route handler receives: path params, query, body."""

    __slots__ = ("method", "path", "params", "query", "body")

    def __init__(self, method: str, path: str, params: dict, query: str,
                 body: bytes):
        self.method = method
        self.path = path
        self.params = params
        self.query = query
        self.body = body

    def json(self) -> dict:
        """Decode the request body as a JSON object (400 on garbage)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return payload


#: (status, content type, body bytes) — what a route handler returns.
Response = Tuple[int, str, bytes]


def json_response(payload, status: int = 200) -> Response:
    """A JSON route response."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    return status, "application/json", body


def text_response(text: str, status: int = 200,
                  content_type: str = "text/plain") -> Response:
    """A plain-text route response."""
    return status, content_type, text.encode("utf-8")


def _compile_pattern(pattern: str) -> "re.Pattern":
    """``/paths/{id}`` -> anchored regex with named groups."""
    parts = []
    for piece in re.split(r"(\{\w+\})", pattern):
        if piece.startswith("{") and piece.endswith("}"):
            parts.append(f"(?P<{piece[1:-1]}>[^/]+)")
        else:
            parts.append(re.escape(piece))
    return re.compile("^" + "".join(parts) + "$")


class _Route:
    __slots__ = ("method", "pattern", "regex", "handler")

    def __init__(self, method: str, pattern: str,
                 handler: Callable[[Request], Response]):
        self.method = method.upper()
        self.pattern = pattern
        self.regex = _compile_pattern(pattern)
        self.handler = handler


def _make_handler(routes: List[_Route], observer):
    class Handler(BaseHTTPRequestHandler):
        def _respond(self, status: int, content_type: str,
                     body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            if self.command != "HEAD":
                self.wfile.write(body)

        def _dispatch(self) -> None:
            started = time.perf_counter()
            path, _, query = self.path.partition("?")
            matched_pattern = path
            try:
                body = b""
                length = int(self.headers.get("Content-Length") or 0)
                if length:
                    body = self.rfile.read(length)
                route, params = self._find(path)
                if route is None:
                    raise HTTPError(
                        404, f"no route for {self.command} {path}")
                matched_pattern = route.pattern
                request = Request(self.command, path, params, query, body)
                status, content_type, payload = route.handler(request)
            except HTTPError as exc:
                status = exc.status
                _, content_type, payload = json_response(
                    {"error": exc.message}, status=exc.status)
            except Exception as exc:  # noqa: BLE001 - surfaced as a 500
                status = 500
                _, content_type, payload = json_response(
                    {"error": f"{type(exc).__name__}: {exc}"}, status=500)
            try:
                self._respond(status, content_type, payload)
            except (BrokenPipeError, ConnectionResetError):
                # Client went away mid-write (e.g. it closed after the
                # error status line without draining the body).  The
                # request was still handled, so it is still observed.
                pass
            if observer is not None:
                observer(matched_pattern, self.command, status,
                         time.perf_counter() - started)

        def _find(self, path: str):
            allowed = False
            for route in routes:
                match = route.regex.match(path)
                if match is None:
                    continue
                allowed = True
                if route.method == self.command or (
                        route.method == "GET" and self.command == "HEAD"):
                    return route, match.groupdict()
            if allowed:
                raise HTTPError(405, f"method {self.command} not allowed "
                                     f"for {path}")
            return None, {}

        def do_GET(self):  # noqa: N802 - http.server API
            self._dispatch()

        do_HEAD = do_POST = do_DELETE = do_PUT = do_GET  # noqa: N815

        def log_message(self, *args):  # pragma: no cover - silence stderr
            pass

    return Handler


class RoutingHTTPServer:
    """A background HTTP server over a route table.

    Parameters
    ----------
    routes:
        ``(method, pattern, handler)`` triples; patterns may carry
        ``{name}`` segments exposed via :attr:`Request.params`, and
        handlers return ``(status, content_type, body_bytes)`` or raise
        :class:`HTTPError`.
    observer:
        Optional ``(route_pattern, method, status, dur_s)`` callback
        invoked after every request (the service API hangs its
        ``repro_service_http_*`` metrics off this).
    """

    def __init__(self, routes, port: int = 0, host: str = "127.0.0.1",
                 observer=None):
        compiled = [_Route(method, pattern, handler)
                    for method, pattern, handler in routes]
        self._server = ThreadingHTTPServer(
            (host, port), _make_handler(compiled, observer))
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def host(self) -> str:
        """The bound interface."""
        return self._server.server_address[0]

    @property
    def base_url(self) -> str:
        """``http://host:port`` of the bound socket."""
        return f"http://{self.host}:{self.port}"

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released the socket."""
        return self._closed

    def start(self) -> "RoutingHTTPServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._closed:
            raise RuntimeError("server is closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name=f"repro-httpd-{self.port}", daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket.

        Idempotent and safe at any point of the lifecycle: before
        :meth:`start`, after a previous close, or from a SIGTERM
        handler.  The serve thread is joined (so no request is mid-write
        when the socket dies) and the listening socket is closed (so the
        port is immediately rebindable — no dangling-port CI flakes).
        """
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._server.server_close()


def metrics_routes(registry: MetricsRegistry) -> list:
    """The scrape routes, mountable on any :class:`RoutingHTTPServer`."""

    def metrics(_request: Request) -> Response:
        return text_response(registry.to_prometheus(),
                             content_type="text/plain; version=0.0.4; "
                                          "charset=utf-8")

    def metrics_json(_request: Request) -> Response:
        return json_response(registry.to_json())

    def healthz(_request: Request) -> Response:
        return text_response("ok\n")

    return [
        ("GET", "/metrics", metrics),
        ("GET", "/metrics.json", metrics_json),
        ("GET", "/healthz", healthz),
    ]


class MetricsServer(RoutingHTTPServer):
    """A background scrape endpoint over a metrics registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 port: int = 0, host: str = "127.0.0.1"):
        if registry is None:
            from repro import obs

            registry = obs.registry()
        super().__init__(metrics_routes(registry), port=port, host=host)

    @property
    def url(self) -> str:
        """The scrape URL of the text endpoint."""
        return f"{self.base_url}/metrics"

    def start(self) -> "MetricsServer":
        """Serve on a daemon thread; returns self for chaining."""
        super().start()
        return self
