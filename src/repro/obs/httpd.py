"""Metrics scrape endpoint built on ``http.server`` (stdlib only).

``MetricsServer`` serves the process-global registry:

* ``GET /metrics`` — Prometheus text exposition format;
* ``GET /metrics.json`` — the JSON projection;
* ``GET /healthz`` — liveness probe (``ok``).

The server runs on a daemon thread so a monitor process exposes its
state without touching the ingestion loop; ``port=0`` binds an ephemeral
port (the bound port is in :attr:`MetricsServer.port`).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsServer"]


def _make_handler(registry: MetricsRegistry):
    class Handler(BaseHTTPRequestHandler):
        def _send(self, body: bytes, content_type: str) -> None:
            self.send_response(200)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # noqa: N802 - http.server API
            if self.path.split("?")[0] == "/metrics":
                self._send(registry.to_prometheus().encode(),
                           "text/plain; version=0.0.4; charset=utf-8")
            elif self.path.split("?")[0] == "/metrics.json":
                import json

                self._send(json.dumps(registry.to_json()).encode(),
                           "application/json")
            elif self.path.split("?")[0] == "/healthz":
                self._send(b"ok\n", "text/plain")
            else:
                self.send_error(404, "unknown path (try /metrics)")

        def log_message(self, *args):  # pragma: no cover - silence stderr
            pass

    return Handler


class MetricsServer:
    """A background scrape endpoint over a metrics registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 port: int = 0, host: str = "127.0.0.1"):
        if registry is None:
            from repro import obs

            registry = obs.registry()
        self._server = ThreadingHTTPServer((host, port),
                                           _make_handler(registry))
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """The scrape URL of the text endpoint."""
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}/metrics"

    def start(self) -> "MetricsServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
