"""Telemetry catalog: event kinds, metric names, validation.

One module is the source of truth for what the instrumentation emits, so
the README table, the ``repro stats`` summarizer, the exporter
preregistration, and the tests all agree.

Event envelope (every event): ``ts`` (monotonic seconds), ``wall``
(epoch seconds), ``pid``, ``kind``.  Kind-specific payloads are listed
in :data:`EVENT_KINDS`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = [
    "EVENT_KINDS",
    "METRICS",
    "MONITOR_SERIES",
    "validate_event",
    "preregister",
]

#: kind -> (description, required payload fields)
EVENT_KINDS: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "span": (
        "A timed block finished",
        ("name", "span", "parent", "dur_ms"),
    ),
    "em.restart": (
        "One EM restart finished (per-iteration loglik trajectory)",
        ("model", "restart", "n_iter", "converged", "loglik", "logliks"),
    ),
    "em.fit": (
        "A multi-restart fit reduced to its winner",
        ("model", "n_restarts", "best_restart", "restart_logliks",
         "loglik_dispersion"),
    ),
    "em.backend": (
        "E-step engine used by one fit (batch occupancy and savings)",
        ("model", "backend", "n_restarts", "n_shards", "batch_iterations",
         "occupancy", "masked_savings", "kernel", "block_size", "dtype",
         "dtype_fallbacks"),
    ),
    "selection.bic": (
        "BIC model-order selection outcome",
        ("model", "candidates", "bics", "chosen_n"),
    ),
    "streaming.fit": (
        "One window fit finished (warm or cold)",
        ("model", "warm_used", "fallback_reason", "n_iter", "loglik"),
    ),
    "window": (
        "One monitor window resolved (analyzed or skipped)",
        ("path", "window", "status", "reason", "verdict", "stable_verdict",
         "changed"),
    ),
    "drain.round": (
        "One multi-path drain round finished (fused-batch accounting)",
        ("mode", "windows", "groups", "rows", "pad_fraction", "dur_ms"),
    ),
    "traceio.load": (
        "An observation file was loaded",
        ("path", "n_probes", "n_losses"),
    ),
    "run.manifest": (
        "Provenance manifest of one identify/monitor/bench run",
        ("run_id", "command", "manifest_path"),
    ),
    "watchdog.stall": (
        "The watchdog saw no heartbeat within its timeout",
        ("idle_seconds", "timeout", "ring"),
    ),
    "alert.fired": (
        "A declarative alert rule's condition started holding",
        ("rule", "severity", "value", "threshold"),
    ),
    "alert.resolved": (
        "A previously fired alert rule's condition cleared",
        ("rule", "value", "threshold"),
    ),
    "profile.phase": (
        "Opt-in cProfile capture of one pipeline phase",
        ("phase", "calls", "total_ms", "top"),
    ),
    "pool.broken": (
        "The worker pool died mid-map and tasks were rerun serially",
        ("n_workers", "n_tasks"),
    ),
    "service.path": (
        "A fleet-service path registry transition",
        ("path", "action", "generation"),
    ),
    "service.shed": (
        "Backpressure shed pending windows fleet-wide",
        ("policy", "backlog", "shed", "paths"),
    ),
    "service.coarsen": (
        "Backpressure changed the fleet's window stride",
        ("policy", "backlog", "action", "factor", "paths"),
    ),
    "service.round": (
        "One fleet-service loop cycle finished",
        ("cycle", "ingested", "dropped", "windows", "backlog", "dur_ms"),
    ),
    "trace.window": (
        "Per-stage record-to-verdict latency breakdown of one window",
        ("path", "window", "stages"),
    ),
    "slo.status": (
        "One SLO evaluation pass (burn rates and remaining budget)",
        ("slo", "burn_fast", "burn_slow", "budget_remaining", "breaching"),
    ),
    "model.health": (
        "Per-window model-health verdict (goodness of fit + drift)",
        ("path", "window", "health", "reasons", "alarms"),
    ),
}

#: (name, type, labels, help) for every metric family the stack emits.
METRICS: List[Tuple[str, str, Tuple[str, ...], str]] = [
    ("repro_span_seconds", "histogram", ("name",),
     "Duration of timed spans, by span name."),
    ("repro_em_fits_total", "counter", ("model",),
     "Completed multi-restart EM fits."),
    ("repro_em_restarts_total", "counter", ("model",),
     "Individual EM restarts run."),
    ("repro_em_iterations_total", "counter", ("model",),
     "EM iterations summed over restarts."),
    ("repro_em_nonconverged_total", "counter", ("model",),
     "Restarts that hit max_iter before the parameter tolerance."),
    ("repro_em_restart_wins_total", "counter", ("restart",),
     "Which restart index produced the winning log-likelihood."),
    ("repro_em_backend_fits_total", "counter", ("model", "backend"),
     "Completed fits by E-step engine (batched, blocked, compiled or "
     "sequential)."),
    ("repro_em_dtype_fallback_total", "counter", ("model",),
     "Float32 E-passes demoted to float64 after a scale underflow."),
    ("repro_em_batch_occupancy_ratio", "histogram", ("model",),
     "Fraction of batch-row slots doing useful work per batched fit."),
    ("repro_em_masked_iterations_total", "counter", ("model",),
     "Row iterations skipped because converged restarts were masked."),
    ("repro_selection_total", "counter", ("model", "chosen_n"),
     "BIC model-order selections, by chosen hidden-state count."),
    ("repro_streaming_fits_total", "counter", ("mode",),
     "Per-window streaming fits, by mode (warm or cold)."),
    ("repro_streaming_fallbacks_total", "counter", ("reason",),
     "Warm-start trajectories abandoned for a cold refit."),
    ("repro_windows_total", "counter", (),
     "Monitor windows that reached analysis."),
    ("repro_windows_skipped_total", "counter", ("reason",),
     "Monitor windows skipped, by reason."),
    ("repro_windows_dropped_total", "counter", (),
     "Pending windows dropped to backlog pressure."),
    ("repro_window_verdicts_total", "counter", ("verdict",),
     "Per-window verdicts from analyzed windows."),
    ("repro_verdict_changes_total", "counter", (),
     "Stable-verdict flips after hysteresis."),
    ("repro_window_lag_seconds", "histogram", (),
     "Wall-clock lag from window assembly to verdict emission."),
    ("repro_pending_windows", "gauge", (),
     "Completed windows waiting for a fit."),
    ("repro_drain_rounds_total", "counter", ("mode",),
     "Multi-path drain rounds, by drain mode (fused or pool)."),
    ("repro_drain_windows_total", "counter", ("mode",),
     "Windows resolved by drain rounds, by drain mode."),
    ("repro_drain_round_seconds", "histogram", ("mode",),
     "Wall-clock duration of one multi-path drain round."),
    ("repro_drain_pad_waste_ratio", "histogram", (),
     "Fraction of fused mega-batch slots wasted on ragged padding."),
    ("repro_probes_loaded_total", "counter", (),
     "Probe records loaded from observation files."),
    ("repro_losses_loaded_total", "counter", (),
     "Loss records loaded from observation files."),
    ("repro_stationarity_checks_total", "counter", ("result",),
     "Stationarity-gate evaluations, by outcome."),
    ("repro_alerts_fired_total", "counter", ("rule", "severity"),
     "Alert rules whose condition started holding, by rule name."),
    ("repro_watchdog_stalls_total", "counter", (),
     "Watchdog stall detections (no heartbeat within the timeout)."),
    ("repro_pool_breaks_total", "counter", (),
     "Worker-pool crashes recovered by a serial rerun."),
    ("repro_service_paths", "gauge", ("status",),
     "Registered fleet-service paths, by registry status."),
    ("repro_service_records_total", "counter", (),
     "Probe records accepted by the fleet service."),
    ("repro_service_records_dropped_total", "counter", ("reason",),
     "Probe records dropped at the service boundary, by reason."),
    ("repro_service_backlog_windows", "gauge", (),
     "Fleet-wide pending windows awaiting a drain (O(1) scheduler "
     "counter)."),
    ("repro_service_rounds_total", "counter", (),
     "Fleet-service loop cycles completed."),
    ("repro_service_windows_total", "counter", (),
     "Windows resolved by fleet-service drain cycles."),
    ("repro_service_shed_windows_total", "counter", (),
     "Pending windows shed by the backpressure policy."),
    ("repro_service_coarsen_total", "counter", ("action",),
     "Backpressure window-stride transitions (coarsen or restore)."),
    ("repro_service_http_requests_total", "counter",
     ("route", "method", "code"),
     "Fleet-service HTTP API requests, by route and status code."),
    ("repro_service_http_seconds", "histogram", ("route",),
     "Fleet-service HTTP API request latency, by route."),
    ("repro_trace_stage_seconds", "histogram", ("stage",),
     "Per-stage record-to-verdict latency decomposition."),
    ("repro_record_to_verdict_seconds", "histogram", (),
     "Freshness of published verdicts: last record to verdict."),
    ("repro_traces_total", "counter", (),
     "Record-to-verdict traces finalized at verdict publication."),
    ("repro_slo_burn_rate", "gauge", ("slo", "window"),
     "Error-budget burn rate per SLO, by alerting window (fast/slow)."),
    ("repro_slo_burn_rate_min", "gauge", ("slo",),
     "Minimum of the fast/slow burn rates (the both-windows-burning "
     "condition the compiled alert rules watch)."),
    ("repro_slo_budget_remaining", "gauge", ("slo",),
     "Unconsumed error-budget fraction over the SLO window."),
    ("repro_model_health", "gauge", ("path",),
     "Per-path model-health score in [0, 1] (1 = assumptions hold)."),
    ("repro_model_health_min", "gauge", (),
     "Fleet-wide minimum model-health score (alerting surface)."),
    ("repro_model_drift_alarms_total", "counter", ("detector",),
     "Drift-detector alarms on model-health inputs, by detector."),
]

#: Series the monitor preregisters at zero so scrapes (and the CI
#: telemetry job) always see the families, even before the first
#: fallback or verdict flip.  (name, label dicts to pre-create).
MONITOR_SERIES: List[Tuple[str, List[dict]]] = [
    ("repro_streaming_fits_total",
     [{"mode": "warm"}, {"mode": "cold"}]),
    ("repro_streaming_fallbacks_total",
     [{"reason": "zero-likelihood"}, {"reason": "non-finite-loglik"},
      {"reason": "non-monotone"}]),
    ("repro_windows_total", [{}]),
    ("repro_windows_skipped_total",
     [{"reason": "nonstationary"}, {"reason": "no-losses"},
      {"reason": "degenerate"}]),
    ("repro_windows_dropped_total", [{}]),
    ("repro_window_verdicts_total",
     [{"verdict": "strong"}, {"verdict": "weak"}, {"verdict": "none"}]),
    ("repro_verdict_changes_total", [{}]),
    ("repro_drain_rounds_total",
     [{"mode": "fused"}, {"mode": "pool"}]),
    ("repro_drain_windows_total",
     [{"mode": "fused"}, {"mode": "pool"}]),
    ("repro_watchdog_stalls_total", [{}]),
    ("repro_pool_breaks_total", [{}]),
    ("repro_service_records_total", [{}]),
    ("repro_service_records_dropped_total",
     [{"reason": "unregistered"}, {"reason": "paused"},
      {"reason": "stale-generation"}]),
    ("repro_service_rounds_total", [{}]),
    ("repro_service_windows_total", [{}]),
    ("repro_service_shed_windows_total", [{}]),
    ("repro_service_coarsen_total",
     [{"action": "coarsen"}, {"action": "restore"}]),
    ("repro_traces_total", [{}]),
    # The health *gauges* are deliberately absent: a zero-valued
    # repro_model_health_min series would instantly trip the
    # ``model-health-degraded`` (< 0.5) rule before any window ran.
    ("repro_model_drift_alarms_total",
     [{"detector": "cusum"}, {"detector": "page-hinkley"},
      {"detector": "chi-square"}]),
]


def validate_event(event: dict) -> List[str]:
    """Schema problems of one decoded event (empty list = valid)."""
    problems = []
    for field in ("ts", "wall", "pid", "kind"):
        if field not in event:
            problems.append(f"missing envelope field {field!r}")
    kind = event.get("kind")
    if kind not in EVENT_KINDS:
        problems.append(f"unknown kind {kind!r}")
        return problems
    _, required = EVENT_KINDS[kind]
    for field in required:
        if field not in event:
            problems.append(f"{kind}: missing field {field!r}")
    return problems


#: Histogram families whose durations sit well under the default 1ms
#: bucket floor (queue waits, publish hops) — preregistered with the
#: tracing layer's finer bucket edges.
_FINE_HISTOGRAMS = ("repro_trace_stage_seconds",
                    "repro_record_to_verdict_seconds")


def preregister(registry) -> None:
    """Describe every family and create the monitor's zero-valued series."""
    from repro.obs.trace import STAGE_BUCKETS

    for name, kind, _labels, help_text in METRICS:
        buckets = STAGE_BUCKETS if name in _FINE_HISTOGRAMS else None
        registry.describe(name, help_text, buckets=buckets)
    for name, label_sets in MONITOR_SERIES:
        for labels in label_sets:
            registry.inc(name, 0.0, **labels)
