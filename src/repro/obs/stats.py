"""Summarize a telemetry JSONL event file (the ``repro stats`` command).

Reads events written by the :mod:`repro.obs.events` bus — possibly from
several processes and several runs appended to one file — and reduces
them to the questions an operator actually asks:

* where did the time go? (per-span-name totals, slowest single spans)
* how healthy is the streaming monitor? (warm-start hit rate, fallback
  rate by reason, skipped windows by reason, verdict flips)
* how is EM behaving? (restarts, non-monotone trajectories, restart
  win dispersion)
* what did the fleet service do? (rounds, ingest/drop volume, peak
  backlog, backpressure sheds and stride changes)
* where do verdict-seconds go? (``trace.window`` per-stage latency
  aggregates, SLO breach counts)
* is the model still believable? (``model.health`` per-path min/mean
  scores, drift-alarm counts, violated assumptions)

Malformed lines are counted, not fatal — a live file may end in a torn
line while a writer is mid-append, a crash can leave a half-flushed
buffer, and rotation can slice a line in two.  "Malformed" covers all
of it: invalid JSON, valid JSON that is not an object (``42`` parses
fine but is not an event), and undecodable bytes (read with
``errors="replace"`` so one corrupt block cannot kill the summary).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

__all__ = ["summarize_events", "format_summary"]


def _iter_events(source: Union[str, Path, Iterable[str]]):
    """Yield event dicts from a path / line-iterable; ``None`` per bad line.

    Already-parsed dicts pass straight through, so callers holding
    in-memory events (the flight-recorder ring, ``repro report``) reuse
    the same aggregation paths as the JSONL readers.
    """
    if isinstance(source, (str, Path)):
        with Path(source).open(encoding="utf-8",
                               errors="replace") as handle:
            yield from _iter_events(handle)
        return
    for line in source:
        if isinstance(line, dict):
            yield line
            continue
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:  # JSONDecodeError plus torn-surrogate cases
            yield None  # counted as malformed by the caller
            continue
        yield event if isinstance(event, dict) else None


def summarize_events(source: Union[str, Path, Iterable[str]],
                     top: int = 5) -> dict:
    """Aggregate a JSONL event stream into one summary dict."""
    n_events = 0
    n_bad = 0
    by_kind: Dict[str, int] = {}
    span_totals: Dict[str, dict] = {}
    slowest: List[dict] = []
    fits = {"warm": 0, "cold": 0}
    fallbacks: Dict[str, int] = {}
    windows = {"analyzed": 0, "skipped": 0, "flips": 0}
    skip_reasons: Dict[str, int] = {}
    verdicts: Dict[str, int] = {}
    em = {"restarts": 0, "nonconverged": 0, "fits": 0}
    nonmonotone_restarts = 0
    dispersions: List[float] = []
    alerts = {"fired": 0, "resolved": 0}
    alerts_by_rule: Dict[str, int] = {}
    n_stalls = 0
    service = {"rounds": 0, "ingested": 0, "dropped": 0, "windows": 0,
               "max_backlog": 0, "shed_windows": 0}
    coarsen: Dict[str, int] = {}
    path_actions: Dict[str, int] = {}
    n_traces = 0
    trace_stages: Dict[str, dict] = {}
    slo = {"evaluations": 0, "breaches": 0}
    slo_breaching: Dict[str, int] = {}
    health = {"reports": 0, "no_evidence": 0}
    health_paths: Dict[str, dict] = {}
    health_alarms: Dict[str, int] = {}
    health_reasons: Dict[str, int] = {}

    for event in _iter_events(source):
        if event is None:
            n_bad += 1
            continue
        n_events += 1
        kind = event.get("kind", "?")
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if kind == "span":
            name = event.get("name", "?")
            dur_ms = float(event.get("dur_ms", 0.0))
            entry = span_totals.setdefault(
                name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0})
            entry["count"] += 1
            entry["total_ms"] += dur_ms
            entry["max_ms"] = max(entry["max_ms"], dur_ms)
            slowest.append({"name": name, "dur_ms": dur_ms,
                            "span": event.get("span")})
        elif kind == "streaming.fit":
            mode = "warm" if event.get("warm_used") else "cold"
            fits[mode] += 1
            reason = event.get("fallback_reason")
            if reason:
                fallbacks[reason] = fallbacks.get(reason, 0) + 1
        elif kind == "window":
            if event.get("status") == "ok":
                windows["analyzed"] += 1
                verdict = event.get("verdict") or "?"
                verdicts[verdict] = verdicts.get(verdict, 0) + 1
            else:
                windows["skipped"] += 1
                reason = str(event.get("reason") or "?").split(":")[0]
                skip_reasons[reason] = skip_reasons.get(reason, 0) + 1
            if event.get("changed"):
                windows["flips"] += 1
        elif kind == "em.restart":
            em["restarts"] += 1
            if not event.get("converged", True):
                em["nonconverged"] += 1
            logliks = event.get("logliks") or []
            if any(b < a for a, b in zip(logliks, logliks[1:])):
                nonmonotone_restarts += 1
        elif kind == "em.fit":
            em["fits"] += 1
            dispersion = event.get("loglik_dispersion")
            if dispersion is not None:
                dispersions.append(float(dispersion))
        elif kind == "alert.fired":
            alerts["fired"] += 1
            rule = str(event.get("rule") or "?")
            alerts_by_rule[rule] = alerts_by_rule.get(rule, 0) + 1
        elif kind == "alert.resolved":
            alerts["resolved"] += 1
        elif kind == "watchdog.stall":
            n_stalls += 1
        elif kind == "service.round":
            service["rounds"] += 1
            service["ingested"] += int(event.get("ingested") or 0)
            service["dropped"] += int(event.get("dropped") or 0)
            service["windows"] += int(event.get("windows") or 0)
            service["max_backlog"] = max(service["max_backlog"],
                                         int(event.get("backlog") or 0))
        elif kind == "service.shed":
            service["shed_windows"] += int(event.get("shed") or 0)
        elif kind == "service.coarsen":
            action = str(event.get("action") or "?")
            coarsen[action] = coarsen.get(action, 0) + 1
        elif kind == "service.path":
            action = str(event.get("action") or "?")
            path_actions[action] = path_actions.get(action, 0) + 1
        elif kind == "trace.window":
            n_traces += 1
            for stage, dur in (event.get("stages") or {}).items():
                entry = trace_stages.setdefault(
                    stage, {"count": 0, "total_s": 0.0, "max_s": 0.0})
                entry["count"] += 1
                entry["total_s"] += float(dur)
                entry["max_s"] = max(entry["max_s"], float(dur))
        elif kind == "slo.status":
            slo["evaluations"] += 1
            if event.get("breaching"):
                slo["breaches"] += 1
                name = str(event.get("slo") or "?")
                slo_breaching[name] = slo_breaching.get(name, 0) + 1
        elif kind == "model.health":
            health["reports"] += 1
            value = event.get("health")
            if value is None:
                health["no_evidence"] += 1
            else:
                path = str(event.get("path") or "?")
                entry = health_paths.setdefault(
                    path, {"count": 0, "sum": 0.0, "min": float(value)})
                entry["count"] += 1
                entry["sum"] += float(value)
                entry["min"] = min(entry["min"], float(value))
            for detector in event.get("alarms") or []:
                detector = str(detector)
                health_alarms[detector] = health_alarms.get(detector, 0) + 1
            for reason in event.get("reasons") or []:
                reason = str(reason)
                health_reasons[reason] = health_reasons.get(reason, 0) + 1

    slowest.sort(key=lambda s: s["dur_ms"], reverse=True)
    total_fits = fits["warm"] + fits["cold"]
    n_windows = windows["analyzed"] + windows["skipped"]
    return {
        "n_events": n_events,
        "n_unparseable": n_bad,
        "malformed_lines": n_bad,
        "alerts": {
            "fired": alerts["fired"],
            "resolved": alerts["resolved"],
            "by_rule": dict(sorted(alerts_by_rule.items())),
        },
        "stalls": n_stalls,
        "by_kind": dict(sorted(by_kind.items())),
        "spans": {
            "by_name": {
                name: {
                    "count": entry["count"],
                    "total_ms": round(entry["total_ms"], 3),
                    "mean_ms": round(entry["total_ms"] / entry["count"], 3),
                    "max_ms": round(entry["max_ms"], 3),
                }
                for name, entry in sorted(span_totals.items())
            },
            "slowest": slowest[:top],
        },
        "streaming": {
            "fits": total_fits,
            "warm": fits["warm"],
            "cold": fits["cold"],
            "warm_rate": round(fits["warm"] / total_fits, 4)
            if total_fits else None,
            "fallbacks": dict(sorted(fallbacks.items())),
            "fallback_rate": round(sum(fallbacks.values()) / total_fits, 4)
            if total_fits else None,
        },
        "windows": {
            "total": n_windows,
            "analyzed": windows["analyzed"],
            "skipped": windows["skipped"],
            "skip_reasons": dict(sorted(skip_reasons.items())),
            "verdicts": dict(sorted(verdicts.items())),
            "verdict_flips": windows["flips"],
        },
        "em": {
            "fits": em["fits"],
            "restarts": em["restarts"],
            "nonconverged_restarts": em["nonconverged"],
            "nonmonotone_restarts": nonmonotone_restarts,
            "max_loglik_dispersion": round(max(dispersions), 4)
            if dispersions else None,
        },
        "service": {
            "rounds": service["rounds"],
            "ingested": service["ingested"],
            "dropped": service["dropped"],
            "windows": service["windows"],
            "max_backlog": service["max_backlog"],
            "shed_windows": service["shed_windows"],
            "coarsen": dict(sorted(coarsen.items())),
            "path_actions": dict(sorted(path_actions.items())),
        },
        "traces": {
            "count": n_traces,
            "stages": {
                stage: {
                    "count": entry["count"],
                    "mean_ms": round(
                        entry["total_s"] / entry["count"] * 1000.0, 3),
                    "max_ms": round(entry["max_s"] * 1000.0, 3),
                }
                for stage, entry in sorted(trace_stages.items())
            },
        },
        "slo": {
            "evaluations": slo["evaluations"],
            "breaches": slo["breaches"],
            "breaching_by_slo": dict(sorted(slo_breaching.items())),
        },
        "model_health": {
            "reports": health["reports"],
            "no_evidence": health["no_evidence"],
            "by_path": {
                path: {
                    "count": entry["count"],
                    "min": round(entry["min"], 4),
                    "mean": round(entry["sum"] / entry["count"], 4),
                }
                for path, entry in sorted(health_paths.items())
            },
            "drift_alarms": dict(sorted(health_alarms.items())),
            "reasons": dict(sorted(health_reasons.items())),
        },
    }


def format_summary(summary: dict) -> str:
    """Render :func:`summarize_events` output for a terminal."""
    lines = [
        f"events: {summary['n_events']}"
        + (f" ({summary['n_unparseable']} unparseable)"
           if summary["n_unparseable"] else ""),
    ]
    if summary["by_kind"]:
        kinds = ", ".join(f"{k}={v}" for k, v in summary["by_kind"].items())
        lines.append(f"  by kind: {kinds}")

    spans = summary["spans"]
    if spans["by_name"]:
        lines.append("spans (total time, by name):")
        ordered = sorted(spans["by_name"].items(),
                         key=lambda item: item[1]["total_ms"], reverse=True)
        for name, entry in ordered:
            lines.append(
                f"  {name}: {entry['count']}x, total {entry['total_ms']:.1f} "
                f"ms, mean {entry['mean_ms']:.1f} ms, max {entry['max_ms']:.1f} ms"
            )
        lines.append("slowest spans:")
        for entry in spans["slowest"]:
            lines.append(f"  {entry['dur_ms']:.1f} ms  {entry['name']}"
                         f"  [{entry.get('span')}]")

    streaming = summary["streaming"]
    if streaming["fits"]:
        lines.append(
            f"streaming fits: {streaming['fits']} "
            f"(warm {streaming['warm']}, cold {streaming['cold']}, "
            f"warm rate {streaming['warm_rate']:.0%})"
        )
        if streaming["fallbacks"]:
            reasons = ", ".join(f"{k}={v}"
                                for k, v in streaming["fallbacks"].items())
            lines.append(
                f"  fallbacks: {reasons} "
                f"(rate {streaming['fallback_rate']:.1%})"
            )

    windows = summary["windows"]
    if windows["total"]:
        lines.append(
            f"windows: {windows['total']} "
            f"(analyzed {windows['analyzed']}, skipped {windows['skipped']})"
        )
        if windows["skip_reasons"]:
            reasons = ", ".join(f"{k}={v}"
                                for k, v in windows["skip_reasons"].items())
            lines.append(f"  skip reasons: {reasons}")
        if windows["verdicts"]:
            verdicts = ", ".join(f"{k}={v}"
                                 for k, v in windows["verdicts"].items())
            lines.append(f"  verdicts: {verdicts}")
        lines.append(f"  stable-verdict flips: {windows['verdict_flips']}")

    em = summary["em"]
    if em["restarts"] or em["fits"]:
        lines.append(
            f"EM: {em['fits']} fits, {em['restarts']} restarts "
            f"({em['nonconverged_restarts']} hit max_iter, "
            f"{em['nonmonotone_restarts']} non-monotone)"
        )
        if em["max_loglik_dispersion"] is not None:
            lines.append(
                f"  max restart loglik dispersion: "
                f"{em['max_loglik_dispersion']:.4f}"
            )

    service = summary.get("service") or {}
    if service.get("rounds"):
        lines.append(
            f"service: {service['rounds']} rounds, "
            f"ingested {service['ingested']}, dropped {service['dropped']}, "
            f"windows {service['windows']}, "
            f"max backlog {service['max_backlog']}"
        )
        if service.get("shed_windows") or service.get("coarsen"):
            parts = []
            if service.get("shed_windows"):
                parts.append(f"shed {service['shed_windows']} windows")
            if service.get("coarsen"):
                parts.append("stride " + ", ".join(
                    f"{k}={v}" for k, v in service["coarsen"].items()))
            lines.append("  backpressure: " + "; ".join(parts))
        if service.get("path_actions"):
            actions = ", ".join(f"{k}={v}"
                                for k, v in service["path_actions"].items())
            lines.append(f"  path actions: {actions}")

    traces = summary.get("traces") or {}
    if traces.get("count"):
        lines.append(f"record-to-verdict traces: {traces['count']}")
        # Fixed stage order (pipeline order), not alphabetical.
        for stage in ("ingest", "queue", "fit", "publish", "total"):
            entry = traces["stages"].get(stage)
            if entry:
                lines.append(
                    f"  {stage}: mean {entry['mean_ms']:.1f} ms, "
                    f"max {entry['max_ms']:.1f} ms ({entry['count']}x)"
                )

    slo = summary.get("slo") or {}
    if slo.get("evaluations"):
        line = (f"SLO evaluations: {slo['evaluations']} "
                f"({slo['breaches']} breaching")
        if slo.get("breaching_by_slo"):
            line += ": " + ", ".join(
                f"{k}={v}" for k, v in slo["breaching_by_slo"].items())
        line += ")"
        lines.append(line)

    health = summary.get("model_health") or {}
    if health.get("reports"):
        line = f"model health: {health['reports']} reports"
        if health.get("no_evidence"):
            line += f" ({health['no_evidence']} without evidence)"
        lines.append(line)
        for path, entry in health.get("by_path", {}).items():
            lines.append(
                f"  {path}: min {entry['min']:.2f}, "
                f"mean {entry['mean']:.2f} ({entry['count']}x)"
            )
        if health.get("drift_alarms"):
            alarms = ", ".join(f"{k}={v}"
                               for k, v in health["drift_alarms"].items())
            lines.append(f"  drift alarms: {alarms}")
        if health.get("reasons"):
            reasons = ", ".join(f"{k}={v}"
                                for k, v in health["reasons"].items())
            lines.append(f"  violated assumptions: {reasons}")

    alerts = summary.get("alerts") or {}
    if alerts.get("fired"):
        rules = ", ".join(f"{k}={v}"
                          for k, v in alerts.get("by_rule", {}).items())
        lines.append(
            f"alerts: {alerts['fired']} fired, "
            f"{alerts.get('resolved', 0)} resolved ({rules})"
        )
    if summary.get("stalls"):
        lines.append(f"watchdog stalls: {summary['stalls']}")
    return "\n".join(lines)
