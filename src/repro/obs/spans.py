"""Span-based timing: nested, ids, emitted as events + histograms.

``span("em.fit", model="mmhd")`` times a block, assigns it a span id
unique within the process, links it to the enclosing span (a
thread-local stack provides nesting), and on exit

* emits a ``kind="span"`` event — ``name``, ``span``, ``parent``,
  ``dur_ms``, plus the keyword attributes — on the event bus, and
* observes the duration into the ``repro_span_seconds`` histogram,
  labelled by span name.

When telemetry is disabled the context manager yields immediately —
no clock reads, no id allocation.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["span", "current_span_id", "SPAN_SECONDS"]

#: Histogram fed by every completed span, labelled ``name=<span name>``.
SPAN_SECONDS = "repro_span_seconds"

_local = threading.local()
_ids = itertools.count(1)


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_span_id() -> Optional[str]:
    """Id of the innermost active span on this thread (None outside)."""
    stack = _stack()
    return stack[-1] if stack else None


def _next_span_id() -> str:
    return f"{os.getpid():x}-{next(_ids):x}"


@contextmanager
def span(name: str, **attrs) -> Iterator[Optional[str]]:
    """Time a block as a named span; yields the span id (None if off).

    Import cycle note: the facade is imported lazily so
    ``repro.obs.spans`` can be imported on its own.
    """
    from repro import obs

    if not obs.is_enabled():
        yield None
        return
    span_id = _next_span_id()
    stack = _stack()
    parent = stack[-1] if stack else None
    stack.append(span_id)
    start = time.monotonic()
    try:
        yield span_id
    finally:
        duration = time.monotonic() - start
        stack.pop()
        obs.observe(SPAN_SECONDS, duration, name=name)
        obs.emit(
            "span",
            name=name,
            span=span_id,
            parent=parent,
            dur_ms=round(duration * 1e3, 3),
            **attrs,
        )
