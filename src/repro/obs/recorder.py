"""Flight recorder: event ring buffer, crash dumps, stall watchdog.

A long-running monitor fails in ways raw JSONL cannot explain after the
fact: the process is killed, a pool worker dies, EM wedges on a
degenerate window.  This module keeps the *recent past* in memory and
gets it out of the process when something goes wrong:

* :class:`FlightRecorder` — a bounded ring of the last N telemetry
  events, fed by an event-bus tap (so it works with or without a JSONL
  sink), dumpable as one JSON file with per-thread Python stacks;
* signal-triggered **crash dumps** — :meth:`FlightRecorder
  .install_signal_dumps` writes the ring tail to ``crash-<pid>.json``
  on SIGTERM/SIGINT (plus a ``faulthandler`` text dump for hard
  crashes) before the process exits, so a killed monitor leaves its
  last moments behind;
* :class:`Watchdog` — detects stalled progress (no :meth:`Watchdog
  .beat` within ``timeout`` seconds: a wedged EM iteration, a dead pool
  worker, a stuck input) and emits a ``watchdog.stall`` event carrying
  the ring tail, optionally writing a dump.

Progress points feed the watchdog through :func:`repro.obs.heartbeat`,
which fans out to every started watchdog via :func:`beat_all` — the
monitor drain loop and ``parallel_map`` completions beat it, so "no
heartbeat" means the pipeline truly made no progress.
"""

from __future__ import annotations

import faulthandler
import json
import os
import signal
import sys
import threading
import time
import traceback
from collections import deque
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.obs.events import json_default

__all__ = ["FlightRecorder", "Watchdog", "beat_all"]

#: Watchdogs currently started (fed by :func:`beat_all`).
_WATCHDOGS: List["Watchdog"] = []
_WATCHDOGS_LOCK = threading.Lock()


def beat_all() -> None:
    """Feed every started watchdog (the :func:`repro.obs.heartbeat` fan-out)."""
    for watchdog in list(_WATCHDOGS):
        watchdog.beat()


def _thread_stacks() -> dict:
    """Current Python stack of every thread, formatted for a dump."""
    names = {t.ident: t.name for t in threading.enumerate()}
    stacks = {}
    for ident, frame in sys._current_frames().items():
        label = f"{names.get(ident, '?')} ({ident})"
        stacks[label] = traceback.format_stack(frame)
    return stacks


class FlightRecorder:
    """A bounded in-memory ring of recent telemetry events.

    Attach it as an event-bus tap (:meth:`attach`) and every emitted
    event lands in the ring regardless of whether a JSONL sink is
    configured; :meth:`dump` writes the ring plus thread stacks as one
    JSON file an operator can read without the dead process.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.ring: deque = deque(maxlen=self.capacity)
        self._attached = False
        self._signals: dict = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, event: dict) -> None:
        """Append one event dict (the tap callable)."""
        self.ring.append(event)

    def attach(self) -> "FlightRecorder":
        """Subscribe to the process-global event bus (idempotent)."""
        from repro import obs

        obs.bus().add_tap(self.record)
        self._attached = True
        return self

    def detach(self) -> None:
        """Unsubscribe from the event bus."""
        from repro import obs

        obs.bus().remove_tap(self.record)
        self._attached = False

    def tail(self, n: Optional[int] = None) -> List[dict]:
        """The most recent ``n`` events (all of them when ``n`` is None)."""
        events = list(self.ring)
        return events if n is None else events[-int(n):]

    # ------------------------------------------------------------------
    # Dumps
    # ------------------------------------------------------------------
    def dump(self, path: Union[str, Path], reason: str,
             extra: Optional[dict] = None) -> Path:
        """Write the ring (plus thread stacks) as one JSON crash dump."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "reason": reason,
            "wall": time.time(),
            "pid": os.getpid(),
            "argv": list(sys.argv),
            "n_events": len(self.ring),
            "events": self.tail(),
            "threads": _thread_stacks(),
        }
        if extra:
            payload.update(extra)
        path.write_text(
            json.dumps(payload, indent=2, default=json_default) + "\n",
            encoding="utf-8",
        )
        return path

    def install_signal_dumps(
        self,
        directory: Union[str, Path],
        signals: tuple = (signal.SIGTERM, signal.SIGINT),
        enable_faulthandler: bool = True,
    ) -> Path:
        """Dump the ring to ``crash-<pid>.json`` when a signal kills us.

        The handler writes the dump, restores the previous disposition,
        and re-raises the signal so the exit status still reports the
        kill.  ``faulthandler`` additionally covers hard crashes (SIGSEGV
        and friends) with a text traceback in the same directory.  Only
        call from the main thread (a CPython signal-API constraint).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if enable_faulthandler:
            handle = open(directory / f"faulthandler-{os.getpid()}.txt", "w",
                          encoding="utf-8")
            faulthandler.enable(file=handle)

        def handler(signum, frame):
            self.dump(
                directory / f"crash-{os.getpid()}.json",
                reason=f"signal {signal.Signals(signum).name}",
            )
            previous = self._signals.get(signum, signal.SIG_DFL)
            signal.signal(signum, previous)
            os.kill(os.getpid(), signum)

        for signum in signals:
            self._signals[signum] = signal.getsignal(signum)
            signal.signal(signum, handler)
        return directory

    def uninstall_signal_dumps(self) -> None:
        """Restore the signal dispositions :meth:`install_signal_dumps` replaced."""
        while self._signals:
            signum, previous = self._signals.popitem()
            signal.signal(signum, previous)


class Watchdog:
    """Detect stalled progress and surface the flight-recorder tail.

    A stall is ``timeout`` seconds without a :meth:`beat`.  Detection
    emits one ``watchdog.stall`` event (carrying the last ``ring_tail``
    ring events), bumps ``repro_watchdog_stalls_total``, optionally
    writes a dump into ``dump_dir``, and calls ``on_stall``.  The state
    re-arms on the next beat, so a monitor that recovers and wedges
    again is reported again.

    Use as a context manager or call :meth:`start`/:meth:`stop`; checks
    run on a daemon thread (or call :meth:`check` directly with a fake
    clock in tests).
    """

    def __init__(
        self,
        timeout: float = 60.0,
        recorder: Optional[FlightRecorder] = None,
        ring_tail: int = 50,
        dump_dir: Optional[Union[str, Path]] = None,
        on_stall: Optional[Callable[[float], None]] = None,
        poll: Optional[float] = None,
    ):
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = float(timeout)
        self.recorder = recorder
        self.ring_tail = int(ring_tail)
        self.dump_dir = None if dump_dir is None else Path(dump_dir)
        self.on_stall = on_stall
        self.poll = float(poll) if poll is not None else min(
            1.0, self.timeout / 4)
        self.n_stalls = 0
        self._last_beat = time.monotonic()
        self._stalled = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def beat(self) -> None:
        """Record progress; re-arms stall detection."""
        self._last_beat = time.monotonic()
        self._stalled = False

    def check(self, now: Optional[float] = None) -> bool:
        """Evaluate the stall condition once; True if a stall fired."""
        from repro import obs

        now = time.monotonic() if now is None else now
        idle = now - self._last_beat
        if idle < self.timeout or self._stalled:
            return False
        self._stalled = True
        self.n_stalls += 1
        ring = (self.recorder.tail(self.ring_tail)
                if self.recorder is not None else [])
        obs.inc("repro_watchdog_stalls_total")
        obs.emit(
            "watchdog.stall",
            idle_seconds=round(idle, 3),
            timeout=self.timeout,
            ring=ring,
        )
        if self.recorder is not None and self.dump_dir is not None:
            self.recorder.dump(
                self.dump_dir / f"stall-{os.getpid()}-{self.n_stalls}.json",
                reason=f"watchdog stall after {idle:.1f}s idle",
                extra={"timeout": self.timeout},
            )
        if self.on_stall is not None:
            try:
                self.on_stall(idle)
            except Exception:  # noqa: BLE001 - observers never break us
                pass
        return True

    def _run(self) -> None:
        while not self._stop.wait(self.poll):
            self.check()

    def start(self) -> "Watchdog":
        """Begin watching on a daemon thread; registers for heartbeats."""
        if self._thread is not None:
            return self
        self.beat()
        self._stop.clear()
        with _WATCHDOGS_LOCK:
            _WATCHDOGS.append(self)
        self._thread = threading.Thread(
            target=self._run, name="repro-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop watching and deregister (idempotent)."""
        with _WATCHDOGS_LOCK:
            if self in _WATCHDOGS:
                _WATCHDOGS.remove(self)
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "Watchdog":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
