"""``repro report``: a single-file HTML dashboard from telemetry JSONL.

One command turns the artifacts a run leaves behind — telemetry event
files, ``run.manifest`` provenance, ``BENCH_*.json`` benchmark reports —
into one self-contained HTML page: no scripts, no external requests, no
third-party libraries, just inline SVG sparklines and CSS that respects
``prefers-color-scheme``.  The page answers, in order: what ran (the
manifests), how it went (summary cards + spans), how EM behaved
(restart log-likelihoods), what each monitored path concluded (verdict
strips + lag sparklines), whether those conclusions are still
believable (model-health sparklines + violated assumptions), what went
wrong (alerts, stalls, pool
breaks), where the CPU went (profile tables), and whether performance
regressed against committed baselines (:func:`diff_bench`, shared with
``benchmarks/compare_bench.py`` and CI).

Verdict colors are status colors — strong DCL is the serious state for
an operator — and every color is paired with a text label, so nothing
is readable by hue alone.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.obs import stats

__all__ = ["load_bench", "diff_bench", "collect_report_data",
           "generate_report"]

# ----------------------------------------------------------------------
# Benchmark diffing (shared with benchmarks/compare_bench.py and CI)
# ----------------------------------------------------------------------


def load_bench(path: Union[str, Path]) -> dict:
    """Read one ``BENCH_*.json`` artifact."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _flatten(data, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested dict as dotted keys (bools excluded)."""
    out: Dict[str, float] = {}
    for key, value in data.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(_flatten(value, prefix=f"{dotted}."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[dotted] = float(value)
    return out


def _direction(key: str) -> Optional[str]:
    """``lower``/``higher``-is-better, or None for non-directional keys.

    Config echoes (window sizes, restart counts, tolerances) carry no
    better/worse direction and must not be flagged as regressions.
    """
    lowered = key.lower()
    if "speedup" in lowered or "throughput" in lowered:
        return "higher"
    if ("seconds" in lowered or "_ms" in lowered or "_ns" in lowered
            or "overhead" in lowered or "iters" in lowered):
        return "lower"
    return None


def diff_bench(baseline: dict, current: dict, tolerance: float = 0.25) -> dict:
    """Compare two BENCH reports; changes beyond ``tolerance`` are flagged.

    Only *directional* keys participate (timings, speedups, throughput,
    overheads).  A regression is the current value being worse than the
    baseline by more than ``tolerance`` as a fraction of the baseline;
    symmetric improvements are reported too.  Returns ``{"checked",
    "regressions", "improvements"}`` with per-key detail dicts.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    base = _flatten(baseline)
    cur = _flatten(current)
    checked: List[str] = []
    regressions: List[dict] = []
    improvements: List[dict] = []
    for key in sorted(base.keys() & cur.keys()):
        direction = _direction(key)
        if direction is None:
            continue
        base_value, cur_value = base[key], cur[key]
        if base_value == 0:
            continue  # no meaningful relative change
        rel = (cur_value - base_value) / abs(base_value)
        worse = rel if direction == "lower" else -rel
        entry = {
            "key": key,
            "baseline": base_value,
            "current": cur_value,
            "change": round(rel, 4),
            "direction": direction,
        }
        checked.append(key)
        if worse > tolerance:
            regressions.append(entry)
        elif worse < -tolerance:
            improvements.append(entry)
    return {
        "checked": len(checked),
        "regressions": regressions,
        "improvements": improvements,
    }


# ----------------------------------------------------------------------
# Event collection
# ----------------------------------------------------------------------


def collect_report_data(
    events_paths: Sequence[Union[str, Path]] = (),
    bench_paths: Sequence[Union[str, Path]] = (),
    baseline_dir: Optional[Union[str, Path]] = None,
    tolerance: float = 0.25,
) -> dict:
    """Everything :func:`generate_report` renders, as plain data.

    Reads all event files (tolerating malformed lines), groups the
    event kinds the dashboard cares about, summarizes via
    :func:`repro.obs.stats.summarize_events`, and diffs each bench
    report against a same-named file in ``baseline_dir`` when given.
    """
    events: List[dict] = []
    malformed = 0
    for path in events_paths:
        for event in stats._iter_events(path):
            if event is None:
                malformed += 1
            else:
                events.append(event)

    manifests = [e.get("manifest") or e for e in events
                 if e.get("kind") == "run.manifest"]
    windows_by_path: Dict[str, List[dict]] = {}
    for event in events:
        if event.get("kind") == "window":
            key = str(event.get("path") or "?")
            windows_by_path.setdefault(key, []).append(event)
    restart_logliks = [
        float(e["loglik"]) for e in events
        if e.get("kind") == "em.restart" and e.get("loglik") is not None
    ]
    drain_rounds = [e for e in events if e.get("kind") == "drain.round"]
    trace_windows = [e for e in events if e.get("kind") == "trace.window"]
    health_events = [e for e in events if e.get("kind") == "model.health"]
    slo_events = [e for e in events if e.get("kind") == "slo.status"]
    alert_events = [e for e in events
                    if e.get("kind") in ("alert.fired", "alert.resolved")]
    stall_events = [e for e in events if e.get("kind") == "watchdog.stall"]
    pool_events = [e for e in events if e.get("kind") == "pool.broken"]
    profiles = [e for e in events if e.get("kind") == "profile.phase"]

    benches = []
    for path in bench_paths:
        path = Path(path)
        entry = {"path": str(path), "name": path.name,
                 "data": load_bench(path), "diff": None, "baseline": None}
        if baseline_dir is not None:
            candidate = Path(baseline_dir) / path.name
            if candidate.exists() and candidate.resolve() != path.resolve():
                entry["baseline"] = str(candidate)
                entry["diff"] = diff_bench(
                    load_bench(candidate), entry["data"],
                    tolerance=tolerance)
        benches.append(entry)

    return {
        "summary": stats.summarize_events(events),
        "malformed": malformed,
        "n_events": len(events),
        "sources": [str(p) for p in events_paths],
        "manifests": manifests,
        "windows_by_path": windows_by_path,
        "drain_rounds": drain_rounds,
        "trace_windows": trace_windows,
        "health_events": health_events,
        "slo_events": slo_events,
        "restart_logliks": restart_logliks,
        "alerts": alert_events,
        "stalls": stall_events,
        "pool_breaks": pool_events,
        "profiles": profiles,
        "benches": benches,
        "n_regressions": sum(len(b["diff"]["regressions"])
                             for b in benches if b["diff"]),
    }


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------

#: Verdict -> (status color light, status color dark, label).  Strong
#: congestion is the serious state; "none" is the good one.
_VERDICT_STATUS = {
    "strong": ("#e34948", "#f25a50", "strong DCL"),
    "weak": ("#eda100", "#ffb224", "weak DCL"),
    "none": ("#1baf7a", "#21c58a", "no DCL"),
    "skipped": ("#d0cfcb", "#52514e", "skipped"),
}

_CSS = """\
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
  --line: #e8e7e3; --card: #ffffff; --series-1: #2a78d6;
  --bad: #e34948; --warn: #eda100; --good: #1baf7a; --mute: #d0cfcb;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
    --line: #3a3936; --card: #242422; --series-1: #3987e5;
    --bad: #f25a50; --warn: #ffb224; --good: #21c58a; --mute: #52514e;
  }
}
* { box-sizing: border-box; }
body { background: var(--surface); color: var(--ink); margin: 0;
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  padding: 24px; max-width: 1100px; margin-inline: auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--ink-2); font-size: 12px; margin-bottom: 16px; }
.cards { display: flex; flex-wrap: wrap; gap: 10px; }
.card { background: var(--card); border: 1px solid var(--line);
  border-radius: 8px; padding: 10px 14px; min-width: 120px; }
.card .v { font-size: 20px; font-weight: 600; }
.card .k { color: var(--ink-2); font-size: 11px; text-transform: uppercase;
  letter-spacing: .04em; }
table { border-collapse: collapse; width: 100%; background: var(--card);
  border: 1px solid var(--line); border-radius: 8px; overflow: hidden; }
th, td { text-align: left; padding: 6px 10px; font-size: 13px;
  border-top: 1px solid var(--line); }
th { color: var(--ink-2); font-weight: 500; font-size: 11px;
  text-transform: uppercase; letter-spacing: .04em; border-top: none; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.pill { display: inline-block; padding: 1px 8px; border-radius: 999px;
  font-size: 11px; font-weight: 600; color: #0b0b0b; }
.legend { color: var(--ink-2); font-size: 12px; margin: 6px 0; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin: 0 4px 0 10px; vertical-align: baseline; }
.spark { display: block; }
.strip rect { stroke: var(--surface); stroke-width: 2px; }
code { background: var(--card); border: 1px solid var(--line);
  border-radius: 4px; padding: 0 4px; font-size: 12px; }
.empty { color: var(--ink-2); font-style: italic; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _fmt(value) -> str:
    if value is None:
        return "–"
    if isinstance(value, float):
        return f"{value:,.4g}"
    return str(value)


def _svg_sparkline(values: Sequence[float], width: int = 260,
                   height: int = 44, label: str = "") -> str:
    """An inline SVG line sparkline (2px stroke, native title tooltip)."""
    values = [float(v) for v in values]
    if len(values) < 2:
        return '<span class="empty">not enough points</span>'
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pad = 3
    step = (width - 2 * pad) / (len(values) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (v - lo) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(values)
    )
    title = (f"{label}: {len(values)} points, "
             f"min {lo:,.4g}, max {hi:,.4g}")
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{_esc(title)}">'
        f"<title>{_esc(title)}</title>"
        f'<polyline points="{points}" fill="none" '
        f'stroke="var(--series-1)" stroke-width="2" '
        f'stroke-linejoin="round" stroke-linecap="round"/></svg>'
    )


def _verdict_color(verdict: str) -> str:
    mapping = {"strong": "var(--bad)", "weak": "var(--warn)",
               "none": "var(--good)", "skipped": "var(--mute)"}
    return mapping.get(verdict, "var(--mute)")


def _svg_verdict_strip(windows: Sequence[dict], width: int = 640,
                       height: int = 26) -> str:
    """One rect per window, colored by verdict, 2px surface spacers."""
    if not windows:
        return '<span class="empty">no windows</span>'
    n = len(windows)
    cell = max(width / n, 4.0)
    width = int(cell * n)
    rects = []
    for i, event in enumerate(windows):
        status = event.get("status")
        verdict = (str(event.get("verdict"))
                   if status == "ok" else "skipped")
        label = _VERDICT_STATUS.get(verdict, _VERDICT_STATUS["skipped"])[2]
        reason = event.get("reason")
        tip = f"window {event.get('window', i)}: {label}"
        if status != "ok" and reason:
            tip += f" ({reason})"
        if event.get("changed"):
            tip += " — stable verdict changed"
        rects.append(
            f'<rect x="{i * cell:.1f}" y="0" width="{cell:.1f}" '
            f'height="{height}" rx="4" fill="{_verdict_color(verdict)}">'
            f"<title>{_esc(tip)}</title></rect>"
        )
    return (
        f'<svg class="strip" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="verdict per window">{"".join(rects)}</svg>'
    )


def _verdict_legend() -> str:
    parts = ['<div class="legend">verdicts:']
    for key in ("strong", "weak", "none", "skipped"):
        label = _VERDICT_STATUS[key][2]
        parts.append(
            f'<span class="sw" style="background:{_verdict_color(key)}">'
            f"</span>{_esc(label)}"
        )
    parts.append("</div>")
    return "".join(parts)


def _card(value, key) -> str:
    return (f'<div class="card"><div class="v">{_esc(value)}</div>'
            f'<div class="k">{_esc(key)}</div></div>')


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]],
           numeric: Sequence[int] = ()) -> str:
    num_attr = ' class="num"'
    head = "".join(
        f"<th{num_attr if i in numeric else ''}>{_esc(h)}</th>"
        for i, h in enumerate(headers)
    )
    body = []
    for row in rows:
        cells = "".join(
            f"<td{num_attr if i in numeric else ''}>{cell}</td>"
            for i, cell in enumerate(row)
        )
        body.append(f"<tr>{cells}</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>")


def _render_manifests(manifests: Sequence[dict]) -> str:
    if not manifests:
        return '<p class="empty">no run.manifest events found</p>'
    rows = []
    for m in manifests:
        packages = m.get("packages") or {}
        seeds = ", ".join(f"{k}={v}" for k, v in (m.get("seeds") or
                                                  {}).items()) or "–"
        sha = m.get("git_sha")
        rows.append([
            f"<code>{_esc(m.get('run_id', '?'))}</code>",
            _esc(m.get("command", "?")),
            _esc(seeds),
            _esc(packages.get("repro", "?")),
            _esc(packages.get("numpy", "?")),
            _esc(m.get("python", "?")),
            f"<code>{_esc(sha[:10])}</code>" if sha else "–",
        ])
    return _table(
        ["run", "command", "seeds", "repro", "numpy", "python", "commit"],
        rows,
    )


def _render_alerts(alerts: Sequence[dict]) -> str:
    if not alerts:
        return '<p class="empty">no alerts fired</p>'
    rows = []
    for event in alerts:
        fired = event.get("kind") == "alert.fired"
        severity = event.get("severity", "warn")
        color = "var(--bad)" if severity == "fatal" else "var(--warn)"
        state = (f'<span class="pill" style="background:{color}">'
                 f"fired {_esc(severity)}</span>" if fired
                 else f'<span class="pill" style="background:var(--good)">'
                      f"resolved</span>")
        rows.append([
            state,
            _esc(event.get("rule", "?")),
            _fmt(event.get("value")),
            _fmt(event.get("threshold")),
            _esc(event.get("expr", "")),
        ])
    return _table(["state", "rule", "value", "threshold", "expression"],
                  rows, numeric=(2, 3))


def _render_profiles(profiles: Sequence[dict]) -> str:
    if not profiles:
        return ('<p class="empty">no profile data (run with '
                "<code>--profile</code>)</p>")
    blocks = []
    for event in sorted(profiles, key=lambda e: -float(e.get("total_ms", 0))):
        rows = [
            [_esc(row.get("func", "?")), _fmt(row.get("ncalls")),
             _fmt(row.get("cum_ms"))]
            for row in (event.get("top") or [])[:8]
        ]
        blocks.append(
            f"<h3>{_esc(event.get('phase', '?'))} — "
            f"{_fmt(event.get('calls'))} call(s), "
            f"{_fmt(event.get('total_ms'))} ms</h3>"
            + _table(["function", "calls", "cumulative ms"], rows,
                     numeric=(1, 2))
        )
    return "".join(blocks)


def _render_drain_rounds(rounds: Sequence[dict]) -> str:
    """Windows-per-round and pad-waste sparklines from drain.round events.

    The windows-per-round trace shows how well the scheduler batches
    (tall = big mega-batches, flat 1s = singleton rounds); the
    pad-fraction trace shows how much of those batches was padding.
    """
    if not rounds:
        return ('<p class="empty">no drain.round events (multi-path '
                "monitor not run, or telemetry disabled)</p>")
    by_mode: Dict[str, int] = {}
    total_windows = 0
    for event in rounds:
        mode = str(event.get("mode", "?"))
        by_mode[mode] = by_mode.get(mode, 0) + 1
        total_windows += int(event.get("windows") or 0)
    modes = ", ".join(f"{count} {mode}" for mode, count in
                      sorted(by_mode.items()))
    parts = [
        f'<p class="sub">{len(rounds)} drain rounds ({modes}), '
        f"{total_windows} windows resolved</p>",
        '<p class="sub">windows fitted per round:</p>',
        _svg_sparkline([float(e.get("windows") or 0) for e in rounds],
                       label="windows/round"),
    ]
    fused = [e for e in rounds if e.get("mode") == "fused"]
    if fused:
        parts.append(
            '<p class="sub">fused pad waste (fraction of mega-batch '
            "slots spent on padding):</p>"
            + _svg_sparkline([float(e.get("pad_fraction") or 0.0)
                              for e in fused], label="pad fraction")
        )
    return "".join(parts)


def _render_traces(trace_windows: Sequence[dict],
                   trace_summary: dict) -> str:
    """Per-stage latency table + record-to-verdict sparkline from
    ``trace.window`` events.

    The table answers "which stage dominates" (queue-wait vs E-step vs
    publish); the sparkline shows freshness drift over the run.
    """
    if not trace_windows:
        return ('<p class="empty">no trace.window events (run with '
                "<code>--trace</code>)</p>")
    stage_rows = []
    for stage in ("ingest", "queue", "fit", "publish", "total"):
        entry = (trace_summary.get("stages") or {}).get(stage)
        if entry:
            stage_rows.append([
                f"<code>{_esc(stage)}</code>", _fmt(entry["count"]),
                _fmt(entry["mean_ms"]), _fmt(entry["max_ms"]),
            ])
    parts = [
        f'<p class="sub">{len(trace_windows)} traced verdicts</p>',
        _table(["stage", "count", "mean ms", "max ms"], stage_rows,
               numeric=(1, 2, 3)),
    ]
    totals = [float((e.get("stages") or {}).get("total") or 0.0) * 1000.0
              for e in trace_windows
              if (e.get("stages") or {}).get("total") is not None]
    if totals:
        parts.append(
            '<p class="sub">record-to-verdict total (ms) per traced '
            "window:</p>" + _svg_sparkline(totals, label="total ms"))
    return "".join(parts)


def _render_health(health_events: Sequence[dict],
                   health_summary: dict) -> str:
    """Per-path health sparkline + the most-violated assumptions.

    The sparkline shows the score trajectory (1.0 = assumptions hold);
    the table below it names which assumption the detectors blamed, so
    an operator reads *why* a path's verdicts lost credibility, not
    just that they did.
    """
    if not health_events:
        return ('<p class="empty">no model.health events (run with '
                "<code>--health</code>)</p>")
    by_path: Dict[str, List[dict]] = {}
    for event in health_events:
        by_path.setdefault(str(event.get("path") or "?"), []).append(event)
    parts = []
    for name, events in sorted(by_path.items()):
        values = [float(e["health"]) for e in events
                  if e.get("health") is not None]
        skipped = sum(1 for e in events if e.get("health") is None)
        entry = (health_summary.get("by_path") or {}).get(name) or {}
        sub = f"{len(events)} reports"
        if entry:
            sub += (f", min {entry['min']:.2f}, "
                    f"mean {entry['mean']:.2f}")
        if skipped:
            sub += f", {skipped} without evidence"
        parts.append(
            f"<h3>path <code>{_esc(name)}</code></h3>"
            f'<p class="sub">{_esc(sub)} — model health per window '
            "(1.0 = assumptions hold):</p>"
            + _svg_sparkline(values, label=f"{name} health"))
    reasons = health_summary.get("reasons") or {}
    if reasons:
        rows = [
            [f"<code>{_esc(reason)}</code>", _fmt(count)]
            for reason, count in sorted(reasons.items(),
                                        key=lambda item: -item[1])
        ]
        parts.append('<p class="sub">violated assumptions, by count:</p>'
                     + _table(["assumption", "windows"], rows, numeric=(1,)))
    alarms = health_summary.get("drift_alarms") or {}
    if alarms:
        counts = ", ".join(f"<code>{_esc(k)}</code>×{v}"
                           for k, v in sorted(alarms.items()))
        parts.append(f'<p class="sub">drift alarms: {counts}</p>')
    return "".join(parts)


def _render_slos(slo_events: Sequence[dict]) -> str:
    """Latest budget status per SLO plus fast-burn sparklines."""
    if not slo_events:
        return ('<p class="empty">no slo.status events (run the service '
                "with <code>--slo</code>)</p>")
    by_slo: Dict[str, List[dict]] = {}
    for event in slo_events:
        by_slo.setdefault(str(event.get("slo") or "?"), []).append(event)
    rows = []
    sparks = []
    for name, events in sorted(by_slo.items()):
        last = events[-1]
        breaching = bool(last.get("breaching"))
        color = "var(--bad)" if breaching else "var(--good)"
        state = (f'<span class="pill" style="background:{color}">'
                 f"{'breaching' if breaching else 'ok'}</span>")
        remaining = last.get("budget_remaining")
        rows.append([
            f"<code>{_esc(name)}</code>", state,
            _fmt(last.get("burn_fast")), _fmt(last.get("burn_slow")),
            "–" if remaining is None else f"{float(remaining):.1%}",
        ])
        burns = [float(e.get("burn_fast") or 0.0) for e in events]
        if len(burns) >= 2:
            sparks.append(
                f'<p class="sub">fast-window burn rate, '
                f"<code>{_esc(name)}</code> (&gt;1 eats budget):</p>"
                + _svg_sparkline(burns, label=f"{name} burn"))
    return (_table(["slo", "state", "fast burn", "slow burn",
                    "budget remaining"], rows, numeric=(2, 3, 4))
            + "".join(sparks))


def _render_bench(entry: dict, tolerance: float) -> str:
    parts = [f"<h3><code>{_esc(entry['name'])}</code></h3>"]
    diff = entry["diff"]
    if diff is None:
        parts.append('<p class="empty">no baseline to compare against</p>')
    else:
        parts.append(
            f'<p class="sub">vs <code>{_esc(entry["baseline"])}</code> — '
            f"{diff['checked']} directional metrics checked at "
            f"±{tolerance:.0%} tolerance</p>"
        )
        flagged = (
            [("regression", "var(--bad)", e) for e in diff["regressions"]]
            + [("improvement", "var(--good)", e)
               for e in diff["improvements"]]
        )
        if not flagged:
            parts.append(
                '<p><span class="pill" style="background:var(--good)">'
                "ok</span> no change beyond tolerance</p>"
            )
        else:
            rows = [
                [f'<span class="pill" style="background:{color}">'
                 f"{label}</span>",
                 f"<code>{_esc(e['key'])}</code>",
                 _fmt(e["baseline"]), _fmt(e["current"]),
                 f"{e['change']:+.1%}",
                 _esc(f"{e['direction']} is better")]
                for label, color, e in flagged
            ]
            parts.append(_table(
                ["status", "metric", "baseline", "current", "change",
                 "direction"], rows, numeric=(2, 3, 4)))
    return "".join(parts)


def generate_report(
    events_paths: Sequence[Union[str, Path]] = (),
    bench_paths: Sequence[Union[str, Path]] = (),
    baseline_dir: Optional[Union[str, Path]] = None,
    tolerance: float = 0.25,
    out: Union[str, Path] = "report.html",
    title: str = "repro run report",
    data: Optional[dict] = None,
) -> Path:
    """Render the dashboard; returns the written path.

    Pass ``data`` (a :func:`collect_report_data` result) to render
    without re-reading the inputs — the CLI does this to share one
    collection between the page and the ``--fail-on-regression`` check.
    """
    if data is None:
        data = collect_report_data(
            events_paths, bench_paths, baseline_dir=baseline_dir,
            tolerance=tolerance)
    summary = data["summary"]
    streaming, windows, em = (summary["streaming"], summary["windows"],
                              summary["em"])

    cards = [
        _card(data["n_events"], "events"),
        _card(windows["analyzed"], "windows analyzed"),
        _card(windows["skipped"], "windows skipped"),
        _card("–" if streaming["warm_rate"] is None
              else f"{streaming['warm_rate']:.0%}", "warm-start rate"),
        _card(sum(streaming["fallbacks"].values()), "fallbacks"),
        _card(windows["verdict_flips"], "verdict flips"),
        _card(summary["alerts"]["fired"], "alerts fired"),
        _card(summary["stalls"], "stalls"),
    ]
    if data["malformed"]:
        cards.append(_card(data["malformed"], "malformed lines"))
    if data["benches"]:
        cards.append(_card(data["n_regressions"], "bench regressions"))

    span_rows = [
        [f"<code>{_esc(name)}</code>", _fmt(entry["count"]),
         _fmt(entry["total_ms"]), _fmt(entry["mean_ms"]),
         _fmt(entry["max_ms"])]
        for name, entry in sorted(
            summary["spans"]["by_name"].items(),
            key=lambda item: -item[1]["total_ms"])
    ]

    path_blocks = []
    for path_name, events in sorted(data["windows_by_path"].items()):
        lags = [float(e["lag_ms"]) for e in events
                if e.get("lag_ms") is not None]
        block = [f"<h3>path <code>{_esc(path_name)}</code> — "
                 f"{len(events)} windows</h3>",
                 _svg_verdict_strip(events)]
        if lags:
            block.append(
                f'<p class="sub">processing lag (ms) per window:</p>'
                f"{_svg_sparkline(lags, label='lag ms')}"
            )
        path_blocks.append("".join(block))

    stall_rows = [
        [_fmt(e.get("idle_seconds")), _fmt(e.get("timeout")),
         _fmt(len(e.get("ring") or []))]
        for e in data["stalls"]
    ]

    sections = [
        f"<h1>{_esc(title)}</h1>",
        f'<p class="sub">sources: '
        f"{', '.join(f'<code>{_esc(s)}</code>' for s in data['sources']) or '–'}"
        "</p>",
        '<div class="cards">' + "".join(cards) + "</div>",
        "<h2>Provenance</h2>", _render_manifests(data["manifests"]),
        "<h2>Spans</h2>",
        _table(["span", "count", "total ms", "mean ms", "max ms"],
               span_rows, numeric=(1, 2, 3, 4))
        if span_rows else '<p class="empty">no spans recorded</p>',
    ]

    sections.append("<h2>EM restarts</h2>")
    if data["restart_logliks"]:
        sections.append(
            f'<p class="sub">final log-likelihood per restart '
            f"({len(data['restart_logliks'])} restarts, "
            f"{em['nonmonotone_restarts']} non-monotone, "
            f"{em['nonconverged_restarts']} hit max_iter):</p>"
            + _svg_sparkline(data["restart_logliks"], label="loglik")
        )
    else:
        sections.append('<p class="empty">no em.restart events</p>')

    sections.append("<h2>Monitored paths</h2>")
    if path_blocks:
        sections.append(_verdict_legend() + "".join(path_blocks))
    else:
        sections.append('<p class="empty">no window events</p>')

    sections.append("<h2>Drain efficiency</h2>")
    sections.append(_render_drain_rounds(data.get("drain_rounds") or []))

    sections.append("<h2>Record-to-verdict latency</h2>")
    sections.append(_render_traces(data.get("trace_windows") or [],
                                   summary.get("traces") or {}))

    sections.append("<h2>Model health</h2>")
    sections.append(_render_health(data.get("health_events") or [],
                                   summary.get("model_health") or {}))

    sections.append("<h2>SLOs</h2>")
    sections.append(_render_slos(data.get("slo_events") or []))

    sections += ["<h2>Alerts</h2>", _render_alerts(data["alerts"])]

    sections.append("<h2>Watchdog &amp; pool health</h2>")
    if stall_rows or data["pool_breaks"]:
        if stall_rows:
            sections.append(_table(
                ["idle seconds", "timeout", "ring events captured"],
                stall_rows, numeric=(0, 1, 2)))
        for event in data["pool_breaks"]:
            sections.append(
                f'<p><span class="pill" style="background:var(--warn)">'
                f"pool broken</span> {_fmt(event.get('n_workers'))} workers, "
                f"{_fmt(event.get('n_tasks'))} tasks re-run serially</p>"
            )
    else:
        sections.append('<p class="empty">no stalls, no pool breaks</p>')

    sections += ["<h2>Profile</h2>", _render_profiles(data["profiles"])]

    sections.append("<h2>Benchmarks</h2>")
    if data["benches"]:
        for entry in data["benches"]:
            sections.append(_render_bench(entry, tolerance))
    else:
        sections.append('<p class="empty">no bench reports given</p>')

    document = (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        "<body>\n" + "\n".join(sections) + "\n</body></html>\n"
    )
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(document, encoding="utf-8")
    return out
