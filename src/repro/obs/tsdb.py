"""A bounded in-memory time-series store over the metrics registry.

The metrics registry answers "what is the value *now*"; operators
debugging a slow-verdict incident need "what was it over the last ten
minutes".  :class:`TimeSeriesStore` closes that gap without any external
dependency: the fleet service flushes the registry into it once per
cycle, and ``GET /query?series=…&since=…`` serves the history that
powers the ``/fleet`` and ``repro report`` sparklines.

Layout: one fixed-interval ring per series.

* **hi-res ring** — the last ``retention`` samples at ``interval``
  spacing (defaults: 600 × 1 s = 10 minutes);
* **lo-res ring** — every ``downsample`` hi-res samples are averaged
  into one coarse point kept for ``lores_retention`` slots (defaults:
  360 × 10 s = a further hour of context).

Memory is bounded by construction: at most ``max_series`` series ×
(``retention`` + ``lores_retention``) points; series beyond the cap are
counted in :attr:`TimeSeriesStore.dropped_series` and skipped, never
grown.  Collection is idempotent within an interval — callers can flush
every cycle regardless of the cycle rate.

Series keys are the Prometheus-style ``name{label="value",...}`` form
(no labels → bare name).  Histogram families expand into ``:count``,
``:p50``, ``:p95`` and ``:p99`` sub-series via the shared
:func:`repro.obs.metrics.histogram_quantiles` helper, so freshness
percentiles are queryable history like any gauge.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import histogram_quantiles

__all__ = ["TimeSeriesStore", "series_key"]


def series_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """The canonical ``name{k="v",...}`` key for one series."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class _Ring:
    __slots__ = ("hires", "lores", "pending")

    def __init__(self, retention: int, lores_retention: int):
        self.hires: deque = deque(maxlen=retention)
        self.lores: deque = deque(maxlen=lores_retention)
        self.pending: List[Tuple[float, float]] = []


class TimeSeriesStore:
    """Fixed-interval rings with retention and downsampling."""

    def __init__(self, interval: float = 1.0, retention: int = 600,
                 downsample: int = 10, lores_retention: int = 360,
                 max_series: int = 512):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self.retention = int(retention)
        self.downsample = max(1, int(downsample))
        self.lores_retention = int(lores_retention)
        self.max_series = int(max_series)
        self.dropped_series = 0
        self._lock = threading.Lock()
        self._series: Dict[str, _Ring] = {}
        self._last_flush: Optional[float] = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def collect(self, registry, now: Optional[float] = None) -> bool:
        """Flush one sample of every registry series into the rings.

        Returns False (and does nothing) when called again within the
        same interval, so per-cycle callers self-throttle to the store's
        resolution no matter how fast the service loop spins.
        """
        now = time.time() if now is None else float(now)
        with self._lock:
            if (self._last_flush is not None
                    and now - self._last_flush < self.interval):
                return False
            self._last_flush = now
        snapshot = registry.snapshot()
        points: List[Tuple[str, float]] = []
        for (name, labels), value in snapshot["counters"].items():
            points.append((series_key(name, labels), float(value)))
        for (name, labels), value in snapshot["gauges"].items():
            points.append((series_key(name, labels), float(value)))
        for (name, labels), (buckets, counts, _total, count) in \
                snapshot["histograms"].items():
            key = series_key(name, labels)
            points.append((f"{key}:count", float(count)))
            if count:
                p50, p95, p99 = histogram_quantiles(
                    buckets, counts, (0.5, 0.95, 0.99))
                points.append((f"{key}:p50", p50))
                points.append((f"{key}:p95", p95))
                points.append((f"{key}:p99", p99))
        with self._lock:
            for key, value in points:
                self._store(key, now, value)
        return True

    def _store(self, key: str, ts: float, value: float) -> None:
        ring = self._series.get(key)
        if ring is None:
            if len(self._series) >= self.max_series:
                self.dropped_series += 1
                return
            ring = _Ring(self.retention, self.lores_retention)
            self._series[key] = ring
        ring.hires.append((ts, value))
        ring.pending.append((ts, value))
        if len(ring.pending) >= self.downsample:
            mean = sum(v for _, v in ring.pending) / len(ring.pending)
            ring.lores.append((ring.pending[-1][0], mean))
            ring.pending = []

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def series_names(self) -> List[str]:
        """Sorted keys of every retained series."""
        with self._lock:
            return sorted(self._series)

    def query(self, series: str, since: Optional[float] = None) -> dict:
        """History for a series key or a whole metric family.

        ``series`` matches exact keys, or — when it names a family —
        every key of that family (``repro_service_backlog_windows``
        matches all its label combinations and histogram sub-series).
        ``since`` is a wall-clock lower bound; older lo-res points fill
        in history beyond the hi-res ring.
        """
        out: Dict[str, List[List[float]]] = {}
        with self._lock:
            for key, ring in self._series.items():
                family = key.split("{", 1)[0].split(":", 1)[0]
                if key != series and family != series:
                    continue
                oldest_hires = ring.hires[0][0] if ring.hires else None
                points = [
                    (ts, value) for ts, value in ring.lores
                    if oldest_hires is None or ts < oldest_hires
                ]
                points.extend(ring.hires)
                if since is not None:
                    points = [p for p in points if p[0] >= since]
                out[key] = [[ts, value] for ts, value in points]
        return {"series": out, "interval": self.interval}
