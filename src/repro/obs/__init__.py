"""Telemetry for the identification stack: events, spans, metrics.

The paper's inference quality hinges on EM behaviour that is invisible
from final numbers alone — restart dispersion, likelihood trajectories,
warm-start fallbacks, per-window verdict flips.  This package makes all
of it observable with **zero hard dependencies beyond the stdlib** (and
numpy scalars tolerated in payloads):

* :mod:`repro.obs.events` — a process-safe JSONL event bus;
* :mod:`repro.obs.spans` — nested span timing (``span("em.fit")``);
* :mod:`repro.obs.metrics` — counters/gauges/histograms with Prometheus
  text + JSON exporters and deterministic worker-snapshot merging;
* :mod:`repro.obs.schema` — the event/metric catalog and validation;
* :mod:`repro.obs.httpd` — a scrape endpoint from ``http.server``;
* :mod:`repro.obs.stats` — the ``repro stats`` JSONL summarizer.

Telemetry is **off by default** and every instrumentation entry point
(:func:`emit`, :func:`inc`, :func:`observe`, :func:`span`) reduces to a
single attribute check when disabled, so the instrumented hot paths pay
effectively nothing — ``benchmarks/bench_perf_fitting.py`` measures and
records the disabled-mode overhead.

Usage::

    from repro import obs

    obs.enable(events="telemetry.jsonl")   # metrics + JSONL events
    ... run fits / the monitor ...
    print(obs.registry().to_prometheus())
    obs.disable()

Worker processes: :func:`repro.parallel.parallel_map` captures
:func:`current_config` in the parent, applies it in each worker
(:func:`apply_config`), and merges per-task metric snapshots back in
task order — so metrics are identical for every ``n_jobs`` and events
from workers land in the same JSONL file (append is line-atomic).
"""

from __future__ import annotations

import logging
from typing import Optional

from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SPAN_SECONDS, current_span_id, span
from repro.obs import schema

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "emit",
    "heartbeat",
    "inc",
    "set_gauge",
    "observe",
    "span",
    "current_span_id",
    "registry",
    "bus",
    "current_config",
    "apply_config",
    "metrics_snapshot",
    "metrics_delta",
    "merge_worker_metrics",
    "get_logger",
    "schema",
    "SPAN_SECONDS",
]

_BUS = EventBus()
_REGISTRY = MetricsRegistry()
_ENABLED = False


# ----------------------------------------------------------------------
# Switches
# ----------------------------------------------------------------------
def enable(events=None, clear: bool = False,
           max_bytes: Optional[int] = None) -> None:
    """Turn telemetry on.

    Parameters
    ----------
    events:
        Optional JSONL sink for the event bus — a path (process-safe,
        shared with forked/spawned workers) or an open text stream
        (process-local).  ``None`` collects metrics only.
    clear:
        Drop previously collected metric samples first.
    max_bytes:
        Rotate a path sink to ``<name>.1`` once it crosses this size, so
        long ``monitor --follow`` runs cannot fill the disk.
    """
    global _ENABLED
    if clear:
        _REGISTRY.clear()
    _BUS.configure(events, max_bytes=max_bytes)
    _ENABLED = True


def disable() -> None:
    """Turn telemetry off (metric samples are kept until ``enable(clear=True)``)."""
    global _ENABLED
    _ENABLED = False
    _BUS.close()


def is_enabled() -> bool:
    """Whether instrumentation currently records anything."""
    return _ENABLED


# ----------------------------------------------------------------------
# Instrumentation entry points (no-op fast when disabled)
# ----------------------------------------------------------------------
def emit(kind: str, /, **fields) -> None:
    """Emit one structured event (dropped when telemetry is off)."""
    if not _ENABLED:
        return
    _BUS.emit(kind, **fields)


def heartbeat() -> None:
    """Feed every active watchdog (see :mod:`repro.obs.recorder`).

    Called from progress points of long-running loops (the monitor's
    drain, ``parallel_map`` completions); reduces to one attribute
    check when telemetry is off or no watchdog is running.
    """
    if not _ENABLED:
        return
    from repro.obs import recorder

    recorder.beat_all()


def inc(name: str, amount: float = 1.0, /, **labels) -> None:
    """Increment a counter (dropped when telemetry is off)."""
    if not _ENABLED:
        return
    _REGISTRY.inc(name, amount, **labels)


def set_gauge(name: str, value: float, /, **labels) -> None:
    """Set a gauge (dropped when telemetry is off)."""
    if not _ENABLED:
        return
    _REGISTRY.set_gauge(name, value, **labels)


def observe(name: str, value: float, /, **labels) -> None:
    """Observe into a histogram (dropped when telemetry is off)."""
    if not _ENABLED:
        return
    _REGISTRY.observe(name, value, **labels)


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def bus() -> EventBus:
    """The process-global event bus."""
    return _BUS


# ----------------------------------------------------------------------
# Worker round-trip (used by repro.parallel)
# ----------------------------------------------------------------------
def current_config() -> dict:
    """Picklable telemetry state to replay inside a worker process.

    Stream sinks are process-local and travel as ``None`` — workers
    then collect metrics but emit no events.  The model-health flag
    rides along so pool-drain workers run the same diagnostics pass in
    ``finish_window`` as the parent's fused drain would.
    """
    from repro.obs import health as _health

    path = _BUS.path
    return {
        "enabled": _ENABLED,
        "events": None if path is None else str(path),
        "model_health": _health.is_health_enabled(),
    }


def apply_config(config: dict) -> None:
    """Make this process's telemetry state match a parent's config."""
    from repro.obs import health as _health

    if bool(config.get("model_health")) != _health.is_health_enabled():
        if config.get("model_health"):
            _health.enable_health()
        else:
            _health.disable_health()
    if not config.get("enabled"):
        if _ENABLED:
            disable()
        return
    events = config.get("events")
    current = _BUS.path
    if not _ENABLED or (events or None) != (
            None if current is None else str(current)):
        enable(events=events)


def metrics_snapshot() -> dict:
    """Snapshot of this process's metric samples (see registry docs)."""
    return _REGISTRY.snapshot()


def metrics_delta(before: dict) -> dict:
    """Samples recorded since ``before`` (an earlier snapshot)."""
    return _REGISTRY.delta(before)


def merge_worker_metrics(delta: dict) -> None:
    """Fold one worker task's metric delta into this process's registry."""
    _REGISTRY.merge(delta)


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------
def get_logger(name: str) -> logging.Logger:
    """A module logger under the ``repro.*`` namespace.

    The package root installs a :class:`logging.NullHandler`, so library
    consumers opt into output with standard ``logging`` configuration
    (the CLI's ``--log-level`` flag does exactly that).
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
