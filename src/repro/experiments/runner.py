"""Scenario execution: build, warm up, probe, collect traces.

Paper methodology (Section VI-A): run the simulation, discard a warm-up
prefix, and analyse the remaining probe trace.  The paper warms up for
1000 s and analyses 1000 s; the runner defaults are shorter so the full
benchmark suite finishes in minutes, and every harness can ask for
paper-scale horizons.

Multi-seed replications of one scenario are independent simulations, so
:func:`run_scenario_sweep` fans them out over worker processes.  Live
simulator state (the network, with its scheduled event closures) cannot
cross a process pipe, so sweep workers rebuild the scenario from a
module-level factory and return results with that state stripped.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.scenarios import BuiltScenario, Scenario
from repro.netsim.monitor import QueueMonitor, QueueStats
from repro.netsim.probes import LossPairProber, PeriodicProber
from repro.netsim.trace import LossPairTrace, ProbeTrace
from repro.parallel import parallel_map

__all__ = ["ExperimentResult", "run_scenario", "run_scenario_sweep"]


class ExperimentResult:
    """Output of one scenario run.

    Attributes
    ----------
    trace:
        Periodic probe trace over the analysis window (warm-up excluded).
    losspair_trace:
        Loss-pair trace over the same window, when requested.
    built:
        The built scenario (network + ground truth) for scoring.
    """

    def __init__(
        self,
        scenario: Scenario,
        built: BuiltScenario,
        trace: ProbeTrace,
        losspair_trace: Optional[LossPairTrace],
        warmup: float,
        duration: float,
        seed: int,
        queue_stats: Optional[Dict[str, QueueStats]] = None,
    ):
        self.scenario = scenario
        self.built = built
        self.trace = trace
        self.losspair_trace = losspair_trace
        self.warmup = warmup
        self.duration = duration
        self.seed = seed
        #: Per-chain-link occupancy/utilization statistics (the paper's
        #: "utilization varies from 28% to 95%" characterisation).
        self.queue_stats = queue_stats or {}

    @property
    def loss_rate(self) -> float:
        """Probe loss rate over the analysis window."""
        return self.trace.loss_rate

    def loss_share_of_dcl(self) -> float:
        """Fraction of probe losses charged to the expected dominant link."""
        if self.built.dcl_link is None:
            raise ValueError("scenario has no dominant congested link")
        shares = self.trace.loss_share_by_hop()
        index = self.trace.link_names.index(self.built.dcl_link)
        return float(shares[index])


def run_scenario(
    scenario: Scenario,
    seed: int = 0,
    duration: float = 200.0,
    warmup: float = 30.0,
    probe_interval: float = 0.020,
    with_loss_pairs: bool = False,
    monitor_queues: bool = False,
) -> ExperimentResult:
    """Build the scenario and run it for ``warmup + duration`` seconds.

    Probing starts after the warm-up so the analysed trace is stationary.
    Loss pairs, when enabled, run concurrently at half the probe rate
    (pairs every ``2 * probe_interval``), matching the paper's equal probe
    budget.  ``monitor_queues`` attaches a sampler to every chain link so
    the result carries utilization/occupancy statistics.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    built = scenario.build(seed)
    net = built.network
    end = warmup + duration
    prober = PeriodicProber(
        net,
        built.probe_src,
        built.probe_dst,
        interval=probe_interval,
        start=warmup,
        stop=end,
    )
    pair_prober = None
    if with_loss_pairs:
        pair_prober = LossPairProber(
            net,
            built.probe_src,
            built.probe_dst,
            pair_interval=2 * probe_interval,
            start=warmup,
            stop=end,
        )
    monitors = {}
    if monitor_queues:
        for name in built.chain_link_names:
            src_name, dst_name = name.split("->")
            link = net.links[(src_name, dst_name)]
            monitors[name] = QueueMonitor(link, interval=probe_interval,
                                          start=warmup, stop=end)
    net.run(until=end + 5.0)  # small tail so in-flight probes complete
    return ExperimentResult(
        scenario=scenario,
        built=built,
        trace=prober.trace,
        losspair_trace=pair_prober.trace if pair_prober else None,
        warmup=warmup,
        duration=duration,
        seed=seed,
        queue_stats={name: monitor.stats()
                     for name, monitor in monitors.items()},
    )


def strip_live_state(result: ExperimentResult) -> ExperimentResult:
    """Drop the live simulator from a result so it can cross a process pipe.

    The network holds scheduled event closures and is both unpicklable
    and useless after the run; the scenario's builder is a closure too.
    Everything a scorer needs — traces, ground truth, queue statistics —
    survives.  Applied on both the serial and the parallel sweep path so
    the returned objects are structurally identical either way.
    """
    result.built.network = None
    result.scenario._builder = None
    return result


def _run_sweep_task(task):
    """Build, run, and reduce one sweep replication (parallel-map worker)."""
    factory, factory_kwargs, seed, run_kwargs, reduce_fn = task
    scenario = factory(**factory_kwargs)
    result = run_scenario(scenario, seed=seed, **run_kwargs)
    return reduce_fn(result)


def run_scenario_sweep(
    scenario_factory: Callable[..., Scenario],
    seeds: Sequence[int],
    factory_kwargs: Optional[Dict] = None,
    duration: float = 200.0,
    warmup: float = 30.0,
    probe_interval: float = 0.020,
    with_loss_pairs: bool = False,
    monitor_queues: bool = False,
    reduce: Callable[[ExperimentResult], object] = strip_live_state,
    n_jobs: int = 1,
) -> List[object]:
    """Run one scenario at several seeds, optionally in parallel.

    Parameters
    ----------
    scenario_factory:
        A module-level scenario factory (e.g.
        :func:`repro.experiments.scenarios.strong_dcl_scenario`).  The
        factory — not a built :class:`Scenario`, whose builder is an
        unpicklable closure — is what crosses into worker processes;
        each worker builds its own scenario from it.
    seeds:
        One independent simulation per seed.  Results come back in seed
        order regardless of worker scheduling, and each simulation's
        RNG stream depends only on its seed, so serial and parallel
        sweeps are numerically identical.
    reduce:
        Module-level callable applied to each :class:`ExperimentResult`
        inside the worker; whatever it returns must be picklable.  The
        default strips live simulator state and returns the result
        itself.  Pass a custom reducer to ship back only a small summary
        (scores, loss rates) from large sweeps.
    n_jobs:
        Worker processes (``-1`` = all CPUs, ``1`` = serial in-process).
    """
    factory_kwargs = dict(factory_kwargs or {})
    run_kwargs = dict(
        duration=duration,
        warmup=warmup,
        probe_interval=probe_interval,
        with_loss_pairs=with_loss_pairs,
        monitor_queues=monitor_queues,
    )
    tasks = [
        (scenario_factory, factory_kwargs, int(seed), run_kwargs, reduce)
        for seed in seeds
    ]
    return parallel_map(_run_sweep_task, tasks, n_jobs=n_jobs)
