"""Plain-text table/series formatting for the reproduction harnesses.

Every benchmark prints the same rows/series the paper's tables and
figures report; these helpers keep that output uniform and dependency
free (no plotting — series print as aligned text, which diffs cleanly in
CI logs and EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["format_table", "format_pmf_series", "format_cdf_line"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_pmf_series(
    pmfs: Sequence[np.ndarray],
    labels: Sequence[str],
    title: str = "",
) -> str:
    """Render PMFs over symbols 1..M side by side (one figure's curves)."""
    if not pmfs:
        raise ValueError("need at least one pmf")
    n_symbols = len(pmfs[0])
    headers = ["symbol"] + list(labels)
    rows = []
    for m in range(n_symbols):
        rows.append([m + 1] + [f"{pmf[m]:.3f}" for pmf in pmfs])
    return format_table(headers, rows, title=title)


def format_cdf_line(pmf: np.ndarray, label: str = "G") -> str:
    """One-line CDF rendering, e.g. ``G: 1:0.02 2:0.02 ... 5:1.00``."""
    cdf = np.cumsum(pmf)
    body = " ".join(f"{m + 1}:{v:.2f}" for m, v in enumerate(cdf))
    return f"{label}: {body}"
