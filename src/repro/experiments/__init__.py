"""Reproduction harnesses: scenarios, runners, sweeps, and reporting."""

from repro.experiments import duration, internet, reporting, scenarios, streams
from repro.experiments.duration import (
    DurationSweep,
    consistency_vs_duration,
    correctness_vs_duration,
)
from repro.experiments.internet import (
    InternetRun,
    adsl_path_scenario,
    ethernet_path_scenario,
    run_internet_experiment,
)
from repro.experiments.runner import ExperimentResult, run_scenario
from repro.experiments.scenarios import (
    BuiltScenario,
    Scenario,
    no_dcl_scenario,
    red_no_dcl_scenario,
    red_strong_scenario,
    strong_dcl_scenario,
    weak_dcl_scenario,
)
from repro.experiments.streams import level_shift_stream, strong_dcl_stream

__all__ = [
    "BuiltScenario",
    "DurationSweep",
    "ExperimentResult",
    "InternetRun",
    "Scenario",
    "adsl_path_scenario",
    "consistency_vs_duration",
    "correctness_vs_duration",
    "duration",
    "ethernet_path_scenario",
    "internet",
    "no_dcl_scenario",
    "red_no_dcl_scenario",
    "red_strong_scenario",
    "reporting",
    "run_internet_experiment",
    "run_scenario",
    "scenarios",
    "level_shift_stream",
    "streams",
    "strong_dcl_scenario",
    "strong_dcl_stream",
    "weak_dcl_scenario",
]
