"""Scenario builders for the paper's ns-2 evaluation settings.

Each builder returns a :class:`Scenario`: a named, seedable recipe that
constructs the Fig.-4 four-router chain with the paper's buffer/bandwidth
settings and a traffic mix of FTP (TCP Reno), web sessions, and UDP ON-OFF
sources — the paper's "third type" of traffic condition, which its results
section uses throughout.

Ground truth (which link is dominant, each link's ``Q_k``) is carried on
the built scenario so harnesses can score identifications.

Absolute traffic intensities are tuned for loss rates in the paper's
regime (roughly 1-7% at the dominant link for Tables II-III, comparable
~1-3% at two links for Table IV); see EXPERIMENTS.md for the measured
values.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.netsim.queues import AdaptiveREDQueue, DropTailQueue
from repro.netsim.topology import Network, chain_network
from repro.netsim.traffic import (
    PeriodicBurstSource,
    SaturatingBurstSource,
    UdpOnOffSource,
    UdpSink,
    start_ftp_flows,
)
from repro.netsim.http import start_web_sessions

__all__ = [
    "Scenario",
    "BuiltScenario",
    "strong_dcl_scenario",
    "weak_dcl_scenario",
    "no_dcl_scenario",
    "red_strong_scenario",
    "red_no_dcl_scenario",
    "STRONG_DCL_BANDWIDTHS",
    "WEAK_DCL_BANDWIDTH_PAIRS",
    "NO_DCL_BANDWIDTH_PAIRS",
]

#: Table II sweeps the (r2, r3) bandwidth over this range (Mb/s).
STRONG_DCL_BANDWIDTHS = (0.1, 0.4, 0.7, 1.0)
#: Table III: ((r1, r2), (r2, r3)) bandwidth pairs in Mb/s, dominant last.
WEAK_DCL_BANDWIDTH_PAIRS = ((0.7, 0.2), (0.5, 0.2), (0.7, 0.3), (0.6, 0.25))
#: Table IV: ((r1, r2), (r2, r3)) bandwidth pairs with comparable loss.
NO_DCL_BANDWIDTH_PAIRS = ((0.1, 0.2), (0.15, 0.2), (0.1, 0.25), (0.2, 0.25))

MBPS = 1e6


class BuiltScenario:
    """A constructed network plus the ground truth needed for scoring."""

    def __init__(
        self,
        network: Network,
        probe_src: str,
        probe_dst: str,
        chain_link_names: List[str],
        expected_verdict: str,
        dcl_link: Optional[str],
        max_queuing_delays: Dict[str, float],
        expected_identification: Optional[str] = None,
    ):
        self.network = network
        self.probe_src = probe_src
        self.probe_dst = probe_dst
        self.chain_link_names = chain_link_names
        self.expected_verdict = expected_verdict
        self.dcl_link = dcl_link
        self.max_queuing_delays = max_queuing_delays
        # What the paper's method is expected to *output*, when that
        # differs from the ground truth — e.g. under aggressive RED the
        # true verdict is "strong" but the method (correctly per the
        # paper's Fig. 10a) fails to identify it.
        self.expected_identification = (
            expected_identification
            if expected_identification is not None
            else expected_verdict
        )

    def dominant_max_queuing_delay(self) -> float:
        """Ground-truth ``Q_k`` of the dominant link."""
        if self.dcl_link is None:
            raise ValueError("scenario has no dominant congested link")
        return self.max_queuing_delays[self.dcl_link]


class Scenario:
    """A named, seedable scenario recipe."""

    def __init__(
        self,
        name: str,
        description: str,
        builder: Callable[[int], BuiltScenario],
        expected_verdict: str,
        expected_identification: Optional[str] = None,
    ):
        self.name = name
        self.description = description
        self._builder = builder
        self.expected_verdict = expected_verdict
        self.expected_identification = (
            expected_identification
            if expected_identification is not None
            else expected_verdict
        )

    def build(self, seed: int = 0) -> BuiltScenario:
        return self._builder(seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scenario({self.name}: {self.description})"


def _forward_chain_links(net: Network, n_links: int) -> List[str]:
    return [f"r{i}->r{i + 1}" for i in range(n_links)]


def _chain_max_queuing(net: Network, n_links: int) -> Dict[str, float]:
    delays = {}
    for i in range(n_links):
        link = net.links[(f"r{i}", f"r{i + 1}")]
        delays[link.name] = link.queue.max_queuing_delay()
    return delays


def _attach_udp(
    net: Network,
    src: str,
    snk: str,
    flow_id: str,
    rate_bps: float,
    packet_size: int = 1000,
    mean_on: float = 0.5,
    mean_off: float = 0.5,
) -> None:
    sink = UdpSink(net.nodes[snk])
    UdpOnOffSource(
        net.nodes[src],
        dst=snk,
        dst_port=sink.port,
        flow_id=flow_id,
        rate_bps=rate_bps,
        packet_size=packet_size,
        mean_on=mean_on,
        mean_off=mean_off,
    )


def _congest_link(
    net: Network,
    enter_router: int,
    exit_router: int,
    link_bw: float,
    flow_id: str,
    n_ftp: int = 1,
    udp_on_fraction: float = 0.5,
) -> None:
    """Independently congest the chain segment between two routers.

    One long-lived FTP plus an ON-OFF UDP source enter at ``enter_router``
    and leave at ``exit_router``, so the loss rate of that segment can be
    tuned without disturbing the rest of the chain.
    """
    src = f"src{enter_router}_1"
    snk = f"snk{exit_router}_1"
    if n_ftp:
        start_ftp_flows(net, src, snk, count=n_ftp, flow_prefix=f"{flow_id}-ftp")
    _attach_udp(
        net,
        f"src{enter_router}_0",
        f"snk{exit_router}_0",
        flow_id=f"{flow_id}-udp",
        rate_bps=udp_on_fraction * link_bw,
    )


def strong_dcl_scenario(
    bottleneck_mbps: float = 1.0,
    n_ftp: int = 1,
    n_web: int = 1,
    udp_fraction: float = 0.2,
) -> Scenario:
    """Table II setting: losses only at link (r2, r3).

    Chain (r0,r1), (r1,r2) run at 10 Mb/s with ample 80 kB buffers; the
    (r2, r3) bottleneck runs at ``bottleneck_mbps`` with a 20 kB buffer.
    End-end FTP + web + UDP ON-OFF traffic congests only the bottleneck.
    """
    def build(seed: int) -> BuiltScenario:
        bottleneck = bottleneck_mbps * MBPS
        net = chain_network(
            router_bandwidths_bps=[10 * MBPS, 10 * MBPS, bottleneck],
            router_buffers_bytes=[80_000, 80_000, 20_000],
            seed=seed,
        )
        if n_ftp:
            start_ftp_flows(net, "src0_1", "snk3_1", count=n_ftp)
        if n_web:
            start_web_sessions(net, "src0_1", "snk3_1", count=n_web)
        if udp_fraction > 0:
            _attach_udp(
                net,
                "src2_0",
                "snk3_1",
                flow_id="udp-bottleneck",
                rate_bps=udp_fraction * bottleneck,
            )
        return BuiltScenario(
            network=net,
            probe_src="src0_0",
            probe_dst="snk3_0",
            chain_link_names=_forward_chain_links(net, 3),
            expected_verdict="strong",
            dcl_link="r2->r3",
            max_queuing_delays=_chain_max_queuing(net, 3),
        )

    return Scenario(
        name=f"strong-dcl-{bottleneck_mbps}Mbps",
        description=(
            f"Strongly dominant congested link at (r2,r3)={bottleneck_mbps} Mb/s, "
            "20 kB buffer; all losses there (Table II)"
        ),
        builder=build,
        expected_verdict="strong",
    )


def weak_dcl_scenario(
    bandwidth_pair_mbps: Tuple[float, float] = (0.7, 0.2),
    n_web: int = 1,
    dominant_hold: float = 4.0,
    dominant_period: float = 19.0,
    minor_burst_fraction: float = 2.2,
    minor_full_time: float = 0.15,
    minor_burst_period: float = 25.0,
) -> Scenario:
    """Table III setting: losses at (r1,r2) and (r2,r3), dominated by (r2,r3).

    (r0,r1) = 1 Mb/s with a 76.8 kB buffer (lossless); (r1,r2) and (r2,r3)
    carry the given bandwidths with 25.6 kB buffers.  The (r2,r3) tail is
    congested by flickering overload episodes (most of the losses); the
    (r1,r2) link takes rare short bursts contributing a stable ~5%
    minority.  Crucially the two links congest at *disjoint* times, so
    minor losses see a low tail queue and land at clearly smaller virtual
    delays than the dominant losses — the separation the weak test (and
    the paper's Fig. 6) relies on.
    """
    bw1, bw2 = bandwidth_pair_mbps
    if bw2 >= bw1:
        raise ValueError("dominant link (second) must be the slower one")

    def build(seed: int) -> BuiltScenario:
        net = chain_network(
            router_bandwidths_bps=[1 * MBPS, bw1 * MBPS, bw2 * MBPS],
            router_buffers_bytes=[76_800, 25_600, 25_600],
            seed=seed,
        )
        if n_web:
            start_web_sessions(net, "src0_1", "snk3_1", count=n_web)
        # Dominant congestion on (r2,r3): flickering overload episodes.
        _saturate_link(
            net, 2, 3, bw2 * MBPS, 25_600, dominant_hold, dominant_period,
            "udp-dominant", start=3.0,
        )
        # Minority congestion on (r1,r2): deterministic short overload
        # bursts sized to keep the queue full for ~minor_full_time after
        # filling the 25.6 kB buffer — a stable ~5% loss share across
        # seeds and bandwidths.
        minor_rate = minor_burst_fraction * bw1 * MBPS
        fill_time = 25_600 * 8.0 / (minor_rate - bw1 * MBPS)
        minor_sink = UdpSink(net.nodes["snk2_0"])
        PeriodicBurstSource(
            net.nodes["src1_0"],
            dst="snk2_0",
            dst_port=minor_sink.port,
            flow_id="udp-minor",
            rate_bps=minor_rate,
            burst_duration=fill_time + minor_full_time,
            period=minor_burst_period,
            packet_size=1000,
            start=11.0,  # out of phase with the dominant episodes
        )
        return BuiltScenario(
            network=net,
            probe_src="src0_0",
            probe_dst="snk3_0",
            chain_link_names=_forward_chain_links(net, 3),
            expected_verdict="weak",
            dcl_link="r2->r3",
            max_queuing_delays=_chain_max_queuing(net, 3),
        )

    return Scenario(
        name=f"weak-dcl-{bw1}-{bw2}Mbps",
        description=(
            f"Weakly dominant congested link: (r1,r2)={bw1}, (r2,r3)={bw2} Mb/s, "
            "25.6 kB buffers; most losses at (r2,r3) (Table III)"
        ),
        builder=build,
        expected_verdict="weak",
    )


def _saturate_link(
    net: Network,
    enter_router: int,
    exit_router: int,
    link_bw: float,
    buffer_bytes: int,
    hold_duration: float,
    period: float,
    flow_id: str,
    start: float,
    hold_fraction: float = 1.05,
    fill_fraction: float = 5.0,
) -> None:
    """Periodically saturate one chain link with flickering overload.

    A :class:`SaturatingBurstSource` fills the link's buffer fast, then
    holds arrivals just above capacity for ``hold_duration`` — the queue
    oscillates around full, producing short probe-loss runs (the regime
    real congested droptail links show) instead of pinned-full seconds.
    """
    sink = UdpSink(net.nodes[f"snk{exit_router}_0"])
    fill_rate = fill_fraction * link_bw
    fill_duration = buffer_bytes * 8.0 / (fill_rate - link_bw) * 1.02
    SaturatingBurstSource(
        net.nodes[f"src{enter_router}_0"],
        dst=f"snk{exit_router}_0",
        dst_port=sink.port,
        flow_id=flow_id,
        fill_rate_bps=fill_rate,
        fill_duration=fill_duration,
        hold_rate_bps=hold_fraction * link_bw,
        hold_duration=hold_duration,
        period=period,
        packet_size=1000,
        start=start,
    )


def no_dcl_scenario(
    bandwidth_pair_mbps: Tuple[float, float] = (0.1, 0.2),
    n_web: int = 1,
    mid_hold: float = 8.0,
    mid_period: float = 43.0,
    tail_hold: float = 4.0,
    tail_period: float = 19.0,
) -> Scenario:
    """Table IV setting: (r1,r2) and (r2,r3) lose comparably — no DCL.

    Buffers follow the paper literally (25.6 / 128 / 25.6 kB): the large
    buffer sits on the slow middle link, which is what separates the two
    lost-probe delay populations (``Q`` of the middle link is ~10x the
    tail's).  Each downstream link is congested *independently* by
    periodic flickering-overload episodes entering and leaving at its
    endpoints (co-prime periods, so the links rarely drop together) plus
    light end-end web traffic.  Neither link carries enough of the losses
    to be a weak DCL, and the loss mass spreads far past twice the
    smaller ``Q_k`` — the structure the WDCL-Test's rejection relies on
    (Fig. 8).
    """
    bw1, bw2 = bandwidth_pair_mbps

    def build(seed: int) -> BuiltScenario:
        net = chain_network(
            router_bandwidths_bps=[1 * MBPS, bw1 * MBPS, bw2 * MBPS],
            router_buffers_bytes=[25_600, 128_000, 25_600],
            seed=seed,
        )
        if n_web:
            start_web_sessions(net, "src0_1", "snk3_1", count=n_web)
        _saturate_link(
            net, 1, 2, bw1 * MBPS, 128_000, mid_hold, mid_period,
            "udp-mid", start=3.0,
        )
        _saturate_link(
            net, 2, 3, bw2 * MBPS, 25_600, tail_hold, tail_period,
            "udp-tail", start=9.0,
        )
        return BuiltScenario(
            network=net,
            probe_src="src0_0",
            probe_dst="snk3_0",
            chain_link_names=_forward_chain_links(net, 3),
            expected_verdict="none",
            dcl_link=None,
            max_queuing_delays=_chain_max_queuing(net, 3),
        )

    return Scenario(
        name=f"no-dcl-{bw1}-{bw2}Mbps",
        description=(
            f"No dominant congested link: comparable losses at (r1,r2)={bw1} "
            f"and (r2,r3)={bw2} Mb/s (Table IV)"
        ),
        builder=build,
        expected_verdict="none",
    )


def _red_factory(min_th_packets: float):
    """Adaptive-RED (gentle) queue factory with a fixed ``min_th``."""

    def factory(capacity_bytes: int, link_index: int) -> AdaptiveREDQueue:
        return AdaptiveREDQueue(
            capacity_bytes,
            min_th=min_th_packets,
            max_th=3.0 * min_th_packets,
        )

    return factory


def red_strong_scenario(
    min_th_fraction: float = 0.5,
    bottleneck_mbps: float = 1.0,
    n_ftp: int = 1,
    udp_fraction: float = 0.2,
) -> Scenario:
    """Fig. 10 setting: strong-DCL topology with Adaptive RED queues.

    ``min_th_fraction`` positions the RED minimum threshold at that
    fraction of the 25-packet bottleneck buffer (the paper uses 1/5 = 5
    packets and 1/2 = 12 packets).  Identification is expected to fail for
    small fractions and succeed for large ones.
    """
    buffer_packets = 25
    min_th = max(1.0, round(min_th_fraction * buffer_packets))

    def build(seed: int) -> BuiltScenario:
        bottleneck = bottleneck_mbps * MBPS
        net = chain_network(
            router_bandwidths_bps=[10 * MBPS, 10 * MBPS, bottleneck],
            router_buffers_bytes=[80_000, 80_000, buffer_packets * 1000],
            seed=seed,
            queue_factory=_red_factory(min_th),
        )
        start_ftp_flows(net, "src0_1", "snk3_1", count=n_ftp)
        _attach_udp(
            net,
            "src2_0",
            "snk3_1",
            flow_id="udp-bottleneck",
            rate_bps=udp_fraction * bottleneck,
        )
        return BuiltScenario(
            network=net,
            probe_src="src0_0",
            probe_dst="snk3_0",
            chain_link_names=_forward_chain_links(net, 3),
            expected_verdict="strong",
            dcl_link="r2->r3",
            max_queuing_delays=_chain_max_queuing(net, 3),
        )

    # Paper Section VI-A5: with min_th well below half the buffer, RED
    # drops at partial occupancy and the method (expectedly) fails to
    # identify the dominant link; with min_th around half the buffer the
    # queue behaves droptail-like and identification succeeds.
    expected_identification = "strong" if min_th_fraction >= 0.4 else "none"
    return Scenario(
        name=f"red-strong-minth{int(min_th)}",
        description=(
            f"Strong-DCL topology under Adaptive RED, min_th={int(min_th)} "
            f"packets ({min_th_fraction:.2g} of buffer) — Fig. 10"
        ),
        builder=build,
        expected_verdict="strong",
        expected_identification=expected_identification,
    )


def red_no_dcl_scenario(
    min_th_fraction: float = 0.5,
    bandwidth_pair_mbps: Tuple[float, float] = (0.1, 0.2),
    mid_hold: float = 8.0,
    mid_period: float = 43.0,
    tail_hold: float = 4.0,
    tail_period: float = 19.0,
) -> Scenario:
    """Fig. 11 setting: no-DCL topology with Adaptive RED on the lossy links.

    The droptail no-DCL traffic geometry with Adaptive RED (gentle) on
    both lossy links; ``min_th_fraction`` positions ``min_th`` within each
    buffer (the paper uses 1/20 and 1/2).  The scheme is expected to
    *reject* a dominant congested link in both settings — two congested
    RED queues do not collectively look like one dominant queue.
    """
    min_th_mid = max(1.0, round(min_th_fraction * 128))
    min_th_tail = max(1.0, round(min_th_fraction * 25))
    bw1, bw2 = bandwidth_pair_mbps

    def build(seed: int) -> BuiltScenario:
        def factory(capacity_bytes: int, link_index: int):
            if link_index == 0:
                return DropTailQueue(capacity_bytes)  # lossless head link
            min_th = min_th_mid if link_index == 1 else min_th_tail
            return AdaptiveREDQueue(
                capacity_bytes, min_th=min_th, max_th=3.0 * min_th
            )

        net = chain_network(
            router_bandwidths_bps=[1 * MBPS, bw1 * MBPS, bw2 * MBPS],
            router_buffers_bytes=[25_600, 128_000, 25_600],
            seed=seed,
            queue_factory=factory,
        )
        start_web_sessions(net, "src0_1", "snk3_1", count=1)
        _saturate_link(
            net, 1, 2, bw1 * MBPS, 128_000, mid_hold, mid_period,
            "udp-mid", start=3.0,
        )
        _saturate_link(
            net, 2, 3, bw2 * MBPS, 25_600, tail_hold, tail_period,
            "udp-tail", start=9.0,
        )
        return BuiltScenario(
            network=net,
            probe_src="src0_0",
            probe_dst="snk3_0",
            chain_link_names=_forward_chain_links(net, 3),
            expected_verdict="none",
            dcl_link=None,
            max_queuing_delays=_chain_max_queuing(net, 3),
        )

    return Scenario(
        name=f"red-no-dcl-minth{min_th_fraction:.2g}",
        description=(
            f"No-DCL topology under Adaptive RED, min_th at "
            f"{min_th_fraction:.2g} of each buffer — Fig. 11"
        ),
        builder=build,
        expected_verdict="none",
    )
