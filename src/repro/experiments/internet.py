"""Synthetic "Internet" experiments (paper Section VI-B, Figs. 12-14).

The paper's Internet validation runs 20-ms UDP probes over PlanetLab
paths (11-20 hops) and an ADSL-terminated path, with tcpdump timestamps
and clock offset/skew removal.  We rebuild the same *measurement
conditions* synthetically, with ground truth the paper could not have:

* long router chains (11/15/20 hops) of fast links, with one — or, for
  the SNU-like reject case, two — slow congested links placed where
  pchar located them in the paper (inside Brazil; at the ADSL tail; at
  the 13th hop);
* very low probe loss rates (a few tenths of a percent, as measured);
* benign queuing on non-lossy links (web cross traffic) so the delay
  range is not set by the dominant link alone;
* receiver clock offset and skew *injected* into the one-way delays and
  then removed with :mod:`repro.measurement.clock`, exactly as the paper
  post-processes tcpdump timestamps with the algorithm of [40].

The builders return the same :class:`~repro.experiments.scenarios.Scenario`
objects as the ns-2 settings, so the runner and harnesses are shared.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.experiments.runner import ExperimentResult, run_scenario
from repro.experiments.scenarios import (
    BuiltScenario,
    Scenario,
    _saturate_link,
)
from repro.measurement.clock import ClockFit, apply_clock_effects, remove_clock_effects
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import chain_network
from repro.netsim.http import start_web_sessions
from repro.netsim.trace import PathObservation

__all__ = [
    "ethernet_path_scenario",
    "adsl_path_scenario",
    "wireless_path_scenario",
    "InternetRun",
    "run_internet_experiment",
    "ADSL_SENDERS",
]

MBPS = 1e6

#: The paper's second experiment set: senders toward the ADSL receiver.
ADSL_SENDERS = ("ufpr", "usevilla", "snu")


def _uniform_props(rng: np.random.Generator, n: int, low: float, high: float):
    return [float(rng.uniform(low, high)) for _ in range(n)]


def _internet_chain(
    seed: int,
    n_hops: int,
    slow_links: List[Tuple[int, float, int]],
    base_bandwidth: float = 100 * MBPS,
    base_buffer: int = 2_000_000,
    prop_range: Tuple[float, float] = (0.001, 0.008),
):
    """A long chain with ``slow_links`` = [(index, bandwidth, buffer)]."""
    rng = np.random.default_rng(seed ^ 0x9E3779B9)
    bandwidths = [base_bandwidth] * n_hops
    buffers = [base_buffer] * n_hops
    for index, bandwidth, buffer_bytes in slow_links:
        bandwidths[index] = bandwidth
        buffers[index] = buffer_bytes
    net = chain_network(
        router_bandwidths_bps=bandwidths,
        router_buffers_bytes=buffers,
        seed=seed,
        router_prop_delay=0.0,  # overridden below per link
        stub_hosts_per_router=2,
    )
    # Randomise per-hop propagation (chain_network used 0 above; patch the
    # forward/backward chain links directly for wide-area realism).
    props = _uniform_props(rng, n_hops, *prop_range)
    for i in range(n_hops):
        net.links[(f"r{i}", f"r{i + 1}")].prop_delay = props[i]
        net.links[(f"r{i + 1}", f"r{i}")].prop_delay = props[i]
    return net


def _background_web(net, n_hops: int, sessions_per_span: int = 2) -> None:
    """Benign cross traffic: web sessions over a few multi-hop spans.

    Their bursts create visible (loss-free) queuing on the fast links, so
    the observed delay range is not set by the dominant link alone — as
    on a real wide-area path.
    """
    spans = [
        (1, max(2, n_hops // 3)),
        (max(2, n_hops // 3), max(3, 2 * n_hops // 3)),
        (max(3, 2 * n_hops // 3), n_hops),
    ]
    for index, (enter, exit_) in enumerate(spans):
        if enter >= exit_:
            continue
        start_web_sessions(
            net,
            f"src{enter}_1",
            f"snk{exit_}_1",
            count=sessions_per_span,
            session_prefix=f"bg{index}",
            mean_think_time=2.0,
        )


def ethernet_path_scenario(
    n_hops: int = 11,
    congested_hop: int = 6,
    congested_bandwidth: float = 10 * MBPS,
    congested_buffer: int = 12_500,
    transit_hop: int = 3,
    transit_bandwidth: float = 5 * MBPS,
    hold_duration: float = 1.2,
    period: float = 21.0,
) -> Scenario:
    """Fig. 12: Cornell -> UFPR-like path, Ethernet receiver.

    Eleven hops; one congested 10 Mb/s link inside "Brazil" (hop 6) whose
    ``Q_k`` (10 ms) is *small* against the path's delay range — a
    loss-free 5 Mb/s transit link (hop 3) with heavy web bursts sets the
    range, so ``Ĝ`` concentrates on delay symbol 1 exactly as the paper's
    Fig. 12 shows, and WDCL accepts with ``d* = 1``.
    """

    def build(seed: int) -> BuiltScenario:
        net = _internet_chain(
            seed,
            n_hops,
            slow_links=[
                (congested_hop, congested_bandwidth, congested_buffer),
                (transit_hop, transit_bandwidth, 2_000_000),  # deep, loss-free
            ],
        )
        _background_web(net, n_hops)
        # Heavy (but loss-free) bursts across the transit link: they set
        # D_max well above the dominant link's Q_k.
        start_web_sessions(
            net,
            f"src{transit_hop}_1",
            f"snk{transit_hop + 1}_1",
            count=6,
            session_prefix="transit",
            mean_think_time=1.5,
        )
        _saturate_link(
            net,
            congested_hop,
            congested_hop + 1,
            congested_bandwidth,
            congested_buffer,
            hold_duration,
            period,
            "brazil-congestion",
            start=5.0,
        )
        chain_links = [f"r{i}->r{i + 1}" for i in range(n_hops)]
        return BuiltScenario(
            network=net,
            probe_src="src0_0",
            probe_dst=f"snk{n_hops}_0",
            chain_link_names=chain_links,
            expected_verdict="weak",
            dcl_link=f"r{congested_hop}->r{congested_hop + 1}",
            max_queuing_delays={
                name: net.links[(f"r{i}", f"r{i + 1}")].queue.max_queuing_delay()
                for i, name in enumerate(chain_links)
            },
        )

    return Scenario(
        name="internet-ethernet-ufpr",
        description=(
            f"{n_hops}-hop Ethernet-receiver path with one congested "
            f"{congested_bandwidth / MBPS:.0f} Mb/s link at hop {congested_hop} "
            "(Fig. 12, Cornell->UFPR)"
        ),
        builder=build,
        expected_verdict="weak",
    )


def adsl_path_scenario(sender: str = "ufpr") -> Scenario:
    """Fig. 13: sender -> ADSL receiver paths.

    ``sender`` selects the paper's three cases:

    * ``"ufpr"`` — 15 hops, ADSL tail congested: accept (Fig. 13a);
    * ``"usevilla"`` — 11 hops, ADSL tail congested, higher loss:
      accept (Fig. 13b);
    * ``"snu"`` — 20 hops, ADSL tail *plus* a congested 13th hop with a
      comparable loss share: reject (Fig. 13c), consistent with pchar
      finding a second low-bandwidth link mid-path.
    """
    sender = sender.lower()
    if sender not in ADSL_SENDERS:
        raise ValueError(f"sender must be one of {ADSL_SENDERS}, got {sender!r}")
    adsl_bandwidth = 1.5 * MBPS
    adsl_buffer = 15_000  # Q ~ 80 ms: small against the path's range
    if sender == "ufpr":
        n_hops, mid_congestion = 15, None
        hold, period = 1.0, 23.0
        expected = "weak"
    elif sender == "usevilla":
        n_hops, mid_congestion = 11, None
        hold, period = 1.5, 13.0  # the paper's highest loss rate
        expected = "weak"
    else:  # snu
        n_hops = 20
        # Second congested link at hop 13: 3 Mb/s with a large buffer so
        # its Q (~0.4 s) clearly exceeds the ADSL tail's.
        mid_congestion = (13, 3 * MBPS, 150_000)
        hold, period = 1.0, 23.0
        expected = "none"
    tail_hop = n_hops - 1

    def build(seed: int) -> BuiltScenario:
        slow = [(tail_hop, adsl_bandwidth, adsl_buffer)]
        if mid_congestion is not None:
            slow.append(mid_congestion)
        net = _internet_chain(seed, n_hops, slow_links=slow)
        _background_web(net, n_hops)
        _saturate_link(
            net,
            tail_hop,
            tail_hop + 1,
            adsl_bandwidth,
            adsl_buffer,
            hold,
            period,
            "adsl-congestion",
            start=5.0,
        )
        if mid_congestion is not None:
            hop, bandwidth, buffer_bytes = mid_congestion
            _saturate_link(
                net,
                hop,
                hop + 1,
                bandwidth,
                buffer_bytes,
                hold,
                period * 1.4,
                "mid-congestion",
                start=12.0,
            )
        chain_links = [f"r{i}->r{i + 1}" for i in range(n_hops)]
        return BuiltScenario(
            network=net,
            probe_src="src0_0",
            probe_dst=f"snk{n_hops}_0",
            chain_link_names=chain_links,
            expected_verdict=expected,
            dcl_link=f"r{tail_hop}->r{tail_hop + 1}" if expected == "weak" else None,
            max_queuing_delays={
                name: net.links[(f"r{i}", f"r{i + 1}")].queue.max_queuing_delay()
                for i, name in enumerate(chain_links)
            },
        )

    return Scenario(
        name=f"internet-adsl-{sender}",
        description=f"{sender.upper()} -> ADSL receiver path (Fig. 13)",
        builder=build,
        expected_verdict=expected,
    )


def wireless_path_scenario(
    n_hops: int = 8,
    wireless_hop: Optional[int] = None,
    loss_bad: float = 0.35,
    mean_good: float = 2.0,
    mean_bad: float = 0.25,
) -> Scenario:
    """Section VII's caveat: a path whose last hop loses from fading.

    The wireless hop drops packets (and probes) from a Gilbert-Elliott
    channel, *uncorrelated with queuing*; there is no congested queue
    anywhere.  The premise of Theorem 1 (a lost probe saw a full queue)
    fails, and the method's output becomes unreliable: lost probes carry
    ordinary (small) ambient delays, so ``Ĝ`` concentrates on symbol 1
    and the WDCL-Test *accepts* a phantom dominant congested link with a
    tiny inferred ``Q_k`` — a false positive.  The scenario's
    ``expected_verdict`` is the ground truth ("none") while
    ``expected_identification`` records the method's (wrong, expected)
    answer, exactly as for the aggressive-RED case.
    """
    from repro.netsim.wireless import GilbertElliottLink

    wireless_hop = n_hops - 1 if wireless_hop is None else wireless_hop

    def build(seed: int) -> BuiltScenario:
        net = _internet_chain(seed, n_hops, slow_links=[])
        # Rebuild the chosen hop as a wireless link (same rate/queue).
        src_name = f"r{wireless_hop}"
        dst_name = f"r{wireless_hop + 1}"
        old = net.links.pop((src_name, dst_name))
        wireless = GilbertElliottLink(
            net.sim,
            name=old.name,
            src_name=src_name,
            dst=net.nodes[dst_name],
            bandwidth_bps=old.bandwidth_bps,
            prop_delay=old.prop_delay,
            queue=DropTailQueue(2_000_000),
            loss_bad=loss_bad,
            mean_good=mean_good,
            mean_bad=mean_bad,
        )
        net.links[(src_name, dst_name)] = wireless
        net.compute_routes()
        _background_web(net, n_hops)
        chain_links = [f"r{i}->r{i + 1}" for i in range(n_hops)]
        return BuiltScenario(
            network=net,
            probe_src="src0_0",
            probe_dst=f"snk{n_hops}_0",
            chain_link_names=chain_links,
            expected_verdict="none",
            dcl_link=None,
            max_queuing_delays={
                name: net.links[(f"r{i}", f"r{i + 1}")].queue.max_queuing_delay()
                for i, name in enumerate(chain_links)
            },
        )

    return Scenario(
        name="internet-wireless",
        description=(
            f"{n_hops}-hop path with a fading wireless hop "
            f"{wireless_hop} and no congested queue (Section VII caveat)"
        ),
        builder=build,
        expected_verdict="none",
        # Known, documented false positive: queue-uncorrelated losses
        # defeat the droptail premise (see the docstring).
        expected_identification="weak",
    )


class InternetRun:
    """An Internet-style experiment: raw, distorted, and repaired views."""

    def __init__(
        self,
        result: ExperimentResult,
        raw: PathObservation,
        distorted: PathObservation,
        repaired: PathObservation,
        injected: ClockFit,
        estimated: ClockFit,
    ):
        self.result = result
        self.raw = raw
        self.distorted = distorted
        self.repaired = repaired
        self.injected = injected
        self.estimated = estimated

    @property
    def trace(self):
        """The underlying periodic probe trace."""
        return self.result.trace

    def skew_error(self) -> float:
        """Absolute error of the estimated clock skew."""
        return abs(self.estimated.skew - self.injected.skew)


def run_internet_experiment(
    scenario: Scenario,
    seed: int = 0,
    duration: float = 300.0,
    warmup: float = 30.0,
    clock_offset: float = 0.35,
    clock_skew: float = 5e-5,
) -> InternetRun:
    """Run an Internet scenario with clock distortion and repair.

    The receiver clock runs ``clock_offset`` seconds ahead and drifts at
    ``clock_skew`` (50 ppm by default — ordinary crystal error; over a
    20-minute trace it accumulates tens of ms, large against queuing).
    """
    result = run_scenario(scenario, seed=seed, duration=duration, warmup=warmup)
    raw = result.trace.observation()
    distorted = apply_clock_effects(raw, offset=clock_offset, skew=clock_skew)
    repaired, estimated = remove_clock_effects(distorted)
    return InternetRun(
        result=result,
        raw=raw,
        distorted=distorted,
        repaired=repaired,
        injected=ClockFit(offset=clock_offset, skew=clock_skew),
        estimated=estimated,
    )
