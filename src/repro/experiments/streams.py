"""Synthetic probe-record streams for the streaming subsystem.

The streaming monitor consumes ``(send_time, delay)`` pairs one at a
time, so its tests and benchmarks need *generators* with known ground
truth rather than the batch traces the simulator produces.  Two shapes:

* :func:`strong_dcl_stream` — a single droptail bottleneck modelled as a
  reflected random walk on the queue: losses happen (mostly) when the
  queue sits at its maximum ``q_max``, so the stream carries a textbook
  strong-DCL signature and is stationary by construction;
* :func:`level_shift_stream` — the same walk whose queue ceiling jumps
  at a chosen probe index: a nonstationary regime change the monitor's
  stationarity gate and hysteresis must ride through without flapping;
* :func:`regime_switch_stream` — the walk switches into a regime the
  HMM/MMHD model class cannot represent (deterministic two-level dwell,
  losses decoupled from the queue) while keeping the *marginal* delay
  range and loss rate in band: the stationarity gate keeps analysing,
  and only model-health observability (:mod:`repro.obs.health`) can
  tell the verdicts have lost their footing.

All are lazy, deterministic in ``seed``, and cheap enough to generate
millions of records.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

__all__ = ["strong_dcl_stream", "level_shift_stream",
           "regime_switch_stream"]


def strong_dcl_stream(
    n: int,
    q_max: float = 0.1,
    base_delay: float = 0.02,
    interval: float = 0.02,
    loss_prob: float = 0.7,
    step_down: float = 0.012,
    step_up: float = 0.015,
    seed: int = 0,
    start_time: float = 0.0,
) -> Iterator[Tuple[float, float]]:
    """Probe records from one saturating droptail bottleneck.

    The queue performs a reflected random walk on ``[0, q_max]`` with a
    slight upward drift (``step_up > step_down``), and a probe arriving
    at a full queue is lost with probability ``loss_prob`` — so lost
    probes see queuing delay ~``q_max`` and surviving ones the whole
    range below, the strong-DCL signature of the paper's Table II
    scenario.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if q_max <= 0:
        raise ValueError(f"q_max must be positive, got {q_max}")
    rng = np.random.default_rng(seed)
    queue = 0.0
    for i in range(n):
        queue = min(q_max, max(0.0, queue + rng.uniform(-step_down, step_up)))
        send_time = start_time + i * interval
        if queue >= q_max - 1e-12 and rng.random() < loss_prob:
            yield send_time, float("nan")
        else:
            yield send_time, base_delay + queue


def level_shift_stream(
    n: int,
    shift_at: int,
    q_max_before: float = 0.05,
    q_max_after: float = 0.12,
    base_delay: float = 0.02,
    interval: float = 0.02,
    loss_prob: float = 0.7,
    seed: int = 0,
) -> Iterator[Tuple[float, float]]:
    """A congestion regime change: the queue ceiling jumps at ``shift_at``.

    Windows straddling the shift see two delay populations and should be
    skipped by the stationarity gate; windows fully before/after each
    carry a clean strong-DCL signature at their own level.
    """
    if not 0 <= shift_at <= n:
        raise ValueError(f"shift_at must lie in 0..{n}, got {shift_at}")
    first = strong_dcl_stream(
        shift_at, q_max=q_max_before, base_delay=base_delay,
        interval=interval, loss_prob=loss_prob, seed=seed,
    )
    second = strong_dcl_stream(
        n - shift_at, q_max=q_max_after, base_delay=base_delay,
        interval=interval, loss_prob=loss_prob, seed=seed + 1,
        start_time=shift_at * interval,
    )
    yield from first
    yield from second


def regime_switch_stream(
    n: int,
    switch_at: int,
    q_max: float = 0.1,
    base_delay: float = 0.02,
    interval: float = 0.02,
    loss_prob: float = 0.7,
    dwell: int = 40,
    loss_rate: float = 0.05,
    jitter: float = 0.004,
    seed: int = 0,
) -> Iterator[Tuple[float, float]]:
    """An *assumption* break rather than a *level* break.

    Before ``switch_at`` the stream is :func:`strong_dcl_stream` — the
    in-model scenario.  After it, the path enters a regime the paper's
    model class cannot represent:

    * the queue oscillates between two fixed levels with a
      **deterministic** dwell of ``dwell`` probes per level — a
      semi-Markov process whose run-length CV is ~0, unreachable by the
      geometric/phase-type dwell of an HMM or MMHD;
    * losses arrive uniformly at rate ``loss_rate`` **independent of
      the queue**, severing the loss/delay coupling every DCL test
      leans on (the signature of a remote, non-dominant loss cause).

    The marginal delay range and loss fraction stay comparable to the
    in-model phase, so the stationarity gate keeps passing windows and
    the monitor keeps publishing confident-looking verdicts — exactly
    the failure mode per-path ``model_health`` exists to expose.
    """
    if not 0 <= switch_at <= n:
        raise ValueError(f"switch_at must lie in 0..{n}, got {switch_at}")
    if dwell < 1:
        raise ValueError(f"dwell must be >= 1, got {dwell}")
    yield from strong_dcl_stream(
        switch_at, q_max=q_max, base_delay=base_delay, interval=interval,
        loss_prob=loss_prob, seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    levels = (0.25 * q_max, 0.9 * q_max)
    for i in range(switch_at, n):
        send_time = i * interval
        if rng.random() < loss_rate:
            yield send_time, float("nan")
        else:
            phase = ((i - switch_at) // dwell) % 2
            queue = levels[phase] + rng.uniform(-jitter, jitter)
            yield send_time, base_delay + max(0.0, queue)
