"""Probing-duration sweeps (paper Figs. 9 and 14).

The paper asks: how long must the probe stream be for reliable
identification?  Methodology (Section VI-A4): pick random segments of a
given duration from one long trace, identify on each segment, and report
the fraction of correct (Fig. 9) or reference-consistent (Fig. 14)
identifications versus segment duration.  Fig. 14 additionally contrasts
*known* propagation delay against the minimum-delay approximation and
finds them identical.

Each segment's identification is an independent EM fit, so both sweeps
accept ``n_jobs``: segments are drawn serially up front (one RNG stream,
so the sampled segments do not depend on the worker count) and the fits
fan out over worker processes with results reduced in draw order —
serial and parallel sweeps report identical ratios.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.identify import IdentifyConfig, identify
from repro.netsim.trace import PathObservation, ProbeTrace
from repro.parallel import parallel_map, resolve_n_jobs

__all__ = ["DurationSweep", "correctness_vs_duration", "consistency_vs_duration"]


class DurationSweep:
    """Result of a duration sweep: per-duration correctness ratios."""

    def __init__(
        self,
        durations: Sequence[float],
        ratios: Sequence[float],
        n_reps: int,
        label: str = "",
    ):
        self.durations = list(durations)
        self.ratios = list(ratios)
        self.n_reps = int(n_reps)
        self.label = label

    def knee(self, level: float = 0.9) -> Optional[float]:
        """Shortest tested duration whose ratio reaches ``level``."""
        for duration, ratio in zip(self.durations, self.ratios):
            if ratio >= level:
                return duration
        return None

    def rows(self) -> List[str]:
        """Aligned text rows (duration, ratio) for reports."""
        return [
            f"{duration:8.1f} s   {ratio:6.1%}"
            for duration, ratio in zip(self.durations, self.ratios)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(
            f"{d:.0f}s:{r:.0%}" for d, r in zip(self.durations, self.ratios)
        )
        return f"DurationSweep({self.label}: {pairs})"


def _segment_observation(
    observation: PathObservation,
    segment_len: int,
    rng: np.random.Generator,
) -> PathObservation:
    if segment_len >= len(observation):
        return observation
    start = int(rng.integers(0, len(observation) - segment_len))
    return observation.segment(start, start + segment_len)


def _accepts_dcl(report) -> bool:
    return report.wdcl.accepted


def _segment_verdict(task):
    """Identify one segment (parallel-map worker).

    Returns the WDCL acceptance, or ``None`` when the segment is
    degenerate (e.g. loss-free) and yields no verdict.
    """
    segment, config = task
    try:
        report = identify(segment, config)
    except (ValueError, FloatingPointError):
        return None
    return _accepts_dcl(report)


def _worker_config(config: IdentifyConfig, n_jobs: int) -> IdentifyConfig:
    """The per-segment config: serial EM inside parallel sweep workers."""
    if resolve_n_jobs(n_jobs) <= 1 or config.em.n_jobs == 1:
        return config
    return IdentifyConfig(
        n_symbols=config.n_symbols,
        n_hidden=config.n_hidden,
        model=config.model,
        beta0=config.beta0,
        beta1=config.beta1,
        tolerance=config.tolerance,
        propagation_delay=config.propagation_delay,
        em=config.em.replace(n_jobs=1),
    )


def _sweep_ratios(
    observation: PathObservation,
    durations: Sequence[float],
    probe_interval: float,
    n_reps: int,
    config: IdentifyConfig,
    seed: int,
    n_jobs: int,
    target: bool,
) -> List[float]:
    """Shared engine of both sweeps: draw segments, identify, aggregate.

    Segments are drawn serially in (duration, rep) order from one RNG
    stream — exactly the order the old serial loop consumed it — then
    all identifications fan out in a single batch so chunking amortises
    across the whole sweep, not per duration.  A degenerate segment
    (no verdict) counts as a miss, as before.
    """
    rng = np.random.default_rng(seed)
    worker_config = _worker_config(config, n_jobs)
    tasks = []
    for duration in durations:
        segment_len = max(10, int(round(duration / probe_interval)))
        for _ in range(n_reps):
            segment = _segment_observation(observation, segment_len, rng)
            tasks.append((segment, worker_config))
    verdicts = parallel_map(_segment_verdict, tasks, n_jobs=n_jobs)
    ratios = []
    for i in range(len(durations)):
        chunk = verdicts[i * n_reps:(i + 1) * n_reps]
        hits = sum(1 for verdict in chunk if verdict == target)
        ratios.append(hits / n_reps if n_reps else 0.0)
    return ratios


def correctness_vs_duration(
    trace: ProbeTrace,
    expected_dcl: bool,
    durations: Sequence[float],
    n_reps: int = 25,
    config: Optional[IdentifyConfig] = None,
    seed: int = 0,
    n_jobs: int = 1,
) -> DurationSweep:
    """Fig. 9: fraction of correct identifications vs segment duration.

    ``expected_dcl`` is whether a (weakly) dominant congested link truly
    exists; a segment's identification is correct when its WDCL verdict
    matches.  Segments are drawn uniformly from ``trace``.  ``n_jobs``
    fans the per-segment fits out over worker processes (``-1`` = all
    CPUs) without changing the reported ratios.
    """
    config = config or IdentifyConfig()
    ratios = _sweep_ratios(
        trace.observation(), durations, trace.probe_interval,
        n_reps, config, seed, n_jobs, target=expected_dcl,
    )
    return DurationSweep(durations, ratios, n_reps, label="correctness")


def consistency_vs_duration(
    observation: PathObservation,
    reference_accepts_dcl: bool,
    durations: Sequence[float],
    probe_interval: float,
    n_reps: int = 25,
    config: Optional[IdentifyConfig] = None,
    known_propagation: Optional[float] = None,
    seed: int = 0,
    n_jobs: int = 1,
) -> DurationSweep:
    """Fig. 14: fraction of segments consistent with the full-trace result.

    ``known_propagation`` switches between the paper's "known P" case
    (pass the true propagation delay) and the default minimum-delay
    approximation (``None``).  ``n_jobs`` fans the per-segment fits out
    over worker processes without changing the reported ratios.
    """
    config = config or IdentifyConfig()
    if known_propagation is not None:
        config = IdentifyConfig(
            n_symbols=config.n_symbols,
            n_hidden=config.n_hidden,
            model=config.model,
            beta0=config.beta0,
            beta1=config.beta1,
            tolerance=config.tolerance,
            propagation_delay=known_propagation,
            em=config.em,
        )
    ratios = _sweep_ratios(
        observation, durations, probe_interval,
        n_reps, config, seed, n_jobs, target=reference_accepts_dcl,
    )
    label = "known P" if known_propagation is not None else "unknown P"
    return DurationSweep(durations, ratios, n_reps, label=label)
