"""Probing-duration sweeps (paper Figs. 9 and 14).

The paper asks: how long must the probe stream be for reliable
identification?  Methodology (Section VI-A4): pick random segments of a
given duration from one long trace, identify on each segment, and report
the fraction of correct (Fig. 9) or reference-consistent (Fig. 14)
identifications versus segment duration.  Fig. 14 additionally contrasts
*known* propagation delay against the minimum-delay approximation and
finds them identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.identify import IdentifyConfig, identify
from repro.netsim.trace import PathObservation, ProbeTrace

__all__ = ["DurationSweep", "correctness_vs_duration", "consistency_vs_duration"]


class DurationSweep:
    """Result of a duration sweep: per-duration correctness ratios."""

    def __init__(
        self,
        durations: Sequence[float],
        ratios: Sequence[float],
        n_reps: int,
        label: str = "",
    ):
        self.durations = list(durations)
        self.ratios = list(ratios)
        self.n_reps = int(n_reps)
        self.label = label

    def knee(self, level: float = 0.9) -> Optional[float]:
        """Shortest tested duration whose ratio reaches ``level``."""
        for duration, ratio in zip(self.durations, self.ratios):
            if ratio >= level:
                return duration
        return None

    def rows(self) -> List[str]:
        """Aligned text rows (duration, ratio) for reports."""
        return [
            f"{duration:8.1f} s   {ratio:6.1%}"
            for duration, ratio in zip(self.durations, self.ratios)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(
            f"{d:.0f}s:{r:.0%}" for d, r in zip(self.durations, self.ratios)
        )
        return f"DurationSweep({self.label}: {pairs})"


def _segment_observation(
    observation: PathObservation,
    segment_len: int,
    rng: np.random.Generator,
) -> PathObservation:
    if segment_len >= len(observation):
        return observation
    start = int(rng.integers(0, len(observation) - segment_len))
    return observation.segment(start, start + segment_len)


def _accepts_dcl(report) -> bool:
    return report.wdcl.accepted


def correctness_vs_duration(
    trace: ProbeTrace,
    expected_dcl: bool,
    durations: Sequence[float],
    n_reps: int = 25,
    config: Optional[IdentifyConfig] = None,
    seed: int = 0,
) -> DurationSweep:
    """Fig. 9: fraction of correct identifications vs segment duration.

    ``expected_dcl`` is whether a (weakly) dominant congested link truly
    exists; a segment's identification is correct when its WDCL verdict
    matches.  Segments are drawn uniformly from ``trace``.
    """
    config = config or IdentifyConfig()
    observation = trace.observation()
    rng = np.random.default_rng(seed)
    ratios = []
    for duration in durations:
        segment_len = max(10, int(round(duration / trace.probe_interval)))
        correct = 0
        attempts = 0
        for _ in range(n_reps):
            segment = _segment_observation(observation, segment_len, rng)
            try:
                report = identify(segment, config)
            except (ValueError, FloatingPointError):
                # Segment without losses (or degenerate): counts as wrong
                # unless no DCL is expected and no losses means no verdict.
                attempts += 1
                continue
            attempts += 1
            if _accepts_dcl(report) == expected_dcl:
                correct += 1
        ratios.append(correct / attempts if attempts else 0.0)
    return DurationSweep(durations, ratios, n_reps, label="correctness")


def consistency_vs_duration(
    observation: PathObservation,
    reference_accepts_dcl: bool,
    durations: Sequence[float],
    probe_interval: float,
    n_reps: int = 25,
    config: Optional[IdentifyConfig] = None,
    known_propagation: Optional[float] = None,
    seed: int = 0,
) -> DurationSweep:
    """Fig. 14: fraction of segments consistent with the full-trace result.

    ``known_propagation`` switches between the paper's "known P" case
    (pass the true propagation delay) and the default minimum-delay
    approximation (``None``).
    """
    config = config or IdentifyConfig()
    if known_propagation is not None:
        config = IdentifyConfig(
            n_symbols=config.n_symbols,
            n_hidden=config.n_hidden,
            model=config.model,
            beta0=config.beta0,
            beta1=config.beta1,
            tolerance=config.tolerance,
            propagation_delay=known_propagation,
            em=config.em,
        )
    rng = np.random.default_rng(seed)
    ratios = []
    for duration in durations:
        segment_len = max(10, int(round(duration / probe_interval)))
        consistent = 0
        attempts = 0
        for _ in range(n_reps):
            segment = _segment_observation(observation, segment_len, rng)
            try:
                report = identify(segment, config)
            except (ValueError, FloatingPointError):
                attempts += 1
                continue
            attempts += 1
            if _accepts_dcl(report) == reference_accepts_dcl:
                consistent += 1
        ratios.append(consistent / attempts if attempts else 0.0)
    label = "known P" if known_propagation is not None else "unknown P"
    return DurationSweep(durations, ratios, n_reps, label=label)
