"""Delay discretization (paper Sections IV-A and V-A).

End-end queuing delay is the one-way delay minus the path propagation
delay ``P``.  The queuing-delay range ``[0, D_max - P]`` is divided into
``M`` equal bins of width ``w``; symbol ``m ∈ {1..M}`` covers the interval
``((m-1) w, m w]`` (symbol 1 also absorbs exactly-zero queuing).

When ``P`` is unknown — the common case for Internet paths — the paper
approximates it by the minimum observed delay ``D_min``, and shows the
approximation error is negligible once the probing run is minutes long
(Fig. 14 demonstrates identical results for known and unknown ``P``).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.models.base import LOSS, ObservationSequence
from repro.netsim.trace import PathObservation

__all__ = ["DelayDiscretizer"]


class DelayDiscretizer:
    """Maps one-way delays to delay symbols ``1..M`` and back.

    Parameters
    ----------
    n_symbols:
        The paper's ``M`` (5 for identification, 40 for the fine-grained
        bound of Fig. 7).
    propagation_delay:
        The path's constant delay component ``P`` (known or approximated
        by ``D_min``).
    max_delay:
        The largest end-end delay ``D_max``; the top of bin ``M``.
    """

    def __init__(self, n_symbols: int, propagation_delay: float, max_delay: float):
        if n_symbols < 1:
            raise ValueError(f"need at least one symbol, got {n_symbols}")
        if max_delay <= propagation_delay:
            raise ValueError(
                f"max_delay {max_delay} must exceed propagation delay "
                f"{propagation_delay} (no queuing range to discretize)"
            )
        self.n_symbols = int(n_symbols)
        self.propagation_delay = float(propagation_delay)
        self.max_delay = float(max_delay)
        self.queuing_range = self.max_delay - self.propagation_delay
        self.bin_width = self.queuing_range / self.n_symbols

    @classmethod
    def from_observation(
        cls,
        observation: PathObservation,
        n_symbols: int,
        propagation_delay: Optional[float] = None,
    ) -> "DelayDiscretizer":
        """Build a discretizer from an observed probe run.

        ``propagation_delay`` overrides; otherwise the observation's own
        known value is used if present, else the ``D_min`` approximation.
        """
        if propagation_delay is None:
            propagation_delay = observation.propagation_delay
        if propagation_delay is None:
            propagation_delay = observation.min_delay
        return cls(n_symbols, propagation_delay, observation.max_delay)

    # ------------------------------------------------------------------
    # Delay -> symbol
    # ------------------------------------------------------------------
    def symbol_of(self, delay: float) -> int:
        """Symbol (1-based) for one one-way delay value."""
        return int(self.symbols_of(np.array([delay]))[0])

    def symbols_of(self, delays: Sequence[float]) -> np.ndarray:
        """Symbols for an array of one-way delays; NaN maps to LOSS.

        Delays outside the calibration range are clipped into ``1..M``
        (a delay below ``P`` means the propagation estimate was slightly
        high; above ``D_max`` can occur when discretizing a different
        segment than the one used for calibration).
        """
        delays = np.asarray(delays, dtype=float)
        out = np.full(delays.shape, LOSS, dtype=int)
        observed = ~np.isnan(delays)
        queuing = delays[observed] - self.propagation_delay
        # The tiny slack keeps exact bin edges (q = m * w) in bin m despite
        # floating-point rounding of the division.
        symbols = np.ceil(queuing / self.bin_width - 1e-9).astype(int)
        out[observed] = np.clip(symbols, 1, self.n_symbols)
        return out

    def observation_sequence(self, observation: PathObservation) -> ObservationSequence:
        """Symbolize a full probe run into a model-ready sequence."""
        return ObservationSequence(
            self.symbols_of(observation.delays), self.n_symbols
        )

    # ------------------------------------------------------------------
    # Symbol -> delay
    # ------------------------------------------------------------------
    def queuing_upper_edge(self, symbol: int) -> float:
        """Upper edge of a symbol's queuing-delay bin, in seconds.

        This is the paper's conversion of a discretized bound ``d*`` back
        to an actual delay: ``d* · w``.
        """
        if not 1 <= symbol <= self.n_symbols:
            raise ValueError(f"symbol {symbol} outside 1..{self.n_symbols}")
        return symbol * self.bin_width

    def queuing_lower_edge(self, symbol: int) -> float:
        """Lower edge of a symbol's queuing-delay bin, in seconds."""
        if not 1 <= symbol <= self.n_symbols:
            raise ValueError(f"symbol {symbol} outside 1..{self.n_symbols}")
        return (symbol - 1) * self.bin_width

    def queuing_midpoint(self, symbol: int) -> float:
        """Midpoint of a symbol's queuing-delay bin, in seconds."""
        return 0.5 * (
            self.queuing_lower_edge(symbol) + self.queuing_upper_edge(symbol)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DelayDiscretizer(M={self.n_symbols}, P={self.propagation_delay:.6f}s, "
            f"range={self.queuing_range:.6f}s, w={self.bin_width:.6f}s)"
        )
