"""Uncertainty for the inferred ``Ĝ`` and the test decisions.

The paper reports point identifications; a downstream user also wants to
know how stable a verdict is on their (finite, autocorrelated) probe
record.  This module provides a **moving-block bootstrap**: resample the
observation sequence in contiguous blocks (preserving the short-range
delay correlation the MMHD feeds on), refit on each pseudo-trace, and
aggregate the resulting distributions and verdicts.

The refits warm-start shorter EM runs, so a default 20-replicate
bootstrap costs roughly as much as a few full fits.

Replicate refits are independent and fan out over ``n_jobs`` worker
processes via :mod:`repro.parallel`.  The resamples themselves are drawn
serially up front from a single RNG stream (drawing is cheap; fitting is
not), so the replicate data — and therefore the aggregate confidence
numbers — are identical for every ``n_jobs``.

Inside each worker the refit uses whatever E-step engine
``EMConfig.backend`` resolves to (see :mod:`repro.models.batched`): at
the small state widths typical of probe records that is the batched
kernel, so pool-across-replicates and batch-within-fit compose — the
documented heuristic from :mod:`repro.parallel`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.discretize import DelayDiscretizer
from repro.core.distributions import DelayDistribution
from repro.core.hypothesis import sdcl_test, wdcl_test
from repro.core.identify import IdentifyConfig
from repro.models.base import ObservationSequence
from repro.models.hmm import fit_hmm
from repro.models.mmhd import fit_mmhd
from repro.netsim.trace import PathObservation
from repro.parallel import parallel_map

__all__ = ["BootstrapResult", "bootstrap_identification"]


class BootstrapResult:
    """Replicate distributions plus aggregate confidence numbers."""

    def __init__(
        self,
        pmfs: np.ndarray,
        sdcl_accepts: np.ndarray,
        wdcl_accepts: np.ndarray,
        block_length: int,
    ):
        self.pmfs = np.asarray(pmfs, dtype=float)
        self.sdcl_accepts = np.asarray(sdcl_accepts, dtype=bool)
        self.wdcl_accepts = np.asarray(wdcl_accepts, dtype=bool)
        self.block_length = int(block_length)

    @property
    def n_replicates(self) -> int:
        """Number of usable bootstrap replicates."""
        return len(self.pmfs)

    @property
    def sdcl_acceptance_rate(self) -> float:
        """Fraction of replicates on which SDCL-Test accepted."""
        return float(self.sdcl_accepts.mean())

    @property
    def wdcl_acceptance_rate(self) -> float:
        """Fraction of replicates on which WDCL-Test accepted."""
        return float(self.wdcl_accepts.mean())

    def pmf_interval(self, level: float = 0.9):
        """Per-symbol (lower, upper) envelope of the replicate PMFs."""
        if not 0 < level < 1:
            raise ValueError(f"level must lie in (0, 1), got {level}")
        tail = (1.0 - level) / 2.0
        lower = np.quantile(self.pmfs, tail, axis=0)
        upper = np.quantile(self.pmfs, 1.0 - tail, axis=0)
        return lower, upper

    def summary(self) -> str:
        """Human-readable acceptance rates and 90% PMF bands."""
        lower, upper = self.pmf_interval()
        bands = " ".join(
            f"{m + 1}:[{lo:.2f},{hi:.2f}]"
            for m, (lo, hi) in enumerate(zip(lower, upper))
        )
        return (
            f"bootstrap ({self.n_replicates} replicates, "
            f"block={self.block_length}):\n"
            f"  SDCL acceptance rate: {self.sdcl_acceptance_rate:.0%}\n"
            f"  WDCL acceptance rate: {self.wdcl_acceptance_rate:.0%}\n"
            f"  G 90% bands: {bands}"
        )


def _resample_blocks(
    symbols: np.ndarray, block_length: int, rng: np.random.Generator
) -> np.ndarray:
    n = len(symbols)
    n_blocks = int(np.ceil(n / block_length))
    starts = rng.integers(0, max(1, n - block_length + 1), size=n_blocks)
    pieces = [symbols[s:s + block_length] for s in starts]
    return np.concatenate(pieces)[:n]


def _fit_replicate(task):
    """Fit + test one bootstrap replicate (parallel-map worker).

    Replicate fits run their own restarts serially (``n_jobs=1``): the
    parallelism budget is spent across replicates, never nested.
    """
    seq, config, discretizer, replicate_seed, replicate_max_iter = task
    replicate_config = config.em.replace(
        max_iter=replicate_max_iter,
        seed=replicate_seed,
        n_restarts=1,
        n_jobs=1,
    )
    fit = fit_mmhd if config.model == "mmhd" else fit_hmm
    fitted = fit(seq, n_hidden=config.n_hidden, config=replicate_config)
    distribution = DelayDistribution(fitted.virtual_delay_pmf,
                                     discretizer=discretizer)
    sdcl = sdcl_test(distribution, tolerance=config.tolerance).accepted
    wdcl = wdcl_test(distribution, config.beta0, config.beta1,
                     tolerance=config.tolerance).accepted
    return distribution.pmf, sdcl, wdcl


def bootstrap_identification(
    observation: PathObservation,
    config: Optional[IdentifyConfig] = None,
    n_replicates: int = 20,
    block_length: Optional[int] = None,
    seed: int = 0,
    replicate_max_iter: int = 40,
    n_jobs: int = 1,
) -> BootstrapResult:
    """Moving-block bootstrap of the identification pipeline.

    Parameters
    ----------
    observation:
        The measured probe record.
    config:
        Pipeline configuration (the discretization is calibrated once on
        the full record and shared by all replicates, so the symbol grid
        is common).
    block_length:
        Resampling block size in probes; defaults to ~5 seconds of
        probing (250 samples at the paper's 20 ms), long enough to span
        typical congestion episodes.
    replicate_max_iter:
        EM cap per replicate (replicates need fewer iterations than the
        headline fit; their role is spread, not the point estimate).
    n_jobs:
        Worker processes for the replicate refits (``-1`` = all CPUs).
        The result is numerically identical for every value.
    """
    config = config or IdentifyConfig()
    if n_replicates < 1:
        raise ValueError(f"need at least one replicate, got {n_replicates}")
    discretizer = DelayDiscretizer.from_observation(
        observation, config.n_symbols,
        propagation_delay=config.propagation_delay,
    )
    base_seq = discretizer.observation_sequence(observation)
    if block_length is None:
        block_length = max(10, min(len(base_seq) // 4, 250))
    rng = np.random.default_rng(seed)

    # Draw replicate pseudo-traces serially (one RNG stream, so the data
    # does not depend on n_jobs), then fan the expensive refits out.
    tasks = []
    attempts = 0
    while len(tasks) < n_replicates and attempts < 4 * n_replicates:
        attempts += 1
        resampled = _resample_blocks(base_seq.symbols, block_length, rng)
        try:
            seq = ObservationSequence(resampled, config.n_symbols)
        except ValueError:
            continue  # a pathological resample (e.g. all losses)
        if seq.n_losses == 0:
            continue
        tasks.append(
            (seq, config, discretizer, config.em.seed + attempts,
             replicate_max_iter)
        )
    if not tasks:
        raise ValueError("no usable bootstrap replicates (too few losses?)")
    results = parallel_map(_fit_replicate, tasks, n_jobs=n_jobs)

    pmfs: List[np.ndarray] = [pmf for pmf, _, _ in results]
    sdcl_accepts = [sdcl for _, sdcl, _ in results]
    wdcl_accepts = [wdcl for _, _, wdcl in results]
    return BootstrapResult(
        pmfs=np.array(pmfs),
        sdcl_accepts=np.array(sdcl_accepts),
        wdcl_accepts=np.array(wdcl_accepts),
        block_length=block_length,
    )
