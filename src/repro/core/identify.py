"""End-to-end identification pipeline.

``identify(observation)`` runs the paper's full procedure on a one-way
probe record:

1. approximate the propagation delay (unless known) and discretize delays
   into ``M`` symbols, losses into missing values;
2. fit the chosen model (MMHD by default — the paper's recommendation) by
   EM and read off ``Ĝ``, the virtual queuing delay distribution of lost
   probes;
3. run SDCL-Test and WDCL-Test on ``Ĝ``;
4. if a dominant congested link is identified, optionally re-fit with a
   finer discretization and bound its maximum queuing delay.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.bounds import (
    DelayBound,
    connected_component_bound,
    strong_dcl_bound,
    weak_dcl_bound,
)
from repro.core.discretize import DelayDiscretizer
from repro.core.distributions import DelayDistribution
from repro.core.hypothesis import TestResult, sdcl_test, wdcl_test
from repro.core.virtual_delay import hmm_distribution, mmhd_distribution
from repro.models.base import EMConfig, FittedModel
from repro.netsim.trace import PathObservation, ProbeTrace
from repro.obs.profiling import profile_phase

__all__ = [
    "IdentifyConfig",
    "IdentificationReport",
    "identify",
    "estimate_bound",
    "evaluate_distribution",
    "verdict_from_tests",
]


class IdentifyConfig:
    """Knobs of the identification pipeline.

    Defaults follow the paper's evaluation: ``M = 5`` delay symbols,
    MMHD with ``N = 2`` hidden states, EM threshold ``1e-4``, and the
    weak-test parameters ``β0 = 0.06``, ``β1 = 0`` used throughout
    Section VI.
    """

    def __init__(
        self,
        n_symbols: int = 5,
        n_hidden: int = 2,
        model: str = "mmhd",
        beta0: float = 0.06,
        beta1: float = 0.0,
        tolerance: float = 1e-3,
        propagation_delay: Optional[float] = None,
        em: Optional[EMConfig] = None,
    ):
        if model not in ("mmhd", "hmm"):
            raise ValueError(f"model must be 'mmhd' or 'hmm', got {model!r}")
        self.n_symbols = int(n_symbols)
        self.n_hidden = int(n_hidden)
        self.model = model
        self.beta0 = float(beta0)
        self.beta1 = float(beta1)
        self.tolerance = float(tolerance)
        self.propagation_delay = propagation_delay
        self.em = em or EMConfig()


class IdentificationReport:
    """Everything the pipeline learned about the path.

    Attributes
    ----------
    distribution:
        The inferred ``Ĝ`` (a :class:`DelayDistribution`).
    sdcl, wdcl:
        The two test results.
    verdict:
        ``"strong"`` | ``"weak"`` | ``"none"``: the strongest hypothesis
        accepted.
    fitted:
        The fitted model (for diagnostics: likelihood trail, parameters).
    """

    def __init__(
        self,
        distribution: DelayDistribution,
        sdcl: TestResult,
        wdcl: TestResult,
        fitted: FittedModel,
        discretizer: DelayDiscretizer,
        config: IdentifyConfig,
    ):
        self.distribution = distribution
        self.sdcl = sdcl
        self.wdcl = wdcl
        self.fitted = fitted
        self.discretizer = discretizer
        self.config = config

    @property
    def verdict(self) -> str:
        """The strongest accepted hypothesis: strong, weak, or none."""
        return verdict_from_tests(self.sdcl, self.wdcl)

    @property
    def dominant_link_exists(self) -> bool:
        """Whether either test accepted a dominant congested link."""
        return self.verdict != "none"

    def summary(self) -> str:
        """Multi-line report: model, G, both tests, and the verdict."""
        lines = [
            f"model: {self.config.model.upper()} "
            f"(M={self.config.n_symbols}, N={self.config.n_hidden}, "
            f"converged={self.fitted.converged} in {self.fitted.n_iter} iter)",
            "G pmf: "
            + ", ".join(
                f"{m + 1}:{p:.3f}" for m, p in enumerate(self.distribution.pmf)
            ),
            self.sdcl.summary(),
            self.wdcl.summary(),
            f"verdict: {self.verdict} dominant congested link",
        ]
        return "\n".join(lines)


def evaluate_distribution(
    distribution: DelayDistribution,
    config: IdentifyConfig,
) -> Tuple[TestResult, TestResult]:
    """Run both hypothesis tests on an estimated ``Ĝ``.

    The single place the SDCL/WDCL parameters are applied — shared by the
    batch :func:`identify` pipeline and the streaming per-window tracker,
    so the two can never drift apart on test configuration.
    """
    sdcl = sdcl_test(distribution, tolerance=config.tolerance)
    wdcl = wdcl_test(
        distribution, config.beta0, config.beta1, tolerance=config.tolerance
    )
    return sdcl, wdcl


def verdict_from_tests(sdcl: TestResult, wdcl: TestResult) -> str:
    """The strongest accepted hypothesis: ``strong`` | ``weak`` | ``none``."""
    if sdcl.accepted:
        return "strong"
    if wdcl.accepted:
        return "weak"
    return "none"


def _as_observation(data, config: IdentifyConfig) -> PathObservation:
    if isinstance(data, ProbeTrace):
        return data.observation()
    if isinstance(data, PathObservation):
        return data
    raise TypeError(
        f"expected ProbeTrace or PathObservation, got {type(data).__name__}"
    )


def identify(
    data,
    config: Optional[IdentifyConfig] = None,
) -> IdentificationReport:
    """Run the full identification pipeline on a probe record.

    Parameters
    ----------
    data:
        A :class:`ProbeTrace` (simulator output) or a
        :class:`PathObservation` (send times + delays with NaN losses).
    config:
        Pipeline configuration; defaults to the paper's settings.
    """
    config = config or IdentifyConfig()
    observation = _as_observation(data, config)
    with profile_phase("identify.discretize"):
        discretizer = DelayDiscretizer.from_observation(
            observation, config.n_symbols,
            propagation_delay=config.propagation_delay,
        )
    estimator = mmhd_distribution if config.model == "mmhd" else hmm_distribution
    with profile_phase("identify.fit"):
        distribution, fitted = estimator(
            observation, discretizer, n_hidden=config.n_hidden, config=config.em
        )
    with profile_phase("identify.tests"):
        sdcl, wdcl = evaluate_distribution(distribution, config)
    return IdentificationReport(
        distribution=distribution,
        sdcl=sdcl,
        wdcl=wdcl,
        fitted=fitted,
        discretizer=discretizer,
        config=config,
    )


def estimate_bound(
    data,
    verdict: str,
    config: Optional[IdentifyConfig] = None,
    n_symbols: int = 40,
    use_component_heuristic: bool = True,
    significance: float = 0.05,
) -> DelayBound:
    """Bound the dominant link's maximum queuing delay (Section IV-B).

    Re-fits the model with a finer discretization (the paper uses
    ``M = 40`` for bounds vs 5 for identification) and applies the bound
    matching the accepted hypothesis:

    * ``verdict == "strong"``: the smallest-positive-symbol bound;
    * ``verdict == "weak"``: the connected-component heuristic when
      ``use_component_heuristic`` (the paper's choice for small β0),
      otherwise the Theorem-2 quantile bound.

    ``significance`` is the "probability significantly larger than 0"
    threshold of Section IV-B: with many fine bins the fitted ``Ĝ``
    carries a few percent of estimation smear below the true ``Q_k`` bin
    that must not anchor the bound.
    """
    if verdict not in ("strong", "weak"):
        raise ValueError(f"no dominant congested link to bound (verdict={verdict!r})")
    config = config or IdentifyConfig()
    observation = _as_observation(data, config)
    discretizer = DelayDiscretizer.from_observation(
        observation, n_symbols, propagation_delay=config.propagation_delay
    )
    estimator = mmhd_distribution if config.model == "mmhd" else hmm_distribution
    distribution, _ = estimator(
        observation, discretizer, n_hidden=config.n_hidden, config=config.em
    )
    if verdict == "strong":
        return strong_dcl_bound(distribution, tolerance=significance)
    if use_component_heuristic:
        return connected_component_bound(distribution, significance=significance)
    return weak_dcl_bound(distribution, beta0=config.beta0)
