"""Upper bounds on the dominant link's maximum queuing delay (Section IV-B).

Once a dominant congested link is identified, its maximum queuing delay
``Q_k`` is a path characteristic of independent interest.  Three bounds:

* **strong**: all losses occur at link ``k``, so every lost probe's delay
  is at least ``Q_k``; the smallest symbol with positive mass, converted
  to its bin's upper edge, bounds ``Q_k`` from above.
* **weak**: at most ``β0`` of the loss mass can sit below ``Q_k``; take
  the smallest symbol with ``G(m) >= β0``.
* **connected component** (heuristic, for small ``β0`` and fine bins):
  with nearly all losses at link ``k``, the PMF of the virtual delay has
  one dominant connected component starting at ``Q_k``; take the smallest
  significantly-positive symbol of the heaviest component.  The paper
  demonstrates this on Fig. 7 with ``M = 40``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.distributions import DelayDistribution

__all__ = [
    "DelayBound",
    "strong_dcl_bound",
    "weak_dcl_bound",
    "connected_component_bound",
]


class DelayBound:
    """An upper bound on ``Q_k``, in symbols and (if possible) seconds."""

    def __init__(
        self,
        symbol: int,
        seconds: Optional[float],
        method: str,
    ):
        self.symbol = int(symbol)
        self.seconds = None if seconds is None else float(seconds)
        self.method = method

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        secs = "?" if self.seconds is None else f"{self.seconds * 1e3:.1f} ms"
        return f"DelayBound({self.method}: symbol<={self.symbol}, Q_k<={secs})"


def _to_seconds(distribution: DelayDistribution, symbol: int) -> Optional[float]:
    if distribution.discretizer is None:
        return None
    return distribution.seconds_upper_edge(symbol)


def strong_dcl_bound(
    distribution: DelayDistribution,
    tolerance: float = 1e-3,
) -> DelayBound:
    """Bound for a strongly dominant congested link.

    ``d* = min{m : G(m) > 0}`` (with mass tolerance); ``Q_k <= d* · w``.
    """
    d_star = distribution.min_symbol_with_mass(threshold=tolerance)
    return DelayBound(
        symbol=d_star,
        seconds=_to_seconds(distribution, d_star),
        method="strong",
    )


def weak_dcl_bound(
    distribution: DelayDistribution,
    beta0: float,
) -> DelayBound:
    """Bound for a weakly dominant congested link with loss parameter β0.

    ``d* = min{m : G(m) >= β0}``; by Theorem 2, ``Q_k <= d* · w``.
    """
    if not 0 < beta0 < 0.5:
        raise ValueError(f"beta0 must lie in (0, 1/2), got {beta0}")
    d_star = distribution.min_symbol_with_cdf(level=beta0)
    return DelayBound(
        symbol=d_star,
        seconds=_to_seconds(distribution, d_star),
        method="weak",
    )


def pmf_components(
    pmf: np.ndarray,
    mass_epsilon: float,
) -> List[Tuple[int, int, float]]:
    """Maximal runs of consecutive bins with mass above ``mass_epsilon``.

    Returns ``(start, stop, mass)`` tuples with 0-based half-open
    ``[start, stop)`` bin ranges, in left-to-right order.
    """
    positive = pmf > mass_epsilon
    components: List[Tuple[int, int, float]] = []
    start = None
    for i, flag in enumerate(positive):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            components.append((start, i, float(pmf[start:i].sum())))
            start = None
    if start is not None:
        components.append((start, len(pmf), float(pmf[start:].sum())))
    return components


def connected_component_bound(
    distribution: DelayDistribution,
    mass_epsilon: float = 1e-3,
    significance: float = 0.01,
) -> DelayBound:
    """The paper's PMF connected-component heuristic (Section IV-B, Fig. 7).

    Find the connected component of the PMF carrying the most mass; within
    it, take the smallest symbol whose probability is "significantly larger
    than 0" (``> significance``).  Its bin upper edge bounds ``Q_k``.

    Parameters
    ----------
    mass_epsilon:
        Bins at or below this mass separate components.
    significance:
        Minimum probability for a bin to anchor the bound.
    """
    pmf = distribution.pmf
    components = pmf_components(pmf, mass_epsilon)
    if not components:
        raise ValueError("PMF has no mass above epsilon; cannot find components")
    start, stop, _ = max(components, key=lambda comp: comp[2])
    significant = np.flatnonzero(pmf[start:stop] > significance)
    anchor = start if significant.size == 0 else start + int(significant[0])
    symbol = anchor + 1  # back to 1-based symbols
    return DelayBound(
        symbol=symbol,
        seconds=_to_seconds(distribution, symbol),
        method="connected-component",
    )
