"""The paper's contribution: dominant congested link identification.

Submodules:

* :mod:`repro.core.discretize` — delay-to-symbol binning;
* :mod:`repro.core.distributions` — PMFs/CDFs over delay symbols;
* :mod:`repro.core.virtual_delay` — the four ``G`` estimators (ground
  truth, loss pair, HMM, MMHD);
* :mod:`repro.core.hypothesis` — SDCL-Test and WDCL-Test;
* :mod:`repro.core.bounds` — maximum queuing delay upper bounds;
* :mod:`repro.core.losspair` — the Liu-Crovella baseline;
* :mod:`repro.core.identify` — the end-to-end pipeline.
"""

from repro.core.bootstrap import BootstrapResult, bootstrap_identification
from repro.core.bounds import (
    DelayBound,
    connected_component_bound,
    strong_dcl_bound,
    weak_dcl_bound,
)
from repro.core.discretize import DelayDiscretizer
from repro.core.distributions import DelayDistribution
from repro.core.hypothesis import TestResult, gdcl_test, sdcl_test, wdcl_test
from repro.core.identify import (
    IdentificationReport,
    IdentifyConfig,
    estimate_bound,
    identify,
)
from repro.core.losspair import losspair_distribution, losspair_max_queuing_delay
from repro.core.pinpoint import PinpointReport, pinpoint_dominant_link
from repro.core.virtual_delay import (
    ground_truth_distribution,
    hmm_distribution,
    mmhd_distribution,
    observed_delay_distribution,
)

__all__ = [
    "BootstrapResult",
    "DelayBound",
    "DelayDiscretizer",
    "DelayDistribution",
    "IdentificationReport",
    "IdentifyConfig",
    "PinpointReport",
    "TestResult",
    "bootstrap_identification",
    "connected_component_bound",
    "estimate_bound",
    "gdcl_test",
    "ground_truth_distribution",
    "hmm_distribution",
    "identify",
    "losspair_distribution",
    "losspair_max_queuing_delay",
    "mmhd_distribution",
    "observed_delay_distribution",
    "pinpoint_dominant_link",
    "sdcl_test",
    "strong_dcl_bound",
    "wdcl_test",
    "weak_dcl_bound",
]
