"""The SDCL and WDCL hypothesis tests (paper Section IV-A, Figs. 2-3).

Both tests read the CDF ``G`` of the (discretized, virtual) queuing delay
of lost probes:

**SDCL-Test** (Theorem 1).  Null hypothesis: a *strongly* dominant
congested link exists.  Let ``d* = min{m : G(m) > 0}``.  If the null
holds, every lost probe saw ``Q_k`` at the dominant link plus at most
``Q_k`` elsewhere, so its delay lies in ``[Q_k, 2 Q_k]``; discretized,
``G(2 d*) = 1``.  Reject when ``G(2 d*) < 1``.

**WDCL-Test** (Theorem 2).  Null hypothesis: a *weakly* dominant congested
link with parameters ``(β0, β1)`` exists — at least ``1-β0`` of losses at
the link, delay dominance with probability at least ``1-β1``.  Let
``d* = min{m : G(m) >= β0}``.  Under the null, ``d*`` is at least the
discretized ``Q_k``, and the mass within ``2 d*`` is at least
``(1-β0)(1-β1)``.  Reject when ``G(2 d*) < (1-β0)(1-β1)``.

Estimated CDFs carry numerical noise, so "``> 0``" and "``= 1``" take a
small tolerance (configurable; default ``1e-3``).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.distributions import DelayDistribution

__all__ = ["TestResult", "sdcl_test", "wdcl_test", "gdcl_test"]

#: Default tolerance for "G(m) > 0" / "G(m) = 1" on estimated CDFs.
DEFAULT_TOLERANCE = 1e-3


class TestResult:
    """Outcome of a hypothesis test.

    Attributes
    ----------
    accepted:
        ``True`` if the null hypothesis (a dominant congested link exists)
        was accepted.
    d_star:
        The test's ``d*`` (smallest relevant delay symbol); this doubles
        as the discretized upper bound on the dominant link's maximum
        queuing delay when the null is accepted (Section IV-B).
    cdf_at_2d_star:
        ``G(2 d*)``, the quantity compared against the threshold.
    threshold:
        Acceptance threshold (``1`` for SDCL, ``(1-β0)(1-β1)`` for WDCL),
        before tolerance.
    """

    def __init__(
        self,
        test_name: str,
        accepted: bool,
        d_star: int,
        cdf_at_2d_star: float,
        threshold: float,
        beta0: Optional[float] = None,
        beta1: Optional[float] = None,
    ):
        self.test_name = test_name
        self.accepted = bool(accepted)
        self.d_star = int(d_star)
        self.cdf_at_2d_star = float(cdf_at_2d_star)
        self.threshold = float(threshold)
        self.beta0 = beta0
        self.beta1 = beta1

    def __bool__(self) -> bool:
        return self.accepted

    def summary(self) -> str:
        """One-line verdict with d*, G(2d*), and the threshold."""
        verdict = "ACCEPT" if self.accepted else "REJECT"
        params = ""
        if self.beta0 is not None:
            params = f" (beta0={self.beta0}, beta1={self.beta1})"
        return (
            f"{self.test_name}{params}: {verdict}  "
            f"[d*={self.d_star}, G(2d*)={self.cdf_at_2d_star:.4f}, "
            f"threshold={self.threshold:.4f}]"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TestResult({self.summary()})"


def sdcl_test(
    distribution: DelayDistribution,
    tolerance: float = DEFAULT_TOLERANCE,
) -> TestResult:
    """SDCL-Test (Fig. 2): does a strongly dominant congested link exist?

    Parameters
    ----------
    distribution:
        The (estimated) virtual queuing delay distribution of lost probes.
    tolerance:
        Mass below ``tolerance`` counts as zero when locating ``d*``, and
        ``G(2 d*) >= 1 - tolerance`` counts as 1.
    """
    d_star = distribution.min_symbol_with_mass(threshold=tolerance)
    g_2d = distribution.cdf_at(2 * d_star)
    accepted = g_2d >= 1.0 - tolerance
    return TestResult(
        test_name="SDCL-Test",
        accepted=accepted,
        d_star=d_star,
        cdf_at_2d_star=g_2d,
        threshold=1.0,
    )


def wdcl_test(
    distribution: DelayDistribution,
    beta0: float,
    beta1: float,
    tolerance: float = DEFAULT_TOLERANCE,
) -> TestResult:
    """WDCL-Test (Fig. 3): does a weakly dominant congested link with
    parameters ``(β0, β1)`` exist?

    ``β0, β1 ∈ [0, 1/2)``: lower values are more stringent; ``β0 = β1 = 0``
    recovers the strong test.
    """
    if not 0 <= beta0 < 0.5:
        raise ValueError(f"beta0 must lie in [0, 1/2), got {beta0}")
    if not 0 <= beta1 < 0.5:
        raise ValueError(f"beta1 must lie in [0, 1/2), got {beta1}")
    if beta0 == 0:
        # Degenerate to the strong test's d* rule (G(m) > 0 with tolerance).
        d_star = distribution.min_symbol_with_mass(threshold=tolerance)
    else:
        d_star = distribution.min_symbol_with_cdf(level=beta0)
    g_2d = distribution.cdf_at(2 * d_star)
    threshold = (1.0 - beta0) * (1.0 - beta1)
    accepted = g_2d >= threshold - tolerance
    return TestResult(
        test_name="WDCL-Test",
        accepted=accepted,
        d_star=d_star,
        cdf_at_2d_star=g_2d,
        threshold=threshold,
        beta0=beta0,
        beta1=beta1,
    )


def gdcl_test(
    distribution: DelayDistribution,
    beta0: float,
    beta1: float,
    delay_factor: float = 1.0,
    tolerance: float = DEFAULT_TOLERANCE,
) -> TestResult:
    """Generalised DCL test with a delay-dominance factor ``λ``.

    The paper notes (Section III) that the definitions generalise by a
    parameter in the delay condition: link ``k`` dominates with factor
    ``λ`` when, on seeing its maximum queuing delay, ``Q_k >= λ *`` (the
    aggregate queuing elsewhere).  A lost probe's delay then lies in
    ``[Q_k, (1 + 1/λ) Q_k]``, so the acceptance check becomes
    ``G(ceil((1 + 1/λ) d*)) >= (1-β0)(1-β1)``.

    ``delay_factor = 1`` recovers :func:`wdcl_test` exactly; larger ``λ``
    demands a more dominant link (a tighter window above ``d*``), smaller
    ``λ`` relaxes it.
    """
    if delay_factor <= 0:
        raise ValueError(f"delay factor must be positive, got {delay_factor}")
    if not 0 <= beta0 < 0.5:
        raise ValueError(f"beta0 must lie in [0, 1/2), got {beta0}")
    if not 0 <= beta1 < 0.5:
        raise ValueError(f"beta1 must lie in [0, 1/2), got {beta1}")
    if beta0 == 0:
        d_star = distribution.min_symbol_with_mass(threshold=tolerance)
    else:
        d_star = distribution.min_symbol_with_cdf(level=beta0)
    window_top = int(math.ceil((1.0 + 1.0 / delay_factor) * d_star - 1e-12))
    g_top = distribution.cdf_at(window_top)
    threshold = (1.0 - beta0) * (1.0 - beta1)
    accepted = g_top >= threshold - tolerance
    return TestResult(
        test_name=f"GDCL-Test(lambda={delay_factor:g})",
        accepted=accepted,
        d_star=d_star,
        cdf_at_2d_star=g_top,
        threshold=threshold,
        beta0=beta0,
        beta1=beta1,
    )
