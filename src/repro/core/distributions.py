"""Discrete delay distributions over symbols ``1..M``.

:class:`DelayDistribution` is the shared currency between estimators
(ground truth, loss pairs, HMM, MMHD), the hypothesis tests, and the
bound computations: a PMF over delay symbols, with the discretizer kept
alongside so symbolic results convert back to seconds.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.discretize import DelayDiscretizer

__all__ = ["DelayDistribution"]


class DelayDistribution:
    """A PMF over delay symbols ``1..M`` with optional unit conversion.

    Parameters
    ----------
    pmf:
        Non-negative weights over symbols ``1..M``; normalised on entry.
    discretizer:
        If given, enables conversion of symbols to queuing-delay seconds.
    label:
        Human-readable provenance ("ns virtual", "MMHD N=2", ...).
    """

    def __init__(
        self,
        pmf: Sequence[float],
        discretizer: Optional[DelayDiscretizer] = None,
        label: str = "",
    ):
        pmf = np.asarray(pmf, dtype=float)
        if pmf.ndim != 1 or len(pmf) == 0:
            raise ValueError("pmf must be a non-empty 1-D array")
        if np.any(pmf < -1e-12):
            raise ValueError("pmf entries must be non-negative")
        total = pmf.sum()
        if total <= 0:
            raise ValueError("pmf must have positive total mass")
        if discretizer is not None and discretizer.n_symbols != len(pmf):
            raise ValueError(
                f"discretizer has {discretizer.n_symbols} symbols, pmf has {len(pmf)}"
            )
        self.pmf = np.clip(pmf, 0.0, None) / total
        self.discretizer = discretizer
        self.label = label

    @classmethod
    def from_samples(
        cls,
        symbols: Sequence[int],
        n_symbols: int,
        discretizer: Optional[DelayDiscretizer] = None,
        label: str = "",
    ) -> "DelayDistribution":
        """Empirical distribution of 1-based symbol samples."""
        symbols = np.asarray(symbols, dtype=int)
        if len(symbols) == 0:
            raise ValueError("no samples")
        if np.any((symbols < 1) | (symbols > n_symbols)):
            raise ValueError(f"samples outside 1..{n_symbols}")
        counts = np.bincount(symbols - 1, minlength=n_symbols).astype(float)
        return cls(counts, discretizer=discretizer, label=label)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def n_symbols(self) -> int:
        """Number of delay symbols M."""
        return len(self.pmf)

    def cdf(self) -> np.ndarray:
        """CDF over symbols ``1..M`` (the paper's ``G``)."""
        return np.cumsum(self.pmf)

    def cdf_at(self, symbol: int) -> float:
        """``G(symbol)``; symbols above ``M`` saturate at 1, below 1 at 0."""
        if symbol < 1:
            return 0.0
        if symbol >= self.n_symbols:
            return 1.0
        return float(self.cdf()[symbol - 1])

    def pmf_at(self, symbol: int) -> float:
        """Probability mass at ``symbol`` (0 outside ``1..M``)."""
        if not 1 <= symbol <= self.n_symbols:
            return 0.0
        return float(self.pmf[symbol - 1])

    def min_symbol_with_mass(self, threshold: float = 0.0) -> int:
        """Smallest symbol ``m`` with ``G(m) > threshold`` — the paper's ``d*``.

        With ``threshold=0`` this is the support minimum (SDCL-Test);
        with ``threshold=β0`` it is the weak-test variant (but note the
        WDCL-Test uses ``G(m) >= β0``; see :meth:`min_symbol_with_cdf`).
        """
        cdf = self.cdf()
        above = np.flatnonzero(cdf > threshold)
        if above.size == 0:
            return self.n_symbols
        return int(above[0] + 1)

    def min_symbol_with_cdf(self, level: float) -> int:
        """Smallest symbol ``m`` with ``G(m) >= level`` (WDCL's ``d*``)."""
        cdf = self.cdf()
        above = np.flatnonzero(cdf >= level - 1e-12)
        if above.size == 0:
            return self.n_symbols
        return int(above[0] + 1)

    def mean_symbol(self) -> float:
        """Expected delay symbol under the PMF."""
        return float(np.dot(np.arange(1, self.n_symbols + 1), self.pmf))

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def total_variation(self, other: "DelayDistribution") -> float:
        """Total-variation distance to another distribution (same M)."""
        if other.n_symbols != self.n_symbols:
            raise ValueError("distributions have different symbol counts")
        return float(0.5 * np.abs(self.pmf - other.pmf).sum())

    def wasserstein(self, other: "DelayDistribution") -> float:
        """W1 distance in *symbol* units (sum of absolute CDF gaps).

        Moving one unit of mass one bin costs 1 — unlike total variation,
        a population straddling a bin edge barely registers, so this is
        the right closeness measure for comparing estimators on
        discretized delays.
        """
        if other.n_symbols != self.n_symbols:
            raise ValueError("distributions have different symbol counts")
        return float(np.abs(self.cdf() - other.cdf()).sum())

    def quantile_symbol(self, q: float) -> int:
        """Smallest symbol whose CDF reaches ``q``."""
        if not 0 < q <= 1:
            raise ValueError(f"quantile must lie in (0, 1], got {q}")
        return self.min_symbol_with_cdf(q)

    # ------------------------------------------------------------------
    # Unit conversion
    # ------------------------------------------------------------------
    def seconds_upper_edge(self, symbol: int) -> float:
        """Upper bin edge of ``symbol`` in queuing-delay seconds."""
        if self.discretizer is None:
            raise ValueError("no discretizer attached; symbolic units only")
        return self.discretizer.queuing_upper_edge(symbol)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = f"DelayDistribution({self.label or 'unlabelled'}, M={self.n_symbols}"
        return head + ", pmf=" + np.array2string(self.pmf, precision=3) + ")"
