"""Pinpointing the dominant congested link (the paper's future work).

Section VII of the paper leaves open "how to pinpoint a dominant
congested link after identifying such a link exists".  This module
implements the natural extension: probe path *prefixes* (in practice,
TTL-limited probes toward successive routers; in the simulator, prefix
projections of the ghost-probe records) and locate the hop at which the
end-to-end loss/delay signature first appears.

Method
------
For each prefix length ``k``:

1. compute the prefix loss rate; the dominant link is the first hop
   whose inclusion raises the prefix loss rate to (essentially) the
   end-to-end loss rate — under the DCL hypothesis, at least ``1 - β0``
   of the losses happen there;
2. confirm with the model: run the identification pipeline on the first
   prefix containing that hop; it must accept a dominant link, and the
   bound on its maximum queuing delay must agree with the end-to-end
   bound (the dominant queue is *inside* the prefix, so the inferred
   ``d*`` converts to the same seconds value).

Both signals are returned so callers can see agreement or tension.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.identify import IdentificationReport, IdentifyConfig, identify
from repro.netsim.trace import ProbeTrace

__all__ = ["PrefixDiagnostics", "PinpointReport", "pinpoint_dominant_link"]


class PrefixDiagnostics:
    """Per-prefix measurements driving the localisation."""

    def __init__(self, n_hops: int, link_name: str, loss_rate: float):
        self.n_hops = int(n_hops)
        self.link_name = link_name
        self.loss_rate = float(loss_rate)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrefixDiagnostics(hops={self.n_hops}, up to {self.link_name}, "
            f"loss={self.loss_rate:.3%})"
        )


class PinpointReport:
    """Where the dominant congested link sits, with the evidence.

    Attributes
    ----------
    located_link:
        Name of the link charged with the dominant loss share, or
        ``None`` when no single hop accounts for the required share
        (consistent with "no dominant congested link").
    hop_index:
        0-based index of that link along the path.
    prefixes:
        Per-prefix loss diagnostics.
    confirmation:
        Identification report on the shortest prefix containing the
        located link (``None`` when nothing was located).
    """

    def __init__(
        self,
        located_link: Optional[str],
        hop_index: Optional[int],
        prefixes: List[PrefixDiagnostics],
        confirmation: Optional[IdentificationReport],
        loss_share: float,
    ):
        self.located_link = located_link
        self.hop_index = hop_index
        self.prefixes = prefixes
        self.confirmation = confirmation
        self.loss_share = float(loss_share)

    @property
    def located(self) -> bool:
        """Whether a dominant link was located."""
        return self.located_link is not None

    def summary(self) -> str:
        """Prefix loss profile plus the located link, if any."""
        lines = ["prefix loss profile:"]
        for diag in self.prefixes:
            lines.append(
                f"  through {diag.link_name:<16} loss={diag.loss_rate:7.3%}"
            )
        if self.located:
            lines.append(
                f"located dominant congested link: {self.located_link} "
                f"(hop {self.hop_index}, {self.loss_share:.1%} of losses)"
            )
            if self.confirmation is not None:
                lines.append(
                    "prefix identification: "
                    + ("accepts" if self.confirmation.dominant_link_exists
                       else "rejects")
                    + " a dominant congested link"
                )
        else:
            lines.append("no single link carries a dominant loss share")
        return "\n".join(lines)


def pinpoint_dominant_link(
    trace: ProbeTrace,
    config: Optional[IdentifyConfig] = None,
    min_share: Optional[float] = None,
    confirm: bool = True,
) -> PinpointReport:
    """Locate the dominant congested link from prefix observations.

    Parameters
    ----------
    trace:
        A periodic probe trace (prefix projections come from its per-hop
        records; with real TTL-limited probing, each prefix would be its
        own measured stream).
    config:
        Identification configuration for the confirmation step; its
        ``beta0`` also sets the default loss-share requirement.
    min_share:
        Minimum fraction of end-to-end losses one hop must carry to be
        declared dominant; defaults to ``1 - beta0``.
    confirm:
        Run the model-based pipeline on the located prefix (skippable
        when only the loss profile is wanted).
    """
    config = config or IdentifyConfig()
    if min_share is None:
        min_share = 1.0 - config.beta0
    n_links = len(trace.link_names)
    end_to_end_losses = int(trace.lost.sum())
    if end_to_end_losses == 0:
        raise ValueError("trace has no losses; nothing to pinpoint")

    prefixes = []
    previous_losses = 0
    located_hop: Optional[int] = None
    best_share = 0.0
    for k in range(1, n_links + 1):
        loss_hops = trace.loss_hops
        losses_in_prefix = int(((loss_hops >= 0) & (loss_hops < k)).sum())
        prefixes.append(
            PrefixDiagnostics(
                n_hops=k,
                link_name=trace.link_names[k - 1],
                loss_rate=losses_in_prefix / len(trace),
            )
        )
        hop_share = (losses_in_prefix - previous_losses) / end_to_end_losses
        if hop_share > best_share:
            best_share = hop_share
            if hop_share >= min_share:
                located_hop = k - 1
        previous_losses = losses_in_prefix

    if located_hop is None:
        return PinpointReport(None, None, prefixes, None, best_share)

    confirmation = None
    if confirm:
        prefix_obs = trace.prefix_observation(located_hop + 1)
        try:
            confirmation = identify(prefix_obs, config)
        except (ValueError, FloatingPointError):
            confirmation = None
    return PinpointReport(
        located_link=trace.link_names[located_hop],
        hop_index=located_hop,
        prefixes=prefixes,
        confirmation=confirmation,
        loss_share=best_share,
    )
