"""Virtual queuing delay distribution estimators (paper Section V).

Four ways to obtain ``G``, the distribution of the (discretized) virtual
queuing delay of lost probes:

* :func:`ground_truth_distribution` — read it off the simulator's
  virtual-probe records (the paper's "directly from ns" curves);
* :func:`losspair_distribution` — the empirical baseline (re-exported
  from :mod:`repro.core.losspair`);
* :func:`hmm_distribution` / :func:`mmhd_distribution` — the paper's
  model-based estimators: interpret losses as missing delay values, fit
  by EM, and read ``Ĝ`` from eq. (5).

:func:`observed_delay_distribution` gives the distribution of *observed*
(surviving-probe) delays — only for illustration (Fig. 5); the paper is
explicit that observed and virtual distributions differ dramatically.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.discretize import DelayDiscretizer
from repro.core.distributions import DelayDistribution
from repro.core.losspair import losspair_distribution
from repro.models.base import EMConfig, FittedModel
from repro.models.hmm import fit_hmm
from repro.models.mmhd import fit_mmhd
from repro.netsim.trace import PathObservation, ProbeTrace

__all__ = [
    "ground_truth_distribution",
    "observed_delay_distribution",
    "losspair_distribution",
    "hmm_distribution",
    "mmhd_distribution",
]


def ground_truth_distribution(
    trace: ProbeTrace,
    discretizer: DelayDiscretizer,
) -> DelayDistribution:
    """``G`` from the simulator's own virtual-probe records.

    Lost probes' end-end virtual delays (base + per-hop queuing, with the
    loss hop contributing its discipline's loss delay) are symbolized with
    the same discretizer as every other estimator.
    """
    lost = trace.lost
    if not lost.any():
        raise ValueError("trace has no losses; virtual delay of lost probes empty")
    virtual_delays = trace.base_delay + trace.virtual_queuing_delays[lost]
    symbols = discretizer.symbols_of(virtual_delays)
    return DelayDistribution.from_samples(
        symbols, discretizer.n_symbols, discretizer=discretizer, label="ns virtual"
    )


def observed_delay_distribution(
    trace: ProbeTrace,
    discretizer: DelayDiscretizer,
) -> DelayDistribution:
    """Distribution of surviving probes' observed delays (Fig. 5 contrast)."""
    observation = trace.observation()
    symbols = discretizer.symbols_of(observation.observed)
    return DelayDistribution.from_samples(
        symbols, discretizer.n_symbols, discretizer=discretizer, label="observed"
    )


def hmm_distribution(
    observation: PathObservation,
    discretizer: DelayDiscretizer,
    n_hidden: int = 2,
    config: Optional[EMConfig] = None,
) -> Tuple[DelayDistribution, FittedModel]:
    """Fit the HMM estimator; returns ``(Ĝ, fitted_model)``."""
    seq = discretizer.observation_sequence(observation)
    fitted = fit_hmm(seq, n_hidden=n_hidden, config=config)
    distribution = DelayDistribution(
        fitted.virtual_delay_pmf,
        discretizer=discretizer,
        label=f"HMM N={n_hidden}",
    )
    return distribution, fitted


def mmhd_distribution(
    observation: PathObservation,
    discretizer: DelayDiscretizer,
    n_hidden: int = 2,
    config: Optional[EMConfig] = None,
) -> Tuple[DelayDistribution, FittedModel]:
    """Fit the MMHD estimator; returns ``(Ĝ, fitted_model)``."""
    seq = discretizer.observation_sequence(observation)
    fitted = fit_mmhd(seq, n_hidden=n_hidden, config=config)
    distribution = DelayDistribution(
        fitted.virtual_delay_pmf,
        discretizer=discretizer,
        label=f"MMHD N={n_hidden}",
    )
    return distribution, fitted
