"""The loss-pair baseline (Liu & Crovella 2001).

A *loss pair* is two back-to-back probes of which exactly one is lost.
Assuming both probes met the same queue state, the surviving probe's delay
stands in for the lost probe's virtual delay.  The paper compares its
model-based estimator against this baseline and shows loss pairs degrade
when links other than the dominant one contribute queuing (Table III:
up to 51 ms error vs 5 ms for MMHD).

Two consumers:

* :func:`losspair_distribution` — a virtual-delay distribution estimate
  to feed the same hypothesis tests;
* :func:`losspair_max_queuing_delay` — the Liu-Crovella style estimate of
  the dominant link's maximum queuing delay (the dominant mode of the
  companion-delay histogram).
"""

from __future__ import annotations

import numpy as np

from repro.core.discretize import DelayDiscretizer
from repro.core.distributions import DelayDistribution
from repro.netsim.trace import LossPairTrace

__all__ = ["losspair_distribution", "losspair_max_queuing_delay"]


def losspair_distribution(
    trace: LossPairTrace,
    discretizer: DelayDiscretizer,
) -> DelayDistribution:
    """Virtual-delay distribution from loss-pair companions.

    Companion one-way delays (base + queuing) are symbolized with the same
    discretizer used by the model-based estimators, so results compare
    directly.
    """
    queuing = trace.loss_pair_delays()
    if queuing.size == 0:
        raise ValueError("no loss pairs observed; cannot build a distribution")
    delays = trace.base_delay + queuing
    symbols = discretizer.symbols_of(delays)
    return DelayDistribution.from_samples(
        symbols, discretizer.n_symbols, discretizer=discretizer, label="loss-pair"
    )


def losspair_max_queuing_delay(
    trace: LossPairTrace,
    bin_width: float = 0.002,
    min_samples: int = 3,
) -> float:
    """Estimate the dominant link's ``Q_k`` from loss-pair companions.

    Histogram the companion *queuing* delays at ``bin_width`` resolution
    and return the upper edge of the dominant mode — the loss-pair
    analogue of "the queue was full when the companion passed".

    Raises ``ValueError`` with fewer than ``min_samples`` loss pairs (a
    couple of pairs say nothing about the mode).
    """
    queuing = trace.loss_pair_delays()
    if queuing.size < min_samples:
        raise ValueError(
            f"only {queuing.size} loss pairs; need at least {min_samples}"
        )
    if bin_width <= 0:
        raise ValueError(f"bin_width must be positive, got {bin_width}")
    edges = np.arange(0.0, queuing.max() + 2 * bin_width, bin_width)
    counts, edges = np.histogram(queuing, bins=edges)
    mode = int(np.argmax(counts))
    return float(edges[mode + 1])
