"""Online EM: warm-started per-window fits with cold-restart fallback.

A batch fit spends most of its EM iterations travelling from a random
initialisation to the neighbourhood of the optimum.  Consecutive sliding
windows of a (locally) stationary probe stream share most of their data,
so the previous window's fitted parameters land the new window's EM a few
iterations from convergence — an order of magnitude fewer E-passes than a
cold multi-restart fit.

:func:`streaming_fit` implements that policy:

* with no usable warm state (first window, shape mismatch) it delegates
  to the batch fitters (:func:`repro.models.mmhd.fit_mmhd` /
  :func:`repro.models.hmm.fit_hmm`) with their full random-restart
  machinery;
* with a warm state it runs plain EM from those parameters (no
  loss-channel freeze, no restarts) and returns as soon as the parameter
  change drops below tolerance;
* it falls back to the cold path whenever the warm trajectory collapses:
  a zero-likelihood :class:`FloatingPointError`, a non-finite
  log-likelihood, or a non-monotone likelihood trail (EM is monotone, so
  a real decrease signals numerical degeneracy of the inherited
  parameters).

When ``EMConfig.backend`` resolves to the batched E-step engine
(:mod:`repro.models.batched` — the default at streaming-scale state
widths), the warm-vs-cold policy runs *hedged*: the warm row and the
cold restart rows share one batched EM, so a healthy warm trajectory
still returns after its few iterations (the cold rows are abandoned),
while a collapsing one falls back to cold restarts that are already
part-way converged instead of starting from scratch — the fallback no
longer doubles window latency.  The accept/fallback criteria and the
returned :class:`StreamingFitResult` are identical to the sequential
policy.

At fleet scale the hedging batches *across windows* too:
:func:`fused_streaming_fits` stacks the warm/cold rows of many windows —
different paths, different sequence lengths — into one ragged mega-batch
(:func:`repro.models.batched.run_hedged_fits`), which is what the
scheduler's fused drain mode runs.  Each window's result stays
bit-identical to its solo :func:`streaming_fit`.

The warm state itself (:class:`WarmState`) is a plain bundle of parameter
arrays, picklable so the multi-path scheduler can round-trip it through
worker processes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.models.base import (
    EMConfig,
    ObservationSequence,
    SymbolIndex,
    max_param_change,
    require_losses,
)
from repro.models.hmm import FittedHMM, HiddenMarkovModel, fit_hmm
from repro.models.mmhd import FittedMMHD, MarkovModelHiddenDimension, fit_mmhd

_LOG = obs.get_logger(__name__)

__all__ = [
    "WarmState",
    "StreamingFitResult",
    "streaming_fit",
    "fused_streaming_fits",
]

#: Allowed decrease of the EM log-likelihood trail before the warm
#: trajectory is declared collapsed, as ``ABS + REL * |loglik|``.  EM is
#: monotone in its objective, but the M-step's Beta loss prior
#: (:class:`EMConfig.loss_prior_losses` / ``loss_prior_observations``)
#: means that objective is the *penalized* likelihood: the raw trail can
#: dip by a fraction of a nat near convergence.  Genuine degeneracy of
#: inherited parameters loses tens of nats (or goes non-finite), so a
#: sub-nat allowance separates the two cleanly.
_MONOTONE_SLACK_ABS = 0.5
_MONOTONE_SLACK_REL = 1e-4


class WarmState:
    """Picklable parameter snapshot carried from one window to the next."""

    __slots__ = ("kind", "n_symbols", "n_hidden", "params")

    def __init__(self, kind: str, n_symbols: int, n_hidden: int, params: dict):
        if kind not in ("mmhd", "hmm"):
            raise ValueError(f"kind must be 'mmhd' or 'hmm', got {kind!r}")
        self.kind = kind
        self.n_symbols = int(n_symbols)
        self.n_hidden = int(n_hidden)
        self.params = params

    @classmethod
    def from_model(cls, model) -> "WarmState":
        """Snapshot a fitted model's parameters."""
        if isinstance(model, MarkovModelHiddenDimension):
            return cls(
                "mmhd",
                model.n_symbols,
                model.n_hidden,
                {
                    "pi": model.pi.copy(),
                    "transition": model.transition.copy(),
                    "loss_given_symbol": model.loss_given_symbol.copy(),
                },
            )
        if isinstance(model, HiddenMarkovModel):
            return cls(
                "hmm",
                model.n_symbols,
                model.n_hidden,
                {
                    "pi": model.pi.copy(),
                    "transition": model.transition.copy(),
                    "emission": model.emission.copy(),
                    "loss_given_symbol": model.loss_given_symbol.copy(),
                },
            )
        raise TypeError(f"cannot snapshot {type(model).__name__}")

    def build_model(self):
        """Reconstruct the model object from the snapshot."""
        p = self.params
        if self.kind == "mmhd":
            return MarkovModelHiddenDimension(
                p["pi"], p["transition"], p["loss_given_symbol"], self.n_symbols
            )
        return HiddenMarkovModel(
            p["pi"], p["transition"], p["emission"], p["loss_given_symbol"]
        )

    def matches(self, n_symbols: int, n_hidden: int, kind: str) -> bool:
        """Whether this snapshot can seed a fit of the given shape."""
        return (
            self.kind == kind
            and self.n_symbols == int(n_symbols)
            and self.n_hidden == int(n_hidden)
        )


class StreamingFitResult:
    """One window's fit plus how it was obtained.

    Attributes
    ----------
    fitted:
        A :class:`FittedMMHD` / :class:`FittedHMM` — same surface the
        batch fitters return.
    warm_used:
        ``True`` when the returned fit came from the warm trajectory.
    fallback_reason:
        Why the warm start was abandoned (``None`` when it was not
        attempted or succeeded): ``"zero-likelihood"``,
        ``"non-finite-loglik"``, or ``"non-monotone"``.
    """

    __slots__ = ("fitted", "warm_used", "fallback_reason")

    def __init__(self, fitted, warm_used: bool, fallback_reason: Optional[str]):
        self.fitted = fitted
        self.warm_used = bool(warm_used)
        self.fallback_reason = fallback_reason

    def warm_state(self) -> WarmState:
        """Snapshot for the next window of the same path."""
        return WarmState.from_model(self.fitted.model)


def _final_stats(model, index: SymbolIndex, config: EMConfig):
    """One E-pass returning ``(loglik, loss_symbol_mass)``."""
    if isinstance(model, MarkovModelHiddenDimension):
        stats = model._estep(index, fast=config.fast_path)
        return stats.loglik, stats.loss_mass
    stats = model._estep(index)
    return stats.loglik, stats.joint_loss.sum(axis=0)


def _warm_em(
    model,
    seq: ObservationSequence,
    config: EMConfig,
):
    """EM from given parameters; returns a fitted-model object.

    Raises :class:`FloatingPointError` on zero likelihood; likelihood
    collapse along the trail is detected by the caller from the returned
    ``log_likelihoods``.
    """
    index = SymbolIndex(seq)
    prior = (config.loss_prior_losses, config.loss_prior_observations)
    is_mmhd = isinstance(model, MarkovModelHiddenDimension)
    logliks: List[float] = []
    converged = False
    for _ in range(config.max_iter):
        if is_mmhd:
            stats = model._estep(index, fast=config.fast_path)
        else:
            stats = model._estep(index)
        new_model = model._maximize(stats, config.min_prob, prior)
        logliks.append(stats.loglik)
        if max_param_change(model.parameters(), new_model.parameters()) < config.tol:
            model = new_model
            converged = True
            break
        model = new_model
    loglik, loss_mass = _final_stats(model, index, config)
    logliks.append(loglik)
    cls = FittedMMHD if is_mmhd else FittedHMM
    return cls(
        model=model,
        virtual_delay_pmf=loss_mass / loss_mass.sum(),
        log_likelihoods=logliks,
        converged=converged,
        n_iter=len(logliks) - 1,
    )


def _trail_collapsed(logliks: List[float]) -> Optional[str]:
    trail = np.asarray(logliks, dtype=float)
    if not np.all(np.isfinite(trail)):
        return "non-finite-loglik"
    slack = _MONOTONE_SLACK_ABS + _MONOTONE_SLACK_REL * np.abs(trail[:-1])
    if np.any(np.diff(trail) < -slack):
        return "non-monotone"
    return None


def _cold_fit(seq: ObservationSequence, n_hidden: int, config: EMConfig, kind: str):
    fit = fit_mmhd if kind == "mmhd" else fit_hmm
    return fit(seq, n_hidden=n_hidden, config=config)


def _record(kind: str, result: "StreamingFitResult") -> "StreamingFitResult":
    """Telemetry for one finished window fit (warm-rate and fallbacks)."""
    if result.fallback_reason is not None:
        _LOG.info("warm start abandoned (%s); cold refit used",
                  result.fallback_reason)
    if not obs.is_enabled():
        return result
    obs.inc("repro_streaming_fits_total", 1.0,
            mode="warm" if result.warm_used else "cold")
    if result.fallback_reason is not None:
        obs.inc("repro_streaming_fallbacks_total", 1.0,
                reason=result.fallback_reason)
    obs.emit(
        "streaming.fit",
        model=kind,
        warm_used=result.warm_used,
        fallback_reason=result.fallback_reason,
        n_iter=int(result.fitted.n_iter),
        loglik=round(float(result.fitted.log_likelihood), 6),
    )
    return result


def fused_streaming_fits(
    kind: str,
    seqs: List[ObservationSequence],
    n_hidden: int,
    configs: List[EMConfig],
    warm_states: List[WarmState],
) -> Tuple[List[StreamingFitResult], dict]:
    """Hedged warm fits for many windows in one ragged mega-batch.

    The fused counterpart of calling :func:`streaming_fit` once per
    window when every window has a usable warm state and the batched
    backend is active: the scheduler's fused drain stacks the windows of
    all paths sharing ``(kind, n_hidden, n_symbols)`` and runs a single
    batched recursion over the stack.  Per-window results (and the
    per-window ``streaming.fit`` telemetry) are bit-identical to the
    solo calls; ``info`` additionally reports the stack's occupancy and
    pad-waste accounting for the ``drain.round`` event.

    ``configs`` carry the per-window seeds (``seed`` is the only field
    allowed to differ); ``warm_states`` must all match the fit shape —
    the caller routes shape-mismatched or cold windows through the
    per-window path instead.
    """
    if kind not in ("mmhd", "hmm"):
        raise ValueError(f"kind must be 'mmhd' or 'hmm', got {kind!r}")
    if not (len(seqs) == len(configs) == len(warm_states)):
        raise ValueError("fused_streaming_fits needs one config and one "
                         "warm state per sequence")
    for seq, warm in zip(seqs, warm_states):
        require_losses(seq, "fused_streaming_fits")
        if not warm.matches(seq.n_symbols, n_hidden, kind):
            raise ValueError(
                "fused_streaming_fits windows must all have matching warm "
                "states; route cold windows through streaming_fit"
            )
    from repro.models import batched

    backend = batched.resolve_backend(
        configs[0] if configs else EMConfig(), kind, n_hidden,
        seqs[0].n_symbols if seqs else 0,
    )
    if backend not in batched.BATCH_BACKENDS:
        backend = "batched"
    with obs.span("streaming.fused_fit", model=kind, windows=len(seqs)):
        fits, info = batched.run_hedged_fits(
            kind, seqs, n_hidden, configs,
            [warm.build_model() for warm in warm_states],
            _trail_collapsed, backend=backend,
        )
        results = [
            _record(kind, StreamingFitResult(fitted, warm_used, reason))
            for fitted, warm_used, reason in fits
        ]
    return results, info


def streaming_fit(
    seq: ObservationSequence,
    n_hidden: int,
    config: Optional[EMConfig] = None,
    kind: str = "mmhd",
    warm: Optional[WarmState] = None,
) -> StreamingFitResult:
    """Fit one window, warm-starting from the previous window if possible.

    Parameters
    ----------
    seq:
        The window's symbolized observation sequence.
    warm:
        The previous window's :class:`WarmState`; ``None`` (or a
        shape-mismatched state) forces a cold multi-restart fit.

    Raises
    ------
    InsufficientLossError:
        When the window contains no lost probes (nothing to estimate);
        the streaming tracker catches this and skips the window.
    """
    if kind not in ("mmhd", "hmm"):
        raise ValueError(f"kind must be 'mmhd' or 'hmm', got {kind!r}")
    config = config or EMConfig()
    require_losses(seq, "streaming_fit")
    with obs.span("streaming.fit", model=kind):
        if warm is None or not warm.matches(seq.n_symbols, n_hidden, kind):
            return _record(kind, StreamingFitResult(
                _cold_fit(seq, n_hidden, config, kind), False, None
            ))
        from repro.models import batched

        backend = batched.resolve_backend(config, kind, n_hidden,
                                          seq.n_symbols)
        if backend in batched.BATCH_BACKENDS:
            fitted, warm_used, reason = batched.run_hedged_fit(
                kind, seq, n_hidden, config, warm.build_model(),
                _trail_collapsed, backend=backend,
            )
            return _record(kind, StreamingFitResult(fitted, warm_used, reason))
        try:
            fitted = _warm_em(warm.build_model(), seq, config)
        except FloatingPointError:
            return _record(kind, StreamingFitResult(
                _cold_fit(seq, n_hidden, config, kind), False,
                "zero-likelihood"
            ))
        collapse = _trail_collapsed(fitted.log_likelihoods)
        if collapse is not None:
            return _record(kind, StreamingFitResult(
                _cold_fit(seq, n_hidden, config, kind), False, collapse
            ))
        return _record(kind, StreamingFitResult(fitted, True, None))
