"""Sliding probe windows over an incremental record stream.

The batch pipeline consumes a whole :class:`~repro.netsim.trace
.PathObservation` at once; the streaming subsystem instead receives probe
records one at a time (from :func:`repro.measurement.traceio
.iter_observation`, a live socket, or the simulator) and re-materialises
bounded, overlapping windows for the per-window identification step.

:class:`SlidingWindowAssembler` is the only stateful piece: it keeps the
last ``window`` records and emits a :class:`ProbeWindow` every ``hop``
records, so memory stays O(window) no matter how long the monitor runs.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.netsim.trace import PathObservation
from repro.obs import trace as _trace

__all__ = ["ProbeWindow", "SlidingWindowAssembler", "iter_windows"]


class ProbeWindow:
    """One completed sliding window, ready for identification.

    Attributes
    ----------
    index:
        0-based window number (monotone per path).
    start, stop:
        Absolute probe indices ``[start, stop)`` covered by the window.
    observation:
        The window's records as the estimator-facing
        :class:`PathObservation`.
    assembled_at:
        ``time.monotonic()`` at window completion — the reference point
        for the assembly-to-verdict lag the monitor reports.
    trace:
        A :class:`repro.obs.trace.WindowTrace` stamped by the assembler
        when record-to-verdict tracing is on, ``None`` otherwise.  Rides
        next to the payload — never inside it — so verdict streams stay
        byte-identical with tracing on or off.
    """

    __slots__ = ("index", "start", "stop", "observation", "assembled_at",
                 "trace")

    def __init__(
        self, index: int, start: int, stop: int, observation: PathObservation,
        assembled_at: Optional[float] = None,
    ):
        self.index = int(index)
        self.start = int(start)
        self.stop = int(stop)
        self.observation = observation
        self.assembled_at = (
            time.monotonic() if assembled_at is None else float(assembled_at)
        )
        self.trace = None

    @property
    def time_range(self) -> Tuple[float, float]:
        """Send-time span ``(first, last)`` of the window's probes."""
        times = self.observation.send_times
        return float(times[0]), float(times[-1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProbeWindow(#{self.index}, probes [{self.start}, {self.stop}), "
            f"loss={self.observation.loss_rate:.2%})"
        )


class SlidingWindowAssembler:
    """Maintains overlapping sliding windows over a probe stream.

    Parameters
    ----------
    window:
        Probes per emitted window.
    hop:
        Probes between consecutive window starts; ``hop < window`` gives
        overlapping windows (the streaming default is 50% overlap so
        congestion transitions are never split across a window boundary),
        ``hop == window`` tiles the stream.
    """

    def __init__(self, window: int, hop: Optional[int] = None):
        if window < 2:
            raise ValueError(f"window must be >= 2 probes, got {window}")
        hop = window // 2 if hop is None else int(hop)
        if not 1 <= hop <= window:
            raise ValueError(f"hop must lie in 1..window, got {hop}")
        self.window = int(window)
        self.hop = hop
        self._send_times: Deque[float] = deque(maxlen=window)
        self._delays: Deque[float] = deque(maxlen=window)
        self._ingest_times: Deque[float] = deque(maxlen=window)
        self._last_stamp = 0.0
        self._n_pushed = 0
        self._n_windows = 0
        self._next_emit_at = window
        self._last_emit_stop = 0

    @property
    def n_pushed(self) -> int:
        """Total probes ingested so far."""
        return self._n_pushed

    @property
    def n_windows(self) -> int:
        """Windows emitted so far."""
        return self._n_windows

    def _emit(self) -> ProbeWindow:
        stop = self._n_pushed
        probe_window = ProbeWindow(
            index=self._n_windows,
            start=stop - len(self._send_times),
            stop=stop,
            observation=PathObservation(
                np.array(self._send_times), np.array(self._delays)
            ),
        )
        if _trace._TRACING and self._ingest_times:
            probe_window.trace = _trace.WindowTrace(
                ingest_first=self._ingest_times[0],
                ingest_last=self._ingest_times[-1],
                assembled_at=probe_window.assembled_at,
            )
        self._n_windows += 1
        self._next_emit_at = stop + self.hop
        self._last_emit_stop = stop
        return probe_window

    def push(self, send_time: float, delay: float) -> Optional[ProbeWindow]:
        """Ingest one probe record; returns a window when one completes.

        ``delay`` is the one-way delay in seconds, ``NaN`` for a lost
        probe — the same convention as :class:`PathObservation`.
        """
        self._send_times.append(float(send_time))
        self._delays.append(float(delay))
        self._n_pushed += 1
        if _trace._TRACING:
            # Ingest stamps come from the monotonic clock, clamped
            # non-decreasing — records arriving out of send-time order
            # (or duplicated) still trace monotonically.
            stamp = time.monotonic()
            if stamp < self._last_stamp:
                stamp = self._last_stamp
            self._last_stamp = stamp
            self._ingest_times.append(stamp)
        if self._n_pushed >= self._next_emit_at:
            return self._emit()
        return None

    def tail(self, min_size: int = 2) -> Optional[ProbeWindow]:
        """The not-yet-emitted trailing partial window, if large enough.

        Called at end-of-stream so a monitor can squeeze a final verdict
        out of the leftover probes; returns ``None`` when fewer than
        ``min_size`` new records arrived since the last emitted window
        (this also covers streams shorter than one full window, whose
        only window is the tail).
        """
        fresh = self._n_pushed - self._last_emit_stop
        if fresh < min_size or len(self._send_times) < min_size:
            return None
        return self._emit()


def iter_windows(
    records: Iterable[Tuple[float, float]],
    window: int,
    hop: Optional[int] = None,
) -> Iterator[ProbeWindow]:
    """Convenience: stream ``(send_time, delay)`` pairs into windows."""
    assembler = SlidingWindowAssembler(window, hop)
    for send_time, delay in records:
        completed = assembler.push(send_time, delay)
        if completed is not None:
            yield completed
