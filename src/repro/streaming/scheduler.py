"""Multi-path monitor: many concurrent path monitors over one worker pool.

A production monitor watches many paths at once.  Per-window fits are the
only expensive step, and windows of *different* paths are independent, so
the scheduler batches them through :func:`repro.parallel.parallel_map`
(the PR-1 process pool) while each path's windows stay strictly ordered —
warm-start chaining needs window ``n``'s parameters before window
``n + 1`` can fit.

Flow control is bounded at both ends:

* each path holds at most ``max_pending`` completed-but-unfitted windows;
  when ingestion outruns fitting the *oldest* pending window is dropped
  (a live monitor prefers recency) and counted in :attr:`MultiPathMonitor
  .dropped_windows`;
* emitted events land in a bounded ring (:attr:`MultiPathMonitor.events`)
  in addition to being returned from :meth:`drain`, so a slow consumer
  can always catch up on the recent history without unbounded growth.

Determinism: :func:`~repro.streaming.tracker.analyze_window` is a pure
function of ``(observation, warm state, config, window index)`` and
results are applied in path order, so event streams are identical for
every ``n_jobs``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Tuple

from repro import obs
from repro.parallel import parallel_map
from repro.streaming.online_em import WarmState
from repro.streaming.tracker import (
    MonitorConfig,
    VerdictEvent,
    VerdictTracker,
    WindowAnalysis,
    analyze_window,
)
from repro.streaming.windows import ProbeWindow, SlidingWindowAssembler

__all__ = ["MultiPathMonitor"]

_LOG = obs.get_logger(__name__)


def _analyze_task(task) -> WindowAnalysis:
    """Fit + test one window (parallel-map worker; must stay top-level)."""
    observation, warm, config, window_index = task
    return analyze_window(observation, warm, config, window_index=window_index)


class _PathState:
    """Everything one monitored path carries between drains."""

    __slots__ = ("assembler", "tracker", "warm", "pending", "dropped")

    def __init__(self, config: MonitorConfig, max_pending: int):
        self.assembler = SlidingWindowAssembler(config.window, config.hop)
        self.tracker = VerdictTracker(config.confirm, config.memory)
        self.warm: Optional[WarmState] = None
        self.pending: Deque[ProbeWindow] = deque(maxlen=max_pending)
        self.dropped = 0


class MultiPathMonitor:
    """Concurrent sliding-window monitors over many paths.

    Parameters
    ----------
    config:
        Shared :class:`MonitorConfig` for every path.
    n_jobs:
        Worker processes for the per-drain fit fan-out (``1`` = serial,
        ``-1`` = all CPUs).  Results are identical at any value.
    max_pending:
        Per-path backlog bound; overflow drops the oldest pending window.
    max_events:
        Size of the retained event ring (:attr:`events`).
    """

    def __init__(
        self,
        config: Optional[MonitorConfig] = None,
        n_jobs: int = 1,
        max_pending: int = 8,
        max_events: int = 1024,
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.config = config or MonitorConfig()
        self.n_jobs = n_jobs
        self.max_pending = int(max_pending)
        self.events: Deque[VerdictEvent] = deque(maxlen=max_events)
        self._paths: Dict[str, _PathState] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _state(self, path: str) -> _PathState:
        state = self._paths.get(path)
        if state is None:
            state = _PathState(self.config, self.max_pending)
            self._paths[path] = state
        return state

    def ingest(self, path: str, send_time: float, delay: float) -> None:
        """Push one probe record for one path (cheap; never fits)."""
        state = self._state(path)
        probe_window = state.assembler.push(send_time, delay)
        if probe_window is not None:
            if len(state.pending) == state.pending.maxlen:
                state.dropped += 1
                _LOG.warning(
                    "path %r backlog full (max_pending=%d); dropping oldest "
                    "pending window %d",
                    path, self.max_pending, state.pending[0].index,
                )
                obs.inc("repro_windows_dropped_total")
            state.pending.append(probe_window)
            obs.set_gauge("repro_pending_windows", self.n_pending)

    @property
    def n_pending(self) -> int:
        """Completed windows waiting for a :meth:`drain`."""
        return sum(len(s.pending) for s in self._paths.values())

    @property
    def dropped_windows(self) -> Dict[str, int]:
        """Per-path count of windows dropped to backlog pressure."""
        return {path: s.dropped for path, s in self._paths.items()
                if s.dropped}

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def _drain_round(self) -> List[VerdictEvent]:
        """Fit at most one pending window per path, in parallel."""
        batch: List[Tuple[str, ProbeWindow]] = []
        for path, state in self._paths.items():
            if state.pending:
                batch.append((path, state.pending.popleft()))
        if not batch:
            return []
        tasks = [
            (pw.observation, self._paths[path].warm, self.config, pw.index)
            for path, pw in batch
        ]
        analyses = parallel_map(_analyze_task, tasks, n_jobs=self.n_jobs)
        events = []
        for (path, pw), analysis in zip(batch, analyses):
            state = self._paths[path]
            if analysis.warm_state is not None:
                state.warm = analysis.warm_state
            event = state.tracker.event_for(path, pw, analysis)
            self.events.append(event)
            events.append(event)
        obs.set_gauge("repro_pending_windows", self.n_pending)
        obs.heartbeat()  # a fitted round is pipeline progress
        return events

    def drain(self) -> List[VerdictEvent]:
        """Fit every pending window; returns the new events in order.

        Windows of different paths fit concurrently; a path with several
        pending windows takes one round per window so warm-start chaining
        stays sequential within the path.
        """
        events: List[VerdictEvent] = []
        while True:
            round_events = self._drain_round()
            if not round_events:
                return events
            events.extend(round_events)

    def finish(self) -> List[VerdictEvent]:
        """Flush trailing partial windows for every path, then drain."""
        for state in self._paths.values():
            tail = state.assembler.tail()
            if tail is not None:
                state.pending.append(tail)
        return self.drain()

    # ------------------------------------------------------------------
    # Convenience driver
    # ------------------------------------------------------------------
    def run_streams(
        self,
        streams: Mapping[str, Iterable[Tuple[float, float]]],
        drain_every: Optional[int] = None,
    ) -> List[VerdictEvent]:
        """Interleave several record streams and monitor them to the end.

        Pulls ``drain_every`` records (default: one hop) from each stream
        in round-robin, draining between bursts — the synchronous stand-in
        for feeds that arrive concurrently in a live deployment.
        """
        burst = drain_every or self.config.hop
        iterators = {path: iter(stream) for path, stream in streams.items()}
        events: List[VerdictEvent] = []
        while iterators:
            exhausted = []
            for path, iterator in iterators.items():
                for _ in range(burst):
                    try:
                        send_time, delay = next(iterator)
                    except StopIteration:
                        exhausted.append(path)
                        break
                    self.ingest(path, send_time, delay)
            for path in exhausted:
                del iterators[path]
            events.extend(self.drain())
        events.extend(self.finish())
        return events
