"""Multi-path monitor: many concurrent path monitors over one drain engine.

A production monitor watches many paths at once.  Per-window fits are the
only expensive step, and windows of *different* paths are independent, so
each drain round gathers one ready window per path and resolves them
together — through one of two engines:

* ``drain_mode="pool"`` fans the windows over
  :func:`repro.parallel.parallel_map` (the PR-1 process pool), one task
  per window;
* ``drain_mode="fused"`` stacks the warm fits of every window sharing
  ``(model kind, n_hidden, n_symbols)`` into one ragged mega-batch
  (:func:`repro.streaming.online_em.fused_streaming_fits`) and runs a
  single batched recursion per group — amortising the per-time-step
  Python dispatch across the whole fleet.  Windows the mega-batch cannot
  take (no usable warm state, skipped by the gate, or a sequential
  backend) fall back to the per-window path inside the same round.  When
  several groups form, they are sharded over the pool — groups, not
  windows, are the parallel unit.

``drain_mode="auto"`` (the default) picks ``"fused"`` exactly when the
batched E-step engine would be used for this config's state width, and
``"pool"`` otherwise.  Because both engines run the same per-window
kernel (:func:`repro.models.batched.run_hedged_fits` is the one-window
case of the fused fit), the emitted verdict-event stream is
byte-identical across every ``drain_mode`` and every ``n_jobs``.

Ordering guarantee: a :meth:`MultiPathMonitor.drain` resolves windows in
sub-rounds of one window per path; within a sub-round, paths go in
insertion order, and a path's own windows always resolve in window-index
order (warm-start chaining needs window ``n``'s parameters before window
``n + 1`` can fit).  A single :meth:`_drain_round` now chains up to
``max_pending`` consecutive sub-rounds, so one backlogged path no longer
serialises the drain into singleton rounds — the event order is the same
either way.

Flow control is bounded at both ends:

* each path holds at most ``max_pending`` completed-but-unfitted windows;
  when ingestion outruns fitting the *oldest* pending window is dropped
  (a live monitor prefers recency) and counted in :attr:`MultiPathMonitor
  .dropped_windows`;
* emitted events land in a bounded ring (:attr:`MultiPathMonitor.events`)
  in addition to being returned from :meth:`drain`, so a slow consumer
  can always catch up on the recent history without unbounded growth.

Determinism: :func:`~repro.streaming.tracker.analyze_window` is a pure
function of ``(observation, warm state, config, window index)`` and
results are applied in path order, so event streams are identical for
every ``n_jobs``.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Tuple

from repro import obs
from repro.models.telemetry import record_drain_round
from repro.parallel import parallel_map
from repro.streaming.online_em import WarmState, fused_streaming_fits
from repro.streaming.tracker import (
    MonitorConfig,
    VerdictEvent,
    VerdictTracker,
    WindowAnalysis,
    analyze_window,
    finish_window,
    prepare_window,
)
from repro.streaming.windows import ProbeWindow, SlidingWindowAssembler

__all__ = ["MultiPathMonitor", "DRAIN_MODES"]

_LOG = obs.get_logger(__name__)

#: Accepted ``drain_mode`` values (``"auto"`` resolves per config).
DRAIN_MODES = ("auto", "fused", "pool")


def _analyze_task(task) -> WindowAnalysis:
    """Fit + test one window (parallel-map worker; must stay top-level)."""
    observation, warm, config, window_index = task
    return analyze_window(observation, warm, config, window_index=window_index)


def _fused_group_task(task):
    """Mega-batch fit of one fused group (parallel-map worker; top-level).

    Returns ``(fit results, batch info)`` from
    :func:`~repro.streaming.online_em.fused_streaming_fits`.
    """
    kind, n_hidden, seqs, configs, warms = task
    return fused_streaming_fits(kind, seqs, n_hidden, configs, warms)


class _PathState:
    """Everything one monitored path carries between drains."""

    __slots__ = ("config", "assembler", "tracker", "warm", "pending",
                 "dropped")

    def __init__(self, config: MonitorConfig, max_pending: int):
        self.config = config
        self.assembler = SlidingWindowAssembler(config.window, config.hop)
        self.tracker = VerdictTracker(config.confirm, config.memory)
        self.warm: Optional[WarmState] = None
        self.pending: Deque[ProbeWindow] = deque(maxlen=max_pending)
        self.dropped = 0


class MultiPathMonitor:
    """Concurrent sliding-window monitors over many paths.

    Parameters
    ----------
    config:
        Shared :class:`MonitorConfig` for every path.
    n_jobs:
        Worker processes for the per-drain fit fan-out (``1`` = serial,
        ``-1`` = all CPUs).  Results are identical at any value.
    max_pending:
        Per-path backlog bound; overflow drops the oldest pending window.
    max_events:
        Size of the retained event ring (:attr:`events`).
    drain_mode:
        ``"fused"`` mega-batches each round's warm fits into one ragged
        batched recursion per ``(model, n_hidden, n_symbols)`` group;
        ``"pool"`` runs one pool task per window; ``"auto"`` (default)
        uses ``"fused"`` exactly when the batched E-step engine applies
        to this config.  Event streams are identical in every mode.
    """

    def __init__(
        self,
        config: Optional[MonitorConfig] = None,
        n_jobs: int = 1,
        max_pending: int = 8,
        max_events: int = 1024,
        drain_mode: str = "auto",
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if drain_mode not in DRAIN_MODES:
            raise ValueError(
                f"drain_mode must be one of {DRAIN_MODES}, got {drain_mode!r}"
            )
        self.config = config or MonitorConfig()
        self.n_jobs = n_jobs
        self.max_pending = int(max_pending)
        self.drain_mode = drain_mode
        self.events: Deque[VerdictEvent] = deque(maxlen=max_events)
        self._paths: Dict[str, _PathState] = {}
        self._n_pending = 0
        #: Accounting of the most recent non-empty :meth:`_drain_round`
        #: (mode, windows, groups, rows, pad_fraction, dur_s) — the
        #: fleet service surfaces it under ``GET /fleet``.
        self.last_drain: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _state(self, path: str) -> _PathState:
        state = self._paths.get(path)
        if state is None:
            state = _PathState(self.config, self.max_pending)
            self._paths[path] = state
        return state

    def add_path(self, path: str,
                 config: Optional[MonitorConfig] = None) -> None:
        """Explicitly register a path, optionally with its own config.

        Paths also auto-register on first :meth:`ingest` with the shared
        config; this entry point is for the fleet service's runtime
        registry, which supports per-path config overrides.  Per-path
        configs still fuse: windows group by ``(model, n_hidden,
        n_symbols)``, so only paths whose overrides change those keys
        split into separate mega-batches.
        """
        if path in self._paths:
            raise ValueError(f"path {path!r} is already monitored")
        self._paths[path] = _PathState(config or self.config,
                                       self.max_pending)

    def remove_path(self, path: str) -> int:
        """Drop one path and its backlog; returns the discarded windows.

        Removal is immediate and deterministic: pending windows of the
        path never resolve, its warm state and hysteresis history are
        discarded, and a later :meth:`add_path` of the same name starts
        from scratch (the service layer's generation counters keep late
        records of the old incarnation out).
        """
        state = self._paths.pop(path, None)
        if state is None:
            raise KeyError(f"path {path!r} is not monitored")
        discarded = len(state.pending)
        self._n_pending -= discarded
        obs.set_gauge("repro_pending_windows", self._n_pending)
        return discarded

    def has_path(self, path: str) -> bool:
        """Whether the path currently holds monitor state."""
        return path in self._paths

    def path_names(self) -> List[str]:
        """Monitored paths in insertion (drain) order."""
        return list(self._paths)

    def shed_oldest(self, n_windows: int) -> List[Tuple[str, int]]:
        """Drop up to ``n_windows`` oldest pending windows fleet-wide.

        The backpressure shed primitive: one round-robin pass order —
        paths in insertion order, each losing its oldest pending window
        before any path loses a second — so the shed set is a
        deterministic function of the backlog, never of wall-clock
        timing.  Returns the ``(path, window_index)`` pairs shed.
        """
        shed: List[Tuple[str, int]] = []
        while len(shed) < n_windows:
            progressed = False
            for path, state in self._paths.items():
                if len(shed) >= n_windows:
                    break
                if state.pending:
                    window = state.pending.popleft()
                    state.dropped += 1
                    self._n_pending -= 1
                    shed.append((path, window.index))
                    progressed = True
            if not progressed:
                break
        if shed:
            obs.set_gauge("repro_pending_windows", self._n_pending)
        return shed

    def path_hops(self) -> Dict[str, int]:
        """Current window stride of every path (for stride coarsening)."""
        return {path: state.assembler.hop
                for path, state in self._paths.items()}

    def path_windows(self) -> Dict[str, int]:
        """Window length of every path (the cap for stride coarsening)."""
        return {path: state.assembler.window
                for path, state in self._paths.items()}

    def set_path_hop(self, path: str, hop: int) -> None:
        """Change one path's window stride in place.

        Takes effect from the next emitted window (the assembler
        schedules window ``n + 1`` when it emits window ``n``); the
        coarsen backpressure policy uses this to trade verdict cadence
        for drain load without losing the overlap buffer.
        """
        state = self._paths[path]
        if not 1 <= hop <= state.assembler.window:
            raise ValueError(
                f"hop must lie in 1..{state.assembler.window}, got {hop}"
            )
        state.assembler.hop = int(hop)

    def ingest(self, path: str, send_time: float, delay: float) -> None:
        """Push one probe record for one path (cheap; never fits).

        O(1) per probe: the pending-window total is maintained
        incrementally rather than summed across paths, so per-probe cost
        stays flat at fleet scale.
        """
        state = self._state(path)
        probe_window = state.assembler.push(send_time, delay)
        if probe_window is not None:
            if len(state.pending) == state.pending.maxlen:
                state.dropped += 1
                _LOG.warning(
                    "path %r backlog full (max_pending=%d); dropping oldest "
                    "pending window %d",
                    path, self.max_pending, state.pending[0].index,
                )
                obs.inc("repro_windows_dropped_total")
            else:
                self._n_pending += 1
            state.pending.append(probe_window)
            obs.set_gauge("repro_pending_windows", self._n_pending)

    @property
    def n_pending(self) -> int:
        """Completed windows waiting for a :meth:`drain`."""
        return self._n_pending

    @property
    def pending_windows(self) -> Dict[str, int]:
        """Per-path count of completed windows awaiting a drain."""
        return {path: len(s.pending) for path, s in self._paths.items()}

    @property
    def dropped_windows(self) -> Dict[str, int]:
        """Per-path count of windows dropped to backlog pressure."""
        return {path: s.dropped for path, s in self._paths.items()
                if s.dropped}

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def _resolve_drain_mode(self) -> str:
        """The concrete engine this monitor's rounds run on."""
        if self.drain_mode != "auto":
            return self.drain_mode
        from repro.models.batched import BATCH_BACKENDS, resolve_backend

        backend = resolve_backend(
            self.config.em, self.config.model, self.config.n_hidden,
            self.config.n_symbols,
        )
        return "fused" if backend in BATCH_BACKENDS else "pool"

    def _take_round(self) -> List[Tuple[str, ProbeWindow]]:
        """Pop the oldest pending window of every backlogged path."""
        batch: List[Tuple[str, ProbeWindow]] = []
        for path, state in self._paths.items():
            if state.pending:
                batch.append((path, state.pending.popleft()))
        self._n_pending -= len(batch)
        if batch and any(pw.trace is not None for _, pw in batch):
            # Tracing on: the ready-queue wait ends here for every
            # window of the sub-round (they leave the queue together).
            now = time.monotonic()
            for _, pw in batch:
                if pw.trace is not None:
                    pw.trace.drain_started = now
        return batch

    def _fused_analyses(self, batch):
        """Resolve one sub-round's windows through the mega-batch engine.

        Windows are prepared (gate + discretize) in the parent, then
        partitioned: skips resolve immediately; windows without a usable
        warm state — or whose state width resolves to the sequential
        engine — take the same per-window path (and pool fan-out) the
        pool mode uses, so first/cold windows still parallelise; the
        rest stack into one ragged mega-batch per ``(kind, n_hidden,
        n_symbols)`` group.  Groups, not windows, shard over the pool.

        Returns ``(analyses, stats)`` with ``analyses`` in batch order.
        """
        from repro.models.batched import BATCH_BACKENDS, resolve_backend

        prepared = [
            prepare_window(pw.observation, self._paths[path].config, pw.index)
            for path, pw in batch
        ]
        analyses: List[Optional[WindowAnalysis]] = [None] * len(batch)
        pool_idx: List[int] = []
        groups: Dict[Tuple[str, int, int], List[int]] = {}
        for i, ((path, pw), prep) in enumerate(zip(batch, prepared)):
            if prep.skip is not None:
                analyses[i] = prep.skip
                continue
            state = self._paths[path]
            config = state.config
            warm = state.warm
            n_symbols = prep.seq.n_symbols
            if (
                warm is None
                or not warm.matches(n_symbols, config.n_hidden, config.model)
                or resolve_backend(prep.em, config.model, config.n_hidden,
                                   n_symbols) not in BATCH_BACKENDS
            ):
                pool_idx.append(i)
                continue
            groups.setdefault((config.model, config.n_hidden, n_symbols),
                              []).append(i)
        if pool_idx:
            tasks = [
                (batch[i][1].observation, self._paths[batch[i][0]].warm,
                 self._paths[batch[i][0]].config, batch[i][1].index)
                for i in pool_idx
            ]
            for i, analysis in zip(
                pool_idx, parallel_map(_analyze_task, tasks,
                                       n_jobs=self.n_jobs)
            ):
                analyses[i] = analysis
        group_items = list(groups.items())
        group_tasks = [
            (
                kind,
                n_hidden,
                [prepared[i].seq for i in idxs],
                [prepared[i].em for i in idxs],
                [self._paths[batch[i][0]].warm for i in idxs],
            )
            for (kind, n_hidden, _), idxs in group_items
        ]
        if len(group_tasks) > 1 and self.n_jobs != 1:
            outcomes = parallel_map(_fused_group_task, group_tasks,
                                    n_jobs=self.n_jobs)
        else:
            outcomes = [_fused_group_task(task) for task in group_tasks]
        stats = {"groups": len(group_tasks), "rows": 0, "slots": 0,
                 "padded": 0.0}
        for ((_, _, _), idxs), (results, info) in zip(group_items, outcomes):
            for i, result in zip(idxs, results):
                analyses[i] = finish_window(prepared[i], result,
                                            self._paths[batch[i][0]].config,
                                            window_index=batch[i][1].index)
            slots = info["rows"] * info["t_max"]
            stats["rows"] += info["rows"]
            stats["slots"] += slots
            stats["padded"] += info["pad_fraction"] * slots
        return analyses, stats

    def _fit_round(self, batch, mode: str):
        """Resolve one sub-round's windows; apply results in path order."""
        traces = [pw.trace for _, pw in batch if pw.trace is not None]
        if traces:
            # Windows resolved together share the batch's E-step span:
            # the per-window ``fit`` stage answers "how long was this
            # window inside the solver", not solver-seconds consumed.
            started = time.monotonic()
            for trace in traces:
                trace.fit_started = started
        if mode == "fused":
            analyses, stats = self._fused_analyses(batch)
        else:
            tasks = [
                (pw.observation, self._paths[path].warm,
                 self._paths[path].config, pw.index)
                for path, pw in batch
            ]
            analyses = parallel_map(_analyze_task, tasks, n_jobs=self.n_jobs)
            stats = {"groups": 0, "rows": 0, "slots": 0, "padded": 0.0}
        if traces:
            ended = time.monotonic()
            for trace in traces:
                trace.fit_ended = ended
        events = []
        for (path, pw), analysis in zip(batch, analyses):
            state = self._paths[path]
            if analysis.warm_state is not None:
                state.warm = analysis.warm_state
            event = state.tracker.event_for(path, pw, analysis)
            self.events.append(event)
            events.append(event)
        obs.set_gauge("repro_pending_windows", self._n_pending)
        obs.heartbeat()  # a fitted sub-round is pipeline progress
        return events, stats

    def _drain_round(self) -> List[VerdictEvent]:
        """Up to ``max_pending`` chained sub-rounds of one window per path.

        Sub-round ``k + 1`` sees the warm states sub-round ``k`` wrote,
        so a backlogged path's consecutive windows warm-chain within one
        round — in the exact order (and with the exact per-window
        results) that repeated single-window rounds would produce.
        """
        mode = self._resolve_drain_mode()
        started = time.perf_counter()
        events: List[VerdictEvent] = []
        totals = {"windows": 0, "groups": 0, "rows": 0, "slots": 0,
                  "padded": 0.0}
        for _ in range(self.max_pending):
            batch = self._take_round()
            if not batch:
                break
            sub_events, stats = self._fit_round(batch, mode)
            events.extend(sub_events)
            totals["windows"] += len(batch)
            for key in ("groups", "rows", "slots", "padded"):
                totals[key] += stats[key]
        if totals["windows"]:
            pad_fraction = (totals["padded"] / totals["slots"]
                            if totals["slots"] else 0.0)
            dur_s = time.perf_counter() - started
            self.last_drain = {
                "mode": mode,
                "windows": totals["windows"],
                "groups": totals["groups"],
                "rows": totals["rows"],
                "pad_fraction": round(pad_fraction, 6),
                "dur_s": round(dur_s, 6),
            }
            record_drain_round(
                mode,
                windows=totals["windows"],
                groups=totals["groups"],
                rows=totals["rows"],
                pad_fraction=pad_fraction,
                dur_s=dur_s,
            )
        return events

    def drain(self) -> List[VerdictEvent]:
        """Fit every pending window; returns the new events in order.

        Windows of different paths fit concurrently; a path with several
        pending windows resolves them oldest-first across chained
        sub-rounds so warm-start chaining stays sequential within the
        path (see the module docstring's ordering guarantee).
        """
        events: List[VerdictEvent] = []
        while True:
            round_events = self._drain_round()
            if not round_events:
                return events
            events.extend(round_events)

    def finish(self) -> List[VerdictEvent]:
        """Flush trailing partial windows for every path, then drain."""
        for state in self._paths.values():
            tail = state.assembler.tail()
            if tail is not None:
                if len(state.pending) < state.pending.maxlen:
                    self._n_pending += 1
                state.pending.append(tail)
        return self.drain()

    # ------------------------------------------------------------------
    # Convenience driver
    # ------------------------------------------------------------------
    def run_streams(
        self,
        streams: Mapping[str, Iterable[Tuple[float, float]]],
        drain_every: Optional[int] = None,
    ) -> List[VerdictEvent]:
        """Interleave several record streams and monitor them to the end.

        Pulls ``drain_every`` records (default: one hop) from each stream
        in round-robin, draining between bursts — the synchronous stand-in
        for feeds that arrive concurrently in a live deployment.
        """
        burst = drain_every or self.config.hop
        iterators = {path: iter(stream) for path, stream in streams.items()}
        events: List[VerdictEvent] = []
        while iterators:
            exhausted = []
            for path, iterator in iterators.items():
                for _ in range(burst):
                    try:
                        send_time, delay = next(iterator)
                    except StopIteration:
                        exhausted.append(path)
                        break
                    self.ingest(path, send_time, delay)
            for path in exhausted:
                del iterators[path]
            events.extend(self.drain())
        events.extend(self.finish())
        return events
