"""Per-window verdict tracking: analysis, hysteresis, and path monitors.

Each completed sliding window runs the same procedure as the batch
pipeline — discretize, fit (warm-started; :mod:`repro.streaming
.online_em`), run the SDCL/WDCL tests, bound ``Q_k`` — but a live monitor
must not flap its verdict every time one noisy window lands on the other
side of a test threshold.  :class:`VerdictTracker` therefore applies
K-of-N hysteresis: the *stable* verdict only switches to a value that
appeared in at least ``confirm`` of the last ``memory`` analysed windows.

Windows the method is not valid for are skipped rather than fatal:

* loss-free windows raise :class:`~repro.models.base
  .InsufficientLossError` inside the fit and become ``status="skipped"``,
  ``reason="no-losses"`` events;
* windows failing the :func:`~repro.measurement.stationarity
  .observation_is_stationary` gate are skipped as ``nonstationary``;
* degenerate windows (no surviving probes, zero queuing range) are
  skipped as ``degenerate``.

Skipped windows emit events (so downstream consumers see the monitor is
alive) but neither update the hysteresis state nor the warm-start
parameters.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, List, Optional

import numpy as np

from repro import obs
from repro.core.discretize import DelayDiscretizer
from repro.core.distributions import DelayDistribution
from repro.core.identify import (
    IdentifyConfig,
    evaluate_distribution,
    verdict_from_tests,
)
from repro.measurement.stationarity import observation_is_stationary
from repro.models.base import EMConfig, InsufficientLossError
from repro.models.diagnostics import compute_window_diagnostics
from repro.netsim.trace import PathObservation
from repro.obs import health as health_mod
from repro.obs.profiling import profile_phase
from repro.parallel import STREAM_MONITOR, task_seed
from repro.streaming.online_em import WarmState, streaming_fit
from repro.streaming.windows import ProbeWindow, SlidingWindowAssembler

__all__ = [
    "MonitorConfig",
    "WindowAnalysis",
    "VerdictEvent",
    "VerdictTracker",
    "PathMonitor",
    "PreparedWindow",
    "analyze_window",
    "prepare_window",
    "fit_window",
    "finish_window",
]

_LOG = obs.get_logger(__name__)


class MonitorConfig:
    """Knobs of the streaming monitor.

    Defaults target the paper's probing rate (20 ms period, 50 probes/s):
    a 3000-probe window is one minute of path state, hopped by half a
    window so congestion transitions are never split across a boundary,
    and 3-of-5 hysteresis means a verdict change needs ~1.5 min of
    consistent evidence before it is surfaced.

    Parameters
    ----------
    window, hop:
        Sliding-window geometry in probes (``hop`` defaults to
        ``window // 2``).
    confirm, memory:
        K-of-N hysteresis: the stable verdict switches to a value seen in
        at least ``confirm`` of the last ``memory`` analysed windows.
    gate_stationarity:
        Skip windows that fail the stationarity bands (the identification
        method assumes stationarity over the analysed record).
    """

    def __init__(
        self,
        window: int = 3000,
        hop: Optional[int] = None,
        n_symbols: int = 5,
        n_hidden: int = 2,
        model: str = "mmhd",
        beta0: float = 0.06,
        beta1: float = 0.0,
        tolerance: float = 1e-3,
        confirm: int = 3,
        memory: int = 5,
        gate_stationarity: bool = True,
        stationarity_window: Optional[int] = None,
        delay_tolerance: float = 0.2,
        loss_tolerance: float = 0.05,
        em: Optional[EMConfig] = None,
    ):
        if model not in ("mmhd", "hmm"):
            raise ValueError(f"model must be 'mmhd' or 'hmm', got {model!r}")
        if confirm < 1 or memory < confirm:
            raise ValueError(
                f"need 1 <= confirm <= memory, got confirm={confirm}, "
                f"memory={memory}"
            )
        self.window = int(window)
        self.hop = int(hop) if hop is not None else self.window // 2
        self.n_symbols = int(n_symbols)
        self.n_hidden = int(n_hidden)
        self.model = model
        self.beta0 = float(beta0)
        self.beta1 = float(beta1)
        self.tolerance = float(tolerance)
        self.confirm = int(confirm)
        self.memory = int(memory)
        self.gate_stationarity = bool(gate_stationarity)
        self.stationarity_window = stationarity_window
        self.delay_tolerance = float(delay_tolerance)
        self.loss_tolerance = float(loss_tolerance)
        self.em = em or EMConfig()

    def identify_config(self) -> IdentifyConfig:
        """The equivalent batch-pipeline configuration."""
        return IdentifyConfig(
            n_symbols=self.n_symbols,
            n_hidden=self.n_hidden,
            model=self.model,
            beta0=self.beta0,
            beta1=self.beta1,
            tolerance=self.tolerance,
            em=self.em,
        )


class WindowAnalysis:
    """Everything one window's analysis produced (picklable)."""

    __slots__ = (
        "status",
        "reason",
        "verdict",
        "g_pmf",
        "d_star",
        "bound_seconds",
        "loss_rate",
        "log_likelihood",
        "n_iter",
        "warm_used",
        "fallback_reason",
        "warm_state",
        "diagnostics",
    )

    def __init__(
        self,
        status: str,
        reason: Optional[str] = None,
        verdict: Optional[str] = None,
        g_pmf: Optional[np.ndarray] = None,
        d_star: Optional[int] = None,
        bound_seconds: Optional[float] = None,
        loss_rate: float = 0.0,
        log_likelihood: Optional[float] = None,
        n_iter: Optional[int] = None,
        warm_used: bool = False,
        fallback_reason: Optional[str] = None,
        warm_state: Optional[WarmState] = None,
        diagnostics=None,
    ):
        self.status = status
        self.reason = reason
        self.verdict = verdict
        self.g_pmf = g_pmf
        self.d_star = d_star
        self.bound_seconds = bound_seconds
        self.loss_rate = float(loss_rate)
        self.log_likelihood = log_likelihood
        self.n_iter = n_iter
        self.warm_used = bool(warm_used)
        self.fallback_reason = fallback_reason
        self.warm_state = warm_state
        # Goodness-of-fit byproducts (repro.models.diagnostics), present
        # only when model-health observability is enabled; rides next to
        # the payload like PR 8's traces, never inside to_dict().
        self.diagnostics = diagnostics

    @property
    def analyzed(self) -> bool:
        """Whether the window produced a verdict (vs being skipped)."""
        return self.status == "ok"


class PreparedWindow:
    """Stage-1 output of a window analysis: gated and discretized.

    Either ``skip`` carries the terminal :class:`WindowAnalysis` (the
    window never reaches the fit stage) or ``seq``/``discretizer``/``em``
    are populated and the window is ready for :func:`fit_window` — or for
    the scheduler's fused drain, which stacks many prepared windows'
    fits into one ragged mega-batch.
    """

    __slots__ = ("skip", "seq", "discretizer", "em", "loss_rate")

    def __init__(self, skip=None, seq=None, discretizer=None, em=None,
                 loss_rate: float = 0.0):
        self.skip: Optional[WindowAnalysis] = skip
        self.seq = seq
        self.discretizer = discretizer
        self.em: Optional[EMConfig] = em
        self.loss_rate = float(loss_rate)


def prepare_window(
    observation: PathObservation,
    config: MonitorConfig,
    window_index: int = 0,
) -> PreparedWindow:
    """Stationarity gate + discretization + per-window EM seeding.

    Cold fits get a per-window seed derived from ``(em.seed,
    STREAM_MONITOR, window_index)`` so fallback refits are deterministic
    but decorrelated across windows.
    """
    loss_rate = observation.loss_rate
    if config.gate_stationarity:
        if not observation_is_stationary(
            observation,
            window=config.stationarity_window,
            delay_tolerance=config.delay_tolerance,
            loss_tolerance=config.loss_tolerance,
        ):
            return PreparedWindow(
                skip=WindowAnalysis(
                    "skipped", reason="nonstationary", loss_rate=loss_rate
                ),
                loss_rate=loss_rate,
            )
    try:
        discretizer = DelayDiscretizer.from_observation(
            observation, config.n_symbols
        )
        seq = discretizer.observation_sequence(observation)
    except InsufficientLossError:  # pragma: no cover - defensive ordering
        return PreparedWindow(
            skip=WindowAnalysis(
                "skipped", reason="no-losses", loss_rate=loss_rate
            ),
            loss_rate=loss_rate,
        )
    except ValueError as exc:
        return PreparedWindow(
            skip=WindowAnalysis(
                "skipped", reason=f"degenerate: {exc}", loss_rate=loss_rate
            ),
            loss_rate=loss_rate,
        )
    if seq.n_losses == 0:
        # streaming_fit would raise InsufficientLossError; resolving the
        # skip here lets the fused drain filter such windows up front
        # while the per-window path produces the identical analysis.
        return PreparedWindow(
            skip=WindowAnalysis(
                "skipped", reason="no-losses", loss_rate=loss_rate
            ),
            loss_rate=loss_rate,
        )
    em = config.em.replace(
        seed=task_seed(config.em.seed, STREAM_MONITOR, window_index),
        n_jobs=1,
    )
    return PreparedWindow(seq=seq, discretizer=discretizer, em=em,
                          loss_rate=loss_rate)


def fit_window(
    prepared: PreparedWindow,
    warm: Optional[WarmState],
    config: MonitorConfig,
):
    """Stage 2: the warm-started EM fit of one prepared window.

    Returns the :class:`~repro.streaming.online_em.StreamingFitResult`,
    or ``None`` when the fit is impossible for lack of losses (resolved
    to a skip by :func:`finish_window`).
    """
    try:
        with profile_phase("window.fit"):
            return streaming_fit(
                prepared.seq, config.n_hidden, config=prepared.em,
                kind=config.model, warm=warm,
            )
    except InsufficientLossError:  # pragma: no cover - caught in prepare
        return None


def finish_window(
    prepared: PreparedWindow,
    result,
    config: MonitorConfig,
    window_index: int = 0,
) -> WindowAnalysis:
    """Stage 3: tests, verdict, and the ``Q_k`` bound for one fit."""
    loss_rate = prepared.loss_rate
    if result is None:  # pragma: no cover - defensive, see fit_window
        return WindowAnalysis("skipped", reason="no-losses",
                              loss_rate=loss_rate)
    discretizer = prepared.discretizer
    fitted = result.fitted
    distribution = DelayDistribution(
        fitted.virtual_delay_pmf,
        discretizer=discretizer,
        label=f"{config.model.upper()} window {window_index}",
    )
    identify_config = config.identify_config()
    sdcl, wdcl = evaluate_distribution(distribution, identify_config)
    verdict = verdict_from_tests(sdcl, wdcl)
    bound_seconds = None
    if verdict != "none":
        accepted = sdcl if sdcl.accepted else wdcl
        bound_symbol = min(accepted.d_star, discretizer.n_symbols)
        bound_seconds = discretizer.queuing_upper_edge(bound_symbol)
    diagnostics = None
    if health_mod.is_health_enabled():
        # One dedicated E-pass over the *final* fitted model: the fit
        # path is untouched, so fused/pool verdict parity holds by
        # construction whether health is on or off.
        diagnostics = compute_window_diagnostics(
            fitted.model, prepared.seq,
            g_pmf=fitted.virtual_delay_pmf, beta0=config.beta0,
        )
    return WindowAnalysis(
        "ok",
        verdict=verdict,
        g_pmf=np.asarray(fitted.virtual_delay_pmf, dtype=float),
        d_star=int((sdcl if sdcl.accepted else wdcl).d_star),
        bound_seconds=bound_seconds,
        loss_rate=loss_rate,
        log_likelihood=float(fitted.log_likelihood),
        n_iter=int(fitted.n_iter),
        warm_used=result.warm_used,
        fallback_reason=result.fallback_reason,
        warm_state=result.warm_state(),
        diagnostics=diagnostics,
    )


def analyze_window(
    observation: PathObservation,
    warm: Optional[WarmState],
    config: MonitorConfig,
    window_index: int = 0,
) -> WindowAnalysis:
    """Run the identification procedure on one window (pure function).

    Stateless by design: everything it needs arrives as arguments and
    everything it learned (including the next warm state) leaves in the
    returned :class:`WindowAnalysis`, which is what lets the multi-path
    scheduler run it in worker processes.

    Exactly the composition ``prepare_window -> fit_window ->
    finish_window``; the fused drain mode runs the same three stages
    with the middle one batched across windows, which is why the two
    drain modes agree byte-for-byte.
    """
    prepared = prepare_window(observation, config, window_index)
    if prepared.skip is not None:
        return prepared.skip
    result = fit_window(prepared, warm, config)
    return finish_window(prepared, result, config, window_index)


class VerdictEvent:
    """One JSONL-able monitor event: a window's outcome plus stable state."""

    __slots__ = (
        "path",
        "window_index",
        "probe_range",
        "time_range",
        "analysis",
        "stable_verdict",
        "changed",
        "lag_seconds",
        "trace",
        "health",
        "confidence",
    )

    def __init__(
        self,
        path: str,
        probe_window: ProbeWindow,
        analysis: WindowAnalysis,
        stable_verdict: Optional[str],
        changed: bool,
    ):
        self.path = path
        self.window_index = probe_window.index
        self.probe_range = (probe_window.start, probe_window.stop)
        self.time_range = probe_window.time_range
        self.analysis = analysis
        self.stable_verdict = stable_verdict
        self.changed = bool(changed)
        now = time.monotonic()
        assembled_at = getattr(probe_window, "assembled_at", None)
        #: wall-clock delay from window assembly to verdict emission
        self.lag_seconds: Optional[float] = (
            None if assembled_at is None
            else max(0.0, now - assembled_at)
        )
        # The trace rides next to the payload, never inside to_dict():
        # verdict streams stay byte-identical with tracing on or off.
        self.trace = getattr(probe_window, "trace", None)
        if self.trace is not None:
            self.trace.finalize(path, probe_window.index, now)
        # Model health rides the same way: attributes only, stamped by
        # VerdictTracker.event_for when health scoring is enabled.
        self.health = None
        self.confidence: Optional[float] = None

    def to_dict(self) -> dict:
        """Plain-JSON projection (the ``repro monitor`` JSONL schema)."""
        a = self.analysis
        return {
            "path": self.path,
            "window": self.window_index,
            "probe_range": list(self.probe_range),
            "time_range": [round(t, 6) for t in self.time_range],
            "status": a.status,
            "reason": a.reason,
            "verdict": a.verdict,
            "stable_verdict": self.stable_verdict,
            "changed": self.changed,
            "g_pmf": None if a.g_pmf is None else [round(float(p), 6)
                                                   for p in a.g_pmf],
            "d_star": a.d_star,
            "bound_seconds": None if a.bound_seconds is None
            else round(float(a.bound_seconds), 6),
            "loss_rate": round(a.loss_rate, 6),
            "log_likelihood": None if a.log_likelihood is None
            else round(a.log_likelihood, 4),
            "n_iter": a.n_iter,
            "warm_start": a.warm_used,
            "fallback_reason": a.fallback_reason,
            "lag_ms": None if self.lag_seconds is None
            else round(self.lag_seconds * 1e3, 3),
        }


def _skip_label(reason: Optional[str]) -> str:
    """Metric label for a skip reason (``"degenerate: msg"`` and friends
    collapse to their prefix so label cardinality stays bounded)."""
    return str(reason or "unknown").split(":")[0].strip()


def _record_window(event: VerdictEvent) -> None:
    """Telemetry for one resolved window (analyzed or skipped)."""
    a = event.analysis
    if not a.analyzed:
        _LOG.info(
            "window %d on path %r skipped: %s",
            event.window_index, event.path, a.reason,
        )
    elif event.changed:
        _LOG.info(
            "path %r stable verdict changed to %r at window %d",
            event.path, event.stable_verdict, event.window_index,
        )
    if not obs.is_enabled():
        return
    if a.analyzed:
        obs.inc("repro_windows_total")
        obs.inc("repro_window_verdicts_total", 1.0, verdict=a.verdict)
        if event.changed:
            obs.inc("repro_verdict_changes_total")
    else:
        obs.inc("repro_windows_skipped_total", 1.0,
                reason=_skip_label(a.reason))
    if event.lag_seconds is not None:
        obs.observe("repro_window_lag_seconds", event.lag_seconds)
    obs.emit(
        "window",
        path=event.path,
        window=event.window_index,
        status=a.status,
        reason=a.reason,
        verdict=a.verdict,
        stable_verdict=event.stable_verdict,
        changed=event.changed,
        warm_used=a.warm_used,
        fallback_reason=a.fallback_reason,
        lag_ms=None if event.lag_seconds is None
        else round(event.lag_seconds * 1e3, 3),
    )


class VerdictTracker:
    """K-of-N hysteresis over per-window verdicts."""

    def __init__(self, confirm: int, memory: int):
        if confirm < 1 or memory < confirm:
            raise ValueError(
                f"need 1 <= confirm <= memory, got {confirm}, {memory}"
            )
        self.confirm = int(confirm)
        self.memory = int(memory)
        self.recent: Deque[str] = deque(maxlen=memory)
        self.stable_verdict: Optional[str] = None
        #: Lazily created per-path health roll-up (health enabled only).
        self.health: Optional[health_mod.PathHealth] = None

    def update(self, verdict: str) -> bool:
        """Record one analysed window's verdict; returns stable-changed."""
        self.recent.append(verdict)
        if sum(v == verdict for v in self.recent) >= self.confirm:
            if verdict != self.stable_verdict:
                self.stable_verdict = verdict
                return True
        return False

    def event_for(
        self, path: str, probe_window: ProbeWindow, analysis: WindowAnalysis
    ) -> VerdictEvent:
        """Fold one analysis into the hysteresis state; emit the event."""
        changed = False
        if analysis.analyzed:
            changed = self.update(analysis.verdict)
        event = VerdictEvent(
            path, probe_window, analysis, self.stable_verdict, changed
        )
        if health_mod.is_health_enabled():
            if self.health is None:
                self.health = health_mod.PathHealth()
            report = self.health.update(
                getattr(analysis, "diagnostics", None), probe_window.index)
            report.finalize(path, probe_window.index)
            event.health = report
            event.confidence = health_mod.verdict_confidence(
                report.health, self.recent, self.stable_verdict)
        _record_window(event)
        return event


class PathMonitor:
    """One path's full streaming stack: windows -> warm fits -> verdicts.

    Single-process convenience; the multi-path scheduler
    (:class:`repro.streaming.scheduler.MultiPathMonitor`) composes the
    same pieces with the fits fanned over a worker pool.
    """

    def __init__(self, config: Optional[MonitorConfig] = None,
                 path: str = "path"):
        self.config = config or MonitorConfig()
        self.path = path
        self.assembler = SlidingWindowAssembler(self.config.window,
                                                self.config.hop)
        self.tracker = VerdictTracker(self.config.confirm, self.config.memory)
        self.warm: Optional[WarmState] = None

    def _process(self, probe_window: ProbeWindow) -> VerdictEvent:
        analysis = analyze_window(
            probe_window.observation, self.warm, self.config,
            window_index=probe_window.index,
        )
        if analysis.warm_state is not None:
            self.warm = analysis.warm_state
        return self.tracker.event_for(self.path, probe_window, analysis)

    def ingest(self, send_time: float, delay: float) -> Optional[VerdictEvent]:
        """Push one probe record; returns an event when a window completes."""
        probe_window = self.assembler.push(send_time, delay)
        if probe_window is None:
            return None
        return self._process(probe_window)

    def finish(self) -> Optional[VerdictEvent]:
        """Analyse the trailing partial window at end-of-stream, if any."""
        probe_window = self.assembler.tail()
        if probe_window is None:
            return None
        return self._process(probe_window)

    def run(self, records) -> List[VerdictEvent]:
        """Drive the monitor over an iterable of ``(send_time, delay)``."""
        events = []
        for send_time, delay in records:
            event = self.ingest(send_time, delay)
            if event is not None:
                events.append(event)
        final = self.finish()
        if final is not None:
            events.append(final)
        return events
