"""Streaming identification: always-on monitoring over probe streams.

The batch pipeline (:func:`repro.core.identify.identify`) answers "was
there a dominant congested link in this trace?" once, after the fact.
This subsystem answers it *continuously* while probes arrive:

``windows``
    Incremental ingestion into bounded, overlapping sliding windows.
``online_em``
    Warm-started per-window EM fits (previous window's parameters seed
    the next fit), with cold multi-restart fallback on likelihood
    collapse.
``tracker``
    Per-window SDCL/WDCL verdicts and the ``Q_k`` bound, gated on
    stationarity and smoothed by K-of-N hysteresis; the single-path
    :class:`~repro.streaming.tracker.PathMonitor`.
``scheduler``
    :class:`~repro.streaming.scheduler.MultiPathMonitor`: many paths over
    the shared process pool, with bounded backlog and event queues.

The ``repro monitor`` CLI subcommand wraps all of it around a trace file
or stdin and emits JSONL verdict events.
"""

from repro.streaming.online_em import (
    StreamingFitResult,
    WarmState,
    streaming_fit,
)
from repro.streaming.scheduler import MultiPathMonitor
from repro.streaming.tracker import (
    MonitorConfig,
    PathMonitor,
    VerdictEvent,
    VerdictTracker,
    WindowAnalysis,
    analyze_window,
)
from repro.streaming.windows import (
    ProbeWindow,
    SlidingWindowAssembler,
    iter_windows,
)

__all__ = [
    "MonitorConfig",
    "MultiPathMonitor",
    "PathMonitor",
    "ProbeWindow",
    "SlidingWindowAssembler",
    "StreamingFitResult",
    "VerdictEvent",
    "VerdictTracker",
    "WarmState",
    "WindowAnalysis",
    "analyze_window",
    "iter_windows",
    "streaming_fit",
]
