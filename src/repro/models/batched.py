"""Batched restart-stacked E-step engine for the HMM/MMHD fitters.

A multi-restart EM fit runs ``R`` independent forward-backward
recursions over the same observation sequence.  The sequential engine
(:func:`repro.models.hmm._fit_hmm_restart` and its MMHD twin) pays the
interpreted Python time loop once per restart: ``R x T`` tiny
``(N,) @ (N, N)`` matvecs dominated by call overhead, not FLOPs.  This
module stacks all restarts of one fit into parameter tensors
(``pi: (R, N)``, ``transition: (R, N, N)``, ``emission: (R, N, M)``)
and runs ONE forward-backward over the stack, so the time loop executes
``T`` batched ``(R, 1, N) @ (R, N, N)`` matmul steps instead — the
classic Baum-Welch batching opportunity.

Parity with the sequential engine
---------------------------------
``np.matmul`` computes every batch row independently of the others, so
each restart's trajectory through the batched recursions depends only on
its own parameters — never on which other restarts share the stack.
That is what keeps the repo's determinism contract intact: a fit sharded
over ``n_jobs`` pool workers (each worker batching its restart shard)
produces bit-identical per-restart results for every worker count, and
restarts that converge are *masked out* of the active batch (frozen, not
recomputed) without perturbing the survivors.  Relative to the
sequential engine the final log-likelihoods agree to floating-point
round-off (different BLAS reduction orders), and the winning restart is
identical — both are asserted by the benchmark and the property tests.

Ragged multi-sequence batches
-----------------------------
The restart stack shares one observation sequence across all rows.  The
*ragged* engine (:func:`_ragged_forward_backward` plus the
``_Ragged*Batch`` classes) drops that restriction: rows carry their own
sequences of unequal length ``T_r``, right-padded to ``t_max`` through a
:class:`repro.models.base.SymbolStack`.  Padded steps are carried, not
computed — the forward pass repeats the row's last valid ``alpha`` and
forces the padded scale to 1 (``log(1) = 0``), the backward pass carries
``beta`` left until the row's last valid step sees exactly the solo
boundary value 1 — and every gamma/xi/log-likelihood accumulation is
sliced per length group, so contraction lengths (and therefore BLAS
reduction orders) match a solo fit of each row exactly.  Per-row results
are *bit-identical* to fitting that row alone, for any batch
composition.  That is what lets the streaming layer fuse the warm
E-steps of many monitor windows — different paths, different window
lengths — into one mega-batch (:func:`run_hedged_fits`) with one
recursion per drain round instead of one pool task per window, without
perturbing a single verdict.

Blocked scan kernel
-------------------
Even fully batched, the recursions above execute ``T`` Python-level
matmul steps per E-pass, and on a 1-CPU host that dispatch floor — not
FLOPs — dominates the fit.  :func:`_blocked_forward_backward` removes
it: time is processed in blocks of ``B`` steps, each block's per-row
step operators (``transition * diag(likes[t])``) are built with one
vectorised multiply, the within-block operator prefix (suffix, for the
backward pass) products are computed by a scan of ``B`` batched matmuls
*across all blocks simultaneously*, and only the ``T / B`` block
boundaries chain sequentially.  Per-step ``alpha``/``beta``/``scales``
are reconstructed exactly from the composed operators, with power-of-two
rescaling (exact in floating point) keeping the scaled-recursion
numerics intact.  Python dispatches per pass drop from ``T`` to about
``B + 3 T / B``.  Padded operators are the identity, which applies
bitwise-exactly, so ragged rows keep the carried-padding semantics and
per-row results stay independent of batch composition (the ragged
kernel additionally pins a fixed block size for the same reason).

Backend-selection heuristic
---------------------------
``EMConfig.backend="auto"`` resolves per fit via :func:`resolve_backend`:

* **blocked** when the recursion state width (``N`` for the HMM,
  ``N * M`` for the MMHD) is at most :data:`BLOCKED_STATE_LIMIT`.  The
  blocked scan pays ``N^3`` operator-composition FLOPs to save
  dispatches, a trade measured to win up to width 4 (about 3x at
  width 2) and lose from width 6 on a 1-CPU host.
* **batched** when the width is at most :data:`BATCHED_STATE_LIMIT`.
  Small widths mean each sequential step is interpreter-bound, so
  stacking restarts multiplies useful work per Python step at no extra
  cost.
* **sequential** beyond the limit: wide-state matvecs are already
  BLAS-bound, and an ``R``-fold batch only grows the working set past
  cache for no interpreter savings.

``backend="compiled"`` routes the batched engine through the optional
numba kernels (:mod:`repro.models.compiled`) and falls back to the
blocked or loop kernel — recorded in the ``em.backend`` event — when
numba is absent.

The engines compose with the process pool: ``n_jobs > 1`` splits the
restarts into contiguous shards (:func:`repro.parallel.shard_items`) and
each worker batches its own shard, so pool parallelism and in-process
batching multiply rather than compete.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.models import compiled
from repro.models.base import (
    EMConfig,
    ObservationSequence,
    SymbolIndex,
    SymbolStack,
    floor_and_normalize,
)
from repro.models.hmm import FittedHMM, HiddenMarkovModel
from repro.models.initialization import (
    hmm_initial_parameters,
    mmhd_initial_parameters,
)
from repro.models.mmhd import FittedMMHD, MarkovModelHiddenDimension
from repro.models.telemetry import record_fit, record_restart
from repro.parallel import parallel_map, resolve_n_jobs, restart_rng, shard_items

__all__ = [
    "BATCH_BACKENDS",
    "BATCHED_STATE_LIMIT",
    "BLOCKED_STATE_LIMIT",
    "resolve_backend",
    "resolve_block_size",
    "batched_restart_fits",
    "run_hedged_fit",
    "run_hedged_fits",
]

#: Largest recursion state width (N for HMM, N*M for MMHD) the "auto"
#: backend still batches.  Below it the sequential per-step matvec is
#: interpreter-bound and batching is close to free; above it the matvec
#: is BLAS-bound and a restart stack mostly grows the working set.
BATCHED_STATE_LIMIT = 64

#: Largest state width the "auto" backend routes through the blocked
#: scan kernel.  The scan composes ``(N, N)`` operators, an ``N``-fold
#: FLOP inflation over the loop kernel's matvecs, so it only pays while
#: the loop is dispatch-bound: measured on the 1-CPU bench workload the
#: blocked kernel is ~3x faster at width 2, ~1.7x at width 4, breaks
#: even near width 6 and is ~2x *slower* at width 10 (the MMHD dense
#: width for M=5), which fixes the cutoff at 4.
BLOCKED_STATE_LIMIT = 4

#: Backends served by the batched restart-stack engine (as opposed to
#: the per-restart sequential loop).  Streaming layers use membership
#: here to decide whether the hedged/fused drain machinery applies.
BATCH_BACKENDS = frozenset({"batched", "blocked", "compiled"})

#: Fixed block size of the *ragged* blocked kernel.  Auto-tuning from
#: the stack's ``t_max`` would make a row's operator-composition order
#: depend on which other windows share its mega-batch, breaking the
#: fused-equals-solo bit-identity contract; a pinned default keeps every
#: batch composition on the same arithmetic.
RAGGED_BLOCK_SIZE = 64

#: Scan steps between power-of-two rescales of the composed operators.
#: Rescaling is exact (and provably cannot change the reconstructed
#: values outside under/overflow), so the cadence is purely a range
#: safety knob: float64 survives 16 steps of even likelihood ~1e-18,
#: float32's narrow exponent needs the tighter cadence.
_RESCALE_EVERY = {np.dtype(np.float64): 16, np.dtype(np.float32): 4}

#: Elements per (steps, K, N, N) operator buffer above which the blocked
#: kernel processes time in chunks of whole blocks, bounding peak memory
#: (~32 MB per float64 buffer) at paper-scale T for wide states.
_CHUNK_ELEMENTS = 1 << 22


def resolve_backend(
    config: EMConfig, kind: str, n_hidden: int, n_symbols: int
) -> str:
    """Concrete E-step engine for one fit.

    An explicit ``config.backend`` wins; ``"auto"`` applies the
    state-width heuristic documented in the module docstring.
    """
    if config.backend != "auto":
        return config.backend
    width = int(n_hidden) if kind == "hmm" else int(n_hidden) * int(n_symbols)
    if width <= BLOCKED_STATE_LIMIT:
        return "blocked"
    return "batched" if width <= BATCHED_STATE_LIMIT else "sequential"


def resolve_block_size(n_steps: Optional[int] = None,
                       width: int = 2) -> int:
    """Auto-tuned time-block length B for the blocked scan kernel.

    One E-pass costs about ``B`` Python-level scan steps plus ``3 T / B``
    boundary-chain steps, minimised near ``B = sqrt(3 T)``; the nearest
    power of two in ``[32, 256]`` captures that optimum to within a few
    percent on the measured workloads.  Wide states cap at 128 so the
    ``(B, K, N, N)`` scan working set stays cache-resident.  Without a
    sequence length (the ragged mega-batch case) the fixed
    :data:`RAGGED_BLOCK_SIZE` applies — see its docstring.
    """
    if n_steps is None:
        return RAGGED_BLOCK_SIZE
    target = math.sqrt(3.0 * max(int(n_steps), 1))
    block = 32
    while block < 256 and (block * 2) / target < target / block:
        block *= 2
    if width > BLOCKED_STATE_LIMIT:
        block = min(block, 128)
    return block


def _resolve_kernel(backend: str, width: int):
    """Concrete forward-backward kernel for a batched-family backend.

    Returns ``(kernel, fallback_reason)``.  ``"compiled"`` degrades
    gracefully when numba is absent — to the blocked kernel where the
    state is narrow enough for it to pay, else to the loop kernel — and
    the reason string surfaces in the ``em.backend`` event so a fleet
    operator can see the degradation instead of silently losing it.
    """
    if backend == "compiled":
        if compiled.HAVE_NUMBA:
            return "compiled", None
        if width <= BLOCKED_STATE_LIMIT:
            return "blocked", "numba-missing"
        return "loop", "numba-missing"
    if backend == "blocked":
        return "blocked", None
    return "loop", None


class _BatchZeroLikelihood(Exception):
    """A forward pass hit zero total likelihood on some batch rows.

    ``rows`` holds *batch-local* row indices; the driver maps them back
    to restart rows and decides between a hard
    :class:`FloatingPointError` (normal restarts) and a soft retirement
    (the hedged warm row).
    """

    def __init__(self, t: int, rows: np.ndarray, first_bad_t=None):
        detail = ""
        if first_bad_t:
            listed = sorted(first_bad_t.items())[:8]
            detail = " (" + ", ".join(
                f"row {r}: t={tt}" for r, tt in listed
            ) + (", ..." if len(first_bad_t) > 8 else "") + ")"
        super().__init__(f"zero likelihood at t={t}{detail}")
        self.t = int(t)
        self.rows = np.asarray(rows)
        #: Per batch-local row, the row's own first poisoned time step —
        #: the actual collapse point of that restart (the shared ``t``
        #: is only the earliest across rows).
        self.first_bad_t = dict(first_bad_t or {})


# ----------------------------------------------------------------------
# Shared recursions
# ----------------------------------------------------------------------
def _row_loglik(scales: np.ndarray) -> np.ndarray:
    """Per-row ``sum(log(scales))`` over a time-major ``(T, K)`` array.

    Each row is summed over contiguous memory so numpy's pairwise
    reduction applies with blocking that depends only on ``T`` — making
    the result independent of the batch width ``K`` and bit-identical
    to the sequential engine's 1-D ``np.log(scales).sum()``.  (A plain
    ``sum(axis=0)`` over the strided time axis falls back to naive
    left-to-right accumulation and diverges in the last ulps.)

    Float32 scales are upcast before the log-sum: the recursion may run
    narrow, but accumulating ``T`` log terms in float32 would waste most
    of the achievable likelihood precision for free.  (For float64 input
    the cast is the identity, preserving bit-parity.)
    """
    return np.log(
        np.ascontiguousarray(scales.T, dtype=np.float64)
    ).sum(axis=1)


def _check_scales(scales: np.ndarray) -> None:
    """Deferred zero-likelihood detection over a ``(T, K)`` scale array.

    The forward loops run with divide/invalid errors suppressed: a row
    that hits zero total likelihood poisons only its own lane with NaN
    (row independence), so one vectorised check after the pass replaces
    a per-step ``min()`` — about a third of the old loop cost.  NaN
    scales fail ``> 0`` and are reported alongside exact zeros.
    """
    bad = ~(scales > 0)
    if bad.any():
        rows = np.flatnonzero(bad.any(axis=0))
        # argmax over the time axis gives each poisoned row its own
        # first bad step — the row's actual collapse point.  (NaN
        # poisons everything downstream of the first zero, so the first
        # step is the informative one.)
        first_bad = bad[:, rows].argmax(axis=0)
        first_bad_t = {int(r): int(t) for r, t in zip(rows, first_bad)}
        raise _BatchZeroLikelihood(int(first_bad.min()), rows, first_bad_t)


class _Workspace:
    """Per-fit scratch-array cache shared across EM iterations.

    Every E-pass of one fit needs the same ``alpha``/``beta``/``buf``/
    ``scales`` (and, blocked, operator/prefix) arrays; reallocating them
    each iteration costs an allocator round-trip and a page-fault sweep
    per buffer per pass.  :meth:`get` hands out views of flat buffers
    that are only (re)allocated when a request grows past the cached
    capacity or changes dtype — the first iteration sizes everything for
    the full batch, and later iterations (whose active row count only
    shrinks under convergence masking) slice the same memory.
    """

    __slots__ = ("_buffers",)

    def __init__(self):
        self._buffers: dict = {}

    def get(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        size = 1
        for dim in shape:
            size *= int(dim)
        buf = self._buffers.get(name)
        if buf is None or buf.dtype != np.dtype(dtype) or buf.size < size:
            buf = np.empty(size, dtype=dtype)
            self._buffers[name] = buf
        return buf[:size].reshape(shape)

    def clear(self) -> None:
        self._buffers.clear()


def _batched_forward_backward(pi, transition, likes, workspace=None):
    """Scaled forward-backward over a restart stack.

    ``likes`` is time-major ``(T, K, n)`` so each step's slice is
    contiguous; ``pi`` is ``(K, n)`` and ``transition`` ``(K, n, n)``.
    Returns ``(alpha, beta, scales, loglik)`` with ``alpha`` normalised
    per step so ``gamma = alpha * beta`` directly, matching the
    sequential recursions row for row.

    The hot loops write through preallocated ``out=`` targets (each
    ``alpha[t]`` / ``beta[t]`` slice is contiguous, so the matmul lands
    directly in the output array), and the backward pass folds the
    ``1/scales`` factor into the likelihoods once, vectorised, instead
    of dividing inside the loop.  ``workspace`` reuses one fit's
    buffers across iterations; the returned arrays are views into it,
    valid until the next pass.
    """
    n_steps, n_rows, n = likes.shape
    ws = workspace if workspace is not None else _Workspace()
    dtype = likes.dtype
    alpha = ws.get("alpha", likes.shape, dtype)
    scales = ws.get("scales", (n_steps, n_rows), dtype)
    with np.errstate(divide="ignore", invalid="ignore", under="ignore"):
        state = pi * likes[0]
        total = np.add.reduce(state, axis=1)
        scales[0] = total
        np.divide(state, total[:, None], out=alpha[0])
        for t in range(1, n_steps):
            state = alpha[t]
            np.matmul(alpha[t - 1][:, None, :], transition,
                      out=state.reshape(n_rows, 1, n))
            state *= likes[t]
            total = np.add.reduce(state, axis=1)
            scales[t] = total
            state /= total[:, None]
        _check_scales(scales)
        beta = ws.get("beta", likes.shape, dtype)
        beta[n_steps - 1] = 1.0
        scaled = ws.get("scaled", (n_steps - 1, n_rows, n), dtype)
        np.divide(likes[1:], scales[1:, :, None], out=scaled)
        buf = ws.get("buf", (n_rows, n, 1), dtype)
        for t in range(n_steps - 2, -1, -1):
            np.multiply(scaled[t], beta[t + 1], out=buf[:, :, 0])
            np.matmul(transition, buf, out=beta[t].reshape(n_rows, n, 1))
    return alpha, beta, scales, _row_loglik(scales)


def _pad_ops_identity(ops_flat, o0, n_slots, groups, eye, n_steps):
    """Overwrite ragged rows' padded step operators with the identity.

    ``ops_flat`` holds this chunk's operators for global op indices
    ``o0 + j``; op ``j`` maps step ``j`` to step ``j + 1``, so a row of
    length ``L`` owns ops ``0 .. L-2`` and everything from ``L-1`` on is
    padding.  Applying the identity is bitwise exact (``x * 1 = x``,
    ``x + 0 = x`` for the non-negative values here), which is what keeps
    a row's valid-region arithmetic independent of how far the batch is
    padded — the ragged bit-identity contract.
    """
    for t_g, idx in groups:
        if t_g >= n_steps:
            continue
        start = max(t_g - 1 - o0, 0)
        if start < n_slots:
            ops_flat[start:n_slots, idx] = eye


def _blocked_forward_backward(pi, transition, likes, block_size=None,
                              lengths=None, workspace=None):
    """Blocked-scan forward-backward: the dispatch-floor killer.

    Same contract as :func:`_batched_forward_backward` /
    :func:`_ragged_forward_backward` (returns ``(alpha, beta, scales)``;
    uniform callers append :func:`_row_loglik`), but the per-step Python
    loop is replaced by operator composition:

    1. Build every step operator ``transition * diag(likes[t])`` of a
       chunk with one vectorised multiply.
    2. Scan: ``B - 1`` batched matmuls compute the within-block operator
       prefix products of *all* blocks simultaneously, with exact
       power-of-two rescaling every :data:`_RESCALE_EVERY` steps to keep
       the products in range (the rescale provably cannot change the
       reconstructed values — only their intermediate exponents).
    3. Chain the ``T / B`` block boundaries sequentially (the only
       genuinely serial part), renormalising at each boundary exactly as
       the scaled recursion does.
    4. Reconstruct every in-block ``alpha[t]`` with one batched matmul
       of the boundary values against the prefix products; per-step
       ``scales`` fall out of the ratios of unnormalised totals.

    The backward pass mirrors this with suffix products, tracking the
    cumulative rescale in (exact) log2 space.  Ragged rows pad with
    identity operators (bitwise-exact application) and their carried
    ``alpha``/``scales``/``beta`` slots are overwritten with the exact
    carry semantics of the loop kernel afterwards, so valid-region
    results never depend on the batch's ``t_max``.  Chunking bounds the
    operator buffers at :data:`_CHUNK_ELEMENTS` elements without
    changing any arithmetic (blocks only interact through the boundary
    chain, which is chunk-oblivious).
    """
    n_steps, n_rows, n = likes.shape
    ws = workspace if workspace is not None else _Workspace()
    dtype = likes.dtype
    alpha = ws.get("alpha", likes.shape, dtype)
    beta = ws.get("beta", likes.shape, dtype)
    scales = ws.get("scales", (n_steps, n_rows), dtype)
    n_ops = n_steps - 1
    groups = _length_groups(np.asarray(lengths)) if lengths is not None \
        else None
    with np.errstate(divide="ignore", invalid="ignore", over="ignore",
                     under="ignore"):
        state = pi * likes[0]
        total = np.add.reduce(state, axis=1)
        scales[0] = total
        np.divide(state, total[:, None], out=alpha[0])
        if n_ops == 0:
            beta[0] = 1.0
            _check_scales(scales)
            return alpha, beta, scales

        block = int(block_size) if block_size else resolve_block_size(
            n_steps if lengths is None else None, n
        )
        block = max(1, block)
        rescale_every = _RESCALE_EVERY.get(np.dtype(dtype), 16)
        tiny = np.finfo(dtype).tiny
        eye = np.eye(n, dtype=dtype)
        n_blocks = -(-n_ops // block)
        per_block = block * n_rows * n * n
        chunk_blocks = max(1, _CHUNK_ELEMENTS // per_block)

        # ---- forward: prefix scan + boundary chain + reconstruction
        cur = alpha[0]
        for c0 in range(0, n_blocks, chunk_blocks):
            nb = min(chunk_blocks, n_blocks - c0)
            o0 = c0 * block
            o1 = min(o0 + nb * block, n_ops)
            n_c = o1 - o0
            n_slots = nb * block
            ops = ws.get("ops", (nb, block, n_rows, n, n), dtype)
            ops_flat = ops.reshape(n_slots, n_rows, n, n)
            np.multiply(transition, likes[1 + o0: 1 + o1, :, None, :],
                        out=ops_flat[:n_c])
            if n_slots > n_c:
                ops_flat[n_c:] = eye
            if groups is not None:
                _pad_ops_identity(ops_flat, o0, n_slots, groups, eye,
                                  n_steps)
            prefix = ws.get("prefix", (nb, block, n_rows, n, n), dtype)
            d = ws.get("rescale", (nb, block, n_rows), dtype)
            d[:] = 1.0
            prefix[:, 0] = ops[:, 0]
            for i in range(1, block):
                np.matmul(prefix[:, i - 1], ops[:, i], out=prefix[:, i])
                if i % rescale_every == 0:
                    mx = np.amax(prefix[:, i], axis=(-2, -1))
                    np.exp2(np.floor(np.log2(np.maximum(mx, tiny))),
                            out=d[:, i])
                    prefix[:, i] /= d[:, i, :, None, None]
            entry = ws.get("entry", (nb, n_rows, n), dtype)
            for b in range(nb):
                entry[b] = cur
                end = (cur[:, None, :] @ prefix[b, block - 1])[:, 0, :]
                cur = end / np.add.reduce(end, axis=1)[:, None]
            rec = ws.get("recon", (nb, block, n_rows, 1, n), dtype)
            np.matmul(entry[:, None, :, None, :], prefix, out=rec)
            a_hat = rec[:, :, :, 0, :]
            that = ws.get("totals", (nb, block, n_rows), dtype)
            np.add.reduce(a_hat, axis=3, out=that)
            np.divide(a_hat, that[..., None], out=a_hat)
            alpha[1 + o0: 1 + o1] = a_hat.reshape(-1, n_rows, n)[:n_c]
            ratio = ws.get("ratio", (nb, block, n_rows), dtype)
            ratio[:, 0] = that[:, 0]
            np.divide(that[:, 1:], that[:, :-1], out=ratio[:, 1:])
            ratio *= d
            scales[1 + o0: 1 + o1] = ratio.reshape(-1, n_rows)[:n_c]
        if groups is not None:
            # Exact carried-padding semantics of the ragged loop kernel.
            for t_g, idx in groups:
                if t_g < n_steps:
                    alpha[t_g:, idx] = alpha[t_g - 1, idx]
                    scales[t_g:, idx] = 1.0
        _check_scales(scales)

        # ---- backward: suffix scan with log2-tracked rescale
        beta[n_steps - 1] = 1.0
        cur = np.ones((n_rows, n), dtype=dtype)
        for c0 in range(n_blocks - chunk_blocks + (-n_blocks) % chunk_blocks,
                        -1, -chunk_blocks):
            c_lo = max(c0, 0)
            nb = min(chunk_blocks, n_blocks - c_lo)
            o0 = c_lo * block
            o1 = min(o0 + nb * block, n_ops)
            n_c = o1 - o0
            n_slots = nb * block
            ops = ws.get("ops", (nb, block, n_rows, n, n), dtype)
            ops_flat = ops.reshape(n_slots, n_rows, n, n)
            sc = ws.get("scaled", (n_c, n_rows, n), dtype)
            np.divide(likes[1 + o0: 1 + o1],
                      scales[1 + o0: 1 + o1, :, None], out=sc)
            np.multiply(transition, sc[:, :, None, :], out=ops_flat[:n_c])
            if n_slots > n_c:
                ops_flat[n_c:] = eye
            if groups is not None:
                _pad_ops_identity(ops_flat, o0, n_slots, groups, eye,
                                  n_steps)
            suffix = ws.get("prefix", (nb, block, n_rows, n, n), dtype)
            ld = ws.get("logd", (nb, block, n_rows), dtype)
            suffix[:, block - 1] = ops[:, block - 1]
            ld[:, block - 1] = 0.0
            for i in range(block - 2, -1, -1):
                np.matmul(ops[:, i], suffix[:, i + 1], out=suffix[:, i])
                if i and i % rescale_every == 0:
                    mx = np.amax(suffix[:, i], axis=(-2, -1))
                    di = np.exp2(np.floor(np.log2(np.maximum(mx, tiny))))
                    suffix[:, i] /= di[:, :, None, None]
                    np.add(ld[:, i + 1], np.log2(di), out=ld[:, i])
                else:
                    ld[:, i] = ld[:, i + 1]
            bend = ws.get("bend", (nb, n_rows, n), dtype)
            for b in range(nb - 1, -1, -1):
                bend[b] = cur
                nxt = (suffix[b, 0] @ cur[:, :, None])[:, :, 0]
                cur = nxt * np.exp2(ld[b, 0])[:, None]
            rec = ws.get("recon", (nb, block, n_rows, n, 1), dtype)
            np.matmul(suffix, bend[:, None, :, :, None], out=rec)
            b_hat = rec[:, :, :, :, 0]
            undo = ws.get("totals", (nb, block, n_rows), dtype)
            np.exp2(ld, out=undo)
            b_hat *= undo[..., None]
            beta[o0:o1] = b_hat.reshape(-1, n_rows, n)[:n_c]
        if groups is not None:
            # The ragged loop kernel carries beta leftward so every slot
            # from the row's last valid step on holds exactly 1.
            for t_g, idx in groups:
                if t_g < n_steps:
                    beta[t_g - 1:, idx] = 1.0
    return alpha, beta, scales


class _KernelState:
    """Kernel, precision, and workspace state shared by both aux kinds.

    One aux owns one fit's forward-backward configuration: which kernel
    runs the recursions (``loop`` / ``blocked`` / ``compiled``), at what
    dtype, with what block size, and against which per-fit
    :class:`_Workspace`.  The E-step batches stay kernel-oblivious —
    they hand ``(pi, transition, likes)`` to the aux and get back
    float64 ``(alpha, beta, scales)`` whatever ran underneath.
    """

    def _init_kernel(self, config: EMConfig, backend: str, width: int,
                     n_steps: Optional[int] = None) -> None:
        self.backend = backend
        self.width = int(width)
        self.kernel, self.kernel_fallback = _resolve_kernel(backend, width)
        self.dtype = np.dtype(
            np.float32 if config.dtype == "float32" else np.float64
        )
        self.block_size = (
            int(config.block_size) if config.block_size
            else resolve_block_size(n_steps, width)
        )
        self.workspace = _Workspace()
        self.dtype_fallbacks = 0

    def demote(self) -> bool:
        """Fall back to float64 after a narrow-precision collapse.

        A zero scale under float32 usually means genuine underflow of
        the narrow exponent range, not a degenerate model; the driver
        retries the failed E-pass once at float64 before concluding the
        likelihood really is zero.  Returns ``True`` exactly when a
        demotion happened; the count lands in the
        ``repro_em_dtype_fallback_total`` counter and the ``em.backend``
        event so the fallback is operator-visible.
        """
        if self.dtype == np.float64:
            return False
        self.dtype = np.dtype(np.float64)
        self.dtype_fallbacks += 1
        if obs.is_enabled():
            obs.inc("repro_em_dtype_fallback_total", 1.0, model=self.kind)
        return True

    def _cast_inputs(self, pi, transition, likes):
        """Narrow the recursion inputs to the working dtype (no-op at
        float64, preserving bit-parity with the pre-dtype engine)."""
        if likes.dtype == self.dtype:
            return pi, transition, likes
        ws = self.workspace
        cast = []
        for name, arr in (("pi_cast", pi), ("transition_cast", transition),
                          ("likes_cast", likes)):
            buf = ws.get(name, arr.shape, self.dtype)
            buf[:] = arr
            cast.append(buf)
        return tuple(cast)

    def _widen(self, alpha, beta, scales):
        """Upcast kernel outputs to float64 views.

        Only the recursions run narrow: the statistics GEMMs and the
        M-step always accumulate at float64, so a float32 fit trades
        per-step precision for speed without also degrading the
        parameter updates.  Exact for float64 input (identity)."""
        if alpha.dtype == np.float64:
            return alpha, beta, scales
        ws = self.workspace
        wide = []
        for name, arr in (("alpha64", alpha), ("beta64", beta),
                          ("scales64", scales)):
            buf = ws.get(name, arr.shape, np.float64)
            buf[:] = arr
            wide.append(buf)
        return tuple(wide)

    def _compiled_forward_backward(self, pi, transition, likes, lengths):
        ws = self.workspace
        n_steps, n_rows, _ = likes.shape
        alpha = ws.get("alpha", likes.shape, likes.dtype)
        beta = ws.get("beta", likes.shape, likes.dtype)
        scales = ws.get("scales", (n_steps, n_rows), likes.dtype)
        with np.errstate(divide="ignore", invalid="ignore", under="ignore"):
            compiled.compiled_forward_backward(
                np.ascontiguousarray(pi), np.ascontiguousarray(transition),
                np.ascontiguousarray(likes),
                np.ascontiguousarray(lengths, dtype=np.int64),
                alpha, beta, scales,
            )
        _check_scales(scales)
        return alpha, beta, scales


class _EStepAux(_KernelState):
    """Per-fit constants shared by every batched E-pass.

    Everything derivable from the symbols alone — the
    :class:`SymbolIndex`, the observed-symbol one-hot matrix the scatter
    sums contract against, the MMHD support columns — is computed once
    per fit, mirroring what the sequential engine caches per restart.
    The aux also carries the fit's kernel state (see
    :class:`_KernelState`); the MMHD *fast* path is its own structured
    recursion with no dense per-step loop to replace, so there the
    kernel pins to ``loop`` / float64 and the ``em.backend`` event says
    so rather than advertising a kernel that never ran.
    """

    def __init__(self, kind: str, index: SymbolIndex, config: EMConfig,
                 n_hidden: int, backend: str = "batched"):
        self.kind = kind
        self.index = index
        self.n_hidden = int(n_hidden)
        self.n_symbols = index.n_symbols
        onehot = np.zeros((len(index), index.n_symbols))
        onehot[index.observed_idx, index.observed_symbols] = 1.0
        self.onehot = onehot
        self.fast = bool(config.fast_path)
        width = self.n_hidden
        if kind == "mmhd":
            self.n_states = self.n_hidden * self.n_symbols
            self.state_symbol = np.tile(np.arange(self.n_symbols), self.n_hidden)
            self.cols = [
                m + self.n_symbols * np.arange(self.n_hidden)
                for m in range(self.n_symbols)
            ]
            width = self.n_states
        self._init_kernel(config, backend, width, n_steps=len(index))
        if kind == "mmhd" and self.fast:
            if self.kernel != "loop":
                self.kernel, self.kernel_fallback = "loop", "fast-path"
            self.dtype = np.dtype(np.float64)

    def forward_backward(self, pi, transition, likes):
        """One uniform forward-backward through the fit's kernel.

        Returns float64 ``(alpha, beta, scales, loglik)`` regardless of
        the working dtype — the loop-kernel float64 path is byte-for-
        byte the direct :func:`_batched_forward_backward` call it
        replaced.
        """
        pi, transition, likes = self._cast_inputs(pi, transition, likes)
        if self.kernel == "compiled":
            n_rows = likes.shape[1]
            lengths = np.full(n_rows, likes.shape[0])
            alpha, beta, scales = self._compiled_forward_backward(
                pi, transition, likes, lengths
            )
        elif self.kernel == "blocked":
            alpha, beta, scales = _blocked_forward_backward(
                pi, transition, likes, block_size=self.block_size,
                workspace=self.workspace,
            )
        else:
            alpha, beta, scales, loglik = _batched_forward_backward(
                pi, transition, likes, workspace=self.workspace
            )
            alpha, beta, scales = self._widen(alpha, beta, scales)
            return alpha, beta, scales, loglik
        alpha, beta, scales = self._widen(alpha, beta, scales)
        return alpha, beta, scales, _row_loglik(scales)


# ----------------------------------------------------------------------
# HMM restart stack
# ----------------------------------------------------------------------
class _HMMStats:
    """Per-row sufficient statistics of one batched HMM E-pass."""

    __slots__ = ("gamma0", "xi_sum", "joint_obs", "joint_loss", "loglik")

    def __init__(self, gamma0, xi_sum, joint_obs, joint_loss, loglik):
        self.gamma0 = gamma0
        self.xi_sum = xi_sum
        self.joint_obs = joint_obs
        self.joint_loss = joint_loss
        self.loglik = loglik


class _HMMBatch:
    """A stack of K HMM parameter sets, one batch row per restart."""

    kind = "hmm"
    __slots__ = ("pi", "transition", "emission", "loss_c")

    def __init__(self, pi, transition, emission, loss_c):
        self.pi = pi
        self.transition = transition
        self.emission = emission
        self.loss_c = loss_c

    @classmethod
    def from_models(cls, models: Sequence[HiddenMarkovModel]) -> "_HMMBatch":
        return cls(
            np.stack([m.pi for m in models]),
            np.stack([m.transition for m in models]),
            np.stack([m.emission for m in models]),
            np.stack([m.loss_given_symbol for m in models]),
        )

    @property
    def n_rows(self) -> int:
        return len(self.pi)

    def param_arrays(self):
        return (self.pi, self.transition, self.emission, self.loss_c)

    def rows(self, idx) -> "_HMMBatch":
        return _HMMBatch(
            self.pi[idx], self.transition[idx],
            self.emission[idx], self.loss_c[idx],
        )

    def set_rows(self, idx, sub: "_HMMBatch") -> None:
        self.pi[idx] = sub.pi
        self.transition[idx] = sub.transition
        self.emission[idx] = sub.emission
        self.loss_c[idx] = sub.loss_c

    def extract(self, row: int) -> HiddenMarkovModel:
        return HiddenMarkovModel(
            self.pi[row], self.transition[row],
            self.emission[row], self.loss_c[row],
        )

    def estep(self, aux: _EStepAux) -> _HMMStats:
        index = aux.index
        n_rows, n_hidden = self.pi.shape
        survive = 1.0 - self.loss_c                       # (K, M)
        weighted = self.emission * survive[:, None, :]    # (K, N, M)
        likes = np.empty((len(index), n_rows, n_hidden))
        syms = index.observed_symbols
        likes[index.observed_idx] = weighted[:, :, syms].transpose(2, 0, 1)
        loss_like = np.matmul(self.emission, self.loss_c[:, :, None])[:, :, 0]
        likes[index.loss_idx] = loss_like[None, :, :]
        alpha, beta, scales, loglik = aux.forward_backward(
            self.pi, self.transition, likes
        )
        gamma = alpha * beta
        weighted_b = likes[1:] * beta[1:] / scales[1:, :, None]
        xi_sum = self.transition * np.matmul(
            alpha[:-1].transpose(1, 2, 0), weighted_b.transpose(1, 0, 2)
        )
        # Expected (state, symbol) counts over observed instants: the
        # sequential engine's scatter-add becomes one batched GEMM
        # against the shared one-hot symbol matrix.
        joint_obs = np.matmul(gamma.transpose(1, 2, 0), aux.onehot)
        gamma_loss_total = gamma[index.loss_idx].sum(axis=0)       # (K, N)
        joint_loss = (
            (gamma_loss_total / loss_like)[:, :, None]
            * self.emission
            * self.loss_c[:, None, :]
        )
        return _HMMStats(gamma[0], xi_sum, joint_obs, joint_loss, loglik)

    def maximize(self, stats: _HMMStats, min_prob, prior) -> "_HMMBatch":
        pi = floor_and_normalize(stats.gamma0, min_prob)
        transition = floor_and_normalize(stats.xi_sum, min_prob)
        joint_total = stats.joint_obs + stats.joint_loss
        emission = floor_and_normalize(joint_total, min_prob)
        symbol_mass = joint_total.sum(axis=1)
        loss_mass = stats.joint_loss.sum(axis=1)
        prior_losses, prior_observations = prior
        loss_c = (loss_mass + prior_losses) / np.maximum(
            symbol_mass + prior_losses + prior_observations, 1e-300
        )
        loss_c = np.clip(loss_c, min_prob, 1.0 - min_prob)
        return _HMMBatch(pi, transition, emission, loss_c)

    @staticmethod
    def loss_symbol_mass(stats: _HMMStats):
        return stats.joint_loss.sum(axis=1)


# ----------------------------------------------------------------------
# MMHD restart stack
# ----------------------------------------------------------------------
class _MMHDStats:
    """Per-row sufficient statistics of one batched MMHD E-pass."""

    __slots__ = ("gamma0", "xi_sum", "loss_mass", "total_mass", "loglik")

    def __init__(self, gamma0, xi_sum, loss_mass, total_mass, loglik):
        self.gamma0 = gamma0
        self.xi_sum = xi_sum
        self.loss_mass = loss_mass
        self.total_mass = total_mass
        self.loglik = loglik


class _MMHDBatch:
    """A stack of K MMHD parameter sets, one batch row per restart."""

    kind = "mmhd"
    __slots__ = ("pi", "transition", "loss_c", "n_symbols")

    def __init__(self, pi, transition, loss_c, n_symbols):
        self.pi = pi
        self.transition = transition
        self.loss_c = loss_c
        self.n_symbols = int(n_symbols)

    @classmethod
    def from_models(
        cls, models: Sequence[MarkovModelHiddenDimension]
    ) -> "_MMHDBatch":
        return cls(
            np.stack([m.pi for m in models]),
            np.stack([m.transition for m in models]),
            np.stack([m.loss_given_symbol for m in models]),
            models[0].n_symbols,
        )

    @property
    def n_rows(self) -> int:
        return len(self.pi)

    def param_arrays(self):
        return (self.pi, self.transition, self.loss_c)

    def rows(self, idx) -> "_MMHDBatch":
        return _MMHDBatch(
            self.pi[idx], self.transition[idx], self.loss_c[idx],
            self.n_symbols,
        )

    def set_rows(self, idx, sub: "_MMHDBatch") -> None:
        self.pi[idx] = sub.pi
        self.transition[idx] = sub.transition
        self.loss_c[idx] = sub.loss_c

    def extract(self, row: int) -> MarkovModelHiddenDimension:
        return MarkovModelHiddenDimension(
            self.pi[row], self.transition[row], self.loss_c[row],
            self.n_symbols,
        )

    def _structured_blocks(self, aux: _EStepAux):
        """Batched per-(symbol, symbol) transition blocks.

        The stacked analogue of
        :meth:`MarkovModelHiddenDimension._structured_transition_blocks`:
        ``t_oo`` is ``(K, M_from, M_to, N, N)``, ``t_ol`` is
        ``(K, M, N, S)``, ``t_lo`` is ``(K, M, S, N)``, ``t_ll`` is
        ``(K, S, S)``, all with destination likelihoods folded in.
        """
        n_rows = self.n_rows
        n_hidden, n_symbols = aux.n_hidden, aux.n_symbols
        n_states = aux.n_states
        survive = 1.0 - self.loss_c                       # (K, M)
        c_state = self.loss_c[:, aux.state_symbol]        # (K, S)
        a4 = self.transition.reshape(
            n_rows, n_hidden, n_symbols, n_hidden, n_symbols
        )
        t_oo = (
            np.ascontiguousarray(a4.transpose(0, 2, 4, 1, 3))
            * survive[:, None, :, None, None]
        )
        t_ol = (
            np.ascontiguousarray(a4.transpose(0, 2, 1, 3, 4)).reshape(
                n_rows, n_symbols, n_hidden, n_states
            )
            * c_state[:, None, None, :]
        )
        t_lo = (
            np.ascontiguousarray(a4.transpose(0, 4, 1, 2, 3)).reshape(
                n_rows, n_symbols, n_states, n_hidden
            )
            * survive[:, :, None, None]
        )
        t_ll = self.transition * c_state[:, None, :]
        return t_oo, t_ol, t_lo, t_ll, survive, c_state

    def _estep_fast(self, aux: _EStepAux) -> _MMHDStats:
        """Support-restricted batched E-pass (see the MMHD fast path).

        Mirrors :meth:`MarkovModelHiddenDimension._estep_fast` step for
        step: ``N``-vectors at observed instants, ``N*M``-vectors at
        losses, with every recursion lifted to a leading batch axis.
        """
        index = aux.index
        n_rows = self.n_rows
        n_hidden, n_symbols = aux.n_hidden, aux.n_symbols
        n_states = aux.n_states
        symbols = index.symbol_list
        n_steps = len(symbols)
        n_losses = index.n_losses
        cols = aux.cols
        t_oo, t_ol, t_lo, t_ll, survive, c_state = self._structured_blocks(aux)

        scales = np.empty((n_steps, n_rows))
        alpha_obs = np.zeros((n_steps, n_rows, n_hidden))
        beta_obs = np.zeros((n_steps, n_rows, n_hidden))
        alpha_loss = np.empty((n_losses, n_rows, n_states))
        beta_loss = np.empty((n_losses, n_rows, n_states))

        # Forward pass.  As in :func:`_batched_forward_backward`, each
        # step's matmul writes straight into its (contiguous) output row
        # and zero-likelihood detection is deferred out of the loop.
        m0 = symbols[0]
        with np.errstate(divide="ignore", invalid="ignore"):
            if m0 >= 0:
                state = self.pi[:, cols[m0]] * survive[:, m0][:, None]
            else:
                state = self.pi * c_state
            total = np.add.reduce(state, axis=1)
            scales[0] = total
            prev = state / total[:, None]
            prev_m = m0
            loss_ptr = 0
            if m0 >= 0:
                alpha_obs[0] = prev
            else:
                alpha_loss[0] = prev
                loss_ptr = 1
            for t in range(1, n_steps):
                m = symbols[t]
                if m >= 0:
                    block = t_oo[:, prev_m, m] if prev_m >= 0 else t_lo[:, m]
                    dest = alpha_obs[t]
                else:
                    block = t_ol[:, prev_m] if prev_m >= 0 else t_ll
                    dest = alpha_loss[loss_ptr]
                    loss_ptr += 1
                np.matmul(prev[:, None, :], block,
                          out=dest.reshape(n_rows, 1, -1))
                total = np.add.reduce(dest, axis=1)
                scales[t] = total
                dest /= total[:, None]
                prev = dest
                prev_m = m
            _check_scales(scales)

            # Backward pass.
            last_m = symbols[n_steps - 1]
            loss_ptr = n_losses - 1
            if last_m >= 0:
                nxt = np.ones((n_rows, n_hidden))
                beta_obs[n_steps - 1] = nxt
            else:
                nxt = np.ones((n_rows, n_states))
                beta_loss[loss_ptr] = nxt
                loss_ptr -= 1
            next_m = last_m
            for t in range(n_steps - 2, -1, -1):
                m = symbols[t]
                if m >= 0:
                    block = t_oo[:, m, next_m] if next_m >= 0 else t_ol[:, m]
                    dest = beta_obs[t]
                else:
                    block = t_lo[:, next_m] if next_m >= 0 else t_ll
                    dest = beta_loss[loss_ptr]
                    loss_ptr -= 1
                np.matmul(block, nxt[:, :, None],
                          out=dest.reshape(n_rows, -1, 1))
                dest /= scales[t + 1][:, None]
                nxt = dest
                next_m = m

        # Occupancies.
        gamma_loss = alpha_loss * beta_loss                 # (L, K, S)
        obs_vals = (alpha_obs * beta_obs).sum(axis=2)       # (T, K)
        if m0 >= 0:
            gamma0 = np.zeros((n_rows, n_states))
            gamma0[:, cols[m0]] = alpha_obs[0] * beta_obs[0]
        else:
            gamma0 = gamma_loss[0]
        loss_mass = (
            gamma_loss.reshape(n_losses, n_rows, n_hidden, n_symbols)
            .sum(axis=(0, 2))
            if n_losses
            else np.zeros((n_rows, n_symbols))
        )
        observed_mass = np.matmul(obs_vals.T[:, None, :], aux.onehot)[:, 0]
        total_mass = loss_mass + observed_mass

        # Transition statistics, batched per (symbol, symbol) pair group.
        xi_sum = np.zeros((n_rows, n_states, n_states))
        oo, ol, lo, ll = index.pair_groups()
        inv_scales = 1.0 / scales
        loss_rank = index.loss_rank
        kix = np.arange(n_rows)
        for (mp, m), ts in oo.items():
            a = alpha_obs[ts - 1]
            b = beta_obs[ts] * inv_scales[ts][:, :, None]
            prod = np.matmul(a.transpose(1, 2, 0), b.transpose(1, 0, 2))
            xi_sum[np.ix_(kix, cols[mp], cols[m])] += t_oo[:, mp, m] * prod
        for mp, ts in ol.items():
            a = alpha_obs[ts - 1]
            b = beta_loss[loss_rank[ts]] * inv_scales[ts][:, :, None]
            prod = np.matmul(a.transpose(1, 2, 0), b.transpose(1, 0, 2))
            xi_sum[:, cols[mp], :] += t_ol[:, mp] * prod
        for m, ts in lo.items():
            a = alpha_loss[loss_rank[ts - 1]]
            b = beta_obs[ts] * inv_scales[ts][:, :, None]
            prod = np.matmul(a.transpose(1, 2, 0), b.transpose(1, 0, 2))
            xi_sum[:, :, cols[m]] += t_lo[:, m] * prod
        if len(ll):
            a = alpha_loss[loss_rank[ll - 1]]
            b = beta_loss[loss_rank[ll]] * inv_scales[ll][:, :, None]
            xi_sum += t_ll * np.matmul(
                a.transpose(1, 2, 0), b.transpose(1, 0, 2)
            )

        loglik = _row_loglik(scales)
        return _MMHDStats(gamma0, xi_sum, loss_mass, total_mass, loglik)

    def _estep_dense(self, aux: _EStepAux) -> _MMHDStats:
        """Reference batched E-pass over full ``(T, K, N*M)`` arrays."""
        index = aux.index
        n_rows = self.n_rows
        n_hidden, n_symbols = aux.n_hidden, aux.n_symbols
        n_steps = len(index)
        c_state = self.loss_c[:, aux.state_symbol]
        survive = 1.0 - self.loss_c
        likes = np.zeros((n_steps, n_rows, aux.n_states))
        likes[index.loss_idx] = c_state[None, :, :]
        syms = index.observed_symbols
        observed_survive = survive[:, syms].T             # (T_obs, K)
        for h in range(n_hidden):
            likes[index.observed_idx, :, h * n_symbols + syms] = observed_survive
        alpha, beta, scales, loglik = aux.forward_backward(
            self.pi, self.transition, likes
        )
        gamma = alpha * beta
        weighted = likes[1:] * beta[1:] / scales[1:, :, None]
        xi_sum = self.transition * np.matmul(
            alpha[:-1].transpose(1, 2, 0), weighted.transpose(1, 0, 2)
        )
        symbol_occ = gamma.reshape(
            n_steps, n_rows, n_hidden, n_symbols
        ).sum(axis=2)
        loss_mass = symbol_occ[index.loss_idx].sum(axis=0)
        total_mass = symbol_occ.sum(axis=0)
        return _MMHDStats(gamma[0], xi_sum, loss_mass, total_mass, loglik)

    def estep(self, aux: _EStepAux) -> _MMHDStats:
        return self._estep_fast(aux) if aux.fast else self._estep_dense(aux)

    def maximize(self, stats: _MMHDStats, min_prob, prior) -> "_MMHDBatch":
        pi = floor_and_normalize(stats.gamma0, min_prob)
        transition = floor_and_normalize(stats.xi_sum, min_prob)
        prior_losses, prior_observations = prior
        loss_c = (stats.loss_mass + prior_losses) / np.maximum(
            stats.total_mass + prior_losses + prior_observations, 1e-300
        )
        loss_c = np.clip(loss_c, min_prob, 1.0 - min_prob)
        return _MMHDBatch(pi, transition, loss_c, self.n_symbols)

    @staticmethod
    def loss_symbol_mass(stats: _MMHDStats):
        return stats.loss_mass


_BATCH_TYPES = {"hmm": _HMMBatch, "mmhd": _MMHDBatch}
_FITTED_TYPES = {"hmm": FittedHMM, "mmhd": FittedMMHD}


def _row_param_change(old, new) -> np.ndarray:
    """Per-row max absolute parameter change between two batches."""
    change = np.zeros(old.n_rows)
    for a, b in zip(old.param_arrays(), new.param_arrays()):
        np.maximum(
            change,
            np.abs(a - b).reshape(old.n_rows, -1).max(axis=1),
            out=change,
        )
    return change


def _initial_model(kind, seq, n_hidden, config, restart):
    """One restart's initial model, on the same RNG stream the
    sequential engine uses (so both backends start identically)."""
    rng = restart_rng(config.seed, restart)
    if kind == "hmm":
        pi, transition, emission, c = hmm_initial_parameters(seq, n_hidden, rng)
        return HiddenMarkovModel(pi, transition, emission, c)
    pi, transition, c = mmhd_initial_parameters(
        seq, n_hidden, rng, data_driven=config.data_driven_init
    )
    return MarkovModelHiddenDimension(pi, transition, c, seq.n_symbols)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_estep(batch, aux):
    """One E-pass with the automatic float32 -> float64 retry.

    At float64 this is exactly ``batch.estep(aux)``.  At float32 a
    :class:`_BatchZeroLikelihood` triggers one demotion (see
    :meth:`_KernelState.demote`) and a retry of the same pass at full
    precision; only a collapse that survives float64 — a genuine zero
    likelihood — propagates to the driver's retirement logic.
    """
    try:
        return batch.estep(aux)
    except _BatchZeroLikelihood:
        if not aux.demote():
            raise
        return batch.estep(aux)


class _BatchedEM:
    """EM over a restart stack with convergence masking.

    Each :meth:`step` runs one batched E+M iteration over the *active*
    rows only: rows whose parameters have converged are frozen in the
    stack and never recomputed (row independence of the batched ops
    means removing them cannot perturb the survivors).  Per-row freeze
    periods reproduce the sequential warm start, and ``soft_rows`` (the
    hedged warm row) survive a zero-likelihood forward pass as a
    retirement instead of a :class:`FloatingPointError`.
    """

    def __init__(self, batch, aux: _EStepAux, config: EMConfig,
                 freeze_iters: Sequence[int], soft_rows=()):
        self.batch = batch
        self.aux = aux
        self.config = config
        self.freeze_iters = np.asarray(freeze_iters, dtype=int)
        self.soft_rows = frozenset(int(r) for r in soft_rows)
        n_rows = batch.n_rows
        self.active = np.arange(n_rows)
        self.trails: List[List[float]] = [[] for _ in range(n_rows)]
        self.converged = np.zeros(n_rows, dtype=bool)
        self.failed: set = set()
        self.iteration = 0
        self.frozen_c = batch.loss_c.copy()
        self.batch_iterations = 0
        self.active_row_iterations = 0
        self.prior = (config.loss_prior_losses, config.loss_prior_observations)

    def step(self) -> bool:
        """One batched EM iteration; ``False`` once there is no work."""
        if self.iteration >= self.config.max_iter or not len(self.active):
            return False
        while True:
            if not len(self.active):
                return False
            sub = self.batch.rows(self.active)
            try:
                stats = run_estep(sub, self.aux)
            except _BatchZeroLikelihood as exc:
                self._retire_failed(exc)
                continue
            break
        new_sub = sub.maximize(stats, self.config.min_prob, self.prior)
        for k, row in enumerate(self.active):
            self.trails[row].append(float(stats.loglik[k]))
        # Warm start: rows still inside their freeze period keep the
        # initial loss channel and skip the convergence check, exactly
        # like the sequential loop's freeze branch.
        frozen = self.iteration < self.freeze_iters[self.active]
        if np.any(frozen):
            new_sub.loss_c[frozen] = self.frozen_c[self.active[frozen]]
        newly_converged = ~frozen & (
            _row_param_change(sub, new_sub) < self.config.tol
        )
        self.batch.set_rows(self.active, new_sub)
        self.converged[self.active[newly_converged]] = True
        self.batch_iterations += 1
        self.active_row_iterations += len(self.active)
        self.active = self.active[~newly_converged]
        self.iteration += 1
        return True

    def _retire_failed(self, exc: _BatchZeroLikelihood) -> None:
        rows = self.active[exc.rows]
        if any(int(r) not in self.soft_rows for r in rows):
            raise FloatingPointError(f"zero likelihood at t={exc.t}")
        for r in rows:
            self.failed.add(int(r))
        self.active = self.active[~np.isin(self.active, rows)]

    def retire(self, row: int) -> None:
        """Drop a row from the batch without marking it converged."""
        self.active = self.active[self.active != row]

    def run(self) -> None:
        while self.step():
            pass


def _finalize(kind, batch, aux, trails, converged, rows=None):
    """One trailing batched E-pass -> fitted models for ``rows``.

    Like the sequential engines, the final pass yields both the trailing
    log-likelihood and the eq. (5) posterior in a single sweep.
    """
    idx = np.arange(batch.n_rows) if rows is None else np.asarray(rows)
    sub = batch.rows(idx)
    stats = run_estep(sub, aux)
    mass = sub.loss_symbol_mass(stats)
    fitted_cls = _FITTED_TYPES[kind]
    fits = []
    for k, row in enumerate(idx):
        row_mass = mass[k]
        fits.append(fitted_cls(
            model=sub.extract(k),
            virtual_delay_pmf=row_mass / row_mass.sum(),
            log_likelihoods=trails[row] + [float(stats.loglik[k])],
            converged=bool(converged[row]),
            n_iter=len(trails[row]),
        ))
    return fits


def _run_shard(kind, seq, n_hidden, config, restarts,
               index: Optional[SymbolIndex] = None,
               backend: str = "batched"):
    """Drive one batch of restarts to completion.

    Returns ``(fits, info)`` with ``fits`` in restart order and ``info``
    carrying the occupancy and kernel accounting for the ``em.backend``
    event.
    """
    if index is None:
        index = SymbolIndex(seq)
    aux = _EStepAux(kind, index, config, n_hidden, backend=backend)
    models = [
        _initial_model(kind, seq, n_hidden, config, r) for r in restarts
    ]
    batch = _BATCH_TYPES[kind].from_models(models)
    driver = _BatchedEM(
        batch, aux, config, [config.freeze_loss_iters] * len(restarts)
    )
    try:
        driver.run()
        fits = _finalize(kind, batch, aux, driver.trails, driver.converged)
    except _BatchZeroLikelihood as exc:
        raise FloatingPointError(f"zero likelihood at t={exc.t}") from None
    for restart, fitted in zip(restarts, fits):
        record_restart(kind, restart, fitted)
    info = {
        "rows": len(restarts),
        "batch_iterations": driver.batch_iterations,
        "active_row_iterations": driver.active_row_iterations,
    }
    info.update(_kernel_info(aux))
    return fits, info


def _kernel_info(aux) -> dict:
    """Kernel accounting keys of one aux for the ``em.backend`` event."""
    info = {
        "kernel": aux.kernel,
        "block_size": aux.block_size if aux.kernel == "blocked" else 0,
        "dtype": str(aux.dtype),
        "dtype_fallbacks": aux.dtype_fallbacks,
    }
    if aux.kernel_fallback:
        info["kernel_fallback"] = aux.kernel_fallback
    return info


def _shard_worker(task):
    """Batch one restart shard (parallel-map worker)."""
    kind, seq, n_hidden, config, restarts, backend = task
    return _run_shard(kind, seq, n_hidden, config, restarts, backend=backend)


def batched_restart_fits(kind, seq: ObservationSequence, n_hidden: int,
                         config: EMConfig,
                         index: Optional[SymbolIndex] = None,
                         backend: str = "batched"):
    """All restarts of one fit through the batched engine.

    With ``config.n_jobs > 1`` the restarts split into contiguous shards
    and each pool worker batches its own shard — pool parallelism and
    batching compose.  Returns the fitted models in restart order; the
    caller performs the best-of reduction.
    """
    n_restarts = config.n_restarts
    n_shards = min(resolve_n_jobs(config.n_jobs), n_restarts)
    restarts = list(range(n_restarts))
    if n_shards <= 1:
        fits, info = _run_shard(kind, seq, n_hidden, config, restarts,
                                index=index, backend=backend)
        infos = [info]
    else:
        shards = shard_items(restarts, n_shards)
        tasks = [(kind, seq, n_hidden, config, shard, backend)
                 for shard in shards]
        mapped = parallel_map(_shard_worker, tasks, n_jobs=n_shards,
                              chunksize=1)
        fits = [f for shard_fits, _ in mapped for f in shard_fits]
        infos = [info for _, info in mapped]
    record_backend(kind, backend, n_shards=len(infos), infos=infos)
    return fits


def record_backend(kind: str, backend: str, n_shards: int,
                   infos: Sequence[dict]) -> None:
    """Per-backend telemetry for one fit: counter + ``em.backend`` event.

    ``occupancy`` is the fraction of batch-row slots that did useful
    work; ``masked_savings`` is the complement — E-step work skipped
    because converged restarts were masked out of their batch.  The
    sequential engine reports occupancy 1.0 by construction.

    Kernel accounting rides in optional info keys (absent for the
    sequential engine, whose per-restart loop is the ``loop`` kernel at
    float64 by definition): ``kernel`` / ``block_size`` / ``dtype`` are
    what actually ran — so a float32 fit that demoted reports
    ``dtype=float64`` with ``dtype_fallbacks > 0``, and a ``compiled``
    request without numba reports the kernel it degraded to plus a
    ``kernel_fallback`` reason.
    """
    if not obs.is_enabled():
        return
    rows = sum(i["rows"] for i in infos)
    batch_iterations = sum(i["batch_iterations"] for i in infos)
    active = sum(i["active_row_iterations"] for i in infos)
    slots = sum(i["rows"] * i["batch_iterations"] for i in infos)
    occupancy = active / slots if slots else 1.0
    kernels = {i.get("kernel", "loop") for i in infos}
    dtypes = {i.get("dtype", "float64") for i in infos}
    fallbacks = {i["kernel_fallback"] for i in infos
                 if i.get("kernel_fallback")}
    obs.inc("repro_em_backend_fits_total", 1.0, model=kind, backend=backend)
    obs.observe("repro_em_batch_occupancy_ratio", occupancy, model=kind)
    obs.inc("repro_em_masked_iterations_total", float(slots - active),
            model=kind)
    extra = {}
    if fallbacks:
        extra["kernel_fallback"] = "+".join(sorted(fallbacks))
    obs.emit(
        "em.backend",
        model=kind,
        backend=backend,
        n_restarts=rows,
        n_shards=int(n_shards),
        batch_iterations=batch_iterations,
        occupancy=round(occupancy, 6),
        masked_savings=round(1.0 - occupancy, 6),
        kernel=kernels.pop() if len(kernels) == 1 else "mixed",
        block_size=max(int(i.get("block_size", 0)) for i in infos),
        dtype=dtypes.pop() if len(dtypes) == 1 else "mixed",
        dtype_fallbacks=sum(int(i.get("dtype_fallbacks", 0)) for i in infos),
        **extra,
    )


# ----------------------------------------------------------------------
# Ragged multi-sequence batches
# ----------------------------------------------------------------------
def _length_groups(lengths):
    """``(length, row positions)`` per distinct row length, ascending.

    The accumulation loops slice their time axis per group so every GEMM
    and reduction contracts over exactly the row's own ``T_r`` steps —
    the property that keeps per-row statistics bit-identical to a solo
    fit (zero-padding the contraction would change the BLAS blocking).
    """
    return [
        (int(t), np.flatnonzero(lengths == t)) for t in np.unique(lengths)
    ]


def _ragged_forward_backward(pi, transition, likes, lengths,
                             workspace=None):
    """Scaled forward-backward over rows of unequal length.

    Like :func:`_batched_forward_backward`, but ``likes`` rows are only
    meaningful for their first ``lengths[k]`` steps (zero beyond).
    Padded steps are *carried*: the forward pass repeats the last valid
    ``alpha`` and forces the padded scale to 1, so the per-row
    log-likelihood (``sum(log(scales[:T_r]))``, taken by the caller per
    length group) never sees a padded factor; the backward pass carries
    ``beta`` leftward so the row's last valid step holds exactly the
    solo boundary value 1.  Every valid slot is bit-identical to a solo
    run of that row.
    """
    n_steps, n_rows, n = likes.shape
    ws = workspace if workspace is not None else _Workspace()
    dtype = likes.dtype
    lengths = np.asarray(lengths)
    order = np.argsort(lengths, kind="stable")
    sorted_lengths = lengths[order]
    min_len = int(sorted_lengths[0])

    def padded_rows(t):
        """Rows already past their end at step ``t`` (length <= t)."""
        return order[: np.searchsorted(sorted_lengths, t, side="right")]

    alpha = ws.get("alpha", likes.shape, dtype)
    scales = ws.get("scales", (n_steps, n_rows), dtype)
    with np.errstate(divide="ignore", invalid="ignore", under="ignore"):
        state = pi * likes[0]
        total = np.add.reduce(state, axis=1)
        scales[0] = total
        np.divide(state, total[:, None], out=alpha[0])
        for t in range(1, n_steps):
            state = alpha[t]
            np.matmul(alpha[t - 1][:, None, :], transition,
                      out=state.reshape(n_rows, 1, n))
            state *= likes[t]
            total = np.add.reduce(state, axis=1)
            scales[t] = total
            state /= total[:, None]
            if t >= min_len:
                pad = padded_rows(t)
                state[pad] = alpha[t - 1][pad]
                scales[t, pad] = 1.0
        # Padded scales are exactly 1.0, so the uniform checker sees
        # only genuine zeros (always at a valid step of some row).
        _check_scales(scales)
        beta = ws.get("beta", likes.shape, dtype)
        beta[n_steps - 1] = 1.0
        scaled = ws.get("scaled", (n_steps - 1, n_rows, n), dtype)
        np.divide(likes[1:], scales[1:, :, None], out=scaled)
        buf = ws.get("buf", (n_rows, n, 1), dtype)
        for t in range(n_steps - 2, -1, -1):
            np.multiply(scaled[t], beta[t + 1], out=buf[:, :, 0])
            np.matmul(transition, buf, out=beta[t].reshape(n_rows, n, 1))
            if t + 1 >= min_len:
                pad = padded_rows(t + 1)
                beta[t][pad] = beta[t + 1][pad]
    return alpha, beta, scales


class _RaggedAux(_KernelState):
    """Per-mega-batch constants shared by every ragged E-pass.

    The ragged analogue of :class:`_EStepAux`: everything derivable from
    the stacked symbols alone is computed once per batch.  Row subsets
    (the driver's active-row masking) slice into these arrays through
    each sub-batch's ``stack_rows``.  The kernel state deliberately gets
    *no* sequence length: the blocked kernel must run at the pinned
    :data:`RAGGED_BLOCK_SIZE` (or an explicit ``config.block_size``) so
    a row's arithmetic never depends on its mega-batch's ``t_max`` —
    the fused-equals-solo byte-identity contract.
    """

    def __init__(self, kind: str, stack: SymbolStack, config: EMConfig,
                 n_hidden: int, backend: str = "batched"):
        self.kind = kind
        self.stack = stack
        self.n_hidden = int(n_hidden)
        self.n_symbols = stack.n_symbols
        width = self.n_hidden
        if kind == "hmm":
            # Row-major one-hot observed symbols for the joint_obs GEMM.
            onehot = np.zeros((stack.n_rows, stack.t_max, stack.n_symbols))
            k, t = np.nonzero(stack.observed)
            onehot[k, t, stack.symbols0[k, t]] = 1.0
            self.onehot = onehot
        else:
            self.n_states = self.n_hidden * self.n_symbols
            self.state_symbol = np.tile(
                np.arange(self.n_symbols), self.n_hidden
            )
            width = self.n_states
        self._init_kernel(config, backend, width, n_steps=None)

    def ragged_forward_backward(self, pi, transition, likes, lengths):
        """One ragged forward-backward through the batch's kernel.

        Returns float64 ``(alpha, beta, scales)``; the loop-kernel
        float64 path is byte-for-byte the direct
        :func:`_ragged_forward_backward` call it replaced.
        """
        pi, transition, likes = self._cast_inputs(pi, transition, likes)
        if self.kernel == "compiled":
            alpha, beta, scales = self._compiled_forward_backward(
                pi, transition, likes, lengths
            )
        elif self.kernel == "blocked":
            alpha, beta, scales = _blocked_forward_backward(
                pi, transition, likes, block_size=self.block_size,
                lengths=lengths, workspace=self.workspace,
            )
        else:
            alpha, beta, scales = _ragged_forward_backward(
                pi, transition, likes, lengths, workspace=self.workspace
            )
        return self._widen(alpha, beta, scales)


class _RaggedHMMBatch(_HMMBatch):
    """HMM parameter stack whose rows own (unequal-length) sequences."""

    __slots__ = ("stack_rows",)

    def __init__(self, pi, transition, emission, loss_c, stack_rows):
        super().__init__(pi, transition, emission, loss_c)
        self.stack_rows = np.asarray(stack_rows)

    @classmethod
    def from_models(cls, models, stack_rows):
        base = _HMMBatch.from_models(models)
        return cls(base.pi, base.transition, base.emission, base.loss_c,
                   stack_rows)

    def rows(self, idx) -> "_RaggedHMMBatch":
        return _RaggedHMMBatch(
            self.pi[idx], self.transition[idx], self.emission[idx],
            self.loss_c[idx], self.stack_rows[idx],
        )

    def maximize(self, stats, min_prob, prior) -> "_RaggedHMMBatch":
        base = super().maximize(stats, min_prob, prior)
        return _RaggedHMMBatch(base.pi, base.transition, base.emission,
                               base.loss_c, self.stack_rows)

    def estep(self, aux: _RaggedAux) -> _HMMStats:
        stack = aux.stack
        rows = self.stack_rows
        lengths = stack.lengths[rows]
        t_act = int(lengths.max())
        n_rows, n_hidden = self.pi.shape
        survive = 1.0 - self.loss_c                       # (K, M)
        weighted = self.emission * survive[:, None, :]    # (K, N, M)
        loss_like = np.matmul(self.emission, self.loss_c[:, :, None])[:, :, 0]
        sub_syms = stack.symbols0[rows, :t_act]           # (K, t_act)
        likes = np.zeros((t_act, n_rows, n_hidden))
        obs_k, obs_t = np.nonzero(stack.observed[rows, :t_act])
        likes[obs_t, obs_k] = weighted[obs_k, :, sub_syms[obs_k, obs_t]]
        lost = stack.lost[rows, :t_act]                   # (K, t_act)
        loss_k, loss_t = np.nonzero(lost)
        likes[loss_t, loss_k] = loss_like[loss_k]
        alpha, beta, scales = aux.ragged_forward_backward(
            self.pi, self.transition, likes, lengths
        )
        gamma = alpha * beta
        weighted_b = likes[1:] * beta[1:] / scales[1:, :, None]
        onehot = aux.onehot[rows, :t_act]                 # (K, t_act, M)
        xi_sum = np.empty_like(self.transition)
        joint_obs = np.empty_like(self.emission)
        gamma_loss_total = np.empty_like(self.pi)
        loglik = np.empty(n_rows)
        for t_g, idx in _length_groups(lengths):
            g = gamma[:t_g, idx]                          # (t_g, K_g, N)
            joint_obs[idx] = np.matmul(
                g.transpose(1, 2, 0), onehot[idx, :t_g]
            )
            xi_sum[idx] = self.transition[idx] * np.matmul(
                alpha[: t_g - 1, idx].transpose(1, 2, 0),
                weighted_b[: t_g - 1, idx].transpose(1, 0, 2),
            )
            # Masked time sum == the uniform engine's gathered loss-step
            # sum: axis-0 reductions accumulate strictly left to right,
            # so interleaved zeros cannot move a single bit.
            gamma_loss_total[idx] = np.add.reduce(
                g * lost[idx, :t_g].T[:, :, None], axis=0
            )
            loglik[idx] = _row_loglik(scales[:t_g, idx])
        joint_loss = (
            (gamma_loss_total / loss_like)[:, :, None]
            * self.emission
            * self.loss_c[:, None, :]
        )
        return _HMMStats(gamma[0], xi_sum, joint_obs, joint_loss, loglik)


class _RaggedMMHDBatch(_MMHDBatch):
    """MMHD parameter stack whose rows own (unequal-length) sequences.

    Uses the dense ``(T, K, N*M)`` state layout: the support-restricted
    fast path keys its block structure off one shared symbol sequence
    and cannot batch rows whose symbols differ.  At streaming-monitor
    state widths the dense per-step matmul is the same interpreter-bound
    cost, so nothing is lost.
    """

    __slots__ = ("stack_rows",)

    def __init__(self, pi, transition, loss_c, n_symbols, stack_rows):
        super().__init__(pi, transition, loss_c, n_symbols)
        self.stack_rows = np.asarray(stack_rows)

    @classmethod
    def from_models(cls, models, stack_rows):
        base = _MMHDBatch.from_models(models)
        return cls(base.pi, base.transition, base.loss_c, base.n_symbols,
                   stack_rows)

    def rows(self, idx) -> "_RaggedMMHDBatch":
        return _RaggedMMHDBatch(
            self.pi[idx], self.transition[idx], self.loss_c[idx],
            self.n_symbols, self.stack_rows[idx],
        )

    def maximize(self, stats, min_prob, prior) -> "_RaggedMMHDBatch":
        base = super().maximize(stats, min_prob, prior)
        return _RaggedMMHDBatch(base.pi, base.transition, base.loss_c,
                                base.n_symbols, self.stack_rows)

    def estep(self, aux: _RaggedAux) -> _MMHDStats:
        stack = aux.stack
        rows = self.stack_rows
        lengths = stack.lengths[rows]
        t_act = int(lengths.max())
        n_rows = self.n_rows
        n_hidden, n_symbols = aux.n_hidden, aux.n_symbols
        c_state = self.loss_c[:, aux.state_symbol]        # (K, S)
        survive = 1.0 - self.loss_c                       # (K, M)
        sub_syms = stack.symbols0[rows, :t_act]
        likes = np.zeros((t_act, n_rows, aux.n_states))
        obs_k, obs_t = np.nonzero(stack.observed[rows, :t_act])
        syms = sub_syms[obs_k, obs_t]
        vals = survive[obs_k, syms]
        for h in range(n_hidden):
            likes[obs_t, obs_k, h * n_symbols + syms] = vals
        lost = stack.lost[rows, :t_act]
        loss_k, loss_t = np.nonzero(lost)
        likes[loss_t, loss_k] = c_state[loss_k]
        alpha, beta, scales = aux.ragged_forward_backward(
            self.pi, self.transition, likes, lengths
        )
        gamma = alpha * beta
        weighted_b = likes[1:] * beta[1:] / scales[1:, :, None]
        symbol_occ = gamma.reshape(
            t_act, n_rows, n_hidden, n_symbols
        ).sum(axis=2)
        xi_sum = np.empty_like(self.transition)
        loss_mass = np.empty_like(self.loss_c)
        total_mass = np.empty_like(self.loss_c)
        loglik = np.empty(n_rows)
        for t_g, idx in _length_groups(lengths):
            xi_sum[idx] = self.transition[idx] * np.matmul(
                alpha[: t_g - 1, idx].transpose(1, 2, 0),
                weighted_b[: t_g - 1, idx].transpose(1, 0, 2),
            )
            occ = symbol_occ[:t_g, idx]                   # (t_g, K_g, M)
            loss_mass[idx] = np.add.reduce(
                occ * lost[idx, :t_g].T[:, :, None], axis=0
            )
            total_mass[idx] = np.add.reduce(occ, axis=0)
            loglik[idx] = _row_loglik(scales[:t_g, idx])
        return _MMHDStats(gamma[0], xi_sum, loss_mass, total_mass, loglik)


_RAGGED_TYPES = {"hmm": _RaggedHMMBatch, "mmhd": _RaggedMMHDBatch}


# ----------------------------------------------------------------------
# Hedged streaming fit
# ----------------------------------------------------------------------
def _shared_config_key(config: EMConfig):
    """Fields every window of one mega-batch must agree on (seed and
    n_jobs may differ per window; everything that shapes the shared
    driver may not)."""
    return (
        config.tol, config.max_iter, config.min_prob, config.n_restarts,
        config.freeze_loss_iters, config.data_driven_init,
        config.loss_prior_losses, config.loss_prior_observations,
        config.fast_path, config.backend, config.dtype, config.block_size,
    )


def run_hedged_fits(kind, seqs: Sequence[ObservationSequence],
                    n_hidden: int, configs: Sequence[EMConfig],
                    warm_models: Sequence,
                    trail_problem: Callable[[List[float]], Optional[str]],
                    backend: str = "batched"):
    """Hedged warm-vs-cold fits for many windows in ONE ragged batch.

    Phase one stacks every window's warm row (no loss-channel freeze,
    soft zero-likelihood handling) into one ragged batch and drives them
    together; a window whose warm row survives to convergence finalizes
    and is done.  Cold hedging is *lazy*: only windows whose warm
    trajectory fails (zero likelihood, trail collapse, or a failing
    trailing E-pass) enter a second ragged batch of ``n_restarts`` cold
    rows each, seeded from ``configs[w].seed``, run to convergence for
    the best-of fallback.  Cold EM trajectories are deterministic and
    independent of the warm rows, so deferring them returns exactly the
    fits eager hedging would — while the common all-warm round pays for
    one row per window instead of ``1 + n_restarts``.

    Because batch rows are computed independently and all accumulations
    are sliced per row length, every window's result is bit-identical to
    running :func:`run_hedged_fit` on that window alone — the parity
    contract behind the scheduler's fused drain mode.

    ``configs`` may differ only in ``seed`` / ``n_jobs``.  Returns
    ``(results, info)``: ``results[w]`` is the solo-compatible
    ``(fitted, warm_used, fallback_reason)`` triple, ``info`` the
    occupancy/padding accounting of the shared batch.

    Raises :class:`FloatingPointError` when any cold row hits zero
    likelihood (matching the solo engine; the affected drain aborts the
    same way in either drain mode).
    """
    n_windows = len(seqs)
    if not n_windows:
        return [], {"windows": 0, "rows": 0, "batch_iterations": 0,
                    "active_row_iterations": 0, "pad_fraction": 0.0,
                    "t_max": 0}
    config = configs[0]
    shared = _shared_config_key(config)
    for cfg in configs[1:]:
        if _shared_config_key(cfg) != shared:
            raise ValueError(
                "run_hedged_fits windows must share every EMConfig field "
                "except seed/n_jobs"
            )
    n_restarts = config.n_restarts

    # Phase one: every window's warm row, one ragged batch (row w is
    # window w).
    stack = SymbolStack(list(seqs))
    aux = _RaggedAux(kind, stack, config, n_hidden, backend=backend)
    batch = _RAGGED_TYPES[kind].from_models(list(warm_models),
                                            np.arange(n_windows))
    driver = _BatchedEM(batch, aux, config, [0] * n_windows,
                        soft_rows=set(range(n_windows)))

    reasons: List[Optional[str]] = [None] * n_windows
    results: List = [None] * n_windows
    unresolved = set(range(n_windows))

    def finalize_warm_rows(windows):
        """Batched trailing E-pass over these windows' warm rows.

        Returns ``{window: fitted}``; a window whose warm pass hits zero
        likelihood gets ``reasons[w]`` set instead (the solo
        ``finalize_warm`` failure path) and the pass retries without it.
        """
        out = {}
        pending = list(windows)
        while pending:
            try:
                fits = _finalize(kind, batch, aux, driver.trails,
                                 driver.converged, rows=pending)
            except _BatchZeroLikelihood as exc:
                failed_local = {int(i) for i in exc.rows}
                survivors = []
                for i, w in enumerate(pending):
                    if i in failed_local:
                        reasons[w] = "zero-likelihood"
                    else:
                        survivors.append(w)
                pending = survivors
                continue
            out.update(zip(pending, fits))
            break
        return out

    def accept_or_fallback(windows):
        """Finalize warm rows; accept healthy ones, flag the rest."""
        for w, fitted in finalize_warm_rows(windows).items():
            problem = trail_problem(fitted.log_likelihoods)
            if problem is not None:
                reasons[w] = problem
            else:
                results[w] = (fitted, True, None)
                unresolved.discard(w)

    while True:
        progressed = driver.step()
        to_finalize = []
        for w in sorted(unresolved):
            if reasons[w] is not None:
                continue
            if w in driver.failed:
                reasons[w] = "zero-likelihood"
            elif driver.trails[w]:
                problem = trail_problem(driver.trails[w])
                if problem is not None:
                    reasons[w] = problem
                    driver.retire(w)
                elif driver.converged[w]:
                    to_finalize.append(w)
        if to_finalize:
            accept_or_fallback(to_finalize)
        if not progressed:
            break

    # max_iter exhausted with the warm trajectory intact: the sequential
    # policy still prefers the healthy warm fit.
    leftovers = [w for w in sorted(unresolved) if reasons[w] is None]
    if leftovers:
        accept_or_fallback(leftovers)

    # Phase two: lazy cold hedge — a second ragged batch of n_restarts
    # rows per fallback window, run to convergence.  Cold trajectories
    # never depend on the warm rows, so these fits are bit-identical to
    # cold rows that had iterated alongside phase one.
    info = {
        "windows": n_windows,
        "rows": batch.n_rows,
        "batch_iterations": driver.batch_iterations,
        "active_row_iterations": driver.active_row_iterations,
        "lengths_sum": int(stack.lengths.sum()),
        "slots": stack.n_rows * stack.t_max,
        "iter_slots": batch.n_rows * driver.batch_iterations,
        "t_max": stack.t_max,
    }
    info.update(_kernel_info(aux))
    fallback = sorted(unresolved)
    if fallback:
        cold_seqs: List[ObservationSequence] = []
        cold_models: List = []
        for w in fallback:
            for r in range(n_restarts):
                cold_seqs.append(seqs[w])
                cold_models.append(
                    _initial_model(kind, seqs[w], n_hidden, configs[w], r)
                )
        cold_stack = SymbolStack(cold_seqs)
        cold_aux = _RaggedAux(kind, cold_stack, config, n_hidden,
                              backend=backend)
        cold_batch = _RAGGED_TYPES[kind].from_models(
            cold_models, np.arange(len(cold_models))
        )
        cold_driver = _BatchedEM(
            cold_batch, cold_aux, config,
            [config.freeze_loss_iters] * len(cold_models),
        )
        cold_driver.run()
        try:
            fits = _finalize(kind, cold_batch, cold_aux, cold_driver.trails,
                             cold_driver.converged)
        except _BatchZeroLikelihood as exc:
            raise FloatingPointError(
                f"zero likelihood at t={exc.t}"
            ) from None
        for i, w in enumerate(fallback):
            wfits = fits[i * n_restarts: (i + 1) * n_restarts]
            for restart, fitted in enumerate(wfits):
                record_restart(kind, restart, fitted)
            best_restart = 0
            for restart, fitted in enumerate(wfits[1:], start=1):
                if fitted.log_likelihood > wfits[best_restart].log_likelihood:
                    best_restart = restart
            record_fit(kind, wfits, best_restart)
            results[w] = (wfits[best_restart], False, reasons[w])
        info["rows"] += cold_batch.n_rows
        info["batch_iterations"] += cold_driver.batch_iterations
        info["active_row_iterations"] += cold_driver.active_row_iterations
        info["lengths_sum"] += int(cold_stack.lengths.sum())
        info["slots"] += cold_stack.n_rows * cold_stack.t_max
        info["iter_slots"] += cold_batch.n_rows * cold_driver.batch_iterations
        info["dtype_fallbacks"] += cold_aux.dtype_fallbacks
        if str(cold_aux.dtype) != info["dtype"]:
            info["dtype"] = str(cold_aux.dtype)

    slots = info.pop("slots")
    lengths_sum = info.pop("lengths_sum")
    iter_slots = info.pop("iter_slots")
    info["occupancy"] = (
        info["active_row_iterations"] / iter_slots if iter_slots else 1.0
    )
    info["pad_fraction"] = float(1.0 - lengths_sum / slots) if slots else 0.0
    return results, info


def run_hedged_fit(kind, seq: ObservationSequence, n_hidden: int,
                   config: EMConfig, warm_model,
                   trail_problem: Callable[[List[float]], Optional[str]],
                   index: Optional[SymbolIndex] = None,
                   backend: str = "batched"):
    """Warm-started fit with a lazy cold-restart hedge.

    One batched EM drives the warm row (no loss-channel freeze, like the
    sequential warm path).  If the warm trajectory survives — no zero
    likelihood, no trail collapse per ``trail_problem`` — the fit
    returns as soon as that row converges, having paid for nothing else.
    If it collapses, ``config.n_restarts`` cold rows run to convergence
    in one batch for the best-of fallback.

    Implemented as the one-window case of :func:`run_hedged_fits`, so a
    per-window (pool) drain and a fused drain run the exact same kernel
    — that shared kernel is what makes their verdict streams
    byte-identical.  ``index`` is accepted for API compatibility; the
    ragged engine builds its own stacked index.

    Returns ``(fitted, warm_used, fallback_reason)`` matching the
    sequential policy in :func:`repro.streaming.online_em.streaming_fit`.
    """
    del index  # the ragged engine indexes the (single-row) stack itself
    results, _ = run_hedged_fits(
        kind, [seq], n_hidden, [config], [warm_model], trail_problem,
        backend=backend,
    )
    return results[0]
