"""Per-window goodness-of-fit diagnostics from E-step byproducts.

The identification procedure publishes a verdict per window, but the
verdict is only as trustworthy as the HMM/MMHD assumptions behind it:
Markov symbol dynamics with geometric state dwell, a loss channel tied
to the delay symbol, and stationarity over the window.  This module
extracts, from one extra scaled forward--backward pass over the *final*
fitted model, the quantities that say whether those assumptions held:

* **per-observation log-likelihood** — the scale factors of the forward
  recursion are exactly the one-step predictive probabilities
  ``p(o_t | o_{1:t-1})``, so ``mean(log scales)`` is a length-normalized
  sequence-predictability score comparable across windows (the signal
  the streaming CUSUM / Page--Hinkley detectors watch);
* **emission residuals** — observed symbol/loss counts against the
  model's one-step posterior-predictive expected counts, reduced to a
  chi-square-style standardized statistic (``z`` roughly N(0,1) in
  model);
* **dwell-time geometry** — run lengths of the observed symbol sequence
  against the geometric dwell a Markov chain implies: a geometric run
  length with stay probability ``p`` has CV ``sqrt(p)``, so the gap
  ``|cv_emp - sqrt(p_hat)|`` flags semi-Markov (deterministic or
  heavy-tailed) dwell that a refit can hide from marginal statistics;
* **loss-channel consistency** — the window's empirical loss fraction
  against the posterior-predictive expected loss fraction, plus the
  mass of ``G`` sitting strictly below the weak ``Q_k`` bound symbol
  (:func:`repro.core.bounds.weak_dcl_bound`): mass creeping toward the
  ``beta0`` level means the published bound is one regime wobble from
  invalid.

The pass is only run when model-health observability is enabled
(:mod:`repro.obs.health`), never inside EM itself, so the fit path —
and with it fused/pool verdict parity — is untouched by construction.

Degenerate windows (no losses, non-finite scales, zero predictive mass)
yield ``None`` / a diagnostics object with ``ok=False`` rather than a
number that would feed a spurious drift alarm, mirroring the
``InsufficientLossError`` -> ``status="skipped"`` semantics of the
streaming tracker.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.bounds import weak_dcl_bound
from repro.core.distributions import DelayDistribution
from repro.models.base import LOSS, ObservationSequence

__all__ = ["WindowDiagnostics", "compute_window_diagnostics"]

#: Minimum observed symbol runs for the dwell statistic to be meaningful.
_MIN_RUNS = 10

#: Expected-count floor for a category to enter the chi-square sum.
_MIN_EXPECTED = 1.0


class WindowDiagnostics:
    """Goodness-of-fit summary of one window under its fitted model.

    Picklable plain-scalar container: computed wherever the window's
    :func:`~repro.streaming.tracker.finish_window` runs (parent process
    for fused drains, worker for pool drains) and carried back on the
    :class:`~repro.streaming.tracker.WindowAnalysis`.
    """

    __slots__ = (
        "ok",
        "reason",
        "n_obs",
        "n_losses",
        "mean_loglik",
        "emission_z",
        "counts",
        "expected_counts",
        "dwell_gap",
        "n_runs",
        "loss_rate_gap",
        "below_bound_mass",
        "beta0",
    )

    def __init__(
        self,
        ok: bool,
        reason: Optional[str] = None,
        n_obs: int = 0,
        n_losses: int = 0,
        mean_loglik: Optional[float] = None,
        emission_z: Optional[float] = None,
        counts: Optional[np.ndarray] = None,
        expected_counts: Optional[np.ndarray] = None,
        dwell_gap: Optional[float] = None,
        n_runs: int = 0,
        loss_rate_gap: Optional[float] = None,
        below_bound_mass: Optional[float] = None,
        beta0: Optional[float] = None,
    ):
        self.ok = bool(ok)
        self.reason = reason
        self.n_obs = int(n_obs)
        self.n_losses = int(n_losses)
        self.mean_loglik = mean_loglik
        self.emission_z = emission_z
        #: observed category counts, symbols ``0..M-1`` then loss.
        self.counts = counts
        #: one-step posterior-predictive expected counts, same layout.
        self.expected_counts = expected_counts
        self.dwell_gap = dwell_gap
        self.n_runs = int(n_runs)
        self.loss_rate_gap = loss_rate_gap
        self.below_bound_mass = below_bound_mass
        self.beta0 = beta0

    def to_dict(self) -> dict:
        """JSON projection (the ``model.health`` event's ``gof`` field)."""
        rounded = {
            "mean_loglik": self.mean_loglik,
            "emission_z": self.emission_z,
            "dwell_gap": self.dwell_gap,
            "loss_rate_gap": self.loss_rate_gap,
            "below_bound_mass": self.below_bound_mass,
        }
        return {
            "ok": self.ok,
            "reason": self.reason,
            "n_obs": self.n_obs,
            "n_losses": self.n_losses,
            "n_runs": self.n_runs,
            **{k: (None if v is None else round(float(v), 6))
               for k, v in rounded.items()},
        }


def _symbol_predictive(model, prior: np.ndarray) -> np.ndarray:
    """Collapse per-step prior *state* distributions to delay symbols.

    ``prior`` has one row per time step — ``pi`` at ``t=0`` and
    ``alpha[t-1] @ transition`` after — in each model's own state space:
    the MMHD's joint ``(h, d)`` states carry their symbol, the HMM maps
    hidden states through the emission matrix.
    """
    if hasattr(model, "emission"):  # HMM
        return prior @ model.emission
    n_steps = prior.shape[0]
    return prior.reshape(
        n_steps, model.n_hidden, model.n_symbols).sum(axis=1)


def _run_length_stats(observed: np.ndarray):
    """(n_runs, mean, cv) of maximal equal-symbol runs, losses removed."""
    if observed.size == 0:
        return 0, None, None
    boundaries = np.flatnonzero(observed[1:] != observed[:-1])
    lengths = np.diff(np.concatenate(([0], boundaries + 1, [observed.size])))
    lengths = lengths[lengths > 0]
    n_runs = int(lengths.size)
    if n_runs == 0:
        return 0, None, None
    mean = float(lengths.mean())
    cv = float(lengths.std() / mean) if mean > 0 else None
    return n_runs, mean, cv


def compute_window_diagnostics(
    model,
    seq: ObservationSequence,
    g_pmf: Optional[np.ndarray] = None,
    beta0: float = 0.06,
) -> WindowDiagnostics:
    """One diagnostic E-pass of ``seq`` under a fitted ``model``.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.models.hmm.HiddenMarkovModel` or
        :class:`~repro.models.mmhd.MarkovModelHiddenDimension`.
    seq:
        The window's observation sequence (the same one the fit saw).
    g_pmf:
        The fitted virtual delay PMF ``Ĝ`` (recomputed from the model's
        posterior when omitted — callers in the streaming path already
        hold it).
    beta0:
        The weak-DCL loss parameter used for the ``Q_k`` bound-margin
        check.
    """
    symbols0 = seq.zero_based()
    n_steps = len(symbols0)
    n_losses = int(seq.n_losses)
    if n_losses == 0:
        return WindowDiagnostics(False, reason="no-losses", n_obs=n_steps)
    try:
        likes = model._observation_likelihoods(symbols0)
        alpha, _beta, scales, loglik = model._forward_backward(likes)
    except FloatingPointError as exc:
        return WindowDiagnostics(False, reason=f"degenerate: {exc}",
                                 n_obs=n_steps, n_losses=n_losses)
    if not np.all(np.isfinite(scales)) or np.any(scales <= 0.0):
        return WindowDiagnostics(False, reason="degenerate: non-finite scales",
                                 n_obs=n_steps, n_losses=n_losses)
    mean_loglik = float(loglik / n_steps)

    # One-step predictive: prior state distribution before seeing o_t.
    prior = np.vstack([model.pi[None, :], alpha[:-1] @ model.transition])
    prior_symbol = _symbol_predictive(model, prior)
    survive = 1.0 - model.loss_given_symbol
    p_obs = prior_symbol * survive[None, :]          # (T, M)
    p_loss = prior_symbol @ model.loss_given_symbol  # (T,)

    lost = symbols0 == LOSS
    observed = symbols0[~lost]
    n_symbols = p_obs.shape[1]
    counts = np.concatenate([
        np.bincount(observed, minlength=n_symbols).astype(float),
        [float(n_losses)],
    ])
    expected = np.concatenate([p_obs.sum(axis=0), [float(p_loss.sum())]])
    if not np.all(np.isfinite(expected)):
        return WindowDiagnostics(
            False, reason="degenerate: non-finite predictive mass",
            n_obs=n_steps, n_losses=n_losses)
    include = expected >= _MIN_EXPECTED
    dof = int(include.sum()) - 1
    emission_z = None
    if dof >= 1:
        chi2 = float((((counts - expected) ** 2)[include]
                      / expected[include]).sum())
        emission_z = (chi2 - dof) / np.sqrt(2.0 * dof)

    n_runs, mean_run, cv = _run_length_stats(observed)
    dwell_gap = None
    if n_runs >= _MIN_RUNS and cv is not None and mean_run is not None:
        # Geometric dwell with stay probability p has mean 1/(1-p) and
        # CV sqrt(p); p_hat from the empirical mean closes the loop.
        p_hat = max(0.0, 1.0 - 1.0 / mean_run)
        dwell_gap = float(abs(cv - np.sqrt(p_hat)))

    empirical_loss = n_losses / n_steps
    expected_loss = float(p_loss.sum() / n_steps)
    loss_rate_gap = abs(empirical_loss - expected_loss) / max(
        expected_loss, 1e-12)

    below_bound_mass = None
    pmf = g_pmf
    if pmf is None:
        pmf = getattr(model, "virtual_delay_pmf", None)
        if callable(pmf):
            pmf = None  # needs a sequence argument; skip when not given
    if pmf is not None:
        distribution = DelayDistribution(np.asarray(pmf, dtype=float))
        bound = weak_dcl_bound(distribution, beta0)
        below = distribution.pmf[: bound.symbol - 1].sum() \
            if bound.symbol > 1 else 0.0
        below_bound_mass = float(below)

    return WindowDiagnostics(
        True,
        n_obs=n_steps,
        n_losses=n_losses,
        mean_loglik=mean_loglik,
        emission_z=None if emission_z is None else float(emission_z),
        counts=counts,
        expected_counts=expected,
        dwell_gap=dwell_gap,
        n_runs=n_runs,
        loss_rate_gap=float(loss_rate_gap),
        below_bound_mass=below_bound_mass,
        beta0=float(beta0),
    )
