"""Hidden Markov model with losses as missing delay observations.

The classic Rabiner HMM over delay symbols, extended as the paper
describes: a lost probe is a delay observation whose value is missing.
Concretely, with hidden states ``i = 1..N``, emission matrix
``B[i, m] = P(symbol m | state i)`` and ``c[m] = P(loss | symbol m)``,
the per-step observation likelihood is

* observed symbol ``m``:  ``B[i, m] * (1 - c[m])``;
* loss:                   ``sum_m B[i, m] * c[m]``.

EM marginalises the missing symbol at loss instants, and the paper's
eq. (5) posterior ``G(m) = P(symbol m | loss)`` falls out of the E-step.
All recursions are scaled (Rabiner Section V) so 10^5-observation
sequences pose no underflow risk.

Fit-loop fast path: the symbol-derived index structure
(:class:`~repro.models.base.SymbolIndex`) is computed once per fit and
shared across EM iterations (the old code re-derived masks and scanned
``for m in range(n_symbols)`` every E-step), and the final
log-likelihood and eq. (5) posterior both come from a single trailing
E-pass instead of two separate full passes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.models.base import (
    LOSS,
    EMConfig,
    FittedModel,
    ObservationSequence,
    SymbolIndex,
    floor_and_normalize,
    max_param_change,
    require_losses,
)
from repro.models.initialization import hmm_initial_parameters
from repro.models.telemetry import record_fit, record_restart
from repro.obs import span
from repro.parallel import parallel_map, resolve_n_jobs, restart_rng

__all__ = ["HiddenMarkovModel", "fit_hmm"]


class _EStepStats:
    """Sufficient statistics of one E-pass of the loss-channel HMM."""

    __slots__ = ("gamma0", "xi_sum", "joint_obs", "joint_loss", "loglik")

    def __init__(self, gamma0, xi_sum, joint_obs, joint_loss, loglik):
        self.gamma0 = gamma0
        self.xi_sum = xi_sum
        self.joint_obs = joint_obs
        self.joint_loss = joint_loss
        self.loglik = loglik


class HiddenMarkovModel:
    """An HMM over delay symbols with a loss channel.

    Parameters
    ----------
    pi:
        Initial hidden-state distribution, shape ``(N,)``.
    transition:
        Hidden-state transition matrix, shape ``(N, N)``, row-stochastic.
    emission:
        ``B[i, m] = P(symbol m+1 | state i)``, shape ``(N, M)``.
    loss_given_symbol:
        ``c[m] = P(loss | symbol m+1)``, shape ``(M,)``, entries in (0, 1).
    """

    def __init__(
        self,
        pi: np.ndarray,
        transition: np.ndarray,
        emission: np.ndarray,
        loss_given_symbol: np.ndarray,
    ):
        pi = np.asarray(pi, dtype=float)
        transition = np.asarray(transition, dtype=float)
        emission = np.asarray(emission, dtype=float)
        loss_given_symbol = np.asarray(loss_given_symbol, dtype=float)
        n_hidden = len(pi)
        if transition.shape != (n_hidden, n_hidden):
            raise ValueError("transition must be (N, N) matching pi")
        if emission.ndim != 2 or emission.shape[0] != n_hidden:
            raise ValueError("emission must be (N, M)")
        if loss_given_symbol.shape != (emission.shape[1],):
            raise ValueError("loss_given_symbol must have one entry per symbol")
        _check_stochastic(pi, "pi")
        _check_stochastic(transition, "transition")
        _check_stochastic(emission, "emission")
        if np.any(loss_given_symbol <= 0) or np.any(loss_given_symbol >= 1):
            raise ValueError("loss_given_symbol entries must lie in (0, 1)")
        self.pi = pi
        self.transition = transition
        self.emission = emission
        self.loss_given_symbol = loss_given_symbol

    @property
    def n_hidden(self) -> int:
        """Number of hidden states N."""
        return len(self.pi)

    @property
    def n_symbols(self) -> int:
        """Number of delay symbols M."""
        return self.emission.shape[1]

    def parameters(self) -> Tuple[np.ndarray, ...]:
        """All parameter arrays, for convergence checks."""
        return (self.pi, self.transition, self.emission, self.loss_given_symbol)

    # ------------------------------------------------------------------
    # Likelihood machinery
    # ------------------------------------------------------------------
    def _observation_likelihoods(self, symbols0: np.ndarray) -> np.ndarray:
        """Per-step state likelihoods, shape ``(T, N)``."""
        n_steps = len(symbols0)
        likes = np.empty((n_steps, self.n_hidden))
        lost = symbols0 == LOSS
        observed_syms = symbols0[~lost]
        survive = 1.0 - self.loss_given_symbol
        likes[~lost] = (self.emission[:, observed_syms] * survive[observed_syms]).T
        likes[lost] = (self.emission @ self.loss_given_symbol)[None, :]
        return likes

    def _likelihoods_from_index(self, index: SymbolIndex) -> np.ndarray:
        """Per-step state likelihoods using the precomputed index."""
        likes = np.empty((len(index), self.n_hidden))
        survive = 1.0 - self.loss_given_symbol
        syms = index.observed_symbols
        likes[index.observed_idx] = (self.emission[:, syms] * survive[syms]).T
        likes[index.loss_idx] = (self.emission @ self.loss_given_symbol)[None, :]
        return likes

    def _forward_backward(self, likes: np.ndarray):
        """Scaled forward-backward.

        Returns ``(alpha, beta, scales, log_likelihood)`` with ``alpha``
        normalised per step so ``gamma = alpha * beta`` directly.
        """
        n_steps, n_hidden = likes.shape
        alpha = np.empty_like(likes)
        scales = np.empty(n_steps)
        state = self.pi * likes[0]
        scales[0] = state.sum()
        if scales[0] <= 0:
            raise FloatingPointError("zero likelihood at t=0")
        alpha[0] = state / scales[0]
        transition = self.transition
        for t in range(1, n_steps):
            state = (alpha[t - 1] @ transition) * likes[t]
            total = state.sum()
            if total <= 0:
                raise FloatingPointError(f"zero likelihood at t={t}")
            scales[t] = total
            alpha[t] = state / total

        beta = np.empty_like(likes)
        beta[n_steps - 1] = 1.0
        for t in range(n_steps - 2, -1, -1):
            beta[t] = transition @ (likes[t + 1] * beta[t + 1]) / scales[t + 1]
        return alpha, beta, scales, float(np.log(scales).sum())

    def log_likelihood(
        self,
        seq: ObservationSequence,
        index: Optional[SymbolIndex] = None,
    ) -> float:
        """Log-likelihood of the observation sequence under this model.

        ``index`` reuses a caller-cached :class:`SymbolIndex` so scoring
        layers (selection, bootstrap) skip the redundant symbol scan.
        """
        if index is not None:
            likes = self._likelihoods_from_index(index)
        else:
            likes = self._observation_likelihoods(seq.zero_based())
        _, _, _, loglik = self._forward_backward(likes)
        return loglik

    # ------------------------------------------------------------------
    # EM
    # ------------------------------------------------------------------
    def _estep(self, index: SymbolIndex) -> _EStepStats:
        """E-step: posterior sufficient statistics from one pass.

        ``joint_obs[i, m]`` / ``joint_loss[i, m]`` are expected counts of
        (state, symbol) pairs accumulated over observed / loss instants.
        """
        likes = self._likelihoods_from_index(index)
        alpha, beta, scales, loglik = self._forward_backward(likes)
        gamma = alpha * beta
        # xi_sum[i, j] = sum_t P(s_t = i, s_{t+1} = j | obs)
        weighted = likes[1:] * beta[1:] / scales[1:, None]
        xi_sum = self.transition * (alpha[:-1].T @ weighted)

        n_hidden, n_symbols = self.emission.shape
        # Expected (state, symbol) counts over observed instants, grouped
        # by symbol in one C-level scatter-add (the old code scanned the
        # whole gamma array once per symbol, every iteration).
        joint_obs_by_symbol = np.zeros((n_symbols, n_hidden))
        np.add.at(
            joint_obs_by_symbol, index.observed_symbols, gamma[index.observed_idx]
        )
        joint_obs = joint_obs_by_symbol.T
        # At a loss instant, P(state i, symbol m | obs) =
        #   gamma_t(i) * B[i, m] c[m] / (B c)[i].
        gamma_loss_total = gamma[index.loss_idx].sum(axis=0)
        loss_like = self.emission @ self.loss_given_symbol
        joint_loss = (
            (gamma_loss_total / loss_like)[:, None]
            * self.emission
            * self.loss_given_symbol[None, :]
        )
        return _EStepStats(gamma[0], xi_sum, joint_obs, joint_loss, loglik)

    def _expectations(self, seq: ObservationSequence):
        """E-step over a raw sequence (compatibility surface).

        Returns ``(gamma, xi_sum, joint_obs, joint_loss, loglik)``.
        """
        symbols0 = seq.zero_based()
        likes = self._observation_likelihoods(symbols0)
        alpha, beta, scales, loglik = self._forward_backward(likes)
        gamma = alpha * beta
        weighted = likes[1:] * beta[1:] / scales[1:, None]
        xi_sum = self.transition * (alpha[:-1].T @ weighted)
        lost = symbols0 == LOSS
        n_hidden, n_symbols = self.emission.shape
        joint_obs = np.zeros((n_hidden, n_symbols))
        for m in range(n_symbols):
            rows = gamma[symbols0 == m]
            if rows.size:
                joint_obs[:, m] = rows.sum(axis=0)
        gamma_loss_total = gamma[lost].sum(axis=0)
        loss_like = self.emission @ self.loss_given_symbol
        joint_loss = (
            (gamma_loss_total / loss_like)[:, None]
            * self.emission
            * self.loss_given_symbol[None, :]
        )
        return gamma, xi_sum, joint_obs, joint_loss, loglik

    def _maximize(
        self,
        stats: _EStepStats,
        min_prob: float,
        loss_prior: Tuple[float, float],
    ) -> "HiddenMarkovModel":
        """M-step from one E-pass's statistics."""
        pi = floor_and_normalize(stats.gamma0, min_prob)
        transition = floor_and_normalize(stats.xi_sum, min_prob)
        joint_total = stats.joint_obs + stats.joint_loss
        emission = floor_and_normalize(joint_total, min_prob)
        symbol_mass = joint_total.sum(axis=0)
        loss_mass = stats.joint_loss.sum(axis=0)
        prior_losses, prior_observations = loss_prior
        loss_given_symbol = (loss_mass + prior_losses) / np.maximum(
            symbol_mass + prior_losses + prior_observations, 1e-300
        )
        loss_given_symbol = np.clip(loss_given_symbol, min_prob, 1.0 - min_prob)
        return HiddenMarkovModel(pi, transition, emission, loss_given_symbol)

    def em_step(
        self,
        seq: ObservationSequence,
        min_prob: float = 1e-10,
        loss_prior=(0.0, 0.0),
        index: Optional[SymbolIndex] = None,
    ):
        """One EM iteration.

        ``loss_prior = (a, b)`` applies a Beta(a, b)-style MAP update to
        ``c`` (see :class:`~repro.models.base.EMConfig`); ``(0, 0)`` is
        the plain MLE.  ``index`` reuses a precomputed
        :class:`SymbolIndex` across iterations.  Returns
        ``(new_model, loglik_of_current_model)``.
        """
        require_losses(seq, "em_step")
        if index is None:
            index = SymbolIndex(seq)
        stats = self._estep(index)
        return self._maximize(stats, min_prob, loss_prior), stats.loglik

    def virtual_delay_pmf(
        self,
        seq: ObservationSequence,
        index: Optional[SymbolIndex] = None,
    ) -> np.ndarray:
        """Eq. (5): ``Ĝ(m) = P(symbol m | loss)`` under this model."""
        require_losses(seq, "virtual_delay_pmf")
        if index is None:
            index = SymbolIndex(seq)
        stats = self._estep(index)
        mass = stats.joint_loss.sum(axis=0)
        total = mass.sum()
        if total <= 0:
            raise ValueError("no losses in the observation sequence")
        return mass / total


def _fit_hmm_restart(task) -> "FittedHMM":
    """One EM run from one random initialisation (parallel-map worker)."""
    seq, n_hidden, config, restart, index = task
    rng = restart_rng(config.seed, restart)
    pi, transition, emission, c = hmm_initial_parameters(seq, n_hidden, rng)
    model = HiddenMarkovModel(pi, transition, emission, c)
    if index is None:
        index = SymbolIndex(seq)
    logliks: List[float] = []
    converged = False
    prior = (config.loss_prior_losses, config.loss_prior_observations)
    for iteration in range(config.max_iter):
        stats = model._estep(index)
        new_model = model._maximize(stats, config.min_prob, prior)
        logliks.append(stats.loglik)
        if iteration < config.freeze_loss_iters:
            # Warm start: learn dynamics before the loss channel.
            new_model = HiddenMarkovModel(
                new_model.pi, new_model.transition, new_model.emission, c
            )
        elif (
            max_param_change(model.parameters(), new_model.parameters())
            < config.tol
        ):
            model = new_model
            converged = True
            break
        model = new_model
    # One final E-pass yields both the trailing log-likelihood and the
    # eq. (5) posterior — the seed ran two separate full passes here.
    final_stats = model._estep(index)
    loss_symbol_mass = final_stats.joint_loss.sum(axis=0)
    fitted = FittedHMM(
        model=model,
        virtual_delay_pmf=loss_symbol_mass / loss_symbol_mass.sum(),
        log_likelihoods=logliks + [final_stats.loglik],
        converged=converged,
        n_iter=len(logliks),
    )
    record_restart("hmm", restart, fitted)
    return fitted


def fit_hmm(
    seq: ObservationSequence,
    n_hidden: int,
    config: Optional[EMConfig] = None,
    index: Optional[SymbolIndex] = None,
) -> "FittedHMM":
    """Fit an HMM by EM, with optional random restarts.

    Returns the best fit (by final log-likelihood) across
    ``config.n_restarts`` initialisations.  ``config.backend`` selects
    the E-step engine: the batched engine stacks all restarts into one
    forward-backward (:mod:`repro.models.batched`), the sequential
    engine runs one recursion per restart.  Either way restarts fan out
    over ``config.n_jobs`` worker processes and the reduction compares
    in restart order, so the result is identical for any ``n_jobs``.
    ``index`` reuses a caller-cached :class:`SymbolIndex`.
    """
    config = config or EMConfig()
    require_losses(seq, "fit_hmm")
    # Imported lazily: batched.py builds on this module's model classes.
    from repro.models import batched

    backend = batched.resolve_backend(config, "hmm", n_hidden, seq.n_symbols)
    with span("em.fit", model="hmm", n_hidden=n_hidden,
              n_restarts=config.n_restarts, backend=backend):
        if backend in batched.BATCH_BACKENDS:
            fits = batched.batched_restart_fits(
                "hmm", seq, n_hidden, config, index=index, backend=backend
            )
        else:
            serial = (resolve_n_jobs(config.n_jobs) <= 1
                      or config.n_restarts <= 1)
            shared = (index or SymbolIndex(seq)) if serial else None
            tasks = [(seq, n_hidden, config, r, shared)
                     for r in range(config.n_restarts)]
            fits = parallel_map(_fit_hmm_restart, tasks, n_jobs=config.n_jobs)
            batched.record_backend(
                "hmm", backend,
                n_shards=min(resolve_n_jobs(config.n_jobs), len(fits)),
                infos=[{"rows": 1, "batch_iterations": f.n_iter,
                        "active_row_iterations": f.n_iter} for f in fits],
            )
        best_restart = 0
        for restart, fitted in enumerate(fits[1:], start=1):
            if fitted.log_likelihood > fits[best_restart].log_likelihood:
                best_restart = restart
        record_fit("hmm", fits, best_restart)
        return fits[best_restart]


class FittedHMM(FittedModel):
    """A fitted HMM plus the shared :class:`FittedModel` surface."""

    def __init__(self, model: HiddenMarkovModel, **kwargs):
        super().__init__(**kwargs)
        self.model = model


def _check_stochastic(array: np.ndarray, name: str, atol: float = 1e-6) -> None:
    sums = array.sum(axis=-1)
    if not np.allclose(sums, 1.0, atol=atol):
        raise ValueError(f"{name} rows must sum to 1 (got sums {sums})")
    if np.any(array < 0):
        raise ValueError(f"{name} must be non-negative")
