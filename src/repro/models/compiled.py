"""Optional numba-compiled forward-backward kernels.

The batched E-step engines spend nearly the whole fit inside the scaled
forward-backward recursions; the blocked scan kernel removes the
Python-level dispatch floor with batched matmuls, and this module offers
the other route — compile the per-step loop itself.  numba is strictly
optional: the import is guarded, :data:`HAVE_NUMBA` tells callers
whether the kernels exist, and :class:`repro.models.batched._EStepAux`
falls back to the pure-numpy kernels (recording the fallback in the
``em.backend`` telemetry event) when it is absent.  Nothing in the repo
ever imports numba unconditionally.

The compiled kernels reproduce the semantics of
:func:`repro.models.batched._batched_forward_backward` and its ragged
twin exactly: per-step normalisation of ``alpha`` (so
``gamma = alpha * beta`` directly), ``scales`` holding the per-step
totals, padded steps of ragged rows carried with their scale forced to
1, and zero-likelihood rows poisoning only their own lane (detection is
deferred to the caller's ``_check_scales``).  Division by a zero total
follows IEEE inside nopython code — no exception, NaN propagates down
the row — which is precisely the deferred-detection contract the numpy
kernels rely on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HAVE_NUMBA", "compiled_forward_backward"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the common container case
    njit = None
    HAVE_NUMBA = False


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True)
    def _forward(pi, transition, likes, lengths, alpha, scales):
        n_steps, n_rows, n = likes.shape
        for k in range(n_rows):
            t_end = lengths[k]
            total = 0.0
            for i in range(n):
                alpha[0, k, i] = pi[k, i] * likes[0, k, i]
                total += alpha[0, k, i]
            scales[0, k] = total
            for i in range(n):
                alpha[0, k, i] /= total
            for t in range(1, n_steps):
                if t >= t_end:
                    for i in range(n):
                        alpha[t, k, i] = alpha[t - 1, k, i]
                    scales[t, k] = 1.0
                    continue
                total = 0.0
                for j in range(n):
                    acc = 0.0
                    for i in range(n):
                        acc += alpha[t - 1, k, i] * transition[k, i, j]
                    acc *= likes[t, k, j]
                    alpha[t, k, j] = acc
                    total += acc
                scales[t, k] = total
                for j in range(n):
                    alpha[t, k, j] /= total

    @njit(cache=True)
    def _backward(transition, likes, lengths, scales, beta):
        n_steps, n_rows, n = likes.shape
        for k in range(n_rows):
            t_end = lengths[k]
            for i in range(n):
                beta[n_steps - 1, k, i] = 1.0
            for t in range(n_steps - 2, -1, -1):
                if t + 1 >= t_end:
                    for i in range(n):
                        beta[t, k, i] = beta[t + 1, k, i]
                    continue
                inv = 1.0 / scales[t + 1, k]
                for i in range(n):
                    acc = 0.0
                    for j in range(n):
                        acc += (transition[k, i, j] * likes[t + 1, k, j]
                                * beta[t + 1, k, j])
                    beta[t, k, i] = acc * inv


def compiled_forward_backward(pi, transition, likes, lengths,
                              alpha, beta, scales):
    """Numba forward-backward into preallocated ``alpha``/``beta``/``scales``.

    ``lengths`` is the per-row valid length (``n_steps`` for every row
    of a uniform restart stack); padded steps are carried exactly like
    :func:`repro.models.batched._ragged_forward_backward`.  Callers must
    gate on :data:`HAVE_NUMBA` — this raises when numba is missing
    rather than silently running slow Python loops.
    """
    if not HAVE_NUMBA:  # pragma: no cover - defensive; callers gate
        raise RuntimeError(
            "numba is not installed; use backend='blocked' or 'batched'"
        )
    _forward(pi, transition, likes, lengths, alpha, scales)
    _backward(transition, likes, lengths, scales, beta)
    return alpha, beta, scales


def _py_reference_forward_backward(pi, transition, likes, lengths,
                                   alpha, beta, scales):
    """Pure-python mirror of the compiled kernels, for parity tests.

    Runs the exact loop nest numba compiles, so the (numba-less) test
    suite can still exercise the kernel semantics — and a numba-enabled
    run can assert the compiled output matches this reference bitwise.
    Never used on a hot path.
    """
    np_likes = np.asarray(likes)
    n_steps, n_rows, n = np_likes.shape
    with np.errstate(divide="ignore", invalid="ignore"):
        for k in range(n_rows):
            t_end = int(lengths[k])
            state = pi[k] * np_likes[0, k]
            total = state.sum()
            scales[0, k] = total
            alpha[0, k] = state / total
            for t in range(1, n_steps):
                if t >= t_end:
                    alpha[t, k] = alpha[t - 1, k]
                    scales[t, k] = 1.0
                    continue
                state = (alpha[t - 1, k] @ transition[k]) * np_likes[t, k]
                total = state.sum()
                scales[t, k] = total
                alpha[t, k] = state / total
            beta[n_steps - 1, k] = 1.0
            for t in range(n_steps - 2, -1, -1):
                if t + 1 >= t_end:
                    beta[t, k] = beta[t + 1, k]
                    continue
                beta[t, k] = transition[k] @ (
                    np_likes[t + 1, k] * beta[t + 1, k]
                ) / scales[t + 1, k]
    return alpha, beta, scales
