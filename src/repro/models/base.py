"""Shared model infrastructure: observation encoding and EM bookkeeping.

Observation sequences are integer arrays: delay symbols ``1..M`` for probes
that arrived, :data:`LOSS` (``-1``) for probes that were lost.  Internally
models index symbols ``0..M-1``; the public surface keeps the paper's
1-based convention.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["LOSS", "ObservationSequence", "EMConfig", "FittedModel"]

#: Marker for a lost probe (a delay observation with a missing value).
LOSS = -1


class ObservationSequence:
    """A validated (symbols, n_symbols) pair.

    Parameters
    ----------
    symbols:
        Integer sequence with values in ``{1..n_symbols}`` or :data:`LOSS`.
    n_symbols:
        The paper's ``M``.
    """

    def __init__(self, symbols: Sequence[int], n_symbols: int):
        symbols = np.asarray(symbols, dtype=int)
        if symbols.ndim != 1:
            raise ValueError("symbols must be a 1-D sequence")
        if len(symbols) == 0:
            raise ValueError("empty observation sequence")
        if n_symbols < 1:
            raise ValueError(f"need at least one symbol, got {n_symbols}")
        valid = (symbols == LOSS) | ((symbols >= 1) & (symbols <= n_symbols))
        if not np.all(valid):
            bad = symbols[~valid]
            raise ValueError(
                f"symbols out of range 1..{n_symbols} (or LOSS): {bad[:5]}"
            )
        if np.all(symbols == LOSS):
            raise ValueError("all observations are losses; nothing to fit")
        self.symbols = symbols
        self.n_symbols = int(n_symbols)

    def __len__(self) -> int:
        return len(self.symbols)

    @property
    def losses(self) -> np.ndarray:
        """Boolean mask of loss observations."""
        return self.symbols == LOSS

    @property
    def n_losses(self) -> int:
        """Number of loss observations."""
        return int(np.sum(self.losses))

    @property
    def loss_rate(self) -> float:
        """Fraction of observations that are losses."""
        return self.n_losses / len(self.symbols)

    def zero_based(self) -> np.ndarray:
        """Symbols shifted to ``0..M-1`` with losses still ``LOSS``."""
        out = self.symbols.copy()
        observed = out != LOSS
        out[observed] -= 1
        return out

    def empirical_symbol_pmf(self) -> np.ndarray:
        """Frequencies of observed (non-loss) symbols; smoothed, sums to 1."""
        observed = self.symbols[self.symbols != LOSS]
        counts = np.bincount(observed - 1, minlength=self.n_symbols).astype(float)
        counts += 1.0  # Laplace smoothing so no symbol starts impossible
        return counts / counts.sum()


class EMConfig:
    """EM iteration control.

    Parameters
    ----------
    tol:
        Convergence threshold on the maximum absolute change of any model
        parameter between iterations (the paper uses 1e-4 / 1e-5 and
        reports both behave the same).
    max_iter:
        Hard iteration cap.
    min_prob:
        Probability floor applied after each M-step so EM never paints
        itself into a zero-probability corner (then rows are renormalised).
    n_restarts:
        Number of independent random initialisations; the fit with the
        best final log-likelihood wins.  Restart ``r`` uses ``seed + r``.
    seed:
        Base seed for random initialisation.
    freeze_loss_iters:
        Hold ``P(loss | symbol)`` at its (flat) initial value for this many
        EM iterations so the transition structure is learned before the
        loss channel can differentiate.  This keeps EM in the physically
        meaningful basin (see :mod:`repro.models.initialization`); 0
        disables the warm start.
    data_driven_init:
        Seed the MMHD transition matrix from observed symbol bigrams
        (default) instead of the paper's plain random rows.
    loss_prior_losses, loss_prior_observations:
        Beta(a, b) prior pseudo-counts for the per-symbol loss probability
        ``c_m``; the M-step becomes the MAP estimate
        ``(loss_mass + a) / (total_mass + a + b)``.  This keeps nearly
        unobserved delay bins from acquiring large loss probabilities —
        with fine discretizations (M = 40 for the bounds) EM could
        otherwise park the loss mass in an empty bin at no cost to the
        observed-data likelihood.  Symbols with real traffic wash the
        prior out.  Set both to 0 for the plain MLE update.
    """

    def __init__(
        self,
        tol: float = 1e-4,
        max_iter: int = 200,
        min_prob: float = 1e-10,
        n_restarts: int = 1,
        seed: int = 0,
        freeze_loss_iters: int = 5,
        data_driven_init: bool = True,
        loss_prior_losses: float = 1.0,
        loss_prior_observations: float = 50.0,
    ):
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if n_restarts < 1:
            raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
        if freeze_loss_iters < 0:
            raise ValueError(f"freeze_loss_iters must be >= 0, got {freeze_loss_iters}")
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self.min_prob = float(min_prob)
        self.n_restarts = int(n_restarts)
        self.seed = int(seed)
        if loss_prior_losses < 0 or loss_prior_observations < 0:
            raise ValueError("loss prior pseudo-counts must be >= 0")
        self.freeze_loss_iters = int(freeze_loss_iters)
        self.data_driven_init = bool(data_driven_init)
        self.loss_prior_losses = float(loss_prior_losses)
        self.loss_prior_observations = float(loss_prior_observations)


class FittedModel:
    """Common result surface for fitted HMM/MMHD models.

    Attributes
    ----------
    virtual_delay_pmf:
        ``Ĝ``'s PMF over symbols ``1..M`` — eq. (5): the model's posterior
        distribution of the delay symbol at loss instants.
    log_likelihoods:
        Per-iteration log-likelihood trail (monotone non-decreasing up to
        floating-point noise; property-tested).
    converged:
        Whether the parameter-change threshold was reached before
        ``max_iter``.
    """

    def __init__(
        self,
        virtual_delay_pmf: np.ndarray,
        log_likelihoods: List[float],
        converged: bool,
        n_iter: int,
    ):
        self.virtual_delay_pmf = np.asarray(virtual_delay_pmf, dtype=float)
        self.log_likelihoods = list(log_likelihoods)
        self.converged = bool(converged)
        self.n_iter = int(n_iter)

    @property
    def log_likelihood(self) -> float:
        """Final log-likelihood."""
        return self.log_likelihoods[-1]

    @property
    def n_symbols(self) -> int:
        """Number of delay symbols M."""
        return len(self.virtual_delay_pmf)

    def virtual_delay_cdf(self) -> np.ndarray:
        """``Ĝ`` as a CDF over symbols ``1..M``."""
        return np.cumsum(self.virtual_delay_pmf)


def floor_and_normalize(matrix: np.ndarray, min_prob: float) -> np.ndarray:
    """Clamp probabilities to at least ``min_prob`` and renormalise rows.

    Works for 1-D (distributions) and 2-D (stochastic matrices, row-wise).
    """
    floored = np.maximum(matrix, min_prob)
    if floored.ndim == 1:
        return floored / floored.sum()
    return floored / floored.sum(axis=1, keepdims=True)


def max_param_change(old: Sequence[np.ndarray], new: Sequence[np.ndarray]) -> float:
    """Largest absolute elementwise change across parameter arrays."""
    return max(
        float(np.max(np.abs(np.asarray(a) - np.asarray(b)))) for a, b in zip(old, new)
    )
