"""Shared model infrastructure: observation encoding and EM bookkeeping.

Observation sequences are integer arrays: delay symbols ``1..M`` for probes
that arrived, :data:`LOSS` (``-1``) for probes that were lost.  Internally
models index symbols ``0..M-1``; the public surface keeps the paper's
1-based convention.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "LOSS",
    "PAD",
    "InsufficientLossError",
    "ObservationSequence",
    "SymbolIndex",
    "SymbolStack",
    "EMConfig",
    "FittedModel",
    "require_losses",
]


class InsufficientLossError(ValueError):
    """An estimator needed loss observations but the sequence has none.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites keep working; the streaming layer catches this type
    specifically so a loss-free window skips cleanly instead of aborting
    a long-running monitor.
    """

#: Marker for a lost probe (a delay observation with a missing value).
LOSS = -1

#: Marker for a padded (past-end) slot in a :class:`SymbolStack` row.
PAD = -2


class ObservationSequence:
    """A validated (symbols, n_symbols) pair.

    Parameters
    ----------
    symbols:
        Integer sequence with values in ``{1..n_symbols}`` or :data:`LOSS`.
    n_symbols:
        The paper's ``M``.
    """

    def __init__(self, symbols: Sequence[int], n_symbols: int):
        symbols = np.asarray(symbols, dtype=int)
        if symbols.ndim != 1:
            raise ValueError("symbols must be a 1-D sequence")
        if len(symbols) == 0:
            raise ValueError("empty observation sequence")
        if n_symbols < 1:
            raise ValueError(f"need at least one symbol, got {n_symbols}")
        valid = (symbols == LOSS) | ((symbols >= 1) & (symbols <= n_symbols))
        if not np.all(valid):
            bad = symbols[~valid]
            raise ValueError(
                f"symbols out of range 1..{n_symbols} (or LOSS): {bad[:5]}"
            )
        if np.all(symbols == LOSS):
            raise ValueError("all observations are losses; nothing to fit")
        self.symbols = symbols
        self.n_symbols = int(n_symbols)

    def __len__(self) -> int:
        return len(self.symbols)

    @property
    def losses(self) -> np.ndarray:
        """Boolean mask of loss observations."""
        return self.symbols == LOSS

    @property
    def n_losses(self) -> int:
        """Number of loss observations."""
        return int(np.sum(self.losses))

    @property
    def loss_rate(self) -> float:
        """Fraction of observations that are losses."""
        return self.n_losses / len(self.symbols)

    def zero_based(self) -> np.ndarray:
        """Symbols shifted to ``0..M-1`` with losses still ``LOSS``."""
        out = self.symbols.copy()
        observed = out != LOSS
        out[observed] -= 1
        return out

    def empirical_symbol_pmf(self) -> np.ndarray:
        """Frequencies of observed (non-loss) symbols; smoothed, sums to 1."""
        observed = self.symbols[self.symbols != LOSS]
        counts = np.bincount(observed - 1, minlength=self.n_symbols).astype(float)
        counts += 1.0  # Laplace smoothing so no symbol starts impossible
        return counts / counts.sum()


class SymbolIndex:
    """Precomputed index structure of an observation sequence.

    The symbols never change between EM iterations — only model
    parameters do — so every quantity derivable from the symbols alone
    (zero-based codes, loss mask, per-symbol position lists, the
    consecutive-pair groups the MMHD fast path batches over) is computed
    once per fit and shared by all iterations and both E-pass consumers
    (``em_step`` and ``virtual_delay_pmf``).
    """

    def __init__(self, seq: "ObservationSequence"):
        self.seq = seq
        self.n_symbols = seq.n_symbols
        self.symbols0 = seq.zero_based()
        #: plain-python copy for fast scalar access in recursion loops
        self.symbol_list = self.symbols0.tolist()
        self.lost = self.symbols0 == LOSS
        self.loss_idx = np.flatnonzero(self.lost)
        self.observed_idx = np.flatnonzero(~self.lost)
        self.observed_symbols = self.symbols0[self.observed_idx]
        #: positions of each observed symbol ``m`` (index masks of the
        #: old per-E-step ``for m in range(n_symbols)`` scan)
        self.symbol_positions = [
            np.flatnonzero(self.symbols0 == m) for m in range(seq.n_symbols)
        ]
        self.n_losses = int(len(self.loss_idx))
        #: map absolute step -> rank among loss steps (-1 if observed)
        self.loss_rank = np.full(len(self.symbols0), -1)
        self.loss_rank[self.loss_idx] = np.arange(self.n_losses)
        self._pair_groups = None

    def __len__(self) -> int:
        return len(self.symbols0)

    def pair_groups(self):
        """Consecutive-step pairs grouped by (symbol_prev, symbol_cur).

        Returns ``(oo, ol, lo, ll)``: ``oo[(mp, m)]``, ``ol[mp]`` and
        ``lo[m]`` map to arrays of the *later* step index ``t`` of each
        pair; ``ll`` is a plain array.  Grouping is sort-based (one
        ``argsort`` per fit), not one boolean scan per symbol pair.
        """
        if self._pair_groups is not None:
            return self._pair_groups
        prev = self.symbols0[:-1]
        cur = self.symbols0[1:]
        n = self.n_symbols
        # Encode pairs on a (n+1)^2 grid with LOSS mapped to slot n.
        prev_code = np.where(prev == LOSS, n, prev)
        cur_code = np.where(cur == LOSS, n, cur)
        codes = prev_code * (n + 1) + cur_code
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        uniques, starts = np.unique(sorted_codes, return_index=True)
        bounds = np.append(starts, len(sorted_codes))
        oo, ol, lo = {}, {}, {}
        ll = np.empty(0, dtype=int)
        for code, lo_bound, hi_bound in zip(uniques, bounds[:-1], bounds[1:]):
            ts = order[lo_bound:hi_bound] + 1  # later index of the pair
            ts.sort()
            mp, m = divmod(int(code), n + 1)
            if mp < n and m < n:
                oo[(mp, m)] = ts
            elif mp < n:
                ol[mp] = ts
            elif m < n:
                lo[m] = ts
            else:
                ll = ts
        self._pair_groups = (oo, ol, lo, ll)
        return self._pair_groups


class SymbolStack:
    """Padded stack of observation sequences — :class:`SymbolIndex`'s
    ragged sibling.

    Rows carry sequences of *unequal* length ``T_r``, right-padded to
    ``t_max`` with :data:`PAD` so a batched recursion can run one
    time-major loop over the whole stack.  The masks expose which
    ``(row, step)`` slots are real: the batched E-step engine carries
    padded lanes through its recursions unchanged (padded scale factors
    are forced to 1, contributing ``log(1) = 0``) so every per-row
    statistic stays bit-identical to a solo fit of that row.

    All rows must share ``n_symbols``; mixed alphabets cannot share one
    parameter stack.
    """

    def __init__(self, seqs: Sequence["ObservationSequence"]):
        if not len(seqs):
            raise ValueError("SymbolStack needs at least one sequence")
        n_symbols = seqs[0].n_symbols
        for seq in seqs:
            if seq.n_symbols != n_symbols:
                raise ValueError(
                    f"all stacked sequences must share n_symbols; got "
                    f"{seq.n_symbols} alongside {n_symbols}"
                )
        self.seqs = list(seqs)
        self.n_symbols = int(n_symbols)
        self.n_rows = len(self.seqs)
        self.lengths = np.array([len(s) for s in self.seqs], dtype=int)
        self.t_max = int(self.lengths.max())
        symbols0 = np.full((self.n_rows, self.t_max), PAD, dtype=int)
        for k, seq in enumerate(self.seqs):
            symbols0[k, : len(seq)] = seq.zero_based()
        #: zero-based symbols, ``LOSS`` at losses, :data:`PAD` past row end
        self.symbols0 = symbols0
        #: boolean ``(n_rows, t_max)`` masks of real / lost / observed slots
        self.valid = symbols0 != PAD
        self.lost = symbols0 == LOSS
        self.observed = symbols0 >= 0

    def __len__(self) -> int:
        return self.n_rows

    def row_index(self, row: int) -> "SymbolIndex":
        """The solo :class:`SymbolIndex` of one stacked row."""
        return SymbolIndex(self.seqs[row])


class EMConfig:
    """EM iteration control.

    Parameters
    ----------
    tol:
        Convergence threshold on the maximum absolute change of any model
        parameter between iterations (the paper uses 1e-4 / 1e-5 and
        reports both behave the same).
    max_iter:
        Hard iteration cap.
    min_prob:
        Probability floor applied after each M-step so EM never paints
        itself into a zero-probability corner (then rows are renormalised).
    n_restarts:
        Number of independent random initialisations; the fit with the
        best final log-likelihood wins.  Restart 0 draws from
        ``default_rng(seed)`` (bit-compatible with single-restart fits
        from earlier releases); restarts >= 1 use collision-free spawned
        streams keyed by ``(seed, restart)`` — see
        :func:`repro.parallel.restart_rng`.
    seed:
        Base seed for random initialisation.
    freeze_loss_iters:
        Hold ``P(loss | symbol)`` at its (flat) initial value for this many
        EM iterations so the transition structure is learned before the
        loss channel can differentiate.  This keeps EM in the physically
        meaningful basin (see :mod:`repro.models.initialization`); 0
        disables the warm start.
    data_driven_init:
        Seed the MMHD transition matrix from observed symbol bigrams
        (default) instead of the paper's plain random rows.
    loss_prior_losses, loss_prior_observations:
        Beta(a, b) prior pseudo-counts for the per-symbol loss probability
        ``c_m``; the M-step becomes the MAP estimate
        ``(loss_mass + a) / (total_mass + a + b)``.  This keeps nearly
        unobserved delay bins from acquiring large loss probabilities —
        with fine discretizations (M = 40 for the bounds) EM could
        otherwise park the loss mass in an empty bin at no cost to the
        observed-data likelihood.  Symbols with real traffic wash the
        prior out.  Set both to 0 for the plain MLE update.
    n_jobs:
        Worker processes for embarrassingly-parallel fit work (random
        restarts; layers above reuse the same knob for replicates and
        sweeps).  ``1`` (default) runs serially in-process; ``-1`` uses
        every CPU.  Parallel and serial fits are numerically identical:
        each restart's RNG stream depends only on ``(seed, restart)``
        and the best-fit reduction happens in restart order.
    fast_path:
        Use the structured E-step (per-symbol index caching; for the
        MMHD, support-restricted forward-backward recursions).  The
        dense reference E-step (``False``) computes the same quantities
        the textbook way; it exists for cross-checking and benchmarking
        and agrees with the fast path to floating-point round-off.
    backend:
        E-step execution engine for multi-restart fits.  ``"sequential"``
        runs one forward-backward per restart (the classic per-restart
        loop); ``"batched"`` stacks all restarts of a fit into ``(R, ...)``
        parameter tensors and runs ONE forward-backward over the batch,
        so the Python time loop executes ``T`` batched matmul steps
        instead of ``R x T`` scalar matvecs (restarts that converge are
        masked out of the batch, frozen, until all finish).
        ``"blocked"`` is the batched engine with the blocked scan
        kernel: per-step operators for a whole block of B time steps are
        composed with batched matmuls, cutting the Python-level dispatch
        count from ``T`` to roughly ``B + 3 T / B`` per E-pass.
        ``"compiled"`` selects the optional numba kernel and falls back
        gracefully (to the blocked or loop kernel) when numba is not
        installed — it is never a hard dependency.  ``"auto"``
        (default) picks by the documented heuristic in
        :mod:`repro.models.batched`: blocked for narrow state widths,
        batched for moderate ones, sequential for wide ones.  ``None``
        reads the ``REPRO_EM_BACKEND`` environment variable (falling
        back to ``"auto"``).  All engines produce the same winning
        restart and agree on every statistic to floating-point
        round-off; with ``n_jobs > 1`` they compose — each pool worker
        runs its restart shard through the selected engine.
    dtype:
        Floating-point width of the forward-backward recursions.
        ``"float64"`` (default) is the reference arithmetic;
        ``"float32"`` halves the recursion bandwidth, and the batched
        driver automatically demotes a fit back to float64 (visible in
        the ``em.backend`` telemetry event and the
        ``repro_em_dtype_fallback_total`` counter) when the narrower
        scales hit zero likelihood or underflow.  Model parameters and
        M-step statistics stay float64 either way.  ``None`` reads the
        ``REPRO_EM_DTYPE`` environment variable (falling back to
        ``"float64"``).
    block_size:
        Time-block length B of the blocked scan kernel.  ``None``
        (default) auto-tunes: restart stacks balance the B scan steps
        against the ``3 T / B`` boundary steps from the sequence length,
        while ragged mega-batches pin a fixed default so per-row results
        never depend on batch composition.  Reads the
        ``REPRO_EM_BLOCK_SIZE`` environment variable when ``None``.
    """

    BACKENDS = ("auto", "batched", "blocked", "compiled", "sequential")
    DTYPES = ("float64", "float32")

    def __init__(
        self,
        tol: float = 1e-4,
        max_iter: int = 200,
        min_prob: float = 1e-10,
        n_restarts: int = 1,
        seed: int = 0,
        freeze_loss_iters: int = 5,
        data_driven_init: bool = True,
        loss_prior_losses: float = 1.0,
        loss_prior_observations: float = 50.0,
        n_jobs: int = 1,
        fast_path: bool = True,
        backend: Optional[str] = None,
        dtype: Optional[str] = None,
        block_size: Optional[int] = None,
    ):
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if n_restarts < 1:
            raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
        if freeze_loss_iters < 0:
            raise ValueError(f"freeze_loss_iters must be >= 0, got {freeze_loss_iters}")
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self.min_prob = float(min_prob)
        self.n_restarts = int(n_restarts)
        self.seed = int(seed)
        if loss_prior_losses < 0 or loss_prior_observations < 0:
            raise ValueError("loss prior pseudo-counts must be >= 0")
        self.freeze_loss_iters = int(freeze_loss_iters)
        self.data_driven_init = bool(data_driven_init)
        self.loss_prior_losses = float(loss_prior_losses)
        self.loss_prior_observations = float(loss_prior_observations)
        if n_jobs is not None and int(n_jobs) < -1:
            raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
        self.n_jobs = 1 if n_jobs is None else int(n_jobs)
        self.fast_path = bool(fast_path)
        if backend is None:
            backend = os.environ.get("REPRO_EM_BACKEND") or "auto"
        if backend not in self.BACKENDS:
            raise ValueError(
                f"backend must be one of {self.BACKENDS}, got {backend!r}"
            )
        self.backend = backend
        if dtype is None:
            dtype = os.environ.get("REPRO_EM_DTYPE") or "float64"
        if dtype not in self.DTYPES:
            raise ValueError(
                f"dtype must be one of {self.DTYPES}, got {dtype!r}"
            )
        self.dtype = dtype
        if block_size is None:
            env_block = os.environ.get("REPRO_EM_BLOCK_SIZE")
            block_size = int(env_block) if env_block else None
        if block_size is not None and int(block_size) < 1:
            raise ValueError(
                f"block_size must be >= 1 or None, got {block_size}"
            )
        self.block_size = None if block_size is None else int(block_size)

    def replace(self, **overrides) -> "EMConfig":
        """A copy of this config with the given fields overridden.

        Used by layers that fan fits out to worker processes and need a
        per-task variant (e.g. a different ``seed``, or ``n_jobs=1`` so
        pool workers never nest pools of their own).
        """
        fields = dict(
            tol=self.tol,
            max_iter=self.max_iter,
            min_prob=self.min_prob,
            n_restarts=self.n_restarts,
            seed=self.seed,
            freeze_loss_iters=self.freeze_loss_iters,
            data_driven_init=self.data_driven_init,
            loss_prior_losses=self.loss_prior_losses,
            loss_prior_observations=self.loss_prior_observations,
            n_jobs=self.n_jobs,
            fast_path=self.fast_path,
            backend=self.backend,
            dtype=self.dtype,
            block_size=self.block_size,
        )
        unknown = set(overrides) - set(fields)
        if unknown:
            raise TypeError(f"unknown EMConfig fields: {sorted(unknown)}")
        fields.update(overrides)
        return EMConfig(**fields)


class FittedModel:
    """Common result surface for fitted HMM/MMHD models.

    Attributes
    ----------
    virtual_delay_pmf:
        ``Ĝ``'s PMF over symbols ``1..M`` — eq. (5): the model's posterior
        distribution of the delay symbol at loss instants.
    log_likelihoods:
        Per-iteration log-likelihood trail (monotone non-decreasing up to
        floating-point noise; property-tested).
    converged:
        Whether the parameter-change threshold was reached before
        ``max_iter``.
    """

    def __init__(
        self,
        virtual_delay_pmf: np.ndarray,
        log_likelihoods: List[float],
        converged: bool,
        n_iter: int,
    ):
        self.virtual_delay_pmf = np.asarray(virtual_delay_pmf, dtype=float)
        self.log_likelihoods = list(log_likelihoods)
        self.converged = bool(converged)
        self.n_iter = int(n_iter)

    @property
    def log_likelihood(self) -> float:
        """Final log-likelihood."""
        return self.log_likelihoods[-1]

    @property
    def n_symbols(self) -> int:
        """Number of delay symbols M."""
        return len(self.virtual_delay_pmf)

    def virtual_delay_cdf(self) -> np.ndarray:
        """``Ĝ`` as a CDF over symbols ``1..M``."""
        return np.cumsum(self.virtual_delay_pmf)


def require_losses(seq: ObservationSequence, what: str) -> None:
    """Fail fast when a computation needs loss observations.

    The loss-channel M-step and the eq. (5) posterior both divide by the
    expected loss mass; without this guard a loss-free sequence fails
    deep inside that division with an opaque numerical error.
    """
    if seq.n_losses == 0:
        raise InsufficientLossError(
            f"{what} requires lost probes, but the observation sequence has "
            f"0 losses in {len(seq)} observations; the paper's estimators "
            "are posteriors at loss instants and are undefined without them"
        )


def floor_and_normalize(matrix: np.ndarray, min_prob: float) -> np.ndarray:
    """Clamp probabilities to at least ``min_prob`` and renormalise rows.

    Works for 1-D (distributions), 2-D (stochastic matrices, row-wise)
    and batched stacks thereof (normalisation is over the last axis), so
    the batched E-step engine applies the identical M-step flooring to a
    whole restart stack at once.
    """
    floored = np.maximum(matrix, min_prob)
    if floored.ndim == 1:
        return floored / floored.sum()
    return floored / floored.sum(axis=-1, keepdims=True)


def max_param_change(old: Sequence[np.ndarray], new: Sequence[np.ndarray]) -> float:
    """Largest absolute elementwise change across parameter arrays."""
    return max(
        float(np.max(np.abs(np.asarray(a) - np.asarray(b)))) for a, b in zip(old, new)
    )
