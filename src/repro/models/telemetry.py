"""EM fit instrumentation shared by the HMM and MMHD fitters.

The paper's fits are only trustworthy when EM behaves: log-likelihood
climbs monotonically, restarts agree, and the winner is not a lucky
degenerate basin.  These helpers turn each restart and each
multi-restart reduction into telemetry (see :mod:`repro.obs.schema` for
the event payloads) without cluttering the fitters themselves.

Both helpers are cheap no-ops while telemetry is disabled.
``record_restart`` runs inside parallel-map workers — its counters ride
back to the parent through the metric-delta round-trip, and its events
append directly to a shared JSONL sink.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs

__all__ = ["record_restart", "record_fit", "record_drain_round"]

#: decimal places kept for log-likelihoods in event payloads — enough to
#: see non-monotonicity at the EM tolerance, small enough to keep JSONL
#: trajectories compact.
_LOGLIK_DECIMALS = 6


def record_restart(model: str, restart: int, fitted) -> None:
    """Telemetry for one finished EM restart (worker-side).

    Emits the full per-iteration log-likelihood trajectory so a
    non-monotone run can be debugged from the event file alone.
    """
    if not obs.is_enabled():
        return
    obs.inc("repro_em_restarts_total", 1.0, model=model)
    obs.inc("repro_em_iterations_total", float(fitted.n_iter), model=model)
    if not fitted.converged:
        obs.inc("repro_em_nonconverged_total", 1.0, model=model)
    obs.emit(
        "em.restart",
        model=model,
        restart=int(restart),
        n_iter=int(fitted.n_iter),
        converged=bool(fitted.converged),
        loglik=round(float(fitted.log_likelihood), _LOGLIK_DECIMALS),
        logliks=[round(float(v), _LOGLIK_DECIMALS)
                 for v in fitted.log_likelihoods],
    )


def record_fit(model: str, fits: Sequence, best_restart: int) -> None:
    """Telemetry for a multi-restart fit reduced to its winner.

    The restart-to-restart spread of final log-likelihoods
    (``loglik_dispersion``) is the one-number health check for basin
    sensitivity: near zero means restarts agree, large means the
    likelihood surface is multi-modal and the restart budget matters.
    """
    if not obs.is_enabled():
        return
    logliks = [round(float(f.log_likelihood), _LOGLIK_DECIMALS)
               for f in fits]
    obs.inc("repro_em_fits_total", 1.0, model=model)
    obs.inc("repro_em_restart_wins_total", 1.0, restart=int(best_restart))
    obs.emit(
        "em.fit",
        model=model,
        n_restarts=len(fits),
        best_restart=int(best_restart),
        restart_logliks=logliks,
        loglik_dispersion=round(max(logliks) - min(logliks),
                                _LOGLIK_DECIMALS) if logliks else 0.0,
    )


def record_drain_round(mode: str, windows: int, groups: int, rows: int,
                       pad_fraction: float, dur_s: float) -> None:
    """Telemetry for one multi-path drain round.

    ``pad_fraction`` is the share of mega-batch slots wasted on padding
    (ragged stacks pad every window to the longest one in its group); a
    fused drain whose rounds report high pad waste is stacking windows
    of very unequal length and may be better served by the pool mode.
    The pool mode runs no mega-batches, so ``groups``/``rows`` are zero
    and no pad-waste sample is recorded for it.
    """
    if not obs.is_enabled():
        return
    obs.inc("repro_drain_rounds_total", 1.0, mode=mode)
    obs.inc("repro_drain_windows_total", float(windows), mode=mode)
    obs.observe("repro_drain_round_seconds", float(dur_s), mode=mode)
    if mode == "fused":
        obs.observe("repro_drain_pad_waste_ratio", float(pad_fraction))
    obs.emit(
        "drain.round",
        mode=mode,
        windows=int(windows),
        groups=int(groups),
        rows=int(rows),
        pad_fraction=round(float(pad_fraction), 4),
        dur_ms=round(float(dur_s) * 1e3, 3),
    )
