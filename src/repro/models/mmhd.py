"""Markov model with a hidden dimension (MMHD).

The MMHD of Wei, Wang & Towsley ("Continuous-time hidden Markov models for
network performance evaluation", Performance Evaluation 2002): the state at
time ``t`` is a pair ``X_t = (Y_t, D_t)`` of a hidden component
``Y_t ∈ {1..N}`` and the *observable* delay symbol ``D_t ∈ {1..M}``.
Unlike an HMM, the delay symbol is part of the Markov state itself, so
delay-to-delay correlation is modelled directly — the reason the paper
finds MMHD strictly more accurate than HMM (Fig. 8).

Observation model (losses as missing values):

* if probe ``t`` arrives with symbol ``m``, the state is constrained to
  the column ``D_t = m`` with likelihood ``1 - c_m``;
* if probe ``t`` is lost, the symbol is unobserved: every state ``(h, d)``
  is possible with likelihood ``c_d``, where
  ``c_d = P(loss | delay symbol d)``.

The EM algorithm is the paper's Appendix B: scaled forward/backward over
the flattened ``N*M``-state chain, transition update from the ``xi`` sums
(eq. 6-7), ``c`` update from the loss-instant occupancies (eq. 8), and
``Ĝ(m) = P(D_t = m | loss)`` from eq. (5).  With ``N = 1`` the model
degenerates to an observable Markov chain over delay symbols, as noted in
Section V-B.

Fast path
---------
At an *observed* step the state is confined to the ``N`` states sharing
the observed symbol, so the forward/backward recursions only ever need
``N``-vectors there — not ``N*M``-vectors — and the transition work is an
``N×N`` sub-block of the flattened matrix, selected by the (previous,
current) symbol pair.  The default E-step (:meth:`~MarkovModelHiddenDimension
._estep`) exploits this: recursions run on support-restricted vectors,
and the ``xi`` transition statistics are accumulated by batching all
consecutive-step pairs with the same symbol pair into one BLAS product
(the pair groups are precomputed once per fit in
:class:`~repro.models.base.SymbolIndex`).  With a typical ~1-5% loss rate
nearly every step takes the restricted branch.  The dense textbook
implementation is kept (``EMConfig.fast_path=False``) as the reference
the test suite cross-checks against.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.models.base import (
    LOSS,
    EMConfig,
    FittedModel,
    ObservationSequence,
    SymbolIndex,
    floor_and_normalize,
    max_param_change,
    require_losses,
)
from repro.models.initialization import mmhd_initial_parameters
from repro.models.telemetry import record_fit, record_restart
from repro.obs import span
from repro.parallel import parallel_map, resolve_n_jobs, restart_rng

__all__ = ["MarkovModelHiddenDimension", "fit_mmhd"]


class _EStepStats:
    """Sufficient statistics of one E-pass, shared by both E-step paths.

    ``loss_mass[m]`` / ``total_mass[m]`` are the expected symbol-``m``
    counts over loss instants / all instants (the eq. 8 numerator and
    denominator); ``loss_mass`` normalised is the eq. (5) posterior.
    """

    __slots__ = ("gamma0", "xi_sum", "loss_mass", "total_mass", "loglik")

    def __init__(self, gamma0, xi_sum, loss_mass, total_mass, loglik):
        self.gamma0 = gamma0
        self.xi_sum = xi_sum
        self.loss_mass = loss_mass
        self.total_mass = total_mass
        self.loglik = loglik


class MarkovModelHiddenDimension:
    """MMHD over joint states ``(h, d)`` flattened as ``h * M + d``.

    Parameters
    ----------
    pi:
        Initial joint-state distribution, shape ``(N * M,)``.
    transition:
        Joint transition matrix, shape ``(N * M, N * M)``, row-stochastic.
    loss_given_symbol:
        ``c[d] = P(loss | delay symbol d+1)``, shape ``(M,)``, in (0, 1).
    n_symbols:
        ``M`` — needed to unflatten the state space.
    """

    def __init__(
        self,
        pi: np.ndarray,
        transition: np.ndarray,
        loss_given_symbol: np.ndarray,
        n_symbols: int,
    ):
        pi = np.asarray(pi, dtype=float)
        transition = np.asarray(transition, dtype=float)
        loss_given_symbol = np.asarray(loss_given_symbol, dtype=float)
        n_states = len(pi)
        if n_symbols < 1 or n_states % n_symbols != 0:
            raise ValueError(
                f"state count {n_states} must be a multiple of n_symbols {n_symbols}"
            )
        if transition.shape != (n_states, n_states):
            raise ValueError("transition must be square and match pi")
        if loss_given_symbol.shape != (n_symbols,):
            raise ValueError("loss_given_symbol must have one entry per symbol")
        if not np.allclose(pi.sum(), 1.0, atol=1e-6) or np.any(pi < 0):
            raise ValueError("pi must be a distribution")
        row_sums = transition.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-6) or np.any(transition < 0):
            raise ValueError("transition rows must sum to 1")
        if np.any(loss_given_symbol <= 0) or np.any(loss_given_symbol >= 1):
            raise ValueError("loss_given_symbol entries must lie in (0, 1)")
        self.pi = pi
        self.transition = transition
        self.loss_given_symbol = loss_given_symbol
        self.n_symbols = int(n_symbols)
        #: delay symbol (0-based) of each flattened state
        self.state_symbol = np.tile(np.arange(n_symbols), n_states // n_symbols)

    @property
    def n_states(self) -> int:
        """Size of the joint state space, N * M."""
        return len(self.pi)

    @property
    def n_hidden(self) -> int:
        """Number of hidden states N."""
        return self.n_states // self.n_symbols

    def parameters(self) -> Tuple[np.ndarray, ...]:
        """All parameter arrays, for convergence checks."""
        return (self.pi, self.transition, self.loss_given_symbol)

    def _symbol_cols(self) -> List[np.ndarray]:
        """Flattened-state indices of each symbol: ``cols[m] = m + M*h``."""
        n_hidden, n_symbols = self.n_hidden, self.n_symbols
        return [
            m + n_symbols * np.arange(n_hidden) for m in range(n_symbols)
        ]

    # ------------------------------------------------------------------
    # Likelihood machinery (dense reference path)
    # ------------------------------------------------------------------
    def _observation_likelihoods(self, symbols0: np.ndarray) -> np.ndarray:
        """Per-step state likelihoods, shape ``(T, N*M)``.

        Observed symbol ``m``: mass only on the ``d = m`` column, weighted
        by survival ``1 - c_m``; loss: every state weighted by ``c_d``.
        """
        n_steps = len(symbols0)
        likes = np.zeros((n_steps, self.n_states))
        lost = symbols0 == LOSS
        likes[lost] = self.loss_given_symbol[self.state_symbol][None, :]
        observed_idx = np.flatnonzero(~lost)
        observed_syms = symbols0[observed_idx]
        survive = 1.0 - self.loss_given_symbol
        n_symbols = self.n_symbols
        for h in range(self.n_hidden):
            likes[observed_idx, h * n_symbols + observed_syms] = survive[
                observed_syms
            ]
        return likes

    def _forward_backward(self, likes: np.ndarray):
        n_steps = likes.shape[0]
        alpha = np.empty_like(likes)
        scales = np.empty(n_steps)
        state = self.pi * likes[0]
        scales[0] = state.sum()
        if scales[0] <= 0:
            raise FloatingPointError("zero likelihood at t=0")
        alpha[0] = state / scales[0]
        transition = self.transition
        for t in range(1, n_steps):
            state = (alpha[t - 1] @ transition) * likes[t]
            total = state.sum()
            if total <= 0:
                raise FloatingPointError(f"zero likelihood at t={t}")
            scales[t] = total
            alpha[t] = state / total

        beta = np.empty_like(likes)
        beta[n_steps - 1] = 1.0
        for t in range(n_steps - 2, -1, -1):
            beta[t] = transition @ (likes[t + 1] * beta[t + 1]) / scales[t + 1]
        return alpha, beta, scales, float(np.log(scales).sum())

    def log_likelihood(
        self,
        seq: ObservationSequence,
        index: Optional[SymbolIndex] = None,
    ) -> float:
        """Log-likelihood of the observation sequence under this model.

        ``index`` reuses a caller-cached :class:`SymbolIndex` so scoring
        layers (selection, bootstrap) skip the redundant symbol scan.
        """
        symbols0 = index.symbols0 if index is not None else seq.zero_based()
        likes = self._observation_likelihoods(symbols0)
        _, _, _, loglik = self._forward_backward(likes)
        return loglik

    # ------------------------------------------------------------------
    # EM (Appendix B)
    # ------------------------------------------------------------------
    def _expectations(self, seq: ObservationSequence):
        """Dense E-step: ``(gamma, xi_sum, loglik)`` with scaled recursions."""
        symbols0 = seq.zero_based()
        likes = self._observation_likelihoods(symbols0)
        alpha, beta, scales, loglik = self._forward_backward(likes)
        gamma = alpha * beta
        weighted = likes[1:] * beta[1:] / scales[1:, None]
        xi_sum = self.transition * (alpha[:-1].T @ weighted)
        return gamma, xi_sum, loglik

    def _symbol_occupancy(self, gamma: np.ndarray) -> np.ndarray:
        """Collapse state occupancies onto delay symbols: shape (T, M)."""
        n_steps = gamma.shape[0]
        return gamma.reshape(n_steps, self.n_hidden, self.n_symbols).sum(axis=1)

    def _estep_dense(self, index: SymbolIndex) -> _EStepStats:
        """Reference E-step over the full ``(T, N*M)`` arrays."""
        likes = self._observation_likelihoods(index.symbols0)
        alpha, beta, scales, loglik = self._forward_backward(likes)
        gamma = alpha * beta
        weighted = likes[1:] * beta[1:] / scales[1:, None]
        xi_sum = self.transition * (alpha[:-1].T @ weighted)
        symbol_occ = self._symbol_occupancy(gamma)
        loss_mass = symbol_occ[index.lost].sum(axis=0)
        total_mass = symbol_occ.sum(axis=0)
        return _EStepStats(gamma[0], xi_sum, loss_mass, total_mass, loglik)

    def _structured_transition_blocks(self):
        """Per-(symbol, symbol) views of the transition matrix, likelihood-scaled.

        Returns ``(T_oo, T_ol, T_lo, T_ll)``:

        * ``T_oo[mp][m]`` — ``(N, N)``: observed ``mp`` -> observed ``m``,
          destination scaled by ``1 - c_m``;
        * ``T_ol[mp]`` — ``(N, N*M)``: observed ``mp`` -> loss, columns
          scaled by ``c_d``;
        * ``T_lo[m]`` — ``(N*M, N)``: loss -> observed ``m``, scaled by
          ``1 - c_m``;
        * ``T_ll`` — ``(N*M, N*M)``: loss -> loss, columns scaled by ``c_d``.
        """
        n_hidden, n_symbols, n_states = self.n_hidden, self.n_symbols, self.n_states
        survive = 1.0 - self.loss_given_symbol
        c_state = self.loss_given_symbol[self.state_symbol]
        a4 = self.transition.reshape(n_hidden, n_symbols, n_hidden, n_symbols)
        # (M_from, M_to, N_from, N_to), destination-survival folded in.
        t_oo_arr = np.ascontiguousarray(
            a4.transpose(1, 3, 0, 2) * survive[None, :, None, None]
        )
        t_oo = [
            [t_oo_arr[mp, m] for m in range(n_symbols)] for mp in range(n_symbols)
        ]
        t_ol = [
            np.ascontiguousarray(a4[:, mp].reshape(n_hidden, n_states))
            * c_state[None, :]
            for mp in range(n_symbols)
        ]
        t_lo = [
            np.ascontiguousarray(a4[:, :, :, m].reshape(n_states, n_hidden))
            * survive[m]
            for m in range(n_symbols)
        ]
        t_ll = self.transition * c_state[None, :]
        return t_oo, t_ol, t_lo, t_ll

    def _estep_fast(self, index: SymbolIndex) -> _EStepStats:
        """Support-restricted E-step (see module docstring).

        Identical statistics to :meth:`_estep_dense` up to floating-point
        round-off; asymptotically ``O(T N^2 + L (NM)^2)`` instead of
        ``O(T (NM)^2)`` for ``L`` loss instants.
        """
        n_hidden, n_symbols, n_states = self.n_hidden, self.n_symbols, self.n_states
        symbols = index.symbol_list
        n_steps = len(symbols)
        n_losses = index.n_losses
        cols = self._symbol_cols()
        t_oo, t_ol, t_lo, t_ll = self._structured_transition_blocks()
        survive = 1.0 - self.loss_given_symbol
        c_state = self.loss_given_symbol[self.state_symbol]

        scales = np.empty(n_steps)
        alpha_obs = np.zeros((n_steps, n_hidden))
        beta_obs = np.zeros((n_steps, n_hidden))
        alpha_loss = np.empty((n_losses, n_states))
        beta_loss = np.empty((n_losses, n_states))

        # Forward pass.
        m0 = symbols[0]
        if m0 >= 0:
            state = self.pi[cols[m0]] * survive[m0]
        else:
            state = self.pi * c_state
        total = state.sum()
        if total <= 0:
            raise FloatingPointError("zero likelihood at t=0")
        scales[0] = total
        prev = state / total
        prev_m = m0
        loss_ptr = 0
        if m0 >= 0:
            alpha_obs[0] = prev
        else:
            alpha_loss[0] = prev
            loss_ptr = 1
        for t in range(1, n_steps):
            m = symbols[t]
            if m >= 0:
                if prev_m >= 0:
                    state = prev @ t_oo[prev_m][m]
                else:
                    state = prev @ t_lo[m]
            else:
                if prev_m >= 0:
                    state = prev @ t_ol[prev_m]
                else:
                    state = prev @ t_ll
            total = state.sum()
            if total <= 0:
                raise FloatingPointError(f"zero likelihood at t={t}")
            scales[t] = total
            prev = state / total
            if m >= 0:
                alpha_obs[t] = prev
            else:
                alpha_loss[loss_ptr] = prev
                loss_ptr += 1
            prev_m = m

        # Backward pass (beta rows, support-restricted like alpha).
        last_m = symbols[n_steps - 1]
        loss_ptr = n_losses - 1
        if last_m >= 0:
            nxt = np.ones(n_hidden)
            beta_obs[n_steps - 1] = nxt
        else:
            nxt = np.ones(n_states)
            beta_loss[loss_ptr] = nxt
            loss_ptr -= 1
        next_m = last_m
        for t in range(n_steps - 2, -1, -1):
            m = symbols[t]
            scale = scales[t + 1]
            if m >= 0:
                if next_m >= 0:
                    row = t_oo[m][next_m] @ nxt / scale
                else:
                    row = t_ol[m] @ nxt / scale
                beta_obs[t] = row
            else:
                if next_m >= 0:
                    row = t_lo[next_m] @ nxt / scale
                else:
                    row = t_ll @ nxt / scale
                beta_loss[loss_ptr] = row
                loss_ptr -= 1
            nxt = row
            next_m = m

        # Occupancies.
        gamma_loss = alpha_loss * beta_loss
        obs_vals = np.einsum("ij,ij->i", alpha_obs, beta_obs)
        if symbols[0] >= 0:
            gamma0 = np.zeros(n_states)
            gamma0[cols[symbols[0]]] = alpha_obs[0] * beta_obs[0]
        else:
            gamma0 = gamma_loss[0]
        loss_mass = (
            gamma_loss.reshape(n_losses, n_hidden, n_symbols).sum(axis=(0, 1))
            if n_losses
            else np.zeros(n_symbols)
        )
        observed_mass = np.bincount(
            index.observed_symbols,
            weights=obs_vals[index.observed_idx],
            minlength=n_symbols,
        )
        total_mass = loss_mass + observed_mass

        # Transition statistics, batched per (symbol, symbol) pair group.
        xi_sum = np.zeros((n_states, n_states))
        oo, ol, lo, ll = index.pair_groups()
        inv_scales = 1.0 / scales
        loss_rank = index.loss_rank
        for (mp, m), ts in oo.items():
            a = alpha_obs[ts - 1]
            b = beta_obs[ts] * inv_scales[ts][:, None]
            xi_sum[np.ix_(cols[mp], cols[m])] += t_oo[mp][m] * (a.T @ b)
        for mp, ts in ol.items():
            a = alpha_obs[ts - 1]
            b = beta_loss[loss_rank[ts]] * inv_scales[ts][:, None]
            xi_sum[cols[mp], :] += t_ol[mp] * (a.T @ b)
        for m, ts in lo.items():
            a = alpha_loss[loss_rank[ts - 1]]
            b = beta_obs[ts] * inv_scales[ts][:, None]
            xi_sum[:, cols[m]] += t_lo[m] * (a.T @ b)
        if len(ll):
            a = alpha_loss[loss_rank[ll - 1]]
            b = beta_loss[loss_rank[ll]] * inv_scales[ll][:, None]
            xi_sum += t_ll * (a.T @ b)

        loglik = float(np.log(scales).sum())
        return _EStepStats(gamma0, xi_sum, loss_mass, total_mass, loglik)

    def _estep(self, index: SymbolIndex, fast: bool = True) -> _EStepStats:
        """One E-pass; ``fast`` selects the support-restricted path."""
        return self._estep_fast(index) if fast else self._estep_dense(index)

    def _maximize(
        self,
        stats: _EStepStats,
        min_prob: float,
        loss_prior: Tuple[float, float],
    ) -> "MarkovModelHiddenDimension":
        """M-step of Appendix B from one E-pass's statistics."""
        pi = floor_and_normalize(stats.gamma0, min_prob)
        transition = floor_and_normalize(stats.xi_sum, min_prob)
        prior_losses, prior_observations = loss_prior
        # eq. (8): expected losses with symbol m over expected symbol-m count.
        loss_given_symbol = (stats.loss_mass + prior_losses) / np.maximum(
            stats.total_mass + prior_losses + prior_observations, 1e-300
        )
        loss_given_symbol = np.clip(loss_given_symbol, min_prob, 1.0 - min_prob)
        return MarkovModelHiddenDimension(
            pi, transition, loss_given_symbol, self.n_symbols
        )

    def em_step(
        self,
        seq: ObservationSequence,
        min_prob: float = 1e-10,
        loss_prior=(0.0, 0.0),
        index: Optional[SymbolIndex] = None,
        fast: bool = True,
    ):
        """One EM iteration (maximisation step of Appendix B).

        ``loss_prior = (a, b)`` applies a Beta(a, b)-style MAP update to
        ``c`` (see :class:`~repro.models.base.EMConfig`); ``(0, 0)`` is
        the plain MLE of the paper.  ``index`` reuses a precomputed
        :class:`SymbolIndex` across iterations.  Returns
        ``(new_model, loglik_of_current_model)``.
        """
        require_losses(seq, "em_step")
        if index is None:
            index = SymbolIndex(seq)
        stats = self._estep(index, fast=fast)
        return self._maximize(stats, min_prob, loss_prior), stats.loglik

    def virtual_delay_pmf(
        self,
        seq: ObservationSequence,
        index: Optional[SymbolIndex] = None,
        fast: bool = True,
    ) -> np.ndarray:
        """Eq. (5): ``Ĝ(m) = P(D_t = m | loss)`` under this model."""
        require_losses(seq, "virtual_delay_pmf")
        if index is None:
            index = SymbolIndex(seq)
        stats = self._estep(index, fast=fast)
        return stats.loss_mass / stats.loss_mass.sum()


def _fit_mmhd_restart(task) -> "FittedMMHD":
    """One EM run from one random initialisation (parallel-map worker)."""
    seq, n_hidden, config, restart, index = task
    rng = restart_rng(config.seed, restart)
    pi, transition, c = mmhd_initial_parameters(
        seq, n_hidden, rng, data_driven=config.data_driven_init
    )
    model = MarkovModelHiddenDimension(pi, transition, c, seq.n_symbols)
    if index is None:
        index = SymbolIndex(seq)
    logliks: List[float] = []
    converged = False
    prior = (config.loss_prior_losses, config.loss_prior_observations)
    for iteration in range(config.max_iter):
        stats = model._estep(index, fast=config.fast_path)
        new_model = model._maximize(stats, config.min_prob, prior)
        logliks.append(stats.loglik)
        if iteration < config.freeze_loss_iters:
            # Warm start: learn dynamics before the loss channel.
            new_model = MarkovModelHiddenDimension(
                new_model.pi, new_model.transition, c, seq.n_symbols
            )
        elif (
            max_param_change(model.parameters(), new_model.parameters())
            < config.tol
        ):
            model = new_model
            converged = True
            break
        model = new_model
    # One final E-pass yields both the trailing log-likelihood and the
    # eq. (5) posterior — the seed ran two separate full passes here.
    final_stats = model._estep(index, fast=config.fast_path)
    fitted = FittedMMHD(
        model=model,
        virtual_delay_pmf=final_stats.loss_mass / final_stats.loss_mass.sum(),
        log_likelihoods=logliks + [final_stats.loglik],
        converged=converged,
        n_iter=len(logliks),
    )
    record_restart("mmhd", restart, fitted)
    return fitted


def fit_mmhd(
    seq: ObservationSequence,
    n_hidden: int,
    config: Optional[EMConfig] = None,
    index: Optional[SymbolIndex] = None,
) -> "FittedMMHD":
    """Fit an MMHD by EM, with optional random restarts.

    Restarts are independent EM runs.  ``config.backend`` selects the
    E-step engine: the batched engine stacks all restarts into one
    forward-backward (:mod:`repro.models.batched`, reusing the
    structured fast-path factorization inside the batch), the
    sequential engine runs one recursion per restart.  Either way
    restarts fan out over ``config.n_jobs`` worker processes and the
    best final log-likelihood wins, compared in restart order, so the
    result is identical for any ``n_jobs``.  ``index`` reuses a
    caller-cached :class:`SymbolIndex`.
    """
    config = config or EMConfig()
    require_losses(seq, "fit_mmhd")
    # Imported lazily: batched.py builds on this module's model classes.
    from repro.models import batched

    backend = batched.resolve_backend(config, "mmhd", n_hidden, seq.n_symbols)
    with span("em.fit", model="mmhd", n_hidden=n_hidden,
              n_restarts=config.n_restarts, backend=backend):
        if backend in batched.BATCH_BACKENDS:
            fits = batched.batched_restart_fits(
                "mmhd", seq, n_hidden, config, index=index, backend=backend
            )
        else:
            serial = (resolve_n_jobs(config.n_jobs) <= 1
                      or config.n_restarts <= 1)
            shared = (index or SymbolIndex(seq)) if serial else None
            tasks = [(seq, n_hidden, config, r, shared)
                     for r in range(config.n_restarts)]
            fits = parallel_map(_fit_mmhd_restart, tasks, n_jobs=config.n_jobs)
            batched.record_backend(
                "mmhd", backend,
                n_shards=min(resolve_n_jobs(config.n_jobs), len(fits)),
                infos=[{"rows": 1, "batch_iterations": f.n_iter,
                        "active_row_iterations": f.n_iter} for f in fits],
            )
        best_restart = 0
        for restart, fitted in enumerate(fits[1:], start=1):
            if fitted.log_likelihood > fits[best_restart].log_likelihood:
                best_restart = restart
        record_fit("mmhd", fits, best_restart)
        return fits[best_restart]


class FittedMMHD(FittedModel):
    """A fitted MMHD plus the shared :class:`FittedModel` surface."""

    def __init__(self, model: MarkovModelHiddenDimension, **kwargs):
        super().__init__(**kwargs)
        self.model = model
