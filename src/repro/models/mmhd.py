"""Markov model with a hidden dimension (MMHD).

The MMHD of Wei, Wang & Towsley ("Continuous-time hidden Markov models for
network performance evaluation", Performance Evaluation 2002): the state at
time ``t`` is a pair ``X_t = (Y_t, D_t)`` of a hidden component
``Y_t ∈ {1..N}`` and the *observable* delay symbol ``D_t ∈ {1..M}``.
Unlike an HMM, the delay symbol is part of the Markov state itself, so
delay-to-delay correlation is modelled directly — the reason the paper
finds MMHD strictly more accurate than HMM (Fig. 8).

Observation model (losses as missing values):

* if probe ``t`` arrives with symbol ``m``, the state is constrained to
  the column ``D_t = m`` with likelihood ``1 - c_m``;
* if probe ``t`` is lost, the symbol is unobserved: every state ``(h, d)``
  is possible with likelihood ``c_d``, where
  ``c_d = P(loss | delay symbol d)``.

The EM algorithm is the paper's Appendix B: scaled forward/backward over
the flattened ``N*M``-state chain, transition update from the ``xi`` sums
(eq. 6-7), ``c`` update from the loss-instant occupancies (eq. 8), and
``Ĝ(m) = P(D_t = m | loss)`` from eq. (5).  With ``N = 1`` the model
degenerates to an observable Markov chain over delay symbols, as noted in
Section V-B.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.models.base import (
    LOSS,
    EMConfig,
    FittedModel,
    ObservationSequence,
    floor_and_normalize,
    max_param_change,
)
from repro.models.initialization import mmhd_initial_parameters

__all__ = ["MarkovModelHiddenDimension", "fit_mmhd"]


class MarkovModelHiddenDimension:
    """MMHD over joint states ``(h, d)`` flattened as ``h * M + d``.

    Parameters
    ----------
    pi:
        Initial joint-state distribution, shape ``(N * M,)``.
    transition:
        Joint transition matrix, shape ``(N * M, N * M)``, row-stochastic.
    loss_given_symbol:
        ``c[d] = P(loss | delay symbol d+1)``, shape ``(M,)``, in (0, 1).
    n_symbols:
        ``M`` — needed to unflatten the state space.
    """

    def __init__(
        self,
        pi: np.ndarray,
        transition: np.ndarray,
        loss_given_symbol: np.ndarray,
        n_symbols: int,
    ):
        pi = np.asarray(pi, dtype=float)
        transition = np.asarray(transition, dtype=float)
        loss_given_symbol = np.asarray(loss_given_symbol, dtype=float)
        n_states = len(pi)
        if n_symbols < 1 or n_states % n_symbols != 0:
            raise ValueError(
                f"state count {n_states} must be a multiple of n_symbols {n_symbols}"
            )
        if transition.shape != (n_states, n_states):
            raise ValueError("transition must be square and match pi")
        if loss_given_symbol.shape != (n_symbols,):
            raise ValueError("loss_given_symbol must have one entry per symbol")
        if not np.allclose(pi.sum(), 1.0, atol=1e-6) or np.any(pi < 0):
            raise ValueError("pi must be a distribution")
        row_sums = transition.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-6) or np.any(transition < 0):
            raise ValueError("transition rows must sum to 1")
        if np.any(loss_given_symbol <= 0) or np.any(loss_given_symbol >= 1):
            raise ValueError("loss_given_symbol entries must lie in (0, 1)")
        self.pi = pi
        self.transition = transition
        self.loss_given_symbol = loss_given_symbol
        self.n_symbols = int(n_symbols)
        #: delay symbol (0-based) of each flattened state
        self.state_symbol = np.tile(np.arange(n_symbols), n_states // n_symbols)

    @property
    def n_states(self) -> int:
        """Size of the joint state space, N * M."""
        return len(self.pi)

    @property
    def n_hidden(self) -> int:
        """Number of hidden states N."""
        return self.n_states // self.n_symbols

    def parameters(self) -> Tuple[np.ndarray, ...]:
        """All parameter arrays, for convergence checks."""
        return (self.pi, self.transition, self.loss_given_symbol)

    # ------------------------------------------------------------------
    # Likelihood machinery
    # ------------------------------------------------------------------
    def _observation_likelihoods(self, symbols0: np.ndarray) -> np.ndarray:
        """Per-step state likelihoods, shape ``(T, N*M)``.

        Observed symbol ``m``: mass only on the ``d = m`` column, weighted
        by survival ``1 - c_m``; loss: every state weighted by ``c_d``.
        """
        n_steps = len(symbols0)
        state_sym = self.state_symbol
        likes = np.zeros((n_steps, self.n_states))
        lost = symbols0 == LOSS
        likes[lost] = self.loss_given_symbol[state_sym][None, :]
        observed_idx = np.flatnonzero(~lost)
        survive = 1.0 - self.loss_given_symbol
        for t in observed_idx:
            m = symbols0[t]
            likes[t, state_sym == m] = survive[m]
        return likes

    def _forward_backward(self, likes: np.ndarray):
        n_steps = likes.shape[0]
        alpha = np.empty_like(likes)
        scales = np.empty(n_steps)
        state = self.pi * likes[0]
        scales[0] = state.sum()
        if scales[0] <= 0:
            raise FloatingPointError("zero likelihood at t=0")
        alpha[0] = state / scales[0]
        transition = self.transition
        for t in range(1, n_steps):
            state = (alpha[t - 1] @ transition) * likes[t]
            total = state.sum()
            if total <= 0:
                raise FloatingPointError(f"zero likelihood at t={t}")
            scales[t] = total
            alpha[t] = state / total

        beta = np.empty_like(likes)
        beta[n_steps - 1] = 1.0
        for t in range(n_steps - 2, -1, -1):
            beta[t] = transition @ (likes[t + 1] * beta[t + 1]) / scales[t + 1]
        return alpha, beta, scales, float(np.log(scales).sum())

    def log_likelihood(self, seq: ObservationSequence) -> float:
        """Log-likelihood of the observation sequence under this model."""
        likes = self._observation_likelihoods(seq.zero_based())
        _, _, _, loglik = self._forward_backward(likes)
        return loglik

    # ------------------------------------------------------------------
    # EM (Appendix B)
    # ------------------------------------------------------------------
    def _expectations(self, seq: ObservationSequence):
        """E-step: ``(gamma, xi_sum, loglik)`` with scaled recursions."""
        symbols0 = seq.zero_based()
        likes = self._observation_likelihoods(symbols0)
        alpha, beta, scales, loglik = self._forward_backward(likes)
        gamma = alpha * beta
        weighted = likes[1:] * beta[1:] / scales[1:, None]
        xi_sum = self.transition * (alpha[:-1].T @ weighted)
        return gamma, xi_sum, loglik

    def _symbol_occupancy(self, gamma: np.ndarray) -> np.ndarray:
        """Collapse state occupancies onto delay symbols: shape (T, M)."""
        n_steps = gamma.shape[0]
        return gamma.reshape(n_steps, self.n_hidden, self.n_symbols).sum(axis=1)

    def em_step(
        self,
        seq: ObservationSequence,
        min_prob: float = 1e-10,
        loss_prior=(0.0, 0.0),
    ):
        """One EM iteration (maximisation step of Appendix B).

        ``loss_prior = (a, b)`` applies a Beta(a, b)-style MAP update to
        ``c`` (see :class:`~repro.models.base.EMConfig`); ``(0, 0)`` is
        the plain MLE of the paper.  Returns
        ``(new_model, loglik_of_current_model)``.
        """
        gamma, xi_sum, loglik = self._expectations(seq)
        pi = floor_and_normalize(gamma[0], min_prob)
        transition = floor_and_normalize(xi_sum, min_prob)
        # eq. (8): expected losses with symbol m over expected symbol-m count.
        symbol_occ = self._symbol_occupancy(gamma)
        lost = seq.losses
        loss_mass = symbol_occ[lost].sum(axis=0)
        total_mass = symbol_occ.sum(axis=0)
        prior_losses, prior_observations = loss_prior
        loss_given_symbol = (loss_mass + prior_losses) / np.maximum(
            total_mass + prior_losses + prior_observations, 1e-300
        )
        loss_given_symbol = np.clip(loss_given_symbol, min_prob, 1.0 - min_prob)
        model = MarkovModelHiddenDimension(
            pi, transition, loss_given_symbol, self.n_symbols
        )
        return model, loglik

    def virtual_delay_pmf(self, seq: ObservationSequence) -> np.ndarray:
        """Eq. (5): ``Ĝ(m) = P(D_t = m | loss)`` under this model."""
        gamma, _, _ = self._expectations(seq)
        symbol_occ = self._symbol_occupancy(gamma)
        mass = symbol_occ[seq.losses].sum(axis=0)
        total = mass.sum()
        if total <= 0:
            raise ValueError("no losses in the observation sequence")
        return mass / total


def fit_mmhd(
    seq: ObservationSequence,
    n_hidden: int,
    config: Optional[EMConfig] = None,
) -> "FittedMMHD":
    """Fit an MMHD by EM, with optional random restarts."""
    config = config or EMConfig()
    best: Optional[FittedMMHD] = None
    for restart in range(config.n_restarts):
        rng = np.random.default_rng(config.seed + restart)
        pi, transition, c = mmhd_initial_parameters(
            seq, n_hidden, rng, data_driven=config.data_driven_init
        )
        model = MarkovModelHiddenDimension(pi, transition, c, seq.n_symbols)
        logliks: List[float] = []
        converged = False
        prior = (config.loss_prior_losses, config.loss_prior_observations)
        for iteration in range(config.max_iter):
            new_model, loglik = model.em_step(
                seq, min_prob=config.min_prob, loss_prior=prior
            )
            logliks.append(loglik)
            if iteration < config.freeze_loss_iters:
                # Warm start: learn dynamics before the loss channel.
                new_model = MarkovModelHiddenDimension(
                    new_model.pi, new_model.transition, c, seq.n_symbols
                )
            elif (
                max_param_change(model.parameters(), new_model.parameters())
                < config.tol
            ):
                model = new_model
                converged = True
                break
            model = new_model
        fitted = FittedMMHD(
            model=model,
            virtual_delay_pmf=model.virtual_delay_pmf(seq),
            log_likelihoods=logliks + [model.log_likelihood(seq)],
            converged=converged,
            n_iter=len(logliks),
        )
        if best is None or fitted.log_likelihood > best.log_likelihood:
            best = fitted
    return best


class FittedMMHD(FittedModel):
    """A fitted MMHD plus the shared :class:`FittedModel` surface."""

    def __init__(self, model: MarkovModelHiddenDimension, **kwargs):
        super().__init__(**kwargs)
        self.model = model
