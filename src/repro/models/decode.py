"""Posterior decoding: most-likely state paths and loss-symbol series.

Diagnostics on top of the fitted models: the Viterbi path through the
hidden chain and, more usefully for the paper's problem, the per-loss
most-likely delay symbol — "what delay did each lost probe most probably
experience?"  These are not needed for identification (which uses only
the aggregate ``Ĝ``) but make individual congestion episodes visible.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.models.base import LOSS, ObservationSequence, SymbolIndex
from repro.models.hmm import HiddenMarkovModel
from repro.models.mmhd import MarkovModelHiddenDimension

__all__ = ["viterbi_hmm", "viterbi_mmhd", "decode_loss_symbols"]


def _viterbi(pi, transition, likes) -> np.ndarray:
    """Generic log-space Viterbi over per-step state likelihoods."""
    n_steps, n_states = likes.shape
    with np.errstate(divide="ignore"):
        log_pi = np.log(pi)
        log_transition = np.log(transition)
        log_likes = np.log(likes)
    delta = log_pi + log_likes[0]
    backpointers = np.zeros((n_steps, n_states), dtype=int)
    for t in range(1, n_steps):
        scores = delta[:, None] + log_transition
        backpointers[t] = scores.argmax(axis=0)
        delta = scores.max(axis=0) + log_likes[t]
    path = np.empty(n_steps, dtype=int)
    path[-1] = int(delta.argmax())
    for t in range(n_steps - 2, -1, -1):
        path[t] = backpointers[t + 1, path[t + 1]]
    return path


def _viterbi_mmhd_structured(
    model: MarkovModelHiddenDimension, index: SymbolIndex
) -> np.ndarray:
    """Support-restricted MMHD Viterbi (flat-state path).

    The same masking that powers the EM fast path applies to the max-plus
    recursion: at an observed step with symbol ``m`` only the ``N`` states
    ``(h, d=m)`` can carry mass, so the per-``t`` score matrix shrinks from
    ``(NM, NM)`` to as little as ``(N, N)``.  The transition sub-blocks
    are precomputed contiguously once per decode, so the ``t``-loop does a
    broadcast-add plus a masked max over a dense block instead of fancy
    indexing into the full matrix.

    Tie-breaking matches the dense reference exactly: support indices are
    enumerated in increasing flat-state order and masked-out states score
    ``-inf``, so ``argmax`` picks the same state (``np.argmax`` takes the
    first maximum) whenever the model's parameters are positive — which
    probability flooring guarantees for every fitted model.
    """
    n_symbols = model.n_symbols
    n_hidden = model.n_hidden
    n_states = model.n_states
    with np.errstate(divide="ignore"):
        log_pi = np.log(model.pi)
        log_transition = np.log(model.transition)
        log_loss = np.log(model.loss_given_symbol)
        log_survive = np.log(1.0 - model.loss_given_symbol)
    log_loss_state = log_loss[model.state_symbol]
    lt4 = log_transition.reshape(n_hidden, n_symbols, n_hidden, n_symbols)
    # (prev symbol, cur symbol) -> (N, N); observed -> loss -> (N, S);
    # loss -> observed -> (S, N); loss -> loss uses the full matrix.
    t_oo = np.ascontiguousarray(lt4.transpose(1, 3, 0, 2))
    t_ol = np.ascontiguousarray(lt4.transpose(1, 0, 2, 3)).reshape(
        n_symbols, n_hidden, n_states
    )
    t_lo = np.ascontiguousarray(lt4.transpose(3, 0, 1, 2)).reshape(
        n_symbols, n_states, n_hidden
    )

    symbols = index.symbol_list
    lost = index.lost
    n_steps = len(symbols)
    backpointers: list = [None] * n_steps
    if lost[0]:
        delta = log_pi + log_loss_state
    else:
        delta = log_pi[symbols[0]::n_symbols] + log_survive[symbols[0]]
    prev_lost, prev_m = lost[0], symbols[0]
    for t in range(1, n_steps):
        m = symbols[t]
        if lost[t]:
            block = log_transition if prev_lost else t_ol[prev_m]
        else:
            block = t_lo[m] if prev_lost else t_oo[prev_m, m]
        scores = delta[:, None] + block
        backpointers[t] = scores.argmax(axis=0)
        delta = scores.max(axis=0)
        delta = delta + (log_loss_state if lost[t] else log_survive[m])
        prev_lost, prev_m = lost[t], m

    # Backtrack in local (support) coordinates, emitting flat states.
    path = np.empty(n_steps, dtype=int)
    local = int(delta.argmax())
    for t in range(n_steps - 1, 0, -1):
        path[t] = local if lost[t] else local * n_symbols + symbols[t]
        local = int(backpointers[t][local])
    path[0] = local if lost[0] else local * n_symbols + symbols[0]
    return path


def viterbi_hmm(
    model: HiddenMarkovModel, seq: ObservationSequence
) -> np.ndarray:
    """Most likely hidden-state path under an HMM, shape ``(T,)``."""
    likes = model._observation_likelihoods(seq.zero_based())
    return _viterbi(model.pi, model.transition, likes)


def viterbi_mmhd(
    model: MarkovModelHiddenDimension,
    seq: ObservationSequence,
    structured: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Most likely joint path under an MMHD.

    Returns ``(hidden_path, symbol_path)``; at observed instants the
    symbol path necessarily equals the observation, at loss instants it
    is the decoded (most likely) delay symbol, 1-based.

    ``structured=True`` (the default) runs the support-restricted
    recursion; ``structured=False`` keeps the dense reference, which the
    tests assert produces the identical path.
    """
    if structured:
        states = _viterbi_mmhd_structured(model, SymbolIndex(seq))
    else:
        likes = model._observation_likelihoods(seq.zero_based())
        states = _viterbi(model.pi, model.transition, likes)
    hidden = states // model.n_symbols
    symbols = states % model.n_symbols + 1
    return hidden, symbols


def decode_loss_symbols(
    model: MarkovModelHiddenDimension, seq: ObservationSequence
) -> np.ndarray:
    """Most-likely delay symbol of each *lost* probe, in trace order.

    The per-instant analogue of the aggregate ``Ĝ``: useful to see which
    congestion episode each loss belongs to.
    """
    _, symbols = viterbi_mmhd(model, seq)
    return symbols[seq.symbols == LOSS]
