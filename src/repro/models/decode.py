"""Posterior decoding: most-likely state paths and loss-symbol series.

Diagnostics on top of the fitted models: the Viterbi path through the
hidden chain and, more usefully for the paper's problem, the per-loss
most-likely delay symbol — "what delay did each lost probe most probably
experience?"  These are not needed for identification (which uses only
the aggregate ``Ĝ``) but make individual congestion episodes visible.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.models.base import LOSS, ObservationSequence
from repro.models.hmm import HiddenMarkovModel
from repro.models.mmhd import MarkovModelHiddenDimension

__all__ = ["viterbi_hmm", "viterbi_mmhd", "decode_loss_symbols"]


def _viterbi(pi, transition, likes) -> np.ndarray:
    """Generic log-space Viterbi over per-step state likelihoods."""
    n_steps, n_states = likes.shape
    with np.errstate(divide="ignore"):
        log_pi = np.log(pi)
        log_transition = np.log(transition)
        log_likes = np.log(likes)
    delta = log_pi + log_likes[0]
    backpointers = np.zeros((n_steps, n_states), dtype=int)
    for t in range(1, n_steps):
        scores = delta[:, None] + log_transition
        backpointers[t] = scores.argmax(axis=0)
        delta = scores.max(axis=0) + log_likes[t]
    path = np.empty(n_steps, dtype=int)
    path[-1] = int(delta.argmax())
    for t in range(n_steps - 2, -1, -1):
        path[t] = backpointers[t + 1, path[t + 1]]
    return path


def viterbi_hmm(
    model: HiddenMarkovModel, seq: ObservationSequence
) -> np.ndarray:
    """Most likely hidden-state path under an HMM, shape ``(T,)``."""
    likes = model._observation_likelihoods(seq.zero_based())
    return _viterbi(model.pi, model.transition, likes)


def viterbi_mmhd(
    model: MarkovModelHiddenDimension, seq: ObservationSequence
) -> Tuple[np.ndarray, np.ndarray]:
    """Most likely joint path under an MMHD.

    Returns ``(hidden_path, symbol_path)``; at observed instants the
    symbol path necessarily equals the observation, at loss instants it
    is the decoded (most likely) delay symbol, 1-based.
    """
    likes = model._observation_likelihoods(seq.zero_based())
    states = _viterbi(model.pi, model.transition, likes)
    hidden = states // model.n_symbols
    symbols = states % model.n_symbols + 1
    return hidden, symbols


def decode_loss_symbols(
    model: MarkovModelHiddenDimension, seq: ObservationSequence
) -> np.ndarray:
    """Most-likely delay symbol of each *lost* probe, in trace order.

    The per-instant analogue of the aggregate ``Ĝ``: useful to see which
    congestion episode each loss belongs to.
    """
    _, symbols = viterbi_mmhd(model, seq)
    return symbols[seq.symbols == LOSS]
