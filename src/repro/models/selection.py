"""Model-order selection: how many hidden states does the path need?

The paper varies ``N`` from 1 to 4 and reports that the inferred
distributions barely change; a user still has to pick one.  This module
offers the standard information-criterion answer: fit each candidate and
take the smallest BIC.  Because the degenerate EM basin has *higher*
likelihood than the physical one (DESIGN.md §7.2), selection is run with
the safe defaults (data-driven initialisation and warm start) — BIC
compares model orders within the physical basin, not basins.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.models.base import (
    EMConfig,
    FittedModel,
    ObservationSequence,
    SymbolIndex,
)
from repro.models.hmm import fit_hmm
from repro.models.mmhd import fit_mmhd
from repro.parallel import parallel_map, resolve_n_jobs

__all__ = ["ModelSelection", "bic", "select_n_hidden"]


def _n_parameters(fitted: FittedModel, n_symbols: int) -> int:
    """Free-parameter count of a fitted model."""
    model = fitted.model
    if hasattr(model, "emission"):  # HMM
        n_hidden = model.n_hidden
        return (
            (n_hidden - 1)                       # pi
            + n_hidden * (n_hidden - 1)          # transition rows
            + n_hidden * (n_symbols - 1)         # emission rows
            + n_symbols                          # loss channel
        )
    n_states = model.n_states                    # MMHD
    return (
        (n_states - 1)
        + n_states * (n_states - 1)
        + n_symbols
    )


def bic(fitted: FittedModel, seq: ObservationSequence) -> float:
    """Bayesian information criterion: ``k ln T - 2 ln L`` (lower wins)."""
    k = _n_parameters(fitted, seq.n_symbols)
    return k * np.log(len(seq)) - 2.0 * fitted.log_likelihood


class ModelSelection:
    """Candidate fits plus the chosen model order."""

    def __init__(self, fits: Dict[int, FittedModel], bics: Dict[int, float]):
        self.fits = fits
        self.bics = bics
        self.best_n = min(bics, key=bics.get)

    @property
    def best_fit(self) -> FittedModel:
        """The fitted model at the BIC-minimal N."""
        return self.fits[self.best_n]

    def summary(self) -> str:
        """Per-candidate BIC table with the selection marked."""
        lines = ["model selection (lower BIC wins):"]
        for n_hidden in sorted(self.bics):
            marker = " <- selected" if n_hidden == self.best_n else ""
            lines.append(
                f"  N={n_hidden}: BIC={self.bics[n_hidden]:.1f}"
                f" (logL={self.fits[n_hidden].log_likelihood:.1f}){marker}"
            )
        return "\n".join(lines)


def _fit_candidate(task):
    """Fit one candidate model order (parallel-map worker).

    The candidate fit never nests *pool* parallelism inside a worker
    (that budget is spent across candidates), but each candidate still
    batches its own restarts in-process when ``EMConfig.backend``
    resolves to the batched engine.  All candidates fit the same
    sequence, so the ``SymbolIndex`` is built once per selection call
    and shared instead of being rebuilt per candidate order.
    """
    seq, n_hidden, model, config, serial_inner, index = task
    fit = fit_mmhd if model == "mmhd" else fit_hmm
    if serial_inner and config is not None:
        config = config.replace(n_jobs=1)
    return fit(seq, n_hidden=n_hidden, config=config, index=index)


def select_n_hidden(
    seq: ObservationSequence,
    candidates: Sequence[int] = (1, 2, 3, 4),
    model: str = "mmhd",
    config: Optional[EMConfig] = None,
    n_jobs: int = 1,
) -> ModelSelection:
    """Fit each candidate ``N`` and pick the BIC-minimal one.

    Note the MMHD's parameter count grows as ``(N M)^2``: on typical probe
    records BIC therefore prefers small ``N`` unless extra hidden structure
    genuinely pays for itself — consistent with the paper's observation
    that the inferred distributions barely change with ``N``.

    ``n_jobs`` fans the candidate fits out over worker processes
    (``-1`` = all CPUs); each candidate's result depends only on the
    shared ``config``, so the selection is identical for every value.
    """
    if not candidates:
        raise ValueError("need at least one candidate N")
    with obs.span("selection.fit", model=model,
                  candidates=[int(n) for n in candidates]):
        serial_inner = resolve_n_jobs(n_jobs) > 1
        index = SymbolIndex(seq)
        tasks = [(seq, int(n_hidden), model, config, serial_inner, index)
                 for n_hidden in candidates]
        fitted_models = parallel_map(_fit_candidate, tasks, n_jobs=n_jobs)
        fits: Dict[int, FittedModel] = {}
        bics: Dict[int, float] = {}
        for (_, n_hidden, _, _, _, _), fitted in zip(tasks, fitted_models):
            fits[n_hidden] = fitted
            bics[n_hidden] = bic(fitted, seq)
        selection = ModelSelection(fits, bics)
    obs.inc("repro_selection_total", 1.0, model=model,
            chosen_n=selection.best_n)
    obs.emit(
        "selection.bic",
        model=model,
        candidates=sorted(bics),
        bics={str(n): round(float(bics[n]), 3) for n in sorted(bics)},
        chosen_n=selection.best_n,
    )
    return selection
