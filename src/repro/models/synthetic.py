"""Synthetic observation generators with known ground truth.

Validating an identification configuration (M, N, EM settings) against
data whose true loss-symbol distribution is *known* is the fastest way to
catch a mis-set pipeline — no simulator required.  These generators
produce the canonical shapes:

* :func:`sticky_markov_sequence` — one congested regime: a sticky Markov
  chain over delay symbols with loss probability rising in the symbol
  (the strong/weak-DCL signature);
* :func:`two_population_sequence` — two alternating congestion episodes
  with separated delay levels (the no-DCL signature the WDCL-Test must
  reject).

Each returns ``(ObservationSequence, true_G)`` where ``true_G`` is the
empirical PMF of the hidden symbols at loss instants — the quantity the
EM fit estimates.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.models.base import ObservationSequence

__all__ = ["sticky_markov_sequence", "two_population_sequence"]


def sticky_markov_sequence(
    n_steps: int = 6000,
    n_symbols: int = 5,
    loss_given_symbol: Optional[Sequence[float]] = None,
    stickiness: float = 0.85,
    seed: int = 0,
) -> Tuple[ObservationSequence, np.ndarray]:
    """A sticky symbol chain with symbol-dependent loss.

    Parameters
    ----------
    loss_given_symbol:
        ``P(loss | symbol m)``; defaults to a profile rising steeply at
        the top symbol (droptail-like).
    stickiness:
        Self-transition probability (the temporal correlation the MMHD
        exploits; values below ~0.5 make inference legitimately hard).
    """
    if not 0 < stickiness < 1:
        raise ValueError(f"stickiness must lie in (0, 1), got {stickiness}")
    if loss_given_symbol is None:
        loss_given_symbol = np.geomspace(1e-3, 0.5, n_symbols)
    loss_probs = np.asarray(loss_given_symbol, dtype=float)
    if loss_probs.shape != (n_symbols,):
        raise ValueError("need one loss probability per symbol")
    rng = np.random.default_rng(seed)
    transition = np.full(
        (n_symbols, n_symbols),
        (1 - stickiness) / max(1, n_symbols - 1),
    )
    np.fill_diagonal(transition, stickiness)
    symbols = np.empty(n_steps, dtype=int)
    state = 0
    for t in range(n_steps):
        symbols[t] = state + 1
        state = rng.choice(n_symbols, p=transition[state])
    lost = rng.random(n_steps) < loss_probs[symbols - 1]
    if not lost.any():
        lost[n_steps // 2] = True
    observed = symbols.copy()
    observed[lost] = -1
    true_g = np.bincount(symbols[lost] - 1, minlength=n_symbols).astype(float)
    true_g /= true_g.sum()
    return ObservationSequence(observed, n_symbols), true_g


def two_population_sequence(
    n_steps: int = 6000,
    n_symbols: int = 5,
    low_symbol: int = 2,
    high_symbol: int = 5,
    episode: int = 150,
    loss_prob: float = 0.4,
    seed: int = 0,
) -> Tuple[ObservationSequence, np.ndarray]:
    """Alternating congestion episodes at two delay levels (no DCL).

    Even episodes congest at ``low_symbol``, odd ones at ``high_symbol``;
    between ramps the chain idles at symbol 1.  Loss mass splits between
    the two levels, so a correct test rejects a dominant link.
    """
    if not 1 <= low_symbol < high_symbol <= n_symbols:
        raise ValueError("need 1 <= low_symbol < high_symbol <= n_symbols")
    rng = np.random.default_rng(seed)
    symbols = np.empty(n_steps, dtype=int)
    lost = np.zeros(n_steps, dtype=bool)
    for t in range(n_steps):
        phase = t % episode
        target = low_symbol if (t // episode) % 2 == 0 else high_symbol
        ramp = episode // 3
        if phase < ramp:
            level = 1 + round((target - 1) * phase / max(1, ramp - 1))
        elif phase < 2 * ramp:
            level = target
            lost[t] = rng.random() < loss_prob
        else:
            drain = (episode - phase) / max(1, episode - 2 * ramp)
            level = 1 + round((target - 1) * drain)
        symbols[t] = min(n_symbols, max(1, level))
    if not lost.any():
        lost[episode // 2] = True
    observed = symbols.copy()
    observed[lost] = -1
    true_g = np.bincount(symbols[lost] - 1, minlength=n_symbols).astype(float)
    true_g /= true_g.sum()
    return ObservationSequence(observed, n_symbols), true_g
