"""Statistical models: HMM and MMHD with losses as missing observations.

Both models operate on a symbol sequence in which each probe contributes
either a discretized delay symbol or the :data:`LOSS` marker.  They are
fitted by EM (Baum-Welch style), and expose the paper's key quantity: the
inferred distribution ``G(m) = P(delay symbol m | loss)`` of the *virtual*
queuing delay of lost probes (eq. (5) of the paper).
"""

from repro.models.base import (
    LOSS,
    EMConfig,
    FittedModel,
    InsufficientLossError,
    ObservationSequence,
)
from repro.models.decode import decode_loss_symbols, viterbi_hmm, viterbi_mmhd
from repro.models.hmm import HiddenMarkovModel, fit_hmm
from repro.models.mmhd import MarkovModelHiddenDimension, fit_mmhd
from repro.models.selection import ModelSelection, bic, select_n_hidden
from repro.models.synthetic import (
    sticky_markov_sequence,
    two_population_sequence,
)

__all__ = [
    "LOSS",
    "EMConfig",
    "FittedModel",
    "HiddenMarkovModel",
    "InsufficientLossError",
    "MarkovModelHiddenDimension",
    "ModelSelection",
    "ObservationSequence",
    "bic",
    "decode_loss_symbols",
    "fit_hmm",
    "fit_mmhd",
    "select_n_hidden",
    "sticky_markov_sequence",
    "two_population_sequence",
    "viterbi_hmm",
    "viterbi_mmhd",
]
