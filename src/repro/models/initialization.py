"""Initial parameter strategies for the EM fits.

The paper initialises the HMM "based on guidelines in [Rabiner 1989]"
(roughly-uniform transition rows, emission rows seeded from the data) and
the MMHD with a random transition matrix and uniform initial state / loss
distributions.

One practical finding of this reproduction (documented in DESIGN.md):
with a *fully random* MMHD transition matrix, EM can converge to a
degenerate solution in which losses are explained by a dedicated
rare-symbol state — that solution even has higher likelihood, because the
delay symbol of a lost probe is unobserved and a private loss state buys
``P(loss | symbol) ≈ 1``.  The physically meaningful basin is selected by
initialising the symbol-to-symbol transition structure from the *observed*
bigrams (queues evolve smoothly, so observed dynamics are the right
prior), which is what :func:`mmhd_initial_parameters` does by default;
``data_driven=False`` recovers the paper's plain random initialisation.
The freeze-``c`` warm start in :class:`repro.models.base.EMConfig` guards
the same basin from the other side.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import LOSS, ObservationSequence

__all__ = [
    "hmm_initial_parameters",
    "mmhd_initial_parameters",
    "observed_bigram_matrix",
]


def _perturbed_uniform_rows(
    rng: np.random.Generator, n_rows: int, n_cols: int, jitter: float = 0.2
) -> np.ndarray:
    """Rows near uniform with multiplicative jitter, normalised."""
    rows = 1.0 + jitter * rng.random((n_rows, n_cols))
    return rows / rows.sum(axis=1, keepdims=True)


def _initial_loss_given_symbol(seq: ObservationSequence) -> np.ndarray:
    """Start ``c_m = P(loss | symbol m)`` flat at the observed loss rate.

    A strictly-interior starting point; EM shapes it from there.
    """
    rate = min(0.5, max(1e-4, seq.loss_rate))
    return np.full(seq.n_symbols, rate)


def hmm_initial_parameters(seq: ObservationSequence, n_hidden: int, rng):
    """Rabiner-style HMM start: ``(pi, transition, emission, loss_given_symbol)``.

    Emission rows start at the empirical symbol frequencies (distinctly
    jittered per hidden state so states can differentiate), transitions
    near-uniform.
    """
    if n_hidden < 1:
        raise ValueError(f"need at least one hidden state, got {n_hidden}")
    pi = np.full(n_hidden, 1.0 / n_hidden)
    transition = _perturbed_uniform_rows(rng, n_hidden, n_hidden)
    empirical = seq.empirical_symbol_pmf()
    emission = empirical[None, :] * (1.0 + 0.5 * rng.random((n_hidden, seq.n_symbols)))
    emission /= emission.sum(axis=1, keepdims=True)
    return pi, transition, emission, _initial_loss_given_symbol(seq)


def observed_bigram_matrix(seq: ObservationSequence, smoothing: float = 0.5):
    """Symbol-to-symbol transition frequencies of the observed subsequence.

    Consecutive pairs with a loss on either side are skipped; ``smoothing``
    pseudo-counts keep every transition possible.
    """
    symbols0 = seq.zero_based()
    n = seq.n_symbols
    counts = np.full((n, n), float(smoothing))
    valid = (symbols0[:-1] != LOSS) & (symbols0[1:] != LOSS)
    np.add.at(counts, (symbols0[:-1][valid], symbols0[1:][valid]), 1.0)
    return counts / counts.sum(axis=1, keepdims=True)


def mmhd_initial_parameters(
    seq: ObservationSequence, n_hidden: int, rng, data_driven: bool = True
):
    """MMHD start: ``(pi, transition, loss_given_symbol)``.

    The joint state is ``(h, d)`` flattened as ``h * M + d``; the initial
    distribution is uniform (uniform ``h0`` and ``d0``).  By default the
    transition matrix is seeded from the observed symbol bigrams (each
    ``(h, d) -> (h', d')`` block follows the empirical ``d -> d'``
    frequencies, jittered per hidden pair); ``data_driven=False`` gives
    the paper's plain random (Dirichlet-like) rows.
    """
    if n_hidden < 1:
        raise ValueError(f"need at least one hidden state, got {n_hidden}")
    n_symbols = seq.n_symbols
    n_states = n_hidden * n_symbols
    pi = np.full(n_states, 1.0 / n_states)
    if data_driven:
        bigrams = observed_bigram_matrix(seq)
        transition = np.empty((n_states, n_states))
        for h_from in range(n_hidden):
            for h_to in range(n_hidden):
                block = bigrams * (1.0 + 0.2 * rng.random((n_symbols, n_symbols)))
                rows = slice(h_from * n_symbols, (h_from + 1) * n_symbols)
                cols = slice(h_to * n_symbols, (h_to + 1) * n_symbols)
                transition[rows, cols] = block
    else:
        # Exponential draws normalised per row = flat Dirichlet sample.
        transition = rng.exponential(1.0, size=(n_states, n_states))
    transition /= transition.sum(axis=1, keepdims=True)
    return pi, transition, _initial_loss_given_symbol(seq)
