"""Model-based identification of dominant congested links.

A full reproduction of:

    Wei Wei, Bing Wang, Don Towsley, Jim Kurose,
    "Model-Based Identification of Dominant Congested Links",
    ACM SIGCOMM Internet Measurement Conference (IMC) 2003;
    extended version in IEEE/ACM Transactions on Networking 19(2), 2011.

The package is organised as:

``repro.netsim``
    A from-scratch discrete-event, packet-level network simulator (the ns-2
    substitute): droptail and Adaptive-RED queues, TCP-Reno, UDP ON-OFF and
    web-like cross traffic, and periodic probe streams with virtual-probe
    ground truth.

``repro.models``
    Hidden Markov model (HMM) and Markov model with a hidden dimension
    (MMHD), both fitted by EM with probe losses treated as delay
    observations with missing values.

``repro.core``
    The paper's contribution: delay discretization, virtual-queuing-delay
    distribution estimators, the SDCL/WDCL hypothesis tests, maximum
    queuing delay upper bounds, the loss-pair baseline, and the end-to-end
    :func:`repro.core.identify.identify` pipeline.

``repro.measurement``
    One-way-delay post-processing: clock offset/skew removal, stationary
    segment selection, and a pathchar-like per-hop capacity estimator.

``repro.experiments``
    Scenario builders and harnesses reproducing every table and figure of
    the paper's evaluation (see DESIGN.md for the index).

``repro.streaming``
    Online identification: sliding probe windows, warm-started EM fits,
    hysteresis verdict tracking, and a multi-path monitor scheduler (the
    ``repro monitor`` CLI).

Quickstart::

    from repro import experiments, core

    scenario = experiments.scenarios.strong_dcl_scenario(bottleneck_mbps=1.0)
    result = experiments.runner.run_scenario(scenario, seed=1)
    report = core.identify.identify(result.trace)
    print(report.summary())
"""

import logging as _logging

# Library convention: repro.* loggers stay silent unless the consumer
# configures handlers (the CLI's --log-level flag does).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro import core, experiments, measurement, models, netsim, obs, streaming
from repro.core.identify import IdentificationReport, identify
from repro.version import __version__

__all__ = [
    "IdentificationReport",
    "__version__",
    "core",
    "experiments",
    "identify",
    "measurement",
    "models",
    "netsim",
    "obs",
    "streaming",
]
