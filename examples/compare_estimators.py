"""Compare the four virtual-delay estimators on one weak-DCL run.

Reproduces the substance of the paper's Figs. 5-6 as text: the observed
delay distribution, the ns ground truth for lost probes, the loss-pair
baseline, and the HMM and MMHD model-based estimates, side by side — then
runs both hypothesis tests on the MMHD estimate:

    python examples/compare_estimators.py [--duration 200]
"""

import argparse

from repro.core import (
    DelayDiscretizer,
    ground_truth_distribution,
    hmm_distribution,
    losspair_distribution,
    mmhd_distribution,
    observed_delay_distribution,
    sdcl_test,
    wdcl_test,
)
from repro.experiments import run_scenario, weak_dcl_scenario
from repro.experiments.reporting import format_pmf_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=200.0)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    scenario = weak_dcl_scenario((0.7, 0.2))
    print(f"scenario: {scenario.description}")
    result = run_scenario(scenario, seed=args.seed, duration=args.duration,
                          warmup=30.0, with_loss_pairs=True)
    trace = result.trace
    observation = trace.observation()
    print(f"probes: {len(trace)}   loss rate: {trace.loss_rate:.2%}   "
          f"dominant-link share: {result.loss_share_of_dcl():.1%}")

    disc = DelayDiscretizer.from_observation(observation, 5)
    observed = observed_delay_distribution(trace, disc)
    truth = ground_truth_distribution(trace, disc)
    pairs = losspair_distribution(result.losspair_trace, disc)
    mmhd, _ = mmhd_distribution(observation, disc, n_hidden=2)
    hmm, _ = hmm_distribution(observation, disc, n_hidden=2)

    print("\n" + format_pmf_series(
        [observed.pmf, truth.pmf, pairs.pmf, hmm.pmf, mmhd.pmf],
        ["observed", "ns virtual", "loss-pair", "HMM", "MMHD"],
        title="virtual queuing delay distributions (M=5)",
    ))
    print(f"\nTV to ground truth:  loss-pair {pairs.total_variation(truth):.3f}"
          f"   HMM {hmm.total_variation(truth):.3f}"
          f"   MMHD {mmhd.total_variation(truth):.3f}")

    print("\nhypothesis tests on the MMHD estimate:")
    print("  " + sdcl_test(mmhd).summary())
    print("  " + wdcl_test(mmhd, beta0=0.06, beta1=0.0).summary())
    print("  " + wdcl_test(mmhd, beta0=0.02, beta1=0.0).summary())


if __name__ == "__main__":
    main()
