"""Beyond the paper: locate the dominant link and quantify confidence.

Two extensions built on the reproduction: prefix-probing localisation of
the dominant congested link (the paper's stated future work) and a
moving-block bootstrap that puts bands on the inferred virtual-delay
distribution and an acceptance rate on the verdict:

    python examples/pinpoint_and_confidence.py [--duration 150]
"""

import argparse

from repro.core import IdentifyConfig, bootstrap_identification, identify
from repro.core.pinpoint import pinpoint_dominant_link
from repro.experiments import run_scenario, weak_dcl_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=150.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--replicates", type=int, default=12)
    args = parser.parse_args()

    scenario = weak_dcl_scenario((0.7, 0.2))
    print(f"scenario: {scenario.description}")
    result = run_scenario(scenario, seed=args.seed, duration=args.duration,
                          warmup=30.0)
    trace = result.trace
    print(f"probes: {len(trace)}   loss rate: {trace.loss_rate:.2%}")

    print("\n1. identification on the end-to-end record:")
    report = identify(trace, IdentifyConfig())
    print(report.summary())

    print("\n2. pinpointing via prefix observations:")
    pinpoint = pinpoint_dominant_link(trace, IdentifyConfig())
    print(pinpoint.summary())
    print(f"(designed dominant link: {result.built.dcl_link})")

    print(f"\n3. block-bootstrap confidence ({args.replicates} replicates):")
    boot = bootstrap_identification(trace.observation(), IdentifyConfig(),
                                    n_replicates=args.replicates,
                                    seed=args.seed)
    print(boot.summary())


if __name__ == "__main__":
    main()
