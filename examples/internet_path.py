"""Internet-style measurement: long path, unsynchronised clocks.

Rebuilds one of the paper's PlanetLab experiments synthetically: a
multi-hop path toward an ADSL receiver, one-way delays distorted by
receiver clock offset and skew, repaired with the convex-hull skew
estimator, then identified.  A pchar-style probe cross-checks that the
identified dominant link coincides with a low-capacity hop:

    python examples/internet_path.py [--sender ufpr|usevilla|snu]
"""

import argparse

from repro.core import IdentifyConfig, identify
from repro.experiments.internet import (
    ADSL_SENDERS,
    adsl_path_scenario,
    run_internet_experiment,
)
from repro.measurement.pathtools import PcharProber


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sender", choices=ADSL_SENDERS, default="ufpr")
    parser.add_argument("--duration", type=float, default=150.0)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    scenario = adsl_path_scenario(args.sender)
    print(f"scenario: {scenario.description}")
    run = run_internet_experiment(
        scenario, seed=args.seed, duration=args.duration, warmup=20.0,
        clock_offset=0.35, clock_skew=5e-5,
    )
    print(f"probes: {len(run.trace)}   loss rate: {run.trace.loss_rate:.2%}")
    print(f"injected clock skew:  {run.injected.skew:.2e}")
    print(f"estimated clock skew: {run.estimated.skew:.2e}"
          f"   (error {run.skew_error():.1e})")

    report = identify(run.repaired, IdentifyConfig())
    print("\n" + report.summary())
    expectation = ("a dominant congested link"
                   if scenario.expected_verdict != "none"
                   else "no dominant congested link")
    print(f"(ground truth: this path has {expectation})")

    print("\npchar-style capacity cross-check...")
    built = scenario.build(seed=args.seed)
    prober = PcharProber(built.network, built.probe_src, built.probe_dst,
                         repetitions=16, interval=0.05)
    prober.start(at=0.5)
    built.network.run(until=60.0)
    result = prober.estimate()
    print(f"  narrow link per pchar: {result.narrow_link()}")
    print(f"  congested link(s) by design: "
          f"{built.dcl_link or 'two links (no dominant one)'}")


if __name__ == "__main__":
    main()
