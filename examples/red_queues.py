"""Droptail vs Adaptive RED: where the method's assumption matters.

The identification method assumes droptail queues (losses mean "the queue
was full").  This example re-runs the strong-DCL setting with Adaptive
RED (gentle) at two minimum-threshold positions and shows the paper's
Section VI-A5 finding: aggressive early dropping (min_th = buffer/5)
defeats identification; conservative RED (min_th = buffer/2) behaves
droptail-like and identification succeeds:

    python examples/red_queues.py [--duration 200]
"""

import argparse

from repro.core import IdentifyConfig, ground_truth_distribution, identify
from repro.experiments import run_scenario
from repro.experiments.scenarios import red_strong_scenario, strong_dcl_scenario
from repro.experiments.reporting import format_pmf_series


def run_and_report(scenario, duration, seed):
    result = run_scenario(scenario, seed=seed, duration=duration, warmup=30.0)
    report = identify(result.trace, IdentifyConfig())
    truth = ground_truth_distribution(result.trace, report.discretizer)
    print(f"\n== {scenario.description}")
    print(f"   loss rate {result.loss_rate:.2%}")
    print(format_pmf_series(
        [truth.pmf, report.distribution.pmf],
        ["ns virtual", "MMHD N=2"],
    ))
    print("   " + report.wdcl.summary())
    verdict = "identified" if report.wdcl.accepted else "NOT identified"
    print(f"   -> dominant congested link {verdict} "
          f"(it exists in all three runs)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=200.0)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    run_and_report(strong_dcl_scenario(1.0), args.duration, args.seed)
    run_and_report(red_strong_scenario(0.5), args.duration, args.seed)
    run_and_report(red_strong_scenario(0.2), args.duration, args.seed)


if __name__ == "__main__":
    main()
