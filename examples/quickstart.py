"""Quickstart: identify a dominant congested link on a simulated path.

Builds the paper's Fig.-4 topology with a 1 Mb/s bottleneck on (r2, r3),
drives it with TCP + web + UDP ON-OFF cross traffic, probes it with
10-byte packets every 20 ms, and runs the full identification pipeline:

    python examples/quickstart.py [--duration 120] [--seed 1]
"""

import argparse

from repro.core import IdentifyConfig, estimate_bound, identify
from repro.experiments import run_scenario, strong_dcl_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=120.0,
                        help="probing duration in simulated seconds")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    scenario = strong_dcl_scenario(bottleneck_mbps=1.0)
    print(f"scenario: {scenario.description}")
    print(f"simulating {args.duration:.0f} s of probing "
          f"(plus 30 s warm-up)...")
    result = run_scenario(scenario, seed=args.seed,
                          duration=args.duration, warmup=30.0)

    trace = result.trace
    print(f"\nprobes sent: {len(trace)}   loss rate: {trace.loss_rate:.2%}")
    shares = trace.loss_share_by_hop()
    for name, share in zip(trace.link_names, shares):
        if share > 0:
            print(f"  losses at {name}: {share:.1%}")

    print("\nrunning model-based identification (MMHD, M=5, N=2)...")
    report = identify(trace, IdentifyConfig())
    print(report.summary())

    if report.dominant_link_exists:
        print("\nestimating the dominant link's maximum queuing delay "
              "(M=40 re-fit)...")
        bound = estimate_bound(trace, report.verdict)
        q_k = result.built.dominant_max_queuing_delay()
        print(f"  estimated upper bound: {bound.seconds * 1e3:.1f} ms")
        print(f"  ground-truth Q_k:      {q_k * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
