"""Fig. 5 — observed vs virtual queuing-delay PMFs (strong DCL).

Paper: with the 1 Mb/s bottleneck, the virtual queuing delay distribution
of lost probes — from ns directly and from MMHD — concentrates entirely on
delay symbol 5, while the *observed* delay distribution spreads over
symbols 1-5.

Reproduced series: observed, ns-virtual (ground truth), MMHD N=1..4.
"""

import numpy as np

import common
from repro.core import (
    DelayDiscretizer,
    ground_truth_distribution,
    mmhd_distribution,
    observed_delay_distribution,
)
from repro.experiments.reporting import format_pmf_series


def run_fig5(strong_run):
    trace = strong_run.trace
    observation = trace.observation()
    disc = DelayDiscretizer.from_observation(observation, 5)
    series = [
        ("observed", observed_delay_distribution(trace, disc).pmf),
        ("ns virtual", ground_truth_distribution(trace, disc).pmf),
    ]
    for n_hidden in (1, 2, 3, 4):
        dist, _ = mmhd_distribution(observation, disc, n_hidden=n_hidden,
                                    config=common.em_config())
        series.append((f"MMHD N={n_hidden}", dist.pmf))
    return series


def test_fig5_strong_pmfs(benchmark, strong_run):
    series = common.once(benchmark, lambda: run_fig5(strong_run))
    labels = [label for label, _ in series]
    pmfs = [pmf for _, pmf in series]
    text = format_pmf_series(
        pmfs, labels,
        title="Fig. 5 — observed vs virtual queuing delay PMFs (strong DCL)",
    )
    common.write_artifact("fig5_strong_pmf", text)

    by_label = dict(series)
    # Virtual distributions concentrate on the top symbol...
    assert by_label["ns virtual"][-1] > 0.95
    for n_hidden in (1, 2, 3, 4):
        assert by_label[f"MMHD N={n_hidden}"][-1] > 0.9, n_hidden
    # ...while the observed distribution is spread out (Fig. 5's contrast).
    assert by_label["observed"][:4].sum() > 0.3
    # MMHD matches the ns ground truth for every N.
    truth = by_label["ns virtual"]
    for n_hidden in (1, 2, 3, 4):
        tv = 0.5 * np.abs(by_label[f"MMHD N={n_hidden}"] - truth).sum()
        assert tv < 0.1, (n_hidden, tv)
