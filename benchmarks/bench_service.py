"""Fleet service benchmark: sustained ingest, overload shed, API latency.

Measures what the :class:`~repro.service.loop.FleetService` adds around
the fused drain engine — scheduling, admission control, snapshot
publication and the HTTP control plane — under the loads the acceptance
criteria name:

* **Sustained ingest** per fleet tier: ``n_paths`` registered paths
  (warm states cloned from a small template set, as in
  ``bench_monitor_scale.py``) stream ``TIMED_HOPS`` hops each through
  bound sources while ``run(exit_when_idle=True)`` cycles the service.
  Records/s and windows/s are the headline numbers; the paper-scale
  committed baseline must record a *completed* 128-path tier with fused
  drains on one CPU.
* **Overload shed**: every path's whole backlog arrives in one burst
  (far beyond the drain budget); the ``shed`` policy must engage and
  the post-cycle backlog must come back to zero — queue depth stays
  bounded instead of growing without bound.
* **API latency under load**: ``GET /fleet`` and ``GET /verdicts/{id}``
  timed against a live :class:`~repro.service.api.ServiceAPI` while the
  service loop drains in a background thread; p50/p99 in ms.  Reads hit
  the published snapshot cache, so they must not stretch with drain
  time.
* **Tracing overhead**: the same fleet run timed with record-to-verdict
  tracing disabled vs enabled (best of ``TRACE_REPEATS`` each).  The
  tracing layer promises to be near-zero-cost; ``--max-trace-overhead``
  (CI passes 0.05) fails the run when enabling it costs more than that
  fraction of wall clock.
* **Health overhead**: the same arm-alternating comparison for the
  model-health layer (one extra diagnostics E-pass per analysed window
  plus detector updates); ``--max-health-overhead`` (CI passes 0.05)
  gates it the same way.

Writes ``benchmarks/output/BENCH_service.json``.  ``--check-baseline``
(CI) never clobbers the committed JSON: results go to a ``.check.json``
sidecar, the committed paper-scale baseline is checked for the
completed 128-path acceptance tier, and — when scales match — fresh
throughput must stay within ``MAX_REGRESSION`` of the committed value.

Run: ``PYTHONPATH=src python benchmarks/bench_service.py``
(``REPRO_BENCH_SCALE=paper`` for the committed fleet sizes).
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import sys
import threading
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import common  # noqa: E402
from repro.experiments.streams import strong_dcl_stream  # noqa: E402
from repro.obs import health as health_mod  # noqa: E402
from repro.obs import trace as trace_mod  # noqa: E402
from repro.models.base import EMConfig  # noqa: E402
from repro.parallel import shutdown_pools  # noqa: E402
from repro.service import (BackpressurePolicy, FleetService,  # noqa: E402
                           IterableSource, ServiceAPI)
from repro.streaming.scheduler import MultiPathMonitor  # noqa: E402
from repro.streaming.tracker import MonitorConfig  # noqa: E402

BASELINE_PATH = common.OUTPUT_DIR / "BENCH_service.json"
#: CI tolerates at most this much erosion of the committed throughput.
MAX_REGRESSION = 2.0
#: The committed paper-scale baseline must record this tier *completed*
#: (every expected window resolved) — the "sustains >= 128 registered
#: paths on one CPU with fused drains" acceptance record.
ACCEPTANCE_FLEET = 128

#: Distinct probe streams; fleet path ``i`` clones template ``i % N``,
#: so warm-up runs a constant number of cold fits at any fleet size.
N_STREAMS = 8
#: Hops streamed (per path) through the timed service run.
TIMED_HOPS = 2
#: Hops enqueued per path for the one-burst overload scenario.
OVERLOAD_HOPS = 6
#: Requests per endpoint in the API-latency section.
API_REQUESTS = 64
#: Timed runs per arm (tracing off / on); the best of each arm is
#: compared so scheduler noise cannot masquerade as tracing cost.
TRACE_REPEATS = 3

if common.SCALE == "paper":
    FLEETS = [32, 128]
    WINDOW, HOP = 3000, 1500      # MonitorConfig defaults: one paper minute
else:
    FLEETS = [8, 32]
    WINDOW, HOP = 1500, 750


def monitor_config() -> MonitorConfig:
    """Default MonitorConfig at paper scale; shrunk EM budget at quick.

    ``gate_stationarity=False`` is the only non-default: the gate can
    only *skip* windows, and the benchmark measures the fit path.
    """
    em = None
    if common.SCALE != "paper":
        em = EMConfig(tol=common.EM_TOL, max_iter=common.EM_MAX_ITER)
    return MonitorConfig(window=WINDOW, hop=HOP, gate_stationarity=False,
                         em=em)


def warm_templates(config: MonitorConfig, streams):
    """One warmed _PathState per template stream (cold fits, untimed)."""
    seed_monitor = MultiPathMonitor(config, n_jobs=1, drain_mode="fused")
    for g, stream in enumerate(streams):
        for send_time, delay in stream[:WINDOW]:
            seed_monitor.ingest(f"seed-{g}", send_time, delay)
    events = seed_monitor.drain()
    assert len(events) == len(streams), "warm-up drain lost windows"
    assert all(e.analysis.analyzed for e in events), "warm-up window skipped"
    return [seed_monitor._paths[f"seed-{g}"] for g in range(len(streams))]


def build_service(config, templates, streams, n_paths: int, hops: int,
                  **kwargs) -> FleetService:
    """A service fleet whose paths clone the warmed template states.

    Registers each path through the control plane (so registry entries,
    generations and histories are real), then swaps the freshly created
    monitor state for a deep copy of the warmed template — the same
    trick ``bench_monitor_scale.py`` uses to keep warm-up cost flat as
    fleets grow.  Each path's bound source then replays the template
    stream's next ``hops`` hops.
    """
    service = FleetService(base_config=config, n_jobs=1,
                           drain_mode="fused",
                           max_pending=max(64, OVERLOAD_HOPS + 2), **kwargs)
    for i in range(n_paths):
        path = f"path-{i:04d}"
        tail = streams[i % N_STREAMS][WINDOW:WINDOW + hops * HOP]
        service.register(path, source=IterableSource(iter(tail)))
        service.monitor._paths[path] = copy.deepcopy(
            templates[i % N_STREAMS])
    return service


def bench_fleet(config, templates, streams, n_paths: int) -> dict:
    """Time a full service run over ``n_paths`` warm streaming paths."""
    service = build_service(config, templates, streams, n_paths, TIMED_HOPS)
    records = n_paths * TIMED_HOPS * HOP
    start = time.perf_counter()
    cycles = service.run(exit_when_idle=True, interval=0.0)
    elapsed = time.perf_counter() - start
    windows = service.n_windows
    assert windows == n_paths * TIMED_HOPS, (
        f"service resolved {windows} windows, "
        f"expected {n_paths * TIMED_HOPS}"
    )
    assert service.monitor.n_pending == 0, "service exited with a backlog"
    service.close()
    entry = {
        "paths": n_paths,
        "windows": windows,
        "records": records,
        "cycles": cycles,
        "seconds": round(elapsed, 3),
        "ingest_throughput_rps": round(records / elapsed, 1),
        "drain_throughput_wps": round(windows / elapsed, 3),
    }
    print(f"  fleet {n_paths:4d}: {entry['seconds']:8.2f}s  "
          f"{entry['ingest_throughput_rps']:9.0f} rec/s  "
          f"{entry['drain_throughput_wps']:7.2f} win/s  "
          f"({cycles} cycles)", flush=True)
    return entry


def bench_overload(config, templates, streams) -> dict:
    """One-burst overload at the largest tier: shed must bound the queue."""
    n_paths = FLEETS[-1]
    high = 2 * n_paths
    policy = BackpressurePolicy(mode="shed", high_watermark=high,
                                low_watermark=n_paths)
    service = build_service(config, templates, streams, n_paths,
                            OVERLOAD_HOPS, backpressure=policy,
                            burst=OVERLOAD_HOPS * HOP)
    enqueued = n_paths * OVERLOAD_HOPS
    start = time.perf_counter()
    summary = service.step()
    elapsed = time.perf_counter() - start
    assert summary["shed"] > 0, "overload burst never tripped the shed"
    assert summary["backlog"] == 0, "backlog survived the overload cycle"
    assert summary["shed"] + summary["windows"] == enqueued, (
        "shed + resolved windows must account for the whole burst"
    )
    service.close()
    entry = {
        "paths": n_paths,
        "enqueued_windows": enqueued,
        "high_watermark": high,
        "shed_windows": summary["shed"],
        "windows_resolved": summary["windows"],
        "cycle_seconds": round(elapsed, 3),
    }
    print(f"  overload {n_paths:4d}: enqueued {enqueued}, "
          f"shed {entry['shed_windows']}, resolved "
          f"{entry['windows_resolved']} in {entry['cycle_seconds']:.2f}s",
          flush=True)
    return entry


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def bench_api(config, templates, streams) -> dict:
    """GET latency against the live API while the loop drains."""
    n_paths = FLEETS[0]
    service = build_service(config, templates, streams, n_paths, TIMED_HOPS)
    api = ServiceAPI(service, port=0).start()
    runner = threading.Thread(
        target=service.run,
        kwargs={"exit_when_idle": True, "interval": 0.0},
    )

    def timed_get(url) -> float:
        start = time.perf_counter()
        with urllib.request.urlopen(url, timeout=30) as response:
            response.read()
        return (time.perf_counter() - start) * 1e3

    fleet_ms, verdict_ms = [], []
    verdict_url = f"{api.base_url}/verdicts/path-0000"
    try:
        runner.start()
        # Fixed request count: the early requests race live drain
        # cycles, the late ones hit an idle service — both belong in
        # the distribution a dashboard poller would see.
        for _ in range(API_REQUESTS):
            fleet_ms.append(timed_get(f"{api.base_url}/fleet"))
            verdict_ms.append(timed_get(verdict_url))
        runner.join(timeout=600)
    finally:
        service.stop()
        api.close()
        service.close()
    assert not runner.is_alive(), "service loop failed to finish"
    entry = {
        "paths": n_paths,
        "requests_per_endpoint": API_REQUESTS,
        "fleet_p50_ms": round(_percentile(fleet_ms, 0.50), 3),
        "fleet_p99_ms": round(_percentile(fleet_ms, 0.99), 3),
        "verdict_p50_ms": round(_percentile(verdict_ms, 0.50), 3),
        "verdict_p99_ms": round(_percentile(verdict_ms, 0.99), 3),
    }
    print(f"  api ({n_paths} paths): /fleet p50 {entry['fleet_p50_ms']}ms "
          f"p99 {entry['fleet_p99_ms']}ms; /verdicts p50 "
          f"{entry['verdict_p50_ms']}ms p99 {entry['verdict_p99_ms']}ms",
          flush=True)
    return entry


def bench_trace_overhead(config, templates, streams) -> dict:
    """Fleet run timed with tracing off vs on: best-of-N each arm.

    Tracing-on runs attach a :class:`~repro.obs.trace.TraceStore` so the
    whole pipeline pays its full freight — ingest stamping, stage
    histograms, ring retention.  Telemetry stays off either way (the CI
    default), so this isolates the tracing layer itself.
    """
    n_paths = FLEETS[0]

    def timed_run(traced: bool) -> float:
        if traced:
            trace_mod.enable_tracing()
        else:
            trace_mod.disable_tracing()
        kwargs = {"trace_store": trace_mod.TraceStore()} if traced else {}
        service = build_service(config, templates, streams, n_paths,
                                TIMED_HOPS, **kwargs)
        start = time.perf_counter()
        service.run(exit_when_idle=True, interval=0.0)
        elapsed = time.perf_counter() - start
        assert service.n_windows == n_paths * TIMED_HOPS, (
            "trace-overhead run lost windows"
        )
        service.close()
        return elapsed

    disabled, enabled = [], []
    try:
        # Alternate arms so thermal / cache drift hits both equally.
        for _ in range(TRACE_REPEATS):
            disabled.append(timed_run(traced=False))
            enabled.append(timed_run(traced=True))
    finally:
        trace_mod.disable_tracing()
    best_off, best_on = min(disabled), min(enabled)
    overhead = max(0.0, best_on / best_off - 1.0)
    entry = {
        "paths": n_paths,
        "repeats": TRACE_REPEATS,
        "disabled_seconds": round(best_off, 3),
        "enabled_seconds": round(best_on, 3),
        "trace_overhead_fraction": round(overhead, 4),
    }
    print(f"  trace overhead ({n_paths} paths): off {best_off:.2f}s, "
          f"on {best_on:.2f}s -> {overhead:.1%}", flush=True)
    return entry


def bench_health_overhead(config, templates, streams) -> dict:
    """Fleet run timed with model health off vs on: best-of-N each arm.

    Health-on runs attach a :class:`~repro.obs.health.HealthStore`, so
    the run pays the whole layer — the per-window diagnostics E-pass,
    detector updates, scoring and report retention.  Telemetry stays
    off (the CI default), isolating the health layer itself.
    """
    n_paths = FLEETS[0]

    def timed_run(with_health: bool) -> float:
        if with_health:
            health_mod.enable_health()
        else:
            health_mod.disable_health()
        kwargs = {"health_store": health_mod.HealthStore()} \
            if with_health else {}
        service = build_service(config, templates, streams, n_paths,
                                TIMED_HOPS, **kwargs)
        start = time.perf_counter()
        service.run(exit_when_idle=True, interval=0.0)
        elapsed = time.perf_counter() - start
        assert service.n_windows == n_paths * TIMED_HOPS, (
            "health-overhead run lost windows"
        )
        service.close()
        return elapsed

    disabled, enabled = [], []
    try:
        # Alternate arms so thermal / cache drift hits both equally.
        for _ in range(TRACE_REPEATS):
            disabled.append(timed_run(with_health=False))
            enabled.append(timed_run(with_health=True))
    finally:
        health_mod.disable_health()
    best_off, best_on = min(disabled), min(enabled)
    overhead = max(0.0, best_on / best_off - 1.0)
    entry = {
        "paths": n_paths,
        "repeats": TRACE_REPEATS,
        "disabled_seconds": round(best_off, 3),
        "enabled_seconds": round(best_on, 3),
        "health_overhead_fraction": round(overhead, 4),
    }
    print(f"  health overhead ({n_paths} paths): off {best_off:.2f}s, "
          f"on {best_on:.2f}s -> {overhead:.1%}", flush=True)
    return entry


def run_benchmark() -> dict:
    config = monitor_config()
    probes = WINDOW + max(TIMED_HOPS, OVERLOAD_HOPS) * HOP
    streams = [list(strong_dcl_stream(probes, seed=100 + g))
               for g in range(N_STREAMS)]
    print(f"warming {N_STREAMS} template paths "
          f"(window={WINDOW}, scale={common.SCALE})...", flush=True)
    templates = warm_templates(config, streams)
    fleets = {}
    for n_paths in FLEETS:
        fleets[str(n_paths)] = bench_fleet(config, templates, streams,
                                           n_paths)
    overload = bench_overload(config, templates, streams)
    api = bench_api(config, templates, streams)
    trace_overhead = bench_trace_overhead(config, templates, streams)
    health_overhead = bench_health_overhead(config, templates, streams)
    largest = fleets[str(FLEETS[-1])]
    return {
        "scale": common.SCALE,
        "cpu_count": os.cpu_count(),
        "window": WINDOW,
        "hop": HOP,
        "timed_hops": TIMED_HOPS,
        "n_streams": N_STREAMS,
        "em_tol": config.em.tol,
        "em_max_iter": config.em.max_iter,
        "fleets": fleets,
        "overload": overload,
        "api": api,
        "trace_overhead": trace_overhead,
        "health_overhead": health_overhead,
        "largest_fleet_paths": FLEETS[-1],
        "largest_fleet_throughput_rps": largest["ingest_throughput_rps"],
    }


def check_baseline(report: dict) -> int:
    """Gate against the committed JSON (CI path; never clobbers it)."""
    if not BASELINE_PATH.exists():
        print(f"no committed baseline at {BASELINE_PATH}; skipping check")
        return 0
    baseline = json.loads(BASELINE_PATH.read_text())
    status = 0

    # The committed paper-scale artifact must itself record the
    # completed 128-path acceptance tier, whatever scale this run used.
    if baseline.get("scale") == "paper":
        tier = baseline.get("fleets", {}).get(str(ACCEPTANCE_FLEET))
        if tier is None:
            print(f"FAIL: committed baseline has no {ACCEPTANCE_FLEET}-path "
                  f"tier")
            status = 1
        elif tier["windows"] != tier["paths"] * baseline.get("timed_hops"):
            print(f"FAIL: committed baseline's {ACCEPTANCE_FLEET}-path tier "
                  f"did not resolve every expected window")
            status = 1
        else:
            print(f"committed baseline: {ACCEPTANCE_FLEET} paths sustained "
                  f"at {tier['ingest_throughput_rps']} rec/s (OK)")

    if baseline.get("scale") != report["scale"]:
        print(f"baseline scale {baseline.get('scale')!r} != current "
              f"{report['scale']!r}; skipping live comparison")
        return status
    shared = sorted(
        set(baseline.get("fleets", {})) & set(report["fleets"]), key=int
    )
    for fleet in shared:
        old = baseline["fleets"][fleet]["ingest_throughput_rps"]
        new = report["fleets"][fleet]["ingest_throughput_rps"]
        print(f"fleet {fleet}: ingest baseline {old} rec/s, now {new} rec/s")
        if old / max(new, 1e-9) > MAX_REGRESSION:
            print(f"FAIL: ingest throughput at {fleet} paths eroded more "
                  f"than {MAX_REGRESSION:.0f}x vs the committed baseline")
            status = 1
    if status == 0:
        print("OK: within the regression budget")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="compare against the committed JSON instead of replacing it",
    )
    parser.add_argument(
        "--max-trace-overhead", type=float, default=None, metavar="FRAC",
        help="fail when enabling tracing costs more than this fraction "
             "of wall clock (CI passes 0.05)",
    )
    parser.add_argument(
        "--max-health-overhead", type=float, default=None, metavar="FRAC",
        help="fail when enabling model health costs more than this "
             "fraction of wall clock (CI passes 0.05)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark()
    shutdown_pools()
    print(json.dumps(report, indent=2))

    status = 0
    if args.max_trace_overhead is not None:
        fraction = report["trace_overhead"]["trace_overhead_fraction"]
        if fraction > args.max_trace_overhead:
            print(f"FAIL: tracing overhead {fraction:.1%} exceeds the "
                  f"{args.max_trace_overhead:.0%} gate")
            status = 1
        else:
            print(f"tracing overhead {fraction:.1%} within the "
                  f"{args.max_trace_overhead:.0%} gate (OK)")
    if args.max_health_overhead is not None:
        fraction = report["health_overhead"]["health_overhead_fraction"]
        if fraction > args.max_health_overhead:
            print(f"FAIL: health overhead {fraction:.1%} exceeds the "
                  f"{args.max_health_overhead:.0%} gate")
            status = 1
        else:
            print(f"health overhead {fraction:.1%} within the "
                  f"{args.max_health_overhead:.0%} gate (OK)")
    if args.check_baseline:
        status = check_baseline(report) or status
        out = BASELINE_PATH.with_suffix(".check.json")
    else:
        out = BASELINE_PATH
    common.OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[written to {out}]")
    if not args.check_baseline:
        # Check mode must not clobber the committed run's provenance.
        manifest = common.write_bench_manifest(
            "service", extra={"fleets": FLEETS, "timed_hops": TIMED_HOPS,
                              "overload_hops": OVERLOAD_HOPS},
        )
        print(f"[manifest written to {manifest}]")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
