"""Fig. 14 — consistency ratio vs probing duration (Internet path).

Paper: random segments of the USevilla -> ADSL trace are identified and
compared with the full-trace result, once approximating the propagation
delay by the segment's minimum delay ("unknown P") and once using the
whole-trace minimum ("known P").  The two curves are *identical*, and the
consistency ratio reaches 1 beyond ~12 minutes at the paper's 0.7% loss
rate.

Reproduced shape: known-P and unknown-P ratios agree at every duration,
the ratio is high at the longest duration, and short segments are less
consistent.  (Our synthetic path's loss rate is higher than 0.7%, so the
knee sits earlier — EXPERIMENTS.md records the scaling.)
"""

import common
from repro.core import identify
from repro.experiments.duration import consistency_vs_duration
from repro.experiments.internet import (
    adsl_path_scenario,
    run_internet_experiment,
)
from repro.experiments.reporting import format_table

DURATIONS = [10.0, 20.0, 40.0, 80.0, 160.0]


def run_fig14():
    run = run_internet_experiment(adsl_path_scenario("usevilla"), seed=1,
                                  duration=common.SIM_DURATION,
                                  warmup=common.SIM_WARMUP)
    reference = identify(run.repaired, common.identify_config())
    reference_accepts = reference.wdcl.accepted
    common_kwargs = dict(
        reference_accepts_dcl=reference_accepts,
        durations=DURATIONS,
        probe_interval=run.trace.probe_interval,
        n_reps=common.SWEEP_REPS,
        config=common.identify_config(),
        seed=14,
    )
    unknown = consistency_vs_duration(run.repaired, **common_kwargs)
    known = consistency_vs_duration(
        run.repaired, known_propagation=run.repaired.min_delay,
        **common_kwargs,
    )
    return run, reference_accepts, unknown, known


def test_fig14_internet_duration(benchmark):
    run, reference_accepts, unknown, known = common.once(benchmark,
                                                         run_fig14)
    text = format_table(
        ["duration (s)", "unknown P", "known P"],
        [
            [f"{d:.0f}", f"{u:.0%}", f"{k:.0%}"]
            for d, u, k in zip(DURATIONS, unknown.ratios, known.ratios)
        ],
        title=(f"Fig. 14 — consistency vs duration, USevilla->ADSL "
               f"(reference: {'accept' if reference_accepts else 'reject'}, "
               f"loss={run.trace.loss_rate:.2%})"),
    )
    common.write_artifact("fig14_internet_duration", text)

    # Known and unknown P behave the same (the paper's headline finding:
    # the minimum-delay approximation of P costs nothing).
    for u, k in zip(unknown.ratios, known.ratios):
        assert abs(u - k) <= 0.25, (unknown.ratios, known.ratios)
    # Long segments are consistent with the reference.
    assert unknown.ratios[-1] >= 0.9
    # Consistency does not degrade with more probing.
    assert unknown.ratios[-1] >= unknown.ratios[0]
