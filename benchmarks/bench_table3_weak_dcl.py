"""Table III — weakly dominant congested link.

Paper: losses at (r1,r2) and (r2,r3) with ~95% at (r2,r3); WDCL-Test with
β0 = 0.06, β1 = 0 accepts in every setting (and rejects with β0 = 0.02);
the model-based maximum-queuing-delay estimate stays within 5 ms of truth
while the loss-pair estimate errs by up to 51 ms — loss pairs are
contaminated by queuing at the non-dominant links.

Reproduced shape: per bandwidth pair — dominant share in (0.90, 0.995),
strong test rejects, weak test accepts, and the loss-pair estimate's error
exceeds the model-based bound's error.
"""

import common
from repro.core import (
    estimate_bound,
    identify,
    losspair_max_queuing_delay,
)
from repro.experiments import run_scenario
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import (
    WEAK_DCL_BANDWIDTH_PAIRS,
    weak_dcl_scenario,
)


def run_table3():
    rows = []
    for pair in WEAK_DCL_BANDWIDTH_PAIRS:
        result = run_scenario(
            weak_dcl_scenario(pair), seed=1,
            duration=common.SIM_DURATION, warmup=common.SIM_WARMUP,
            with_loss_pairs=True,
        )
        report = identify(result.trace, common.identify_config())
        bound = estimate_bound(result.trace, "weak",
                               common.identify_config(), n_symbols=40)
        losspair = losspair_max_queuing_delay(result.losspair_trace)
        q_k = result.built.dominant_max_queuing_delay()
        rows.append({
            "pair": pair,
            "loss_rate": result.loss_rate,
            "dcl_share": result.loss_share_of_dcl(),
            "sdcl": report.sdcl.accepted,
            "wdcl": report.wdcl.accepted,
            "q_k": q_k,
            "mmhd_bound": bound.seconds,
            "losspair": losspair,
        })
    return rows


def test_table3_weak_dcl(benchmark):
    rows = common.once(benchmark, run_table3)
    text = format_table(
        ["(r1,r2)/(r2,r3) Mb/s", "probe loss", "loss@DCL", "SDCL", "WDCL",
         "Q_k (ms)", "MMHD bound (ms)", "loss-pair (ms)"],
        [
            [
                f"{r['pair'][0]}/{r['pair'][1]}",
                f"{r['loss_rate']:.2%}",
                f"{r['dcl_share']:.1%}",
                "accept" if r["sdcl"] else "reject",
                "accept" if r["wdcl"] else "reject",
                f"{r['q_k'] * 1e3:.1f}",
                f"{r['mmhd_bound'] * 1e3:.1f}",
                f"{r['losspair'] * 1e3:.1f}",
            ]
            for r in rows
        ],
        title="Table III — weakly dominant congested link (beta0=0.06, beta1=0)",
    )
    common.write_artifact("table3_weak_dcl", text)

    for r in rows:
        # A weak-but-not-strong dominant link.
        assert 0.90 < r["dcl_share"] < 0.995, r
        assert not r["sdcl"], r
        assert r["wdcl"], r
        # The model-based bound is accurate...
        model_error = abs(r["mmhd_bound"] - r["q_k"])
        assert model_error <= 0.2 * r["q_k"], r
        # ...and at least as good as the loss-pair estimate, whose
        # companions carry non-dominant queuing (the paper's 51 ms case).
        losspair_error = abs(r["losspair"] - r["q_k"])
        assert model_error <= losspair_error + 0.02, r
