"""Fig. 13 — Internet experiments, ADSL receiver (three senders).

Paper: of the paths from UFPR, USevilla and SNU toward an ADSL host,
WDCL-Test (β0 = 0.06, β1 = 0) accepts for UFPR and USevilla (pchar shows
one low-bandwidth link at the ADSL tail) and rejects for SNU (pchar shows
a second low-bandwidth link at the 13th hop).

Reproduced shape: accept / accept / reject on the synthetic equivalents,
with clock distortion injected and repaired; the SNU path's Ĝ is bimodal.
"""

import numpy as np

import common
from repro.core import identify
from repro.experiments.internet import (
    ADSL_SENDERS,
    adsl_path_scenario,
    run_internet_experiment,
)
from repro.experiments.reporting import format_table


def run_fig13():
    rows = []
    for sender in ADSL_SENDERS:
        scenario = adsl_path_scenario(sender)
        run = run_internet_experiment(scenario, seed=1,
                                      duration=common.SIM_DURATION,
                                      warmup=common.SIM_WARMUP)
        report = identify(run.repaired, common.identify_config())
        rows.append({
            "sender": sender,
            "hops": len(run.trace.link_names) - 2,
            "loss_rate": run.trace.loss_rate,
            "skew_error": run.skew_error(),
            "expected": scenario.expected_verdict != "none",
            "wdcl": report.wdcl,
            "g": report.distribution.pmf,
        })
    return rows


def test_fig13_internet_adsl(benchmark):
    rows = common.once(benchmark, run_fig13)
    text = format_table(
        ["sender", "hops", "probe loss", "skew err", "WDCL", "expected",
         "G"],
        [
            [
                r["sender"].upper(),
                r["hops"],
                f"{r['loss_rate']:.2%}",
                f"{r['skew_error']:.1e}",
                "accept" if r["wdcl"].accepted else "reject",
                "accept" if r["expected"] else "reject",
                np.array2string(np.round(r["g"], 2)),
            ]
            for r in rows
        ],
        title="Fig. 13 — paths to an ADSL receiver (beta0=0.06, beta1=0)",
    )
    common.write_artifact("fig13_internet_adsl", text)

    by_sender = {r["sender"]: r for r in rows}
    assert by_sender["ufpr"]["wdcl"].accepted
    assert by_sender["usevilla"]["wdcl"].accepted
    assert not by_sender["snu"]["wdcl"].accepted
    # USevilla carries the highest loss rate (as in the paper).
    assert (by_sender["usevilla"]["loss_rate"]
            > by_sender["ufpr"]["loss_rate"])
    # Clock repair worked on every path.
    for r in rows:
        assert r["skew_error"] < 5e-6, r
    # The SNU rejection comes from two separated loss populations.
    snu_g = by_sender["snu"]["g"]
    assert snu_g[:2].sum() > 0.1 and snu_g[3:].sum() > 0.1
