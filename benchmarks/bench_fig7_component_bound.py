"""Fig. 7 — fine-grained PMF and the connected-component bound (weak DCL).

Paper: to bound the weakly dominant link's maximum queuing delay, delays
are rediscretized with M = 40; the PMF of the virtual queuing delay shows
a dominant connected component, and the smallest significantly-positive
delay inside it (symbol 31 in the paper's instance) converts to an upper
bound that exactly matches the actual maximum queuing delay (230.4 ms
there).

Reproduced shape: the M = 40 MMHD PMF has a heaviest connected component
whose anchor converts to a bound within ~15% of the true ``Q_k``; the
minor link's stray mass sits in a separate, lighter component.
"""

import numpy as np

import common
from repro.core import (
    DelayDiscretizer,
    connected_component_bound,
    mmhd_distribution,
)
from repro.core.bounds import pmf_components
from repro.experiments.reporting import format_table


def run_fig7(weak_run):
    trace = weak_run.trace
    observation = trace.observation()
    disc = DelayDiscretizer.from_observation(observation, 40)
    dist, _ = mmhd_distribution(observation, disc, n_hidden=2,
                                config=common.em_config())
    bound = connected_component_bound(dist)
    components = pmf_components(dist.pmf, mass_epsilon=1e-3)
    return dist, bound, components


def test_fig7_component_bound(benchmark, weak_run):
    dist, bound, components = common.once(benchmark,
                                          lambda: run_fig7(weak_run))
    q_k = weak_run.built.dominant_max_queuing_delay()
    nonzero = [
        [m + 1, f"{p:.4f}"] for m, p in enumerate(dist.pmf) if p > 1e-3
    ]
    text = format_table(
        ["symbol (of 40)", "pmf"], nonzero,
        title="Fig. 7 — fine-grained (M=40) virtual delay PMF, weak DCL",
    )
    text += (
        f"\ncomponents: {[(s + 1, e, round(m, 3)) for s, e, m in components]}"
        f"\nbound: symbol {bound.symbol} -> {bound.seconds * 1e3:.1f} ms"
        f"  (actual Q_k = {q_k * 1e3:.1f} ms)"
    )
    common.write_artifact("fig7_component_bound", text)

    # The heaviest component anchors a bound near the true Q_k.
    np.testing.assert_allclose(bound.seconds, q_k, rtol=0.15)
    # The dominant component holds most of the mass.
    heaviest = max(components, key=lambda c: c[2])
    assert heaviest[2] > 0.8
