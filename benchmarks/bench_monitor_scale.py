"""Fleet-scale drain benchmark: fused mega-batching vs per-window pool.

Measures what the ragged multi-sequence E-step engine buys a multi-path
monitor on one CPU.  Each fleet tier warms ``n_paths`` concurrent
monitors (warm states are cloned from a small set of template paths so
warm-up cost stays flat as fleets grow), ingests one more hop per path,
and times a single :meth:`MultiPathMonitor.drain` under both engines:

* ``drain_mode="pool"`` — one :func:`analyze_window` task per window,
  the per-window baseline (``n_jobs=1``: the pure Python-dispatch cost);
* ``drain_mode="fused"`` — every window of the round stacked into one
  ragged mega-batch, one batched recursion for the whole fleet.

Both drains run the same kernel per window, so their verdict-event
streams are byte-identical — asserted here on every tier, which makes
the benchmark double as an end-to-end parity check.  ``fused_speedup``
per tier is the headline number; the paper-scale run records it at
32/128/512 paths with the *default* ``MonitorConfig`` geometry and EM
settings (the stationarity gate is disabled so every window reaches the
fit — the expensive case a live deployment provisions for).

Writes ``benchmarks/output/BENCH_monitor.json``.  ``--check-baseline``
(CI) never clobbers the committed JSON: results go to a ``.check.json``
sidecar, the committed paper-scale baseline is checked for the 3x
acceptance record at 128 paths, and — when scales match — the fresh
speedup must stay within ``MAX_REGRESSION`` of the committed one.
``--min-fused-speedup X`` additionally gates the largest tier of the
*current* run.

Run: ``PYTHONPATH=src python benchmarks/bench_monitor_scale.py``
(``REPRO_BENCH_SCALE=paper`` for the committed fleet sizes).
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import common  # noqa: E402
from repro.experiments.streams import strong_dcl_stream  # noqa: E402
from repro.models.base import EMConfig  # noqa: E402
from repro.parallel import shutdown_pools  # noqa: E402
from repro.streaming.scheduler import MultiPathMonitor  # noqa: E402
from repro.streaming.tracker import MonitorConfig  # noqa: E402

BASELINE_PATH = common.OUTPUT_DIR / "BENCH_monitor.json"
#: CI tolerates at most this much erosion of the committed fused speedup.
MAX_REGRESSION = 2.0
#: The acceptance bar the committed paper-scale baseline must record at
#: the 128-path tier (fused drain vs pool drain, default MonitorConfig).
ACCEPTANCE_FLEET = 128
ACCEPTANCE_SPEEDUP = 3.0

#: Distinct probe streams; fleet path ``i`` clones template ``i % N``,
#: so warm-up runs a constant number of cold fits at any fleet size.
N_STREAMS = 8
#: Hops ingested (per path) into the timed drain: one sub-round.
TIMED_HOPS = 1

if common.SCALE == "paper":
    FLEETS = [32, 128, 512]
    WINDOW, HOP = 3000, 1500      # MonitorConfig defaults: one paper minute
else:
    FLEETS = [8, 32]
    WINDOW, HOP = 1500, 750


def monitor_config() -> MonitorConfig:
    """Default MonitorConfig at paper scale; shrunk EM budget at quick.

    ``gate_stationarity=False`` is the only non-default: the gate can
    only *skip* windows, and the benchmark measures the fit path.
    """
    em = None
    if common.SCALE != "paper":
        em = EMConfig(tol=common.EM_TOL, max_iter=common.EM_MAX_ITER)
    return MonitorConfig(window=WINDOW, hop=HOP, gate_stationarity=False,
                         em=em)


def event_keys(events) -> list:
    """Events projected for byte-parity (wall-clock lag excluded)."""
    keys = []
    for event in events:
        payload = event.to_dict()
        payload.pop("lag_ms", None)
        keys.append(json.dumps(payload, sort_keys=True))
    return keys


def warm_templates(config: MonitorConfig, streams):
    """One warmed _PathState per template stream (cold fits, untimed)."""
    seed_monitor = MultiPathMonitor(config, n_jobs=1, drain_mode="pool")
    for g, stream in enumerate(streams):
        for send_time, delay in stream[:WINDOW]:
            seed_monitor.ingest(f"seed-{g}", send_time, delay)
    events = seed_monitor.drain()
    assert len(events) == len(streams), "warm-up drain lost windows"
    assert all(e.analysis.analyzed for e in events), "warm-up window skipped"
    return [seed_monitor._paths[f"seed-{g}"] for g in range(len(streams))]


def build_fleet(config, templates, n_paths: int,
                drain_mode: str) -> MultiPathMonitor:
    """A fleet monitor whose paths clone the warmed template states.

    Reaches into ``_paths`` deliberately: cloning a warmed per-path state
    (assembler overlap buffer, verdict tracker, warm EM parameters) is
    what lets the benchmark scale fleets without paying ``n_paths`` cold
    fits per tier.  Both engines get byte-identical clones, so the
    comparison — and the parity assertion — is exact.
    """
    monitor = MultiPathMonitor(config, n_jobs=1, drain_mode=drain_mode)
    for i in range(n_paths):
        monitor._paths[f"path-{i:04d}"] = copy.deepcopy(
            templates[i % len(templates)])
    return monitor


def bench_fleet(config, templates, streams, n_paths: int) -> dict:
    """Time one warm drain of ``n_paths`` paths under both engines."""
    monitors = {
        mode: build_fleet(config, templates, n_paths, mode)
        for mode in ("pool", "fused")
    }
    tail = [stream[WINDOW:WINDOW + TIMED_HOPS * HOP] for stream in streams]
    for monitor in monitors.values():
        for i in range(n_paths):
            path = f"path-{i:04d}"
            for send_time, delay in tail[i % len(streams)]:
                monitor.ingest(path, send_time, delay)
        assert monitor.n_pending == n_paths * TIMED_HOPS

    elapsed, events = {}, {}
    for mode, monitor in monitors.items():
        start = time.perf_counter()
        events[mode] = monitor.drain()
        elapsed[mode] = time.perf_counter() - start
        assert len(events[mode]) == n_paths * TIMED_HOPS, (
            f"{mode} drain resolved {len(events[mode])} windows, "
            f"expected {n_paths * TIMED_HOPS}"
        )
    assert event_keys(events["pool"]) == event_keys(events["fused"]), (
        "fused and pool drains diverged — byte-parity contract broken"
    )

    windows = n_paths * TIMED_HOPS
    entry = {
        "paths": n_paths,
        "windows": windows,
        "pool_seconds": round(elapsed["pool"], 3),
        "fused_seconds": round(elapsed["fused"], 3),
        "pool_throughput_wps": round(windows / elapsed["pool"], 3),
        "fused_throughput_wps": round(windows / elapsed["fused"], 3),
        "fused_speedup": round(elapsed["pool"] / elapsed["fused"], 3),
    }
    print(f"  fleet {n_paths:4d}: pool {entry['pool_seconds']:8.2f}s  "
          f"fused {entry['fused_seconds']:7.2f}s  "
          f"speedup {entry['fused_speedup']:.2f}x", flush=True)
    return entry


def run_benchmark() -> dict:
    config = monitor_config()
    probes = WINDOW + TIMED_HOPS * HOP
    streams = [list(strong_dcl_stream(probes, seed=100 + g))
               for g in range(N_STREAMS)]
    print(f"warming {N_STREAMS} template paths "
          f"(window={WINDOW}, scale={common.SCALE})...", flush=True)
    templates = warm_templates(config, streams)
    fleets = {}
    for n_paths in FLEETS:
        fleets[str(n_paths)] = bench_fleet(config, templates, streams,
                                           n_paths)
    largest = fleets[str(FLEETS[-1])]
    return {
        "scale": common.SCALE,
        "cpu_count": os.cpu_count(),
        "window": WINDOW,
        "hop": HOP,
        "timed_hops": TIMED_HOPS,
        "n_streams": N_STREAMS,
        "em_tol": config.em.tol,
        "em_max_iter": config.em.max_iter,
        "em_restarts": config.em.n_restarts,
        "fleets": fleets,
        "largest_fleet_fused_speedup": largest["fused_speedup"],
    }


def check_baseline(report: dict) -> int:
    """Gate against the committed JSON (CI path; never clobbers it)."""
    if not BASELINE_PATH.exists():
        print(f"no committed baseline at {BASELINE_PATH}; skipping check")
        return 0
    baseline = json.loads(BASELINE_PATH.read_text())
    status = 0

    # The committed paper-scale artifact must itself record the
    # acceptance number, whatever scale this run used.
    if baseline.get("scale") == "paper":
        tier = baseline.get("fleets", {}).get(str(ACCEPTANCE_FLEET))
        if tier is None:
            print(f"FAIL: committed baseline has no {ACCEPTANCE_FLEET}-path "
                  f"tier")
            status = 1
        elif tier["fused_speedup"] < ACCEPTANCE_SPEEDUP:
            print(f"FAIL: committed baseline records "
                  f"{tier['fused_speedup']}x fused speedup at "
                  f"{ACCEPTANCE_FLEET} paths, below the "
                  f"{ACCEPTANCE_SPEEDUP}x acceptance bar")
            status = 1
        else:
            print(f"committed baseline: {tier['fused_speedup']}x at "
                  f"{ACCEPTANCE_FLEET} paths (>= {ACCEPTANCE_SPEEDUP}x, OK)")

    if baseline.get("scale") != report["scale"]:
        print(f"baseline scale {baseline.get('scale')!r} != current "
              f"{report['scale']!r}; skipping live comparison")
        return status
    shared = sorted(
        set(baseline.get("fleets", {})) & set(report["fleets"]), key=int
    )
    for fleet in shared:
        old = baseline["fleets"][fleet]["fused_speedup"]
        new = report["fleets"][fleet]["fused_speedup"]
        print(f"fleet {fleet}: fused speedup baseline {old}x, now {new}x")
        if old / max(new, 1e-9) > MAX_REGRESSION:
            print(f"FAIL: fused speedup at {fleet} paths eroded more than "
                  f"{MAX_REGRESSION:.0f}x vs the committed baseline")
            status = 1
    if status == 0:
        print("OK: within the regression budget")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="compare against the committed JSON instead of replacing it",
    )
    parser.add_argument(
        "--min-fused-speedup", type=float, default=None,
        help="fail unless the largest fleet's fused drain beats the pool "
             "drain by at least this factor",
    )
    args = parser.parse_args(argv)

    report = run_benchmark()
    shutdown_pools()
    print(json.dumps(report, indent=2))

    status = 0
    if args.min_fused_speedup is not None:
        speedup = report["largest_fleet_fused_speedup"]
        if speedup < args.min_fused_speedup:
            print(f"FAIL: largest-fleet fused speedup {speedup}x is below "
                  f"the {args.min_fused_speedup}x bar")
            status = 1
        else:
            print(f"largest-fleet fused speedup {speedup}x "
                  f">= {args.min_fused_speedup}x (OK)")

    if args.check_baseline:
        status = check_baseline(report) or status
        out = BASELINE_PATH.with_suffix(".check.json")
    else:
        out = BASELINE_PATH
    common.OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[written to {out}]")
    manifest = common.write_bench_manifest(
        "monitor", extra={"fleets": FLEETS, "timed_hops": TIMED_HOPS},
    )
    print(f"[manifest written to {manifest}]")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
