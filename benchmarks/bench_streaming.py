"""Streaming-monitor benchmark: warm-start wins and multi-path throughput.

Times the online identification subsystem on synthetic strong-DCL probe
streams (:mod:`repro.experiments.streams` — no simulator in the loop, so
the numbers isolate the fitting/testing pipeline):

* ``cold_window_seconds`` / ``warm_window_seconds`` — per-window latency
  of :func:`repro.streaming.tracker.analyze_window` with the warm-start
  chain disabled vs enabled, on the *same* window sequence.  A cold
  window pays the full multi-restart EM; a warm window drives a single
  warm-started row (cold hedge restarts run only if the warm trajectory
  collapses).  How much wall-clock that saves is machine-dependent: on
  FLOP/memory-bound hosts the warm fit skips ``n_restarts``-fold work
  per iteration, while on dispatch-bound hosts (per-E-step cost flat in
  batch width) only the iteration savings remain, so ``warm_speedup``
  is asserted against the conservative dispatch-bound floor.
* ``throughput_single_jobs`` / ``throughput_multi_jobs`` — end-to-end
  probes/second of :class:`repro.streaming.scheduler.MultiPathMonitor`
  over several concurrent paths with ``n_jobs=1`` vs a worker pool.  The
  multi-path speedup only exceeds 1 on multi-core machines; ``cpu_count``
  is recorded so readers can interpret it.
* ``telemetry`` — a metrics-on single-path pass: warm/cold fit counts,
  fallback reasons, and the span-histogram breakdown of where the
  monitor's time went (``streaming.fit`` vs cold ``em.fit`` refits).

Writes ``benchmarks/output/BENCH_streaming.json``.  ``--check-baseline``
compares the fresh warm-window latency against the committed JSON and
exits non-zero on a >2x regression (results go to a ``.check.json``
sidecar so the committed baseline is never clobbered by CI).

Run: ``PYTHONPATH=src python benchmarks/bench_streaming.py``
(``REPRO_BENCH_SCALE=paper`` for full horizons).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

import common  # noqa: E402
from repro import obs  # noqa: E402
from repro.experiments.streams import strong_dcl_stream  # noqa: E402
from repro.parallel import shutdown_pools  # noqa: E402
from repro.streaming.scheduler import MultiPathMonitor  # noqa: E402
from repro.streaming.tracker import MonitorConfig, analyze_window  # noqa: E402
from repro.streaming.windows import iter_windows  # noqa: E402

BASELINE_PATH = common.OUTPUT_DIR / "BENCH_streaming.json"
#: CI may only tolerate this much slowdown of the guarded warm timing.
MAX_REGRESSION = 2.0
#: The acceptance bar: warm-started windows must fit at least this much
#: faster than cold multi-restart windows at quick scale.  This is the
#: dispatch-bound floor (the warm chain's iteration savings alone);
#: FLOP-bound machines see several-fold more.
MIN_WARM_SPEEDUP = 1.2

COLD_RESTARTS = 4
N_PATHS = 4
MULTI_JOBS = 4

if common.SCALE == "paper":
    WINDOW, HOP = 3000, 1500      # one paper minute, 50% overlap
    STREAM_PROBES = 24_000
    THROUGHPUT_PROBES = 12_000
else:
    WINDOW, HOP = 1500, 750
    STREAM_PROBES = 9_000
    THROUGHPUT_PROBES = 4_500


def monitor_config() -> MonitorConfig:
    return MonitorConfig(
        window=WINDOW, hop=HOP, n_hidden=2, gate_stationarity=False,
        em=common.em_config().replace(n_restarts=COLD_RESTARTS, n_jobs=1),
    )


def bench_window_latency(config: MonitorConfig):
    """Per-window analyze_window latency: warm chain vs always-cold."""
    windows = list(iter_windows(strong_dcl_stream(STREAM_PROBES, seed=11),
                                WINDOW, HOP))
    # Warm chain: first window is cold by construction and excluded.
    warm = None
    warm_times, warm_iters = [], []
    for pw in windows:
        start = time.perf_counter()
        analysis = analyze_window(pw.observation, warm, config,
                                  window_index=pw.index)
        elapsed = time.perf_counter() - start
        assert analysis.analyzed, analysis.reason
        if analysis.warm_used:
            warm_times.append(elapsed)
            warm_iters.append(analysis.n_iter)
        warm = analysis.warm_state
    assert warm_times, "warm chain never engaged"

    cold_times, cold_iters = [], []
    for pw in windows[1:]:
        start = time.perf_counter()
        analysis = analyze_window(pw.observation, None, config,
                                  window_index=pw.index)
        cold_times.append(time.perf_counter() - start)
        cold_iters.append(analysis.n_iter)
    return {
        "n_windows": len(windows),
        "n_warm_windows": len(warm_times),
        "cold_window_seconds": round(float(np.mean(cold_times)), 4),
        "warm_window_seconds": round(float(np.mean(warm_times)), 4),
        "cold_mean_iters": round(float(np.mean(cold_iters)), 1),
        "warm_mean_iters": round(float(np.mean(warm_iters)), 1),
        "warm_speedup": round(float(np.mean(cold_times) /
                                    np.mean(warm_times)), 3),
    }


def bench_throughput(config: MonitorConfig, n_jobs: int) -> float:
    """Probes/second through the multi-path monitor, end to end."""
    streams = {
        f"path-{i}": list(strong_dcl_stream(THROUGHPUT_PROBES, seed=30 + i))
        for i in range(N_PATHS)
    }
    monitor = MultiPathMonitor(config, n_jobs=n_jobs)
    if n_jobs != 1:
        # Fork the worker pool outside the timed region (steady state).
        warm_cfg = MonitorConfig(
            window=WINDOW, hop=HOP, n_hidden=2, gate_stationarity=False,
            em=config.em.replace(max_iter=1, n_restarts=1),
        )
        MultiPathMonitor(warm_cfg, n_jobs=n_jobs).run_streams({
            path: stream[:WINDOW] for path, stream in streams.items()
        })
    start = time.perf_counter()
    events = monitor.run_streams(streams)
    elapsed = time.perf_counter() - start
    assert events, "throughput run produced no events"
    return N_PATHS * THROUGHPUT_PROBES / elapsed


def bench_telemetry(config: MonitorConfig) -> dict:
    """One metrics-on single-path pass: fit mix + span time breakdown."""
    obs.enable(clear=True)  # metrics only; no event sink
    try:
        monitor = MultiPathMonitor(config, n_jobs=1)
        events = monitor.run_streams({
            "path-0": list(strong_dcl_stream(STREAM_PROBES, seed=11))
        })
        snapshot = obs.metrics_snapshot()
        reg = obs.registry()
        warm = reg.counter_value("repro_streaming_fits_total", mode="warm")
        cold = reg.counter_value("repro_streaming_fits_total", mode="cold")
    finally:
        obs.disable()
        obs.registry().clear()

    fallbacks = {
        dict(labels)["reason"]: value
        for (name, labels), value in snapshot["counters"].items()
        if name == "repro_streaming_fallbacks_total" and value
    }
    spans = {
        dict(labels)["name"]: {
            "count": count,
            "total_seconds": round(total, 4),
        }
        for (name, labels), (_, _, total, count)
        in snapshot["histograms"].items()
        if name == "repro_span_seconds"
    }
    return {
        "n_windows": len(events),
        "warm_fits": int(warm),
        "cold_fits": int(cold),
        "fallbacks": fallbacks,
        "span_seconds": spans,
    }


def run_benchmark() -> dict:
    config = monitor_config()
    latency = bench_window_latency(config)
    single = bench_throughput(config, n_jobs=1)
    multi = bench_throughput(config, n_jobs=MULTI_JOBS)
    telemetry = bench_telemetry(config)
    report = {
        "scale": common.SCALE,
        "cpu_count": os.cpu_count(),
        "window": WINDOW,
        "hop": HOP,
        "cold_restarts": COLD_RESTARTS,
        "em_tol": common.EM_TOL,
        "em_max_iter": common.EM_MAX_ITER,
        **latency,
        "n_paths": N_PATHS,
        "throughput_probes_per_path": THROUGHPUT_PROBES,
        "multi_n_jobs": MULTI_JOBS,
        "throughput_single_jobs": round(single, 1),
        "throughput_multi_jobs": round(multi, 1),
        "multi_path_speedup": round(multi / single, 3),
        "telemetry": telemetry,
    }
    assert report["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm-start speedup {report['warm_speedup']}x is below the "
        f"{MIN_WARM_SPEEDUP}x bar"
    )
    return report


def check_baseline(report: dict) -> int:
    if not BASELINE_PATH.exists():
        print(f"no committed baseline at {BASELINE_PATH}; skipping check")
        return 0
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline.get("scale") != report["scale"]:
        print(f"baseline scale {baseline.get('scale')!r} != "
              f"current {report['scale']!r}; skipping check")
        return 0
    old = baseline["warm_window_seconds"]
    new = report["warm_window_seconds"]
    ratio = new / old
    print(f"warm window fit: baseline {old:.3f}s, now {new:.3f}s "
          f"({ratio:.2f}x)")
    if ratio > MAX_REGRESSION:
        print(f"FAIL: warm-window latency regressed more than "
              f"{MAX_REGRESSION:.0f}x vs the committed baseline")
        return 1
    print("OK: within the regression budget")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="compare against the committed JSON instead of replacing it",
    )
    args = parser.parse_args(argv)

    report = run_benchmark()
    shutdown_pools()
    print(json.dumps(report, indent=2))

    if args.check_baseline:
        status = check_baseline(report)
        out = BASELINE_PATH.with_suffix(".check.json")
    else:
        status = 0
        out = BASELINE_PATH
    common.OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[written to {out}]")
    manifest = common.write_bench_manifest("streaming")
    print(f"[manifest written to {manifest}]")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
