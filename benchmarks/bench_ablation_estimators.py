"""Ablation A1 — the four G estimators side by side.

The paper argues for model-based inference (MMHD) over the empirical
loss-pair approach and over the HMM.  This ablation quantifies all four
estimators (ns ground truth, loss pairs, HMM, MMHD) on the strong and
weak headline settings by total-variation distance to the ground truth.

Expected shape: TV(MMHD) is smallest; the HMM trails MMHD; the loss-pair
distribution is reasonable in the strong regime (where companions see the
full dominant queue and nothing else).
"""

import common
from repro.core import (
    DelayDiscretizer,
    ground_truth_distribution,
    hmm_distribution,
    losspair_distribution,
    mmhd_distribution,
)
from repro.experiments.reporting import format_table


def evaluate(result):
    trace = result.trace
    observation = trace.observation()
    disc = DelayDiscretizer.from_observation(observation, 5)
    truth = ground_truth_distribution(trace, disc)
    mmhd, _ = mmhd_distribution(observation, disc, n_hidden=2,
                                config=common.em_config())
    hmm, _ = hmm_distribution(observation, disc, n_hidden=2,
                              config=common.em_config())
    losspair = losspair_distribution(result.losspair_trace, disc)
    return {
        "MMHD": mmhd.wasserstein(truth),
        "HMM": hmm.wasserstein(truth),
        "loss-pair": losspair.wasserstein(truth),
    }


def run_ablation(strong_run, weak_run):
    return {
        "strong (1.0 Mb/s)": evaluate(strong_run),
        "weak (0.7/0.2 Mb/s)": evaluate(weak_run),
    }


def test_ablation_estimators(benchmark, strong_run, weak_run):
    results = common.once(benchmark,
                          lambda: run_ablation(strong_run, weak_run))
    text = format_table(
        ["setting", "W1(MMHD)", "W1(HMM)", "W1(loss-pair)"],
        [
            [name, f"{tv['MMHD']:.3f}", f"{tv['HMM']:.3f}",
             f"{tv['loss-pair']:.3f}"]
            for name, tv in results.items()
        ],
        title=("Ablation A1 — estimator accuracy vs ns ground truth "
               "(Wasserstein-1, in symbols)"),
    )
    common.write_artifact("ablation_estimators", text)

    for name, tv in results.items():
        # The paper's recommended estimator is accurate everywhere
        # (within ~1/3 of a symbol of the truth)...
        assert tv["MMHD"] < 0.35, (name, tv)
        # ...and never worse than the alternatives by a margin.
        assert tv["MMHD"] <= tv["HMM"] + 0.1, (name, tv)
        assert tv["MMHD"] <= tv["loss-pair"] + 0.1, (name, tv)
