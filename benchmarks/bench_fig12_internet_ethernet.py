"""Fig. 12 — Internet experiment, Ethernet receiver (Cornell -> UFPR).

Paper: the only lossy PlanetLab path in the first experiment set; the
inferred virtual-delay distributions for N = 1..4 are near-identical and
concentrate on delay symbol 1; WDCL-Test (β0 = 0.06, β1 = 0) accepts, and
pchar independently finds one low-bandwidth link inside Brazil.

Reproduced shape: on the synthetic 11-hop path with clock offset/skew
injected and removed, Ĝ concentrates on a single low symbol for every N,
WDCL accepts, and the pchar-style estimator locates the congested hop.
"""

import numpy as np

import common
from repro.core import DelayDiscretizer, identify, mmhd_distribution
from repro.experiments.internet import (
    ethernet_path_scenario,
    run_internet_experiment,
)
from repro.experiments.reporting import format_pmf_series
from repro.measurement.pathtools import PcharProber


def run_fig12():
    scenario = ethernet_path_scenario()
    run = run_internet_experiment(scenario, seed=1,
                                  duration=common.SIM_DURATION,
                                  warmup=common.SIM_WARMUP)
    disc = DelayDiscretizer.from_observation(run.repaired, 5)
    series = []
    for n_hidden in (1, 2, 3, 4):
        dist, _ = mmhd_distribution(run.repaired, disc, n_hidden=n_hidden,
                                    config=common.em_config())
        series.append((f"MMHD N={n_hidden}", dist))
    report = identify(run.repaired, common.identify_config())

    # pchar-style cross-check on a fresh copy of the network.
    built = scenario.build(seed=1)
    prober = PcharProber(built.network, built.probe_src, built.probe_dst,
                         repetitions=16, interval=0.05)
    prober.start(at=0.5)
    built.network.run(until=60.0)
    pchar = prober.estimate()
    return run, series, report, pchar


def test_fig12_internet_ethernet(benchmark):
    run, series, report, pchar = common.once(benchmark, run_fig12)
    text = format_pmf_series(
        [dist.pmf for _, dist in series],
        [label for label, _ in series],
        title=(f"Fig. 12 — Cornell->UFPR path "
               f"(loss={run.trace.loss_rate:.2%}, "
               f"skew err={run.skew_error():.1e})"),
    )
    text += (
        f"\n{report.wdcl.summary()}"
        f"\npchar narrow link: {pchar.narrow_link()}"
        f"  (true congested link: {run.result.built.dcl_link})"
    )
    common.write_artifact("fig12_internet_ethernet", text)

    # Clock repair is essentially exact.
    assert run.skew_error() < 5e-6
    # Distributions concentrate on one low symbol for every N; the modes
    # agree to within one bin (the loss population straddles a bin edge,
    # so different fits can land on either side of it).
    modes = [int(np.argmax(dist.pmf)) + 1 for _, dist in series]
    assert max(modes) <= 3, modes
    assert max(modes) - min(modes) <= 1, modes
    for (label, dist), mode in zip(series, modes):
        assert dist.pmf[mode - 1] > 0.8, (label, dist.pmf)
    # WDCL accepts the dominant congested link.
    assert report.wdcl.accepted
    # The pchar cross-check implicates a low-bandwidth hop on the path
    # (the congested hop or the loss-free slow transit hop).
    assert pchar.narrow_link() in {"r6->r7", "r3->r4"}
