"""Fitting-performance benchmark: E-step engines, fast path, parallelism.

Times the EM fitting layer on the Table II strong-DCL probe trace:

* ``mmhd_serial_fast`` — 4-restart MMHD fit, one process, structured
  (support-restricted) E-step, **sequential engine**.  This is the
  number the CI smoke guards, pinned to ``backend="sequential"`` so it
  stays comparable to baselines committed before the batched engine.
* ``mmhd_serial_dense`` — same fit with ``fast_path=False``: the dense
  reference E-step, computation-equivalent to the pre-optimisation code.
  ``fast_path_speedup`` is the single-core win of the fast-path PR.
* ``mmhd_parallel`` — same fit with ``n_jobs=4`` restart fan-out.
  ``parallel_speedup`` only exceeds 1 on multi-core machines; the JSON
  records ``cpu_count`` so readers can interpret it.
* ``hmm_serial`` — 4-restart HMM fit for cross-model context.

The ``backend_matrix`` section is the sequential-vs-batched-vs-pool
comparison at the default 8-restart configuration: per model it times
the sequential per-restart engine ("before"), the batched
restart-stacked engine ("after"), and the composed pool+batch fan-out,
asserts the two engines pick the identical winning restart (tolerance
zero on the argmax) with final log-likelihoods within 1e-9 relative,
and reports ``batched_speedup``.  ``--min-batched-speedup X`` turns
that number into a CI gate: exit non-zero if the HMM batched speedup
drops below ``X`` or the engines diverge numerically.

The ``kernel_matrix`` section compares the per-row E-step kernels
inside the batch engine on the HMM fit (hidden width 2, where the
blocked kernel is the ``auto`` default): the per-time-step ``loop``
kernel (``backend="batched"``), the blocked scan kernel
(``backend="blocked"``) at float64 and float32, and the numba kernel
(``backend="compiled"``) when numba is importable.  All float64 kernels
must pick the identical winning restart with log-likelihoods within
1e-9 relative; ``--min-blocked-speedup X`` gates
``blocked_speedup = batched_seconds / blocked_seconds`` in CI.

The ``telemetry`` section quantifies the observability tax: per-call cost
of each disabled instrumentation entry point, the number of telemetry
touches one serial fit actually makes, the resulting disabled-mode
overhead bound (asserted < 2%), and the measured fit time with metrics
collection turned on (plus the span-histogram breakdown of that run).

The script asserts the serial and parallel MMHD fits are numerically
identical before reporting any speedup, then writes
``benchmarks/output/BENCH_fitting.json``.  ``--check-baseline`` instead
compares the fresh serial-fast timing against the committed JSON and
exits non-zero on a >2x regression (results go to a ``.check.json``
sidecar so the committed baseline is never clobbered by CI).

Run: ``PYTHONPATH=src python benchmarks/bench_perf_fitting.py``
(``REPRO_BENCH_SCALE=paper`` for full horizons).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

import common  # noqa: E402
from repro import obs  # noqa: E402
from repro.core.discretize import DelayDiscretizer  # noqa: E402
from repro.experiments.runner import run_scenario  # noqa: E402
from repro.experiments.scenarios import strong_dcl_scenario  # noqa: E402
from repro.models.base import SymbolIndex  # noqa: E402
from repro.models.batched import batched_restart_fits  # noqa: E402
from repro.models.compiled import HAVE_NUMBA  # noqa: E402
from repro.models.hmm import _fit_hmm_restart, fit_hmm  # noqa: E402
from repro.models.mmhd import _fit_mmhd_restart, fit_mmhd  # noqa: E402
from repro.parallel import shutdown_pools  # noqa: E402

N_RESTARTS = 4
PARALLEL_JOBS = 4
#: Restart count of the backend matrix — the default multi-restart
#: configuration the batched-engine speedup target is stated against.
MATRIX_RESTARTS = 8
BASELINE_PATH = common.OUTPUT_DIR / "BENCH_fitting.json"
#: CI may only tolerate this much slowdown of the guarded serial timing.
MAX_REGRESSION = 2.0
#: Acceptance bar: instrumentation left compiled into the hot paths may
#: cost at most this fraction of the serial fit while telemetry is off.
MAX_DISABLED_OVERHEAD = 0.02


def _observation_sequence():
    result = run_scenario(
        strong_dcl_scenario(1.0), seed=1,
        duration=common.SIM_DURATION, warmup=common.SIM_WARMUP,
    )
    observation = result.trace.observation()
    disc = DelayDiscretizer.from_observation(observation, 5)
    return disc.observation_sequence(observation)


#: Timed repetitions per configuration (best-of, interleaved across
#: configurations so machine drift hits every config equally).  The
#: paper scale is expensive enough that one repetition must do.
REPS = 1 if common.SCALE == "paper" else 2


def _time(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _fit_summary(fitted):
    return {
        "log_likelihood": float(fitted.log_likelihood),
        "virtual_delay_pmf": [float(p) for p in fitted.virtual_delay_pmf],
        "n_iter": int(fitted.n_iter),
        "converged": bool(fitted.converged),
    }


def _disabled_call_ns() -> dict:
    """Per-call cost (ns) of each instrumentation entry point while off."""
    n = 200_000
    cases = {
        "is_enabled": obs.is_enabled,
        "inc": lambda: obs.inc("repro_bench_total"),
        "observe": lambda: obs.observe("repro_bench_seconds", 0.1),
        "emit": lambda: obs.emit("span", name="bench"),
    }
    costs = {}
    for name, fn in cases.items():
        start = time.perf_counter()
        for _ in range(n):
            fn()
        costs[name] = (time.perf_counter() - start) / n * 1e9

    def spanned():
        with obs.span("bench"):
            pass

    start = time.perf_counter()
    for _ in range(n // 10):
        spanned()
    costs["span"] = (time.perf_counter() - start) / (n // 10) * 1e9
    return {k: round(v, 1) for k, v in costs.items()}


def _count_disabled_touches(seq, config) -> int:
    """How many telemetry call sites one disabled serial fit executes.

    Every disabled-mode site either calls ``obs.is_enabled`` or one of
    the facade entry points; counting wrappers see them all.
    """
    counted = {"n": 0}
    originals = {}

    def wrap(fn):
        def counting(*args, **kwargs):
            counted["n"] += 1
            return fn(*args, **kwargs)
        return counting

    for name in ("is_enabled", "inc", "set_gauge", "observe", "emit"):
        originals[name] = getattr(obs, name)
        setattr(obs, name, wrap(originals[name]))
    try:
        fit_mmhd(seq, n_hidden=2, config=config)
    finally:
        for name, fn in originals.items():
            setattr(obs, name, fn)
    return counted["n"]


def bench_telemetry(seq, serial_config, disabled_fit_seconds) -> dict:
    """The observability tax: disabled-mode bound + enabled-mode measure."""
    assert not obs.is_enabled()
    call_ns = _disabled_call_ns()
    touches = _count_disabled_touches(seq, serial_config)
    overhead_seconds = touches * max(call_ns.values()) / 1e9
    disabled_overhead = overhead_seconds / disabled_fit_seconds

    obs.enable(clear=True)  # metrics only; no event sink
    try:
        enabled_seconds, _ = _time(
            lambda: fit_mmhd(seq, n_hidden=2, config=serial_config)
        )
        snapshot = obs.metrics_snapshot()
    finally:
        obs.disable()
        obs.registry().clear()
    span_key = ("repro_span_seconds", (("name", "em.fit"),))
    _, _, span_sum, span_count = snapshot["histograms"][span_key]

    return {
        "disabled_call_ns": call_ns,
        "disabled_touches_per_fit": touches,
        "disabled_overhead_fraction": round(disabled_overhead, 6),
        "disabled_overhead_ok": bool(
            disabled_overhead < MAX_DISABLED_OVERHEAD
        ),
        "enabled_metrics_fit_seconds": round(enabled_seconds, 4),
        "enabled_overhead_fraction": round(
            enabled_seconds / disabled_fit_seconds - 1.0, 4),
        "span_em_fit": {
            "count": span_count,
            "total_seconds": round(span_sum, 4),
        },
    }


def bench_backend_matrix(seq) -> dict:
    """Sequential vs batched vs pool at the default restart count.

    The sequential and batched engines run restart by restart through
    their internal entry points, which yields the per-restart fits both
    timings *and* the identity checks need — identical winning restart
    (tolerance 0 on the argmax), final log-likelihood within 1e-9
    relative, and matching delay PMFs.  The pool row is the composed
    fan-out (each worker batching its restart shard) through the public
    fitter.
    """
    matrix = {"n_restarts": MATRIX_RESTARTS, "pool_n_jobs": PARALLEL_JOBS}
    workers = {"hmm": _fit_hmm_restart, "mmhd": _fit_mmhd_restart}
    fitters = {"hmm": fit_hmm, "mmhd": fit_mmhd}
    base = common.em_config().replace(n_restarts=MATRIX_RESTARTS, n_jobs=1)
    for kind in ("hmm", "mmhd"):
        seq_config = base.replace(backend="sequential")

        def run_sequential(config=seq_config, worker=workers[kind]):
            index = SymbolIndex(seq)
            return [worker((seq, 2, config, r, index))
                    for r in range(MATRIX_RESTARTS)]

        sequential_seconds, seq_fits = _time(run_sequential)
        batched_seconds, batched_fits = _time(
            lambda: batched_restart_fits(
                kind, seq, 2, base.replace(backend="batched")
            )
        )
        pool_seconds, _ = _time(
            lambda: fitters[kind](seq, n_hidden=2, config=base.replace(
                backend="batched", n_jobs=PARALLEL_JOBS))
        )
        seq_logliks = np.array([f.log_likelihood for f in seq_fits])
        batched_logliks = np.array([f.log_likelihood for f in batched_fits])
        winner = int(seq_logliks.argmax())
        same_winner = winner == int(batched_logliks.argmax())
        loglik_rel_diff = float(np.max(
            np.abs(batched_logliks - seq_logliks) / np.abs(seq_logliks)
        ))
        pmf_agree = np.allclose(
            seq_fits[winner].virtual_delay_pmf,
            batched_fits[winner].virtual_delay_pmf,
            rtol=1e-9, atol=1e-12,
        )
        matrix[kind] = {
            "sequential_seconds": round(sequential_seconds, 4),
            "batched_seconds": round(batched_seconds, 4),
            "pool_seconds": round(pool_seconds, 4),
            "batched_speedup": round(sequential_seconds / batched_seconds, 3),
            "pool_speedup": round(sequential_seconds / pool_seconds, 3),
            "best_restart": winner,
            "best_restart_identical": bool(same_winner),
            "loglik_rel_diff": loglik_rel_diff,
            "pmf_agree": bool(pmf_agree),
        }
        assert same_winner, f"{kind}: engines picked different winning restarts"
        assert loglik_rel_diff <= 1e-9, (
            f"{kind}: backends diverged numerically "
            f"(rel diff {loglik_rel_diff:.2e})"
        )
        assert pmf_agree, f"{kind}: delay PMFs diverged between backends"
    return matrix


def bench_kernel_matrix(seq) -> dict:
    """Loop vs blocked vs compiled per-row kernels on the HMM fit.

    All rows go through :func:`batched_restart_fits` so the only thing
    that varies is the forward–backward kernel (and, for the float32
    row, the recursion dtype).  Float64 kernels are reassociations of
    the same arithmetic: identical winning restart, log-likelihoods
    within 1e-9 relative.  The float32 row is reported with its own
    looser agreement figure rather than asserted against the float64
    bar.
    """
    base = common.em_config().replace(n_restarts=MATRIX_RESTARTS, n_jobs=1)
    rows = {
        "batched": base.replace(backend="batched"),
        "blocked": base.replace(backend="blocked"),
        "blocked_float32": base.replace(backend="blocked", dtype="float32"),
    }
    if HAVE_NUMBA:
        rows["compiled"] = base.replace(backend="compiled")
    matrix = {"n_restarts": MATRIX_RESTARTS, "numba_available": HAVE_NUMBA}
    timings = {name: float("inf") for name in rows}
    fits = {}
    for _ in range(REPS):
        for name, config in rows.items():
            elapsed, fitted = _time(
                lambda c=config: batched_restart_fits(
                    "hmm", seq, 2, c, backend=c.backend)
            )
            timings[name] = min(timings[name], elapsed)
            fits[name] = fitted

    ref_logliks = np.array([f.log_likelihood for f in fits["batched"]])
    winner = int(ref_logliks.argmax())
    for name, kernel_fits in fits.items():
        logliks = np.array([f.log_likelihood for f in kernel_fits])
        rel_diff = float(np.max(
            np.abs(logliks - ref_logliks) / np.abs(ref_logliks)
        ))
        same_winner = winner == int(logliks.argmax())
        matrix[name] = {
            "seconds": round(timings[name], 4),
            "best_restart_identical": bool(same_winner),
            "loglik_rel_diff": rel_diff,
        }
        if name != "blocked_float32":
            assert same_winner, (
                f"{name}: kernel picked a different winning restart"
            )
            assert rel_diff <= 1e-9, (
                f"{name}: kernel diverged from the loop reference "
                f"(rel diff {rel_diff:.2e})"
            )
    matrix["blocked_speedup"] = round(
        timings["batched"] / timings["blocked"], 3)
    if HAVE_NUMBA:
        matrix["compiled_speedup"] = round(
            timings["batched"] / timings["compiled"], 3)
    return matrix


def run_benchmark() -> dict:
    seq = _observation_sequence()
    base = common.em_config().replace(n_restarts=N_RESTARTS)

    # The legacy cases pin backend="sequential": their committed
    # baselines predate the batched engine, and the CI regression guard
    # on mmhd_serial_fast must keep measuring the same code path.  The
    # batched engine gets its own before/after matrix below.
    serial_fast = base.replace(n_jobs=1, fast_path=True,
                               backend="sequential")
    serial_dense = base.replace(n_jobs=1, fast_path=False,
                                backend="sequential")
    parallel = base.replace(n_jobs=PARALLEL_JOBS, fast_path=True,
                            backend="sequential")

    # Warm the worker pool and the numpy/BLAS caches outside the timed
    # region, so the parallel number reflects steady-state fan-out (not
    # one-time fork cost) and the first timed config isn't penalised.
    warm = dict(max_iter=2, tol=1e30)
    fit_mmhd(seq, n_hidden=2, config=parallel.replace(**warm))
    fit_mmhd(seq, n_hidden=2, config=serial_fast.replace(**warm))
    fit_mmhd(seq, n_hidden=2, config=serial_dense.replace(**warm))
    fit_mmhd(seq, n_hidden=2, config=parallel.replace(
        backend="batched", **warm))

    cases = {
        "mmhd_serial_fast": lambda: fit_mmhd(seq, n_hidden=2,
                                             config=serial_fast),
        "mmhd_serial_dense": lambda: fit_mmhd(seq, n_hidden=2,
                                              config=serial_dense),
        "mmhd_parallel": lambda: fit_mmhd(seq, n_hidden=2, config=parallel),
        "hmm_serial": lambda: fit_hmm(seq, n_hidden=2, config=serial_fast),
    }
    timings = {name: float("inf") for name in cases}
    fits = {}
    for _ in range(REPS):
        for name, fn in cases.items():
            elapsed, fitted = _time(fn)
            timings[name] = min(timings[name], elapsed)
            fits[name] = fitted
    fit_serial = fits["mmhd_serial_fast"]
    fit_dense = fits["mmhd_serial_dense"]
    fit_parallel = fits["mmhd_parallel"]

    identical = (
        np.allclose(fit_serial.virtual_delay_pmf,
                    fit_parallel.virtual_delay_pmf, rtol=0, atol=0)
        and fit_serial.log_likelihood == fit_parallel.log_likelihood
    )
    assert identical, "serial and parallel MMHD fits diverged"
    fast_vs_dense = np.allclose(fit_serial.virtual_delay_pmf,
                                fit_dense.virtual_delay_pmf, atol=1e-6)

    telemetry = bench_telemetry(seq, serial_fast,
                                timings["mmhd_serial_fast"])
    assert telemetry["disabled_overhead_ok"], (
        f"disabled-telemetry overhead "
        f"{telemetry['disabled_overhead_fraction']:.2%} exceeds the "
        f"{MAX_DISABLED_OVERHEAD:.0%} budget"
    )

    backend_matrix = bench_backend_matrix(seq)
    kernel_matrix = bench_kernel_matrix(seq)

    return {
        "scale": common.SCALE,
        "cpu_count": os.cpu_count(),
        "n_probes": len(seq),
        "n_losses": seq.n_losses,
        "n_restarts": N_RESTARTS,
        "parallel_n_jobs": PARALLEL_JOBS,
        "em_tol": common.EM_TOL,
        "em_max_iter": common.EM_MAX_ITER,
        "timings_seconds": {k: round(v, 4) for k, v in timings.items()},
        "fast_path_speedup": round(
            timings["mmhd_serial_dense"] / timings["mmhd_serial_fast"], 3),
        "parallel_speedup": round(
            timings["mmhd_serial_fast"] / timings["mmhd_parallel"], 3),
        "serial_parallel_identical": bool(identical),
        "fast_dense_agree": bool(fast_vs_dense),
        "backend_matrix": backend_matrix,
        "kernel_matrix": kernel_matrix,
        "telemetry": telemetry,
        "mmhd_fit": _fit_summary(fit_serial),
    }


def check_baseline(report: dict) -> int:
    if not BASELINE_PATH.exists():
        print(f"no committed baseline at {BASELINE_PATH}; skipping check")
        return 0
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline.get("scale") != report["scale"]:
        print(f"baseline scale {baseline.get('scale')!r} != "
              f"current {report['scale']!r}; skipping check")
        return 0
    old = baseline["timings_seconds"]["mmhd_serial_fast"]
    new = report["timings_seconds"]["mmhd_serial_fast"]
    ratio = new / old
    print(f"serial MMHD fit: baseline {old:.3f}s, now {new:.3f}s "
          f"({ratio:.2f}x)")
    if ratio > MAX_REGRESSION:
        print(f"FAIL: serial fitting regressed more than "
              f"{MAX_REGRESSION:.0f}x vs the committed baseline")
        return 1
    print("OK: within the regression budget")
    return 0


def check_batched_speedup(report: dict, minimum: float) -> int:
    """CI gate on the batched engine: numeric divergence already raised
    inside :func:`bench_backend_matrix`; here only speed can fail."""
    status = 0
    for kind in ("hmm", "mmhd"):
        speedup = report["backend_matrix"][kind]["batched_speedup"]
        print(f"{kind}: batched engine speedup {speedup:.2f}x "
              f"(minimum {minimum:.2f}x)")
    hmm_speedup = report["backend_matrix"]["hmm"]["batched_speedup"]
    if hmm_speedup < minimum:
        print(f"FAIL: HMM batched speedup {hmm_speedup:.2f}x is below "
              f"the {minimum:.2f}x floor")
        status = 1
    else:
        print("OK: batched engine meets the speedup floor")
    return status


def check_blocked_speedup(report: dict, minimum: float) -> int:
    """CI gate on the blocked kernel: divergence already raised inside
    :func:`bench_kernel_matrix`; here only speed can fail."""
    speedup = report["kernel_matrix"]["blocked_speedup"]
    print(f"hmm: blocked kernel speedup {speedup:.2f}x "
          f"(minimum {minimum:.2f}x)")
    if speedup < minimum:
        print(f"FAIL: blocked kernel speedup {speedup:.2f}x is below "
              f"the {minimum:.2f}x floor")
        return 1
    print("OK: blocked kernel meets the speedup floor")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="compare against the committed JSON instead of replacing it",
    )
    parser.add_argument(
        "--min-batched-speedup", type=float, metavar="X",
        help="exit non-zero if the HMM batched/sequential speedup in the "
             "backend matrix falls below X",
    )
    parser.add_argument(
        "--min-blocked-speedup", type=float, metavar="X",
        help="exit non-zero if the HMM blocked/loop kernel speedup in "
             "the kernel matrix falls below X",
    )
    args = parser.parse_args(argv)

    report = run_benchmark()
    shutdown_pools()
    print(json.dumps(report, indent=2))

    status = 0
    if args.min_batched_speedup is not None:
        status |= check_batched_speedup(report, args.min_batched_speedup)
    if args.min_blocked_speedup is not None:
        status |= check_blocked_speedup(report, args.min_blocked_speedup)
    if args.check_baseline:
        status |= check_baseline(report)
        out = BASELINE_PATH.with_suffix(".check.json")
    else:
        out = BASELINE_PATH
    common.OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[written to {out}]")
    manifest = common.write_bench_manifest(
        "fitting", config=common.identify_config(),
    )
    print(f"[manifest written to {manifest}]")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
