"""Fitting-performance benchmark: serial fast path vs dense vs parallel.

Times the EM fitting layer on the Table II strong-DCL probe trace:

* ``mmhd_serial_fast`` — 4-restart MMHD fit, one process, structured
  (support-restricted) E-step.  This is the number the CI smoke guards.
* ``mmhd_serial_dense`` — same fit with ``fast_path=False``: the dense
  reference E-step, computation-equivalent to the pre-optimisation code.
  ``fast_path_speedup`` is the single-core win of this PR.
* ``mmhd_parallel`` — same fit with ``n_jobs=4`` restart fan-out.
  ``parallel_speedup`` only exceeds 1 on multi-core machines; the JSON
  records ``cpu_count`` so readers can interpret it.
* ``hmm_serial`` — 4-restart HMM fit for cross-model context.

The ``telemetry`` section quantifies the observability tax: per-call cost
of each disabled instrumentation entry point, the number of telemetry
touches one serial fit actually makes, the resulting disabled-mode
overhead bound (asserted < 2%), and the measured fit time with metrics
collection turned on (plus the span-histogram breakdown of that run).

The script asserts the serial and parallel MMHD fits are numerically
identical before reporting any speedup, then writes
``benchmarks/output/BENCH_fitting.json``.  ``--check-baseline`` instead
compares the fresh serial-fast timing against the committed JSON and
exits non-zero on a >2x regression (results go to a ``.check.json``
sidecar so the committed baseline is never clobbered by CI).

Run: ``PYTHONPATH=src python benchmarks/bench_perf_fitting.py``
(``REPRO_BENCH_SCALE=paper`` for full horizons).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

import common  # noqa: E402
from repro import obs  # noqa: E402
from repro.core.discretize import DelayDiscretizer  # noqa: E402
from repro.experiments.runner import run_scenario  # noqa: E402
from repro.experiments.scenarios import strong_dcl_scenario  # noqa: E402
from repro.models.hmm import fit_hmm  # noqa: E402
from repro.models.mmhd import fit_mmhd  # noqa: E402
from repro.parallel import shutdown_pools  # noqa: E402

N_RESTARTS = 4
PARALLEL_JOBS = 4
BASELINE_PATH = common.OUTPUT_DIR / "BENCH_fitting.json"
#: CI may only tolerate this much slowdown of the guarded serial timing.
MAX_REGRESSION = 2.0
#: Acceptance bar: instrumentation left compiled into the hot paths may
#: cost at most this fraction of the serial fit while telemetry is off.
MAX_DISABLED_OVERHEAD = 0.02


def _observation_sequence():
    result = run_scenario(
        strong_dcl_scenario(1.0), seed=1,
        duration=common.SIM_DURATION, warmup=common.SIM_WARMUP,
    )
    observation = result.trace.observation()
    disc = DelayDiscretizer.from_observation(observation, 5)
    return disc.observation_sequence(observation)


#: Timed repetitions per configuration (best-of, interleaved across
#: configurations so machine drift hits every config equally).  The
#: paper scale is expensive enough that one repetition must do.
REPS = 1 if common.SCALE == "paper" else 2


def _time(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _fit_summary(fitted):
    return {
        "log_likelihood": float(fitted.log_likelihood),
        "virtual_delay_pmf": [float(p) for p in fitted.virtual_delay_pmf],
        "n_iter": int(fitted.n_iter),
        "converged": bool(fitted.converged),
    }


def _disabled_call_ns() -> dict:
    """Per-call cost (ns) of each instrumentation entry point while off."""
    n = 200_000
    cases = {
        "is_enabled": obs.is_enabled,
        "inc": lambda: obs.inc("repro_bench_total"),
        "observe": lambda: obs.observe("repro_bench_seconds", 0.1),
        "emit": lambda: obs.emit("span", name="bench"),
    }
    costs = {}
    for name, fn in cases.items():
        start = time.perf_counter()
        for _ in range(n):
            fn()
        costs[name] = (time.perf_counter() - start) / n * 1e9

    def spanned():
        with obs.span("bench"):
            pass

    start = time.perf_counter()
    for _ in range(n // 10):
        spanned()
    costs["span"] = (time.perf_counter() - start) / (n // 10) * 1e9
    return {k: round(v, 1) for k, v in costs.items()}


def _count_disabled_touches(seq, config) -> int:
    """How many telemetry call sites one disabled serial fit executes.

    Every disabled-mode site either calls ``obs.is_enabled`` or one of
    the facade entry points; counting wrappers see them all.
    """
    counted = {"n": 0}
    originals = {}

    def wrap(fn):
        def counting(*args, **kwargs):
            counted["n"] += 1
            return fn(*args, **kwargs)
        return counting

    for name in ("is_enabled", "inc", "set_gauge", "observe", "emit"):
        originals[name] = getattr(obs, name)
        setattr(obs, name, wrap(originals[name]))
    try:
        fit_mmhd(seq, n_hidden=2, config=config)
    finally:
        for name, fn in originals.items():
            setattr(obs, name, fn)
    return counted["n"]


def bench_telemetry(seq, serial_config, disabled_fit_seconds) -> dict:
    """The observability tax: disabled-mode bound + enabled-mode measure."""
    assert not obs.is_enabled()
    call_ns = _disabled_call_ns()
    touches = _count_disabled_touches(seq, serial_config)
    overhead_seconds = touches * max(call_ns.values()) / 1e9
    disabled_overhead = overhead_seconds / disabled_fit_seconds

    obs.enable(clear=True)  # metrics only; no event sink
    try:
        enabled_seconds, _ = _time(
            lambda: fit_mmhd(seq, n_hidden=2, config=serial_config)
        )
        snapshot = obs.metrics_snapshot()
    finally:
        obs.disable()
        obs.registry().clear()
    span_key = ("repro_span_seconds", (("name", "em.fit"),))
    _, _, span_sum, span_count = snapshot["histograms"][span_key]

    return {
        "disabled_call_ns": call_ns,
        "disabled_touches_per_fit": touches,
        "disabled_overhead_fraction": round(disabled_overhead, 6),
        "disabled_overhead_ok": bool(
            disabled_overhead < MAX_DISABLED_OVERHEAD
        ),
        "enabled_metrics_fit_seconds": round(enabled_seconds, 4),
        "enabled_overhead_fraction": round(
            enabled_seconds / disabled_fit_seconds - 1.0, 4),
        "span_em_fit": {
            "count": span_count,
            "total_seconds": round(span_sum, 4),
        },
    }


def run_benchmark() -> dict:
    seq = _observation_sequence()
    base = common.em_config().replace(n_restarts=N_RESTARTS)

    serial_fast = base.replace(n_jobs=1, fast_path=True)
    serial_dense = base.replace(n_jobs=1, fast_path=False)
    parallel = base.replace(n_jobs=PARALLEL_JOBS, fast_path=True)

    # Warm the worker pool and the numpy/BLAS caches outside the timed
    # region, so the parallel number reflects steady-state fan-out (not
    # one-time fork cost) and the first timed config isn't penalised.
    warm = dict(max_iter=2, tol=1e30)
    fit_mmhd(seq, n_hidden=2, config=parallel.replace(**warm))
    fit_mmhd(seq, n_hidden=2, config=serial_fast.replace(**warm))
    fit_mmhd(seq, n_hidden=2, config=serial_dense.replace(**warm))

    cases = {
        "mmhd_serial_fast": lambda: fit_mmhd(seq, n_hidden=2,
                                             config=serial_fast),
        "mmhd_serial_dense": lambda: fit_mmhd(seq, n_hidden=2,
                                              config=serial_dense),
        "mmhd_parallel": lambda: fit_mmhd(seq, n_hidden=2, config=parallel),
        "hmm_serial": lambda: fit_hmm(seq, n_hidden=2, config=serial_fast),
    }
    timings = {name: float("inf") for name in cases}
    fits = {}
    for _ in range(REPS):
        for name, fn in cases.items():
            elapsed, fitted = _time(fn)
            timings[name] = min(timings[name], elapsed)
            fits[name] = fitted
    fit_serial = fits["mmhd_serial_fast"]
    fit_dense = fits["mmhd_serial_dense"]
    fit_parallel = fits["mmhd_parallel"]

    identical = (
        np.allclose(fit_serial.virtual_delay_pmf,
                    fit_parallel.virtual_delay_pmf, rtol=0, atol=0)
        and fit_serial.log_likelihood == fit_parallel.log_likelihood
    )
    assert identical, "serial and parallel MMHD fits diverged"
    fast_vs_dense = np.allclose(fit_serial.virtual_delay_pmf,
                                fit_dense.virtual_delay_pmf, atol=1e-6)

    telemetry = bench_telemetry(seq, serial_fast,
                                timings["mmhd_serial_fast"])
    assert telemetry["disabled_overhead_ok"], (
        f"disabled-telemetry overhead "
        f"{telemetry['disabled_overhead_fraction']:.2%} exceeds the "
        f"{MAX_DISABLED_OVERHEAD:.0%} budget"
    )

    return {
        "scale": common.SCALE,
        "cpu_count": os.cpu_count(),
        "n_probes": len(seq),
        "n_losses": seq.n_losses,
        "n_restarts": N_RESTARTS,
        "parallel_n_jobs": PARALLEL_JOBS,
        "em_tol": common.EM_TOL,
        "em_max_iter": common.EM_MAX_ITER,
        "timings_seconds": {k: round(v, 4) for k, v in timings.items()},
        "fast_path_speedup": round(
            timings["mmhd_serial_dense"] / timings["mmhd_serial_fast"], 3),
        "parallel_speedup": round(
            timings["mmhd_serial_fast"] / timings["mmhd_parallel"], 3),
        "serial_parallel_identical": bool(identical),
        "fast_dense_agree": bool(fast_vs_dense),
        "telemetry": telemetry,
        "mmhd_fit": _fit_summary(fit_serial),
    }


def check_baseline(report: dict) -> int:
    if not BASELINE_PATH.exists():
        print(f"no committed baseline at {BASELINE_PATH}; skipping check")
        return 0
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline.get("scale") != report["scale"]:
        print(f"baseline scale {baseline.get('scale')!r} != "
              f"current {report['scale']!r}; skipping check")
        return 0
    old = baseline["timings_seconds"]["mmhd_serial_fast"]
    new = report["timings_seconds"]["mmhd_serial_fast"]
    ratio = new / old
    print(f"serial MMHD fit: baseline {old:.3f}s, now {new:.3f}s "
          f"({ratio:.2f}x)")
    if ratio > MAX_REGRESSION:
        print(f"FAIL: serial fitting regressed more than "
              f"{MAX_REGRESSION:.0f}x vs the committed baseline")
        return 1
    print("OK: within the regression budget")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="compare against the committed JSON instead of replacing it",
    )
    args = parser.parse_args(argv)

    report = run_benchmark()
    shutdown_pools()
    print(json.dumps(report, indent=2))

    if args.check_baseline:
        status = check_baseline(report)
        out = BASELINE_PATH.with_suffix(".check.json")
    else:
        status = 0
        out = BASELINE_PATH
    common.OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[written to {out}]")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
