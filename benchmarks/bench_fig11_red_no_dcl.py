"""Fig. 11 — Adaptive RED queues, no-DCL topology.

Paper: with two comparably congested RED links, the scheme correctly
rejects the dominant-congested-link hypothesis for both tested ``min_th``
positions (1/20 and 1/2 of the buffer) — two congested RED queues do not
collectively mimic one dominant queue.

Reproduced shape: WDCL rejects for both min_th fractions.
"""

import common
from repro.core import identify
from repro.experiments import run_scenario
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import red_no_dcl_scenario


def run_fig11():
    rows = []
    for fraction in (0.05, 0.5):
        result = run_scenario(red_no_dcl_scenario(fraction), seed=1,
                              duration=common.SIM_DURATION,
                              warmup=common.SIM_WARMUP)
        trace = result.trace
        shares = trace.loss_share_by_hop()
        report = identify(trace, common.identify_config())
        rows.append({
            "fraction": fraction,
            "loss_rate": trace.loss_rate,
            "mid_share": float(shares[trace.link_names.index("r1->r2")]),
            "tail_share": float(shares[trace.link_names.index("r2->r3")]),
            "wdcl": report.wdcl,
            "g": report.distribution.pmf,
        })
    return rows


def test_fig11_red_no_dcl(benchmark):
    rows = common.once(benchmark, run_fig11)
    text = format_table(
        ["min_th fraction", "probe loss", "share(r1,r2)", "share(r2,r3)",
         "WDCL", "G(2d*)"],
        [
            [
                f"{r['fraction']:.2f}",
                f"{r['loss_rate']:.2%}",
                f"{r['mid_share']:.1%}",
                f"{r['tail_share']:.1%}",
                "accept" if r["wdcl"].accepted else "reject",
                f"{r['wdcl'].cdf_at_2d_star:.3f}",
            ]
            for r in rows
        ],
        title="Fig. 11 — Adaptive RED, no DCL (beta0=0.06, beta1=0)",
    )
    common.write_artifact("fig11_red_no_dcl", text)

    for r in rows:
        # Both links lose; the hypothesis is rejected in both settings.
        assert r["mid_share"] > 0.1 and r["tail_share"] > 0.1, r
        assert not r["wdcl"].accepted, r
