"""Extension E2 — the wireless caveat, demonstrated (paper Section VII).

"For a path with a wireless link, losses can be due to interference and
fading, which is not correlated with long queuing delays, and hence our
approach does not apply."  We build exactly that path: a fading
Gilbert-Elliott hop, no congested queue anywhere.  The ground truth shows
lost probes carrying ordinary ambient delays; the method then *falsely*
accepts a phantom dominant congested link with a tiny inferred Q_k — the
concrete failure mode behind the paper's warning.
"""

import common
from repro.core import ground_truth_distribution, identify
from repro.core import observed_delay_distribution
from repro.experiments.internet import (
    run_internet_experiment,
    wireless_path_scenario,
)
from repro.experiments.reporting import format_pmf_series


def run_wireless():
    run = run_internet_experiment(wireless_path_scenario(), seed=1,
                                  duration=common.SIM_DURATION,
                                  warmup=common.SIM_WARMUP)
    report = identify(run.repaired, common.identify_config())
    disc = report.discretizer
    truth = ground_truth_distribution(run.trace, disc)
    observed = observed_delay_distribution(run.trace, disc)
    return run, report, truth, observed


def test_ext_wireless_caveat(benchmark):
    run, report, truth, observed = common.once(benchmark, run_wireless)
    text = format_pmf_series(
        [observed.pmf, truth.pmf, report.distribution.pmf],
        ["observed", "virtual (truth)", "MMHD"],
        title=(f"Extension E2 — wireless (fading) losses, no congested "
               f"queue (loss={run.trace.loss_rate:.2%})"),
    )
    text += (
        f"\n{report.wdcl.summary()}"
        "\nNOTE: this acceptance is the documented FALSE POSITIVE of "
        "Section VII — fading losses are uncorrelated with queuing, so "
        "the droptail premise behind Theorem 1 does not hold."
    )
    common.write_artifact("ext_wireless", text)

    # Ground truth: lost probes look like ordinary probes — the virtual
    # distribution matches the observed one (no full-queue signature).
    assert truth.total_variation(observed) < 0.15
    # The method is fooled, as the paper warns.
    assert report.wdcl.accepted
    # And the phantom Q_k it implies is tiny (sub-bin ambient delay).
    assert report.wdcl.d_star == 1
