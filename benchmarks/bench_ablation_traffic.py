"""Ablation A3 — traffic-type robustness (paper Section VI-A).

The paper creates three traffic conditions — TCP-only (FTP + HTTP),
UDP ON-OFF only, and both — and reports that "results under the other two
types are similar ... our scheme relies on virtual queuing distribution
and is not sensitive to whether the congestion is caused by TCP or UDP
traffic".  This ablation verifies that claim on the strong-DCL setting:
identification must accept with ``Ĝ`` concentrated at the top symbol for
all three mixes.
"""

import common
from repro.core import identify
from repro.experiments import run_scenario
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import strong_dcl_scenario

TRAFFIC_MIXES = {
    "TCP only (FTP + HTTP)": dict(n_ftp=2, n_web=2, udp_fraction=0.0),
    "UDP ON-OFF only": dict(n_ftp=0, n_web=0, udp_fraction=1.4),
    "TCP + UDP (paper default)": dict(n_ftp=1, n_web=1, udp_fraction=0.2),
}


def run_traffic_ablation():
    rows = []
    for name, mix in TRAFFIC_MIXES.items():
        result = run_scenario(
            strong_dcl_scenario(1.0, **mix), seed=1,
            duration=common.SIM_DURATION, warmup=common.SIM_WARMUP,
        )
        report = identify(result.trace, common.identify_config())
        rows.append({
            "mix": name,
            "loss_rate": result.loss_rate,
            "dcl_share": result.loss_share_of_dcl(),
            "verdict": report.verdict,
            "top_mass": float(report.distribution.pmf[-1]),
        })
    return rows


def test_ablation_traffic_types(benchmark):
    rows = common.once(benchmark, run_traffic_ablation)
    text = format_table(
        ["traffic mix", "probe loss", "loss@DCL", "verdict", "G(5)"],
        [
            [r["mix"], f"{r['loss_rate']:.2%}", f"{r['dcl_share']:.1%}",
             r["verdict"], f"{r['top_mass']:.3f}"]
            for r in rows
        ],
        title=("Ablation A3 — identification under the paper's three "
               "traffic conditions (strong DCL, 1 Mb/s)"),
    )
    common.write_artifact("ablation_traffic", text)

    for r in rows:
        assert r["dcl_share"] > 0.99, r
        assert r["verdict"] == "strong", r
        assert r["top_mass"] > 0.9, r
