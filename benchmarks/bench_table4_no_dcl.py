"""Table IV — no dominant congested link.

Paper: both (r1,r2) and (r2,r3) lose comparable fractions; the WDCL-Test
with β0 = 0.06, β1 = 0 correctly rejects in every setting.

Reproduced shape: per bandwidth pair — two links share the losses (each
holding 25-75%), and both the strong and weak tests reject.
"""

import common
from repro.core import identify
from repro.experiments import run_scenario
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import NO_DCL_BANDWIDTH_PAIRS, no_dcl_scenario


def run_table4():
    rows = []
    for pair in NO_DCL_BANDWIDTH_PAIRS:
        result = run_scenario(
            no_dcl_scenario(pair), seed=1,
            duration=common.SIM_DURATION, warmup=common.SIM_WARMUP,
        )
        trace = result.trace
        shares = trace.loss_share_by_hop()
        mid = shares[trace.link_names.index("r1->r2")]
        tail = shares[trace.link_names.index("r2->r3")]
        report = identify(trace, common.identify_config())
        rows.append({
            "pair": pair,
            "loss_rate": trace.loss_rate,
            "mid_share": float(mid),
            "tail_share": float(tail),
            "sdcl": report.sdcl.accepted,
            "wdcl": report.wdcl.accepted,
            "g_2d": report.wdcl.cdf_at_2d_star,
        })
    return rows


def test_table4_no_dcl(benchmark):
    rows = common.once(benchmark, run_table4)
    text = format_table(
        ["(r1,r2)/(r2,r3) Mb/s", "probe loss", "share(r1,r2)",
         "share(r2,r3)", "SDCL", "WDCL", "G(2d*)"],
        [
            [
                f"{r['pair'][0]}/{r['pair'][1]}",
                f"{r['loss_rate']:.2%}",
                f"{r['mid_share']:.1%}",
                f"{r['tail_share']:.1%}",
                "accept" if r["sdcl"] else "reject",
                "accept" if r["wdcl"] else "reject",
                f"{r['g_2d']:.3f}",
            ]
            for r in rows
        ],
        title="Table IV — no dominant congested link (beta0=0.06, beta1=0)",
    )
    common.write_artifact("table4_no_dcl", text)

    for r in rows:
        # Comparable loss shares at the two congested links.
        assert 0.2 < r["mid_share"] < 0.8, r
        assert 0.2 < r["tail_share"] < 0.8, r
        # Both hypotheses correctly rejected.
        assert not r["sdcl"], r
        assert not r["wdcl"], r
