"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures: it runs
the corresponding scenario(s), prints the same rows/series the paper
reports, asserts the paper's *qualitative* result, and writes the rendered
output to ``benchmarks/output/<artifact>.txt`` so the regenerated numbers
survive the run.

Scale: the paper simulates 2000 s and analyses 1000 s (50 000 probes) with
400 resampling repetitions.  The default benchmark scale is reduced so the
whole suite finishes in tens of minutes; set ``REPRO_BENCH_SCALE=paper``
to run the full horizons.  EXPERIMENTS.md records which scale produced the
committed numbers.

Parallelism: ``REPRO_N_JOBS`` sets the worker-process count the
benchmarks pass to fit/bootstrap/sweep entry points (``-1`` = all CPUs;
default ``1``, serial).  Results are numerically identical at any value —
the knob trades wall-clock for cores, never reproducibility.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.identify import IdentifyConfig
from repro.models.base import EMConfig

OUTPUT_DIR = Path(__file__).parent / "output"

#: "quick" (default) or "paper".
SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

#: Worker processes for parallel-capable benchmark stages.
N_JOBS = int(os.environ.get("REPRO_N_JOBS", "1"))

if SCALE == "paper":
    SIM_DURATION = 1000.0
    SIM_WARMUP = 1000.0
    SWEEP_REPS = 100
    EM_TOL = 1e-4
    EM_MAX_ITER = 400
else:
    SIM_DURATION = 200.0
    SIM_WARMUP = 30.0
    SWEEP_REPS = 12
    EM_TOL = 1e-3
    EM_MAX_ITER = 120


def em_config(max_iter: int = None) -> EMConfig:
    return EMConfig(tol=EM_TOL, max_iter=max_iter or EM_MAX_ITER,
                    n_jobs=N_JOBS)


def identify_config(n_symbols: int = 5, n_hidden: int = 2,
                    model: str = "mmhd", beta0: float = 0.06,
                    beta1: float = 0.0) -> IdentifyConfig:
    return IdentifyConfig(
        n_symbols=n_symbols,
        n_hidden=n_hidden,
        model=model,
        beta0=beta0,
        beta1=beta1,
        em=em_config(),
    )


def write_artifact(name: str, text: str) -> Path:
    """Persist a rendered table/figure to benchmarks/output and echo it."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


def write_bench_manifest(name: str, config=None, extra=None) -> Path:
    """Record run provenance for one benchmark next to its BENCH JSON.

    ``BENCH_<name>.manifest.json`` captures the scale, seeds, package
    versions, and git commit that produced the committed numbers, so a
    regression flagged by ``compare_bench.py`` can always be traced to
    the environment difference behind it.
    """
    from repro.obs import provenance

    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / f"BENCH_{name}.manifest.json"
    provenance.record_run(
        f"bench:{name}", config=config, out_path=path,
        extra={"scale": SCALE, "n_jobs": N_JOBS,
               **(extra or {})},
    )
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
