"""Table II — strongly dominant congested link.

Paper: the (r2, r3) bandwidth sweeps 0.1-1.0 Mb/s with a 20 kB buffer;
all losses occur there, SDCL-Test accepts in every setting, and both the
model-based and loss-pair estimates of the maximum queuing delay are
accurate (maximum errors 2 ms and 5 ms respectively).

Reproduced shape: per bandwidth — all probe losses at (r2, r3), verdict
"strong", MMHD bound within one fine bin above the true ``Q_k``, loss-pair
estimate also close (this is the regime where loss pairs work).
"""

import pytest

import common
from repro.core import estimate_bound, identify, losspair_max_queuing_delay
from repro.experiments import run_scenario
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import STRONG_DCL_BANDWIDTHS, strong_dcl_scenario


def run_table2():
    rows = []
    for bandwidth in STRONG_DCL_BANDWIDTHS:
        result = run_scenario(
            strong_dcl_scenario(bandwidth), seed=1,
            duration=common.SIM_DURATION, warmup=common.SIM_WARMUP,
            with_loss_pairs=True, monitor_queues=True,
        )
        report = identify(result.trace, common.identify_config())
        bound = estimate_bound(result.trace, "strong",
                               common.identify_config(), n_symbols=40)
        losspair = losspair_max_queuing_delay(result.losspair_trace)
        q_k = result.built.dominant_max_queuing_delay()
        rows.append({
            "bandwidth": bandwidth,
            "loss_rate": result.loss_rate,
            "dcl_share": result.loss_share_of_dcl(),
            "utilization": result.queue_stats["r2->r3"].utilization,
            "verdict": report.verdict,
            "q_k": q_k,
            "mmhd_bound": bound.seconds,
            "losspair": losspair,
        })
    return rows


def test_table2_strong_dcl(benchmark):
    rows = common.once(benchmark, run_table2)
    text = format_table(
        ["bw (Mb/s)", "probe loss", "loss@DCL", "util", "verdict",
         "Q_k (ms)", "MMHD bound (ms)", "loss-pair (ms)"],
        [
            [
                f"{r['bandwidth']:.1f}",
                f"{r['loss_rate']:.2%}",
                f"{r['dcl_share']:.1%}",
                f"{r['utilization']:.0%}",
                r["verdict"],
                f"{r['q_k'] * 1e3:.1f}",
                f"{r['mmhd_bound'] * 1e3:.1f}",
                f"{r['losspair'] * 1e3:.1f}",
            ]
            for r in rows
        ],
        title="Table II — strongly dominant congested link (r2,r3)",
    )
    common.write_artifact("table2_strong_dcl", text)

    for r in rows:
        # All losses at the dominant link; identification is "strong".
        assert r["dcl_share"] > 0.99, r
        assert r["verdict"] == "strong", r
        # The bound tracks Q_k closely (paper: within a few ms; at the
        # reduced benchmark scale the EM smear allows ~15% either side).
        assert r["mmhd_bound"] == pytest.approx(r["q_k"], rel=0.15), r
        # Loss pairs are accurate in the strong regime too.
        assert r["losspair"] == pytest.approx(r["q_k"], rel=0.2), r
