"""Session-scoped scenario runs shared across benchmark modules."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

import common  # noqa: E402
from repro.experiments import run_scenario  # noqa: E402
from repro.experiments.scenarios import (  # noqa: E402
    no_dcl_scenario,
    strong_dcl_scenario,
    weak_dcl_scenario,
)


@pytest.fixture(scope="session")
def strong_run():
    """The Table II / Fig. 5 headline setting: 1 Mb/s bottleneck."""
    return run_scenario(
        strong_dcl_scenario(1.0), seed=1,
        duration=common.SIM_DURATION, warmup=common.SIM_WARMUP,
        with_loss_pairs=True,
    )


@pytest.fixture(scope="session")
def weak_run():
    """The Table III / Figs. 6-7 headline setting: (0.7, 0.2) Mb/s."""
    return run_scenario(
        weak_dcl_scenario((0.7, 0.2)), seed=1,
        duration=common.SIM_DURATION, warmup=common.SIM_WARMUP,
        with_loss_pairs=True,
    )


@pytest.fixture(scope="session")
def no_dcl_run():
    """The Table IV / Fig. 8 headline setting: (0.1, 0.2) Mb/s."""
    return run_scenario(
        no_dcl_scenario((0.1, 0.2)), seed=1,
        duration=common.SIM_DURATION, warmup=common.SIM_WARMUP,
    )
