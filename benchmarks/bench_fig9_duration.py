"""Fig. 9 — correct-identification ratio vs probing duration (ns settings).

Paper: segments are drawn at random from the long trace and identified;
with a weakly dominant congested link the correct ratio reaches ~1 beyond
~80 s of probing; with no dominant congested link it takes ~250 s.  Strong
settings need only tens of seconds.

Reproduced shape: the ratio is non-decreasing-ish in duration, reaches
>= 0.9 at the longest tested duration for both settings, and the no-DCL
setting needs at least as much probing as the weak setting.
"""

import common
from repro.experiments.duration import correctness_vs_duration
from repro.experiments.reporting import format_table

DURATIONS = [10.0, 20.0, 40.0, 80.0, 160.0]


def run_fig9(weak_run, no_dcl_run):
    weak_sweep = correctness_vs_duration(
        weak_run.trace, expected_dcl=True, durations=DURATIONS,
        n_reps=common.SWEEP_REPS, config=common.identify_config(), seed=9,
    )
    none_sweep = correctness_vs_duration(
        no_dcl_run.trace, expected_dcl=False, durations=DURATIONS,
        n_reps=common.SWEEP_REPS, config=common.identify_config(), seed=9,
    )
    return weak_sweep, none_sweep


def test_fig9_duration_sweeps(benchmark, weak_run, no_dcl_run):
    weak_sweep, none_sweep = common.once(
        benchmark, lambda: run_fig9(weak_run, no_dcl_run)
    )
    text = format_table(
        ["duration (s)", "weak-DCL correct", "no-DCL correct"],
        [
            [f"{d:.0f}", f"{w:.0%}", f"{n:.0%}"]
            for d, w, n in zip(DURATIONS, weak_sweep.ratios,
                               none_sweep.ratios)
        ],
        title="Fig. 9 — correct identification ratio vs probing duration",
    )
    weak_knee = weak_sweep.knee(0.9) or DURATIONS[-1]
    none_knee = none_sweep.knee(0.9) or DURATIONS[-1]
    text += (f"\nknees (first duration with ratio >= 90%): "
             f"weak-DCL {weak_knee:.0f} s, no-DCL {none_knee:.0f} s")
    common.write_artifact("fig9_duration", text)

    # Long segments identify reliably in both settings (the paper's
    # central claim: minutes of probing suffice).
    assert weak_sweep.ratios[-1] >= 0.9, weak_sweep.ratios
    assert none_sweep.ratios[-1] >= 0.9, none_sweep.ratios
    # Short segments are unreliable in both settings — tens of seconds
    # are needed even at our (higher-loss) benchmark scale.  The paper's
    # specific knees (80 s / 250 s) depend on its loss rates; the knee
    # *values* are recorded in the artifact rather than asserted.
    assert weak_sweep.ratios[0] < 0.9, weak_sweep.ratios
    assert none_sweep.ratios[0] < 0.9, none_sweep.ratios
    # More probing never makes the longest-horizon result worse.
    assert weak_sweep.ratios[-1] >= weak_sweep.ratios[0]
    assert none_sweep.ratios[-1] >= none_sweep.ratios[0]
