"""Ablation A2 — sensitivity to model and EM parameters.

The paper reports that results are insensitive to the number of hidden
states (N = 1..4), the number of delay symbols (M = 5 vs finer), and the
EM convergence threshold (1e-4 vs 1e-5).  This ablation verifies those
insensitivities on the strong headline setting — and additionally
documents the one place where this reproduction departs from the paper's
stated setup: with a *fully random* MMHD transition initialisation and no
warm start, EM can land in a degenerate basin that explains losses with a
rare delay symbol (see DESIGN.md and repro.models.initialization).  The
data-driven initialisation and the freeze-c warm start select the
physical basin.
"""

import common
from repro.core import DelayDiscretizer, ground_truth_distribution
from repro.core.virtual_delay import mmhd_distribution
from repro.experiments.reporting import format_table
from repro.models.base import EMConfig


def run_ablation(strong_run):
    trace = strong_run.trace
    observation = trace.observation()
    rows = []

    def fit(label, n_symbols, n_hidden, **em_kwargs):
        disc = DelayDiscretizer.from_observation(observation, n_symbols)
        truth = ground_truth_distribution(trace, disc)
        config = EMConfig(**{
            "tol": common.EM_TOL, "max_iter": common.EM_MAX_ITER,
            **em_kwargs,
        })
        dist, fitted = mmhd_distribution(observation, disc,
                                         n_hidden=n_hidden, config=config)
        rows.append({
            "label": label,
            "tv": dist.total_variation(truth),
            "top_mass": float(dist.pmf[-1]) if n_symbols == 5 else None,
            "iters": fitted.n_iter,
        })

    for n_hidden in (1, 2, 4):
        fit(f"N={n_hidden}, M=5", 5, n_hidden)
    fit("N=2, M=10", 10, 2)
    fit("N=2, M=5, tol=1e-4", 5, 2, tol=1e-4, max_iter=300)
    fit("N=2, M=5, paper-init (random, no warm start)", 5, 2,
        data_driven_init=False, freeze_loss_iters=0)
    fit("N=2, M=5, random init + warm start", 5, 2,
        data_driven_init=False)
    fit("N=2, M=5, no loss prior", 5, 2,
        loss_prior_losses=0.0, loss_prior_observations=0.0)
    return rows


def test_ablation_parameters(benchmark, strong_run):
    rows = common.once(benchmark, lambda: run_ablation(strong_run))
    text = format_table(
        ["configuration", "TV vs ns", "EM iters"],
        [[r["label"], f"{r['tv']:.3f}", r["iters"]] for r in rows],
        title="Ablation A2 — parameter sensitivity (strong DCL setting)",
    )
    common.write_artifact("ablation_parameters", text)

    by_label = {r["label"]: r for r in rows}
    # Insensitive to N (paper: results similar for N = 1..4)...
    for n_hidden in (1, 2, 4):
        assert by_label[f"N={n_hidden}, M=5"]["tv"] < 0.1
    # ...to M...
    assert by_label["N=2, M=10"]["tv"] < 0.15
    # ...and to the convergence threshold.
    assert by_label["N=2, M=5, tol=1e-4"]["tv"] < 0.1
    # The warm start alone rescues even the fully random initialisation.
    assert by_label["N=2, M=5, random init + warm start"]["tv"] < 0.1
    # The loss prior is not needed at M=5 (it matters for fine bins).
    assert by_label["N=2, M=5, no loss prior"]["tv"] < 0.1
    # The degenerate basin exists: this row is allowed (and expected) to
    # be much worse — we only document it, never rely on it.
    paper_init = by_label["N=2, M=5, paper-init (random, no warm start)"]
    assert paper_init["tv"] >= 0.0  # recorded in the artifact
