"""Fig. 10 — Adaptive RED queues, strong-DCL topology.

Paper (Section VI-A5): with all queues running Adaptive RED (gentle), the
droptail assumption breaks.  With ``min_th`` at 1/5 of the buffer, drops
happen at low occupancy, the inferred virtual-delay distribution spreads,
and identification is *incorrect* (the existing strong DCL is missed);
with ``min_th`` at 1/2 of the buffer the RED queue behaves droptail-like
and identification succeeds.

Reproduced shape: min_th = buffer/5 -> WDCL rejects (the paper's expected
failure); min_th = buffer/2 -> strong/weak accepted with G concentrated.
"""

import common
from repro.core import ground_truth_distribution, identify
from repro.experiments import run_scenario
from repro.experiments.reporting import format_pmf_series
from repro.experiments.scenarios import red_strong_scenario


def run_fig10():
    results = {}
    for fraction in (0.2, 0.5):
        scenario = red_strong_scenario(fraction)
        result = run_scenario(scenario, seed=1,
                              duration=common.SIM_DURATION,
                              warmup=common.SIM_WARMUP)
        report = identify(result.trace, common.identify_config())
        disc = report.discretizer
        truth = ground_truth_distribution(result.trace, disc)
        results[fraction] = (scenario, result, report, truth)
    return results


def test_fig10_red_strong(benchmark):
    results = common.once(benchmark, run_fig10)
    blocks = []
    for fraction, (scenario, result, report, truth) in results.items():
        blocks.append(format_pmf_series(
            [truth.pmf, report.distribution.pmf],
            ["ns virtual", "MMHD N=2"],
            title=(f"Fig. 10 — RED strong DCL, min_th at {fraction:.0%} of "
                   f"buffer (loss={result.loss_rate:.2%})"),
        ))
        blocks.append(report.wdcl.summary())
    common.write_artifact("fig10_red_strong", "\n\n".join(blocks))

    small = results[0.2][2]
    large = results[0.5][2]
    # min_th = buffer/5: the method misses the DCL (the paper's expected
    # incorrect identification — Theorem 1 needs droptail).
    assert not small.wdcl.accepted
    # min_th = buffer/2: droptail-like behaviour, identification correct.
    assert large.wdcl.accepted
    assert large.distribution.pmf[-1] > 0.5
