"""Fig. 6 — virtual queuing-delay distribution (weak DCL).

Paper: for the (0.7, 0.2) Mb/s setting (95% of losses at (r2,r3)), the
MMHD-inferred distributions for N = 1..4 all match the ns ground truth: a
small low-delay component from the minor link plus the dominant mass at
high symbols.  SDCL-Test rejects (the low component breaks G(2d*) = 1);
WDCL-Test with β0 = 0.06 accepts.

Reproduced series: ns-virtual plus MMHD N=1..4, with the test verdicts.
"""

import common
from repro.core import (
    DelayDiscretizer,
    ground_truth_distribution,
    mmhd_distribution,
    sdcl_test,
    wdcl_test,
)
from repro.experiments.reporting import format_pmf_series


def run_fig6(weak_run):
    trace = weak_run.trace
    observation = trace.observation()
    disc = DelayDiscretizer.from_observation(observation, 5)
    truth = ground_truth_distribution(trace, disc)
    series = [("ns virtual", truth, None)]
    for n_hidden in (1, 2, 3, 4):
        dist, _ = mmhd_distribution(observation, disc, n_hidden=n_hidden,
                                    config=common.em_config())
        series.append((f"MMHD N={n_hidden}", dist,
                       (sdcl_test(dist), wdcl_test(dist, 0.06, 0.0))))
    return series


def test_fig6_weak_pmfs(benchmark, weak_run):
    series = common.once(benchmark, lambda: run_fig6(weak_run))
    text = format_pmf_series(
        [dist.pmf for _, dist, _ in series],
        [label for label, _, _ in series],
        title="Fig. 6 — virtual queuing delay distribution (weak DCL)",
    )
    verdicts = "\n".join(
        f"{label}: {tests[0].summary()} | {tests[1].summary()}"
        for label, _, tests in series if tests
    )
    common.write_artifact("fig6_weak_pmf", text + "\n\n" + verdicts)

    truth = series[0][1]
    # Ground truth: minor low-delay component + dominant high mass.
    assert truth.pmf[:3].sum() > 0.01
    assert truth.pmf[3:].sum() > 0.9
    for label, dist, tests in series[1:]:
        # Compare the two population blocks (minor: symbols 1-3,
        # dominant: 4-5) — the dominant mass straddles the 4/5 bin edge,
        # so per-bin TV overstates disagreement.
        minor_err = abs(dist.pmf[:3].sum() - truth.pmf[:3].sum())
        dominant_err = abs(dist.pmf[3:].sum() - truth.pmf[3:].sum())
        assert minor_err < 0.05, (label, minor_err)
        assert dominant_err < 0.05, (label, dominant_err)
        strong, weak = tests
        assert not strong.accepted, label
        assert weak.accepted, label
