"""Extension E1 — pinpointing the dominant congested link.

The paper's stated future work (Section VII): locate the DCL once its
existence is established.  Using prefix observations (the TTL-limited
probing analogue), the locator must name (r2, r3) in the strong and weak
settings and decline to name any link in the no-DCL setting.
"""

import common
from repro.core.pinpoint import pinpoint_dominant_link
from repro.experiments.reporting import format_table


def run_pinpoint(strong_run, weak_run, no_dcl_run):
    rows = []
    for name, result in [("strong", strong_run), ("weak", weak_run),
                         ("no-DCL", no_dcl_run)]:
        report = pinpoint_dominant_link(result.trace,
                                        common.identify_config())
        rows.append({
            "setting": name,
            "located": report.located_link or "(none)",
            "share": report.loss_share,
            "true": result.built.dcl_link or "(none)",
            "confirmed": (
                report.confirmation.dominant_link_exists
                if report.confirmation is not None else None
            ),
        })
    return rows


def test_ext_pinpoint(benchmark, strong_run, weak_run, no_dcl_run):
    rows = common.once(
        benchmark, lambda: run_pinpoint(strong_run, weak_run, no_dcl_run)
    )
    text = format_table(
        ["setting", "located link", "loss share", "true DCL",
         "prefix identify"],
        [
            [r["setting"], r["located"], f"{r['share']:.1%}", r["true"],
             {True: "accepts", False: "rejects", None: "-"}[r["confirmed"]]]
            for r in rows
        ],
        title="Extension E1 — dominant-link pinpointing via prefix probing",
    )
    common.write_artifact("ext_pinpoint", text)

    by_setting = {r["setting"]: r for r in rows}
    assert by_setting["strong"]["located"] == "r2->r3"
    assert by_setting["strong"]["confirmed"] is True
    assert by_setting["weak"]["located"] == "r2->r3"
    assert by_setting["no-DCL"]["located"] == "(none)"
