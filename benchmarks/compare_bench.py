"""Diff two BENCH_*.json reports and flag regressions.

Thin CLI over :func:`repro.obs.report.diff_bench` — the same comparator
``repro report`` renders as its benchmarks section — so CI, the
dashboard, and a developer at a shell all apply identical rules: only
directional metrics (timings, speedups, throughput, overheads) are
compared, and a change beyond ``--tolerance`` as a fraction of the
baseline is a regression (exit code 1) or an improvement (reported,
exit 0).

Usage::

    python benchmarks/compare_bench.py output/BENCH_fitting.json \
        new/BENCH_fitting.json --tolerance 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:
    from repro.obs.report import diff_bench, load_bench
except ImportError:  # running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs.report import diff_bench, load_bench


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative change treated as a regression "
                             "(default 0.25)")
    parser.add_argument("--json", action="store_true",
                        help="print the full diff as JSON")
    args = parser.parse_args(argv)

    diff = diff_bench(load_bench(args.baseline), load_bench(args.current),
                      tolerance=args.tolerance)
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(f"{diff['checked']} directional metrics checked "
              f"(tolerance ±{args.tolerance:.0%})")
        for entry in diff["regressions"]:
            print(f"  REGRESSION {entry['key']}: "
                  f"{entry['baseline']:g} -> {entry['current']:g} "
                  f"({entry['change']:+.1%}, {entry['direction']} is better)")
        for entry in diff["improvements"]:
            print(f"  improvement {entry['key']}: "
                  f"{entry['baseline']:g} -> {entry['current']:g} "
                  f"({entry['change']:+.1%})")
        if not diff["regressions"] and not diff["improvements"]:
            print("  no change beyond tolerance")
    return 1 if diff["regressions"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
