"""Fig. 8 — MMHD vs HMM on the no-DCL setting.

Paper: with two comparably lossy links, the MMHD-inferred virtual delay
distributions match the ns ground truth very well while the HMM's deviate
even for large M — MMHD captures delay-to-delay correlation that the HMM's
hidden-state bottleneck loses.  The WDCL-Test on the MMHD distribution
correctly rejects.

Reproduced shape: TV(MMHD, truth) < TV(HMM, truth) at M = 10, and MMHD's
distribution keeps both loss populations (the HMM typically merges or
misplaces one).
"""

import common
from repro.core import (
    DelayDiscretizer,
    ground_truth_distribution,
    hmm_distribution,
    mmhd_distribution,
    wdcl_test,
)
from repro.experiments.reporting import format_pmf_series


def run_fig8(no_dcl_run):
    trace = no_dcl_run.trace
    observation = trace.observation()
    disc = DelayDiscretizer.from_observation(observation, 10)
    truth = ground_truth_distribution(trace, disc)
    mmhd, _ = mmhd_distribution(observation, disc, n_hidden=2,
                                config=common.em_config())
    hmm, _ = hmm_distribution(observation, disc, n_hidden=2,
                              config=common.em_config())
    return truth, mmhd, hmm


def test_fig8_mmhd_vs_hmm(benchmark, no_dcl_run):
    truth, mmhd, hmm = common.once(benchmark, lambda: run_fig8(no_dcl_run))
    text = format_pmf_series(
        [truth.pmf, mmhd.pmf, hmm.pmf],
        ["ns virtual", "MMHD N=2", "HMM N=2"],
        title="Fig. 8 — no-DCL virtual delay PMFs at M=10",
    )
    tv_mmhd = mmhd.total_variation(truth)
    tv_hmm = hmm.total_variation(truth)
    text += f"\nTV(MMHD, ns) = {tv_mmhd:.3f}   TV(HMM, ns) = {tv_hmm:.3f}"
    common.write_artifact("fig8_mmhd_vs_hmm", text)

    # Ground truth is bimodal: two separated loss populations.
    assert truth.pmf[:4].sum() > 0.2
    assert truth.pmf[7:].sum() > 0.2
    # MMHD is the more faithful model (the paper's core Fig.-8 finding).
    assert tv_mmhd < tv_hmm + 1e-9, (tv_mmhd, tv_hmm)
    # MMHD keeps both populations with enough mass for the test to see.
    assert mmhd.pmf[:4].sum() > 0.05
    assert mmhd.pmf[7:].sum() > 0.05
    # And the WDCL-Test on the MMHD distribution rejects.
    assert not wdcl_test(mmhd, 0.06, 0.0).accepted
