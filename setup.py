"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package installs in environments without the ``wheel`` module (offline
boxes), via ``pip install -e . --no-build-isolation`` falling back to
``setup.py develop``.
"""

from setuptools import setup

setup()
