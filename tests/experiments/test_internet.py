"""Tests for the synthetic Internet experiments."""

import pytest

from repro.experiments.internet import (
    ADSL_SENDERS,
    adsl_path_scenario,
    ethernet_path_scenario,
    run_internet_experiment,
    wireless_path_scenario,
)
from repro.netsim.wireless import GilbertElliottLink


class TestScenarioStructure:
    def test_ethernet_path_has_eleven_hops(self):
        built = ethernet_path_scenario().build(seed=0)
        assert len(built.chain_link_names) == 11
        assert built.dcl_link == "r6->r7"

    def test_adsl_hop_counts_match_paper(self):
        assert len(adsl_path_scenario("ufpr").build(0).chain_link_names) == 15
        assert len(adsl_path_scenario("usevilla").build(0).chain_link_names) == 11
        assert len(adsl_path_scenario("snu").build(0).chain_link_names) == 20

    def test_snu_expects_rejection(self):
        assert adsl_path_scenario("snu").expected_verdict == "none"

    def test_accept_cases_name_the_adsl_tail(self):
        built = adsl_path_scenario("ufpr").build(0)
        assert built.dcl_link == "r14->r15"

    def test_unknown_sender_rejected(self):
        with pytest.raises(ValueError):
            adsl_path_scenario("mit")

    def test_all_senders_enumerated(self):
        assert set(ADSL_SENDERS) == {"ufpr", "usevilla", "snu"}

    def test_adsl_tail_is_slow_link(self):
        built = adsl_path_scenario("ufpr").build(0)
        tail = built.network.links[("r14", "r15")]
        assert tail.bandwidth_bps == pytest.approx(1.5e6)


class TestWirelessScenario:
    def test_wireless_hop_is_gilbert_elliott(self):
        built = wireless_path_scenario(n_hops=6).build(seed=0)
        link = built.network.links[("r5", "r6")]
        assert isinstance(link, GilbertElliottLink)

    def test_ground_truth_vs_expected_identification(self):
        scenario = wireless_path_scenario()
        # Truth: no DCL; the method's documented answer: a false accept.
        assert scenario.expected_verdict == "none"
        assert scenario.expected_identification == "weak"

    def test_custom_hop_position(self):
        built = wireless_path_scenario(n_hops=6, wireless_hop=2).build(seed=1)
        assert isinstance(built.network.links[("r2", "r3")],
                          GilbertElliottLink)
        assert not isinstance(built.network.links[("r4", "r5")],
                              GilbertElliottLink)

    def test_probes_lose_without_queueing(self):
        built = wireless_path_scenario(n_hops=5, loss_bad=0.5).build(seed=2)
        from repro.netsim.probes import PeriodicProber

        prober = PeriodicProber(built.network, built.probe_src,
                                built.probe_dst, start=2.0, stop=40.0)
        built.network.run(until=42.0)
        trace = prober.trace
        assert trace.loss_rate > 0.01
        # Losses carry only ambient queuing — no full-queue signature.
        lost_vq = trace.virtual_queuing_delays[trace.lost]
        assert lost_vq.max() < 0.05


class TestInternetRun:
    @pytest.fixture(scope="class")
    def run(self):
        return run_internet_experiment(
            ethernet_path_scenario(), seed=1, duration=60.0, warmup=10.0,
            clock_offset=0.2, clock_skew=4e-5,
        )

    def test_distortion_applied(self, run):
        # Distorted delays drift upward relative to raw ones.
        drift = run.distorted.delays - run.raw.delays
        observed = ~run.raw.lost
        assert drift[observed][-1] > drift[observed][0]

    def test_skew_recovered(self, run):
        assert run.skew_error() < 5e-6

    def test_repaired_preserves_losses(self, run):
        assert (run.repaired.lost == run.raw.lost).all()

    def test_losses_only_at_congested_hop(self, run):
        shares = run.trace.loss_share_by_hop()
        dominant = run.trace.link_names.index("r6->r7")
        assert shares[dominant] > 0.95
